// Marketplace audit (paper §II): the motivating measurement, as a tool.
//
// Models an auditor who purchases fake accounts from the underground
// market and inspects them for the social-rejection signal: pending
// friend-request backlogs and suspicious friend populations. Prints the
// per-account audit and the §II-A headline findings.
//
// Build & run:  cmake --build build && ./build/examples/marketplace_audit
#include <algorithm>
#include <cstdio>

#include "study/marketplace.h"

int main() {
  using namespace rejecto;

  study::MarketplaceConfig order;
  order.num_accounts = 43;
  order.min_friends_ordered = 50;  // ">50 real US friends" per the paper
  const auto study = study::GenerateStudy(order);

  std::printf("Audited %zu purchased accounts (ordered with >%u friends"
              " each)\n\n",
              study.accounts.size(), order.min_friends_ordered);
  std::printf("%-8s %-9s %-9s %-18s\n", "account", "friends", "pending",
              "pending fraction");
  for (std::size_t i = 0; i < study.accounts.size(); ++i) {
    const auto& a = study.accounts[i];
    std::printf("%-8zu %-9u %-9u %.1f%%\n", i, a.friends, a.pending_requests,
                100.0 * a.PendingFraction());
  }

  std::printf("\nTotals: %llu friends, %llu pending requests\n",
              static_cast<unsigned long long>(study.TotalFriends()),
              static_cast<unsigned long long>(study.TotalPending()));

  // The §II-A red flags.
  const auto worst = *std::min_element(
      study.accounts.begin(), study.accounts.end(),
      [](const auto& a, const auto& b) {
        return a.PendingFraction() < b.PendingFraction();
      });
  std::printf("Every account carries rejections: min pending fraction %.1f%%"
              " (paper band: 16.7%%-67.9%%)\n",
              100.0 * worst.PendingFraction());

  std::uint64_t suspicious_friends = 0;
  for (const auto& f : study.friends) {
    suspicious_friends += (f.social_degree > 1000);
  }
  std::printf("Suspicious friend tail: %llu of %zu delivered friends have"
              " social degree > 1000 (careless users or fellow fakes)\n",
              static_cast<unsigned long long>(suspicious_friends),
              study.friends.size());
  std::printf("\nConclusion (paper SII): even well-maintained fakes cannot"
              " avoid social rejections - the signal Rejecto cuts on.\n");
  return 0;
}
