// An online admission service over a live event stream (paper §V at
// serving scale).
//
// The batch pipeline answers "who are the friend spammers?" after the
// fact; an OSN's front end needs "should THIS friend request go through,
// right now?" at request rate. This example runs serve::AdmissionService
// end to end: a writer thread ingests the attack stream and periodically
// republishes a detection epoch (RCU snapshot swap, detection off the hot
// path), while concurrent reader threads admit/grey/reject senders
// lock-free against whichever epoch is current — with a per-sender token
// bucket layered in front of the score threshold.
//
// Self-checking: exits nonzero if the served graph diverges from batch-
// building the same events, if the final epoch misses the batch pipeline's
// detection quality, or if the serving tier fails to reject a solid
// majority of spamming fakes while admitting almost all legit users.
//
// Knobs (see docs/SERVING.md): REJECTO_SERVE_READERS,
// REJECTO_SERVE_EPOCH_EVENTS, REJECTO_SERVE_RECLAIM=hazard|shared_ptr.
//
// Build & run:  cmake --build build && ./build/examples/admission_server
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "serve/admission.h"
#include "serve/policy.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "util/flags.h"

int main() {
  using namespace rejecto;

  // The paper's attack overlaid on an organic graph, serialized as an
  // adversarially messy event stream (duplicates, flips, removals).
  util::Rng rng(util::ExperimentSeed());
  const auto legit = gen::HolmeKim(
      {.num_nodes = 2'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);
  sim::ScenarioConfig cfg;
  cfg.seed = util::ExperimentSeed() + 1;
  cfg.num_fakes = 400;
  const auto scenario = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(23);
  const auto seeds = scenario.SampleSeeds(20, 8, seed_rng);
  sim::ChurnConfig churn;
  churn.seed = util::ExperimentSeed() + 2;
  const auto log = sim::GenerateChurnLog(scenario.log, churn);

  serve::AdmissionConfig scfg;
  scfg.epoch.detect.target_detections = cfg.num_fakes;
  scfg.epoch.detect.maar.seed = 31;
  scfg.epoch.detect.maar.num_threads = util::ThreadCount();
  scfg.epoch.events_per_epoch = log.NumEvents() / 3 + 1;  // ~3 epochs
  scfg.grey_margin = 2.0;  // weak positive evidence -> manual review
  scfg = serve::ApplyEnvOverrides(scfg);

  serve::AdmissionService service(
      graph::GraphBuilder(log.NumNodes()).BuildAugmented(), seeds, scfg);

  // Layered admission: rate-limit a sender's request burst before the
  // graph score is even consulted.
  serve::TokenBucketConfig tb;
  tb.capacity = 20.0;
  tb.refill_per_tick = 1.0;
  tb.on_limit = serve::Verdict::kGrey;
  tb.num_senders = static_cast<std::size_t>(log.NumNodes());
  service.AddPolicy(std::make_unique<serve::TokenBucketPolicy>(tb));

  // Front-end readers decide continuously while the stream ingests —
  // every decision carries the epoch id it was scored against.
  const int num_readers = 2;
  std::atomic<bool> stop{false};
  std::vector<std::thread> frontends;
  std::atomic<std::uint64_t> live_decisions{0};
  for (int r = 0; r < num_readers; ++r) {
    auto reader = service.CreateReader();
    frontends.emplace_back([&, r, rd = std::move(reader)]() mutable {
      util::Rng prng(100 + r);
      std::uint64_t t = 0;
      while (!stop.load(std::memory_order_acquire)) {
        rd.Decide(static_cast<graph::NodeId>(prng.NextUInt(log.NumNodes())),
                  t++);
        if ((t & 63) == 0) std::this_thread::yield();
      }
      live_decisions.fetch_add(rd.Decisions(), std::memory_order_relaxed);
    });
  }

  for (const stream::Event& e : log.Events()) service.Submit(e);
  service.Drain();
  const std::uint64_t final_epoch = service.ForceEpoch();
  stop.store(true, std::memory_order_release);
  for (auto& t : frontends) t.join();

  // Post-attack sweep: one admission decision per account.
  auto auditor = service.CreateReader();
  std::uint64_t fake_blocked = 0, legit_admitted = 0;
  for (graph::NodeId s = 0; s < scenario.NumNodes(); ++s) {
    const serve::Decision d = auditor.Decide(s, 1);
    const bool blocked = d.verdict != serve::Verdict::kAdmit;
    if (scenario.is_fake[s] != 0) {
      fake_blocked += blocked ? 1 : 0;
    } else {
      legit_admitted += blocked ? 0 : 1;
    }
  }
  const double fake_block_rate =
      static_cast<double>(fake_blocked) / static_cast<double>(cfg.num_fakes);
  const double legit_admit_rate = static_cast<double>(legit_admitted) /
                                  static_cast<double>(legit.NumNodes());

  const serve::AdmissionStats stats = service.Stats();
  std::printf("admission server: %llu events, %llu epochs (final id %llu)\n",
              static_cast<unsigned long long>(stats.events_ingested),
              static_cast<unsigned long long>(stats.epochs_published),
              static_cast<unsigned long long>(final_epoch));
  std::printf("  live decisions while ingesting: %llu (reclaim=%s)\n",
              static_cast<unsigned long long>(live_decisions.load()),
              serve::ReclaimModeName(scfg.reclaim));
  std::printf("  audit p50/p99 decision latency: %llu / %llu ns\n",
              static_cast<unsigned long long>(auditor.Latency().P50()),
              static_cast<unsigned long long>(auditor.Latency().P99()));
  std::printf("  fake senders blocked: %.1f%%  legit admitted: %.1f%%\n",
              100.0 * fake_block_rate, 100.0 * legit_admit_rate);

  // Served state must equal the batch build of the same events.
  if (!(*service.CurrentEpoch()->graph == log.BuildAugmentedGraph())) {
    std::printf("FAIL: served graph diverged from the batch build\n");
    return 1;
  }
  if (stats.epochs_published < 3) {
    std::printf("FAIL: expected >= 3 published epochs\n");
    return 1;
  }
  if (fake_block_rate < 0.60 || legit_admit_rate < 0.95) {
    std::printf("FAIL: serving quality regressed\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
