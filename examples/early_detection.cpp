// Early detection: how many requests does a spammer get to send before
// Rejecto flags it?
//
//   1. Generate a legitimate social graph with heterogeneous rejection
//      propensities (careless users cluster in graph patches).
//   2. Unfold an adaptive attack interval by interval — here the
//      rejection-aware retargeting adversary, which abandons victims who
//      reject and walks outward from victims who accept.
//   3. Replay the growing request log through the epoch detector, scoring
//      every spammer the moment it sends its 5th/10th/20th request with
//      the O(deg) sub-epoch incremental gain.
//   4. Report time-to-detection and harm-before-detection.
//
// Self-checking: exits nonzero if the detector stops catching the attack
// early (most spammers flagged, bounded mean harm), so it doubles as an
// end-to-end smoke test. See docs/EVALUATION.md for the protocol.
//
// Build & run:  cmake --build build && ./build/examples/early_detection
#include <cstdio>

#include "gen/holme_kim.h"
#include "sim/temporal_eval.h"
#include "study/early_detection.h"
#include "util/rng.h"

int main() {
  using namespace rejecto;

  // 1. A 3K-user OSN with realistic clustering.
  util::Rng rng(42);
  const auto legit_graph = gen::HolmeKim(
      {.num_nodes = 3'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);

  // 2. 120 fakes run a rejection-aware retargeting campaign: 6 intervals,
  //    6 requests per spammer per interval, against users whose rejection
  //    propensity is drawn from 0.7 +/- 0.2 with a 12% careless minority.
  sim::TemporalEvalConfig cfg;
  cfg.seed = 42;
  cfg.num_fakes = 120;
  cfg.num_intervals = 6;
  cfg.requests_per_spammer_per_interval = 6;
  cfg.adversary = sim::AdversaryKind::kRejectionRetarget;
  sim::TemporalWorld world(legit_graph, cfg);
  sim::AdaptiveAdversary adversary(world);

  // 3. Replay through the harness: one detection epoch per interval,
  //    sub-epoch incremental scoring at the request checkpoints.
  util::Rng seed_rng(7);
  const auto seeds = world.SampleSeeds(30, 10, seed_rng);
  study::EarlyDetectionConfig ecfg;
  ecfg.detect.target_detections = world.NumFakes();
  ecfg.detect.maar.seed = 23;
  const auto res = study::RunEarlyDetection(world, adversary, seeds, ecfg);

  // 4. The deployment-facing numbers.
  std::printf("adversary            : %s\n",
              std::string(sim::AdversaryName(cfg.adversary)).c_str());
  std::printf("spam requests sent   : %llu (%llu accepted)\n",
              static_cast<unsigned long long>(res.total_spam_requests),
              static_cast<unsigned long long>(res.total_spam_accepted));
  std::printf("spammers detected    : %llu / %llu\n",
              static_cast<unsigned long long>(res.spammers_detected),
              static_cast<unsigned long long>(res.spammers_total));
  std::printf("mean time-to-detect  : %.2f requests\n",
              res.mean_time_to_detection);
  std::printf("mean harm-before     : %.2f accepted edges\n",
              res.mean_harm_before_detection);
  for (const auto& cp : res.checkpoints) {
    if (cp.scored == 0) continue;
    std::printf("recall @ %2u requests : %.3f (%llu scored sub-epoch)\n",
                cp.requests, cp.Recall(),
                static_cast<unsigned long long>(cp.scored));
  }
  std::printf("final epoch          : precision %.3f recall %.3f\n",
              res.curve.back().precision, res.curve.back().recall);

  // Smoke check: the attack must actually run, and the detector must flag
  // the large majority of spammers within their per-interval budget of the
  // campaign (i.e. early, not just eventually).
  const bool healthy =
      res.total_spam_requests > 0 &&
      res.spammers_detected * 10 >= res.spammers_total * 9 &&
      res.mean_time_to_detection <=
          2.0 * cfg.requests_per_spammer_per_interval;
  if (!healthy) {
    std::printf("FAIL: early-detection headline regressed\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
