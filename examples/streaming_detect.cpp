// Continuous detection over a live event stream (paper §III, §V).
//
// An OSN does not hand Rejecto a frozen graph: friend requests,
// acceptances, rejections, and account removals arrive continuously. This
// example feeds a churned event stream (duplicates, reordering,
// accept-after-reject flips, node removals) into engine::EpochDetector,
// which absorbs events into a stream::DeltaGraph overlay, compacts it into
// fresh CSRs as it grows, and re-runs the full iterative pipeline every
// `events_per_epoch` events — warm-starting each epoch's MAAR sweep from
// the previous epoch's cut.
//
// Self-checking: exits nonzero if the final epoch's precision regresses or
// the streamed graph diverges from batch-building the same events.
//
// Build & run:  cmake --build build && ./build/examples/streaming_detect
#include <cstdio>

#include "engine/epoch_detector.h"
#include "gen/holme_kim.h"
#include "metrics/classification.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "util/flags.h"

int main() {
  using namespace rejecto;

  // The paper's attack overlaid on an organic graph, then serialized as an
  // adversarially messy event stream.
  util::Rng rng(util::ExperimentSeed());
  const auto legit = gen::HolmeKim(
      {.num_nodes = 2'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);
  sim::ScenarioConfig cfg;
  cfg.seed = util::ExperimentSeed() + 1;
  cfg.num_fakes = 400;
  const auto scenario = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(23);
  const auto seeds = scenario.SampleSeeds(20, 8, seed_rng);
  sim::ChurnConfig churn;
  churn.seed = util::ExperimentSeed() + 2;
  const auto log = sim::GenerateChurnLog(scenario.log, churn);

  engine::EpochConfig ecfg;
  ecfg.detect.target_detections = cfg.num_fakes;
  ecfg.detect.maar.seed = 31;
  ecfg.detect.maar.num_threads = util::ThreadCount();  // REJECTO_THREADS
  ecfg.events_per_epoch = log.NumEvents() / 3 + 1;     // ~3 epochs
  engine::EpochDetector detector(log.NumNodes(), seeds, ecfg);

  std::printf("streaming %zu events over %u accounts...\n\n",
              log.NumEvents(), log.NumNodes());
  detector.IngestAll(log.Events());
  detector.RunEpoch();  // drain the tail

  for (const auto& e : detector.History()) {
    std::printf(
        "epoch %d (%s): %llu events (%llu no-op), %llu compactions, "
        "ingest %.3fs, detect %.3fs, %zu flagged, %d rounds, cut ratios:",
        e.epoch, e.warm_started ? "warm" : "cold",
        static_cast<unsigned long long>(e.events_absorbed),
        static_cast<unsigned long long>(e.events_noop),
        static_cast<unsigned long long>(e.compactions),
        e.ingest_seconds, e.detect_seconds, e.num_detected, e.rounds);
    for (double r : e.round_ratios) std::printf(" %.4f", r);
    std::printf("\n");
  }

  // Divergence guard: the streamed graph must equal batch construction.
  if (detector.Graph().Graph() != log.BuildAugmentedGraph()) {
    std::printf("\nFAIL: streamed graph diverged from batch construction\n");
    return 1;
  }

  const auto cm = metrics::EvaluateDetection(scenario.is_fake,
                                             detector.LastResult().detected);
  std::printf("\nfinal epoch: precision %.3f, recall %.3f\n", cm.Precision(),
              cm.Recall());
  std::printf(
      "Expected: later epochs warm-start from the previous cut and finish"
      " with far fewer KL runs; the final precision stays near-perfect.\n");
  if (cm.Precision() < 0.9) {
    std::printf("FAIL: streaming detection precision regressed below 0.9\n");
    return 1;
  }
  return 0;
}
