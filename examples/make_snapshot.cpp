// Text-to-binary snapshot converter (graph/snapshot.h).
//
// Usage:
//   make_snapshot <friendships.txt> <rejections.txt> <out.snap>
//                 [--layout=identity|bfs] [--format=rjsnap01|rjsnap02]
//                 [--compress-block-rows=N]
//
// Parses the text edge lists once (the slow path), optionally reorders the
// vertices with the locality-preserving BFS layout, and writes the
// checksummed snapshot. The default format stays RJSNAP01 (plain CSR, so
// existing goldens and scripts are untouched); --format=rjsnap02 writes the
// delta+varint compressed format that CompressedGraphView consumes straight
// off the mmap — pair it with --layout=bfs, which is what makes the deltas
// small. --compress-block-rows sets the v2 block span (64-256 rows, default
// 128; ignored for v1). Later runs load the snapshot in milliseconds
// instead of re-parsing the text (see the snapshot_load vs text_load
// records in BENCH_maar.json). The snapshot stores laid-out ids plus the
// permutation, so detection results reported from it can always be
// translated back to the dense text-intern ids.
//
// With no arguments, runs a self-checking demo: generates a small scenario,
// saves it with the BFS layout to a temp file, reloads, and verifies the
// round-trip is exact.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "gen/holme_kim.h"
#include "graph/io.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace rejecto;

int RunDemo() {
  std::fprintf(stderr,
               "no input files given; running the built-in round-trip demo "
               "(see the header comment for real usage)\n");
  util::Rng rng(7);
  const auto legit = gen::HolmeKim(
      {.num_nodes = 3'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);
  sim::ScenarioConfig attack;
  attack.num_fakes = 300;
  const auto scenario = sim::BuildScenario(legit, attack);

  const auto path =
      (std::filesystem::temp_directory_path() / "make_snapshot_demo.snap")
          .string();
  const graph::Layout layout = graph::SaveSnapshotWithPolicy(
      path, scenario.graph, graph::LayoutPolicy::kBfs);
  const graph::Snapshot snap = graph::LoadSnapshot(path);
  std::filesystem::remove(path);

  const bool ok =
      snap.graph == graph::ApplyLayout(scenario.graph, layout) &&
      snap.layout == layout;
  std::fprintf(stderr, "demo: %u users round-tripped through %s: %s\n",
               scenario.graph.NumNodes(), path.c_str(),
               ok ? "exact" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rejecto;
  if (argc < 2) return RunDemo();
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <friendships.txt> <rejections.txt> <out.snap> "
                 "[--layout=identity|bfs] [--format=rjsnap01|rjsnap02] "
                 "[--compress-block-rows=N]\n",
                 argv[0]);
    return 2;
  }

  graph::LayoutPolicy policy = graph::LayoutPolicy::kIdentity;
  graph::SnapshotOptions options;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string layout_prefix = "--layout=";
    const std::string format_prefix = "--format=";
    const std::string rows_prefix = "--compress-block-rows=";
    if (arg.rfind(layout_prefix, 0) == 0) {
      try {
        policy = graph::ParseLayoutPolicy(arg.substr(layout_prefix.size()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (arg.rfind(format_prefix, 0) == 0) {
      const std::string value = arg.substr(format_prefix.size());
      if (value == "rjsnap01") {
        options.format = graph::SnapshotFormat::kRjsnap01;
      } else if (value == "rjsnap02") {
        options.format = graph::SnapshotFormat::kRjsnap02;
      } else {
        std::fprintf(stderr, "unknown snapshot format: %s\n", value.c_str());
        return 2;
      }
    } else if (arg.rfind(rows_prefix, 0) == 0) {
      const long rows = std::atol(arg.substr(rows_prefix.size()).c_str());
      if (rows < 64 || rows > 256) {
        std::fprintf(stderr, "--compress-block-rows must be in [64, 256]\n");
        return 2;
      }
      options.block_rows = static_cast<std::uint32_t>(rows);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    util::WallTimer load_timer;
    const auto loaded = graph::LoadAugmentedGraph(argv[1], argv[2]);
    const double load_s = load_timer.Seconds();
    std::fprintf(stderr,
                 "parsed %u users, %llu friendships, %llu rejections in "
                 "%.3fs\n",
                 loaded.graph.NumNodes(),
                 static_cast<unsigned long long>(
                     loaded.graph.Friendships().NumEdges()),
                 static_cast<unsigned long long>(
                     loaded.graph.Rejections().NumArcs()),
                 load_s);

    util::WallTimer save_timer;
    graph::SaveSnapshotWithPolicy(argv[3], loaded.graph, policy, options);
    const double save_s = save_timer.Seconds();

    // Reload and verify before declaring success: a snapshot that cannot
    // round-trip is worse than no snapshot.
    util::WallTimer reload_timer;
    const graph::Snapshot snap = graph::LoadSnapshot(argv[3]);
    const double reload_s = reload_timer.Seconds();
    const graph::AugmentedGraph expect =
        snap.layout.IsIdentity()
            ? loaded.graph
            : graph::ApplyLayout(loaded.graph, snap.layout);
    if (snap.graph != expect) {
      std::fprintf(stderr, "error: snapshot round-trip mismatch on %s\n",
                   argv[3]);
      return 1;
    }
    std::fprintf(stderr,
                 "wrote %s (layout=%s, format=%s) in %.3fs; verified reload "
                 "in %.3fs (%.1fx faster than the text parse)\n",
                 argv[3], graph::LayoutPolicyName(policy),
                 options.format == graph::SnapshotFormat::kRjsnap02
                     ? "rjsnap02"
                     : "rjsnap01",
                 save_s, reload_s,
                 load_s / (reload_s > 0 ? reload_s : 1e-9));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
