// Text-to-binary snapshot converter (graph/snapshot.h).
//
// Usage:
//   make_snapshot <friendships.txt> <rejections.txt> <out.snap>
//                 [--layout=identity|bfs]
//
// Parses the text edge lists once (the slow path), optionally reorders the
// vertices with the locality-preserving BFS layout, and writes the
// checksummed RJSNAP01 snapshot. Later runs load the snapshot in
// milliseconds instead of re-parsing the text (see the snapshot_load vs
// text_load records in BENCH_maar.json). The snapshot stores laid-out ids
// plus the permutation, so detection results reported from it can always
// be translated back to the dense text-intern ids.
//
// With no arguments, runs a self-checking demo: generates a small scenario,
// saves it with the BFS layout to a temp file, reloads, and verifies the
// round-trip is exact.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "gen/holme_kim.h"
#include "graph/io.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace rejecto;

int RunDemo() {
  std::fprintf(stderr,
               "no input files given; running the built-in round-trip demo "
               "(see the header comment for real usage)\n");
  util::Rng rng(7);
  const auto legit = gen::HolmeKim(
      {.num_nodes = 3'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);
  sim::ScenarioConfig attack;
  attack.num_fakes = 300;
  const auto scenario = sim::BuildScenario(legit, attack);

  const auto path =
      (std::filesystem::temp_directory_path() / "make_snapshot_demo.snap")
          .string();
  const graph::Layout layout = graph::SaveSnapshotWithPolicy(
      path, scenario.graph, graph::LayoutPolicy::kBfs);
  const graph::Snapshot snap = graph::LoadSnapshot(path);
  std::filesystem::remove(path);

  const bool ok =
      snap.graph == graph::ApplyLayout(scenario.graph, layout) &&
      snap.layout == layout;
  std::fprintf(stderr, "demo: %u users round-tripped through %s: %s\n",
               scenario.graph.NumNodes(), path.c_str(),
               ok ? "exact" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rejecto;
  if (argc < 2) return RunDemo();
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <friendships.txt> <rejections.txt> <out.snap> "
                 "[--layout=identity|bfs]\n",
                 argv[0]);
    return 2;
  }

  graph::LayoutPolicy policy = graph::LayoutPolicy::kIdentity;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--layout=";
    if (arg.rfind(prefix, 0) == 0) {
      try {
        policy = graph::ParseLayoutPolicy(arg.substr(prefix.size()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    util::WallTimer load_timer;
    const auto loaded = graph::LoadAugmentedGraph(argv[1], argv[2]);
    const double load_s = load_timer.Seconds();
    std::fprintf(stderr,
                 "parsed %u users, %llu friendships, %llu rejections in "
                 "%.3fs\n",
                 loaded.graph.NumNodes(),
                 static_cast<unsigned long long>(
                     loaded.graph.Friendships().NumEdges()),
                 static_cast<unsigned long long>(
                     loaded.graph.Rejections().NumArcs()),
                 load_s);

    util::WallTimer save_timer;
    graph::SaveSnapshotWithPolicy(argv[3], loaded.graph, policy);
    const double save_s = save_timer.Seconds();

    // Reload and verify before declaring success: a snapshot that cannot
    // round-trip is worse than no snapshot.
    util::WallTimer reload_timer;
    const graph::Snapshot snap = graph::LoadSnapshot(argv[3]);
    const double reload_s = reload_timer.Seconds();
    const graph::AugmentedGraph expect =
        snap.layout.IsIdentity()
            ? loaded.graph
            : graph::ApplyLayout(loaded.graph, snap.layout);
    if (snap.graph != expect) {
      std::fprintf(stderr, "error: snapshot round-trip mismatch on %s\n",
                   argv[3]);
      return 1;
    }
    std::fprintf(stderr,
                 "wrote %s (layout=%s) in %.3fs; verified reload in %.3fs "
                 "(%.1fx faster than the text parse)\n",
                 argv[3], graph::LayoutPolicyName(policy), save_s, reload_s,
                 load_s / (reload_s > 0 ? reload_s : 1e-9));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
