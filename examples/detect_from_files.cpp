// File-driven detection: the adoptable entry point for real data.
//
// Usage:
//   detect_from_files <friendships.txt> <rejections.txt> <estimated_fakes>
//                     [legit_seed_ids...]
//
// friendships.txt: one undirected "u v" pair per line ('#' comments OK).
// rejections.txt:  one directed "rejector rejected_sender" pair per line.
// estimated_fakes: the OSN's estimate of the fake population (§IV-E); the
//                  detector stops once that many accounts are flagged.
// legit_seed_ids:  optional manually-verified legitimate users (original
//                  file ids), pinned per §IV-F.
//
// Output: one flagged account id (original file id) per line on stdout;
// diagnostics on stderr. With no arguments, runs on a small built-in demo.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "detect/iterative.h"
#include "gen/holme_kim.h"
#include "graph/io.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace rejecto;

int RunDemo() {
  std::fprintf(stderr,
               "no input files given; running the built-in demo "
               "(see --help in the header comment for real usage)\n");
  util::Rng rng(1);
  const auto legit = gen::HolmeKim(
      {.num_nodes = 2'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);
  sim::ScenarioConfig attack;
  attack.num_fakes = 200;
  const auto scenario = sim::BuildScenario(legit, attack);
  util::Rng seed_rng(2);
  const auto seeds = scenario.SampleSeeds(20, 5, seed_rng);
  detect::IterativeConfig cfg;
  cfg.target_detections = attack.num_fakes;
  cfg.maar.num_threads = util::ThreadCount();
  const auto result =
      detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
  std::fprintf(stderr, "demo: flagged %zu accounts (%u fakes injected)\n",
               result.detected.size(), attack.num_fakes);
  for (graph::NodeId v : result.detected) std::printf("%u\n", v);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rejecto;
  if (argc < 2) return RunDemo();
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <friendships.txt> <rejections.txt> "
                 "<estimated_fakes> [legit_seed_ids...]\n",
                 argv[0]);
    return 2;
  }

  try {
    const auto loaded = graph::LoadAugmentedGraph(argv[1], argv[2]);
    std::fprintf(stderr, "loaded %u users, %llu friendships, %llu rejections\n",
                 loaded.graph.NumNodes(),
                 static_cast<unsigned long long>(
                     loaded.graph.Friendships().NumEdges()),
                 static_cast<unsigned long long>(
                     loaded.graph.Rejections().NumArcs()));

    detect::Seeds seeds;
    for (int i = 4; i < argc; ++i) {
      const std::uint64_t raw = std::stoull(argv[i]);
      const auto it = loaded.dense_id.find(raw);
      if (it == loaded.dense_id.end()) {
        std::fprintf(stderr, "seed id %llu not present in the graph\n",
                     static_cast<unsigned long long>(raw));
        return 2;
      }
      seeds.legit.push_back(it->second);
    }

    detect::IterativeConfig cfg;
    cfg.target_detections = std::stoull(argv[3]);
    cfg.maar.num_threads = util::ThreadCount();  // REJECTO_THREADS, 0=auto
    const auto result =
        detect::DetectFriendSpammers(loaded.graph, seeds, cfg);

    std::fprintf(stderr,
                 "flagged %zu accounts across %zu round(s) in %.3fs "
                 "(%llu KL runs on %d thread(s))\n",
                 result.detected.size(), result.rounds.size(),
                 result.total_seconds,
                 static_cast<unsigned long long>(result.total_kl_runs),
                 result.threads_used);
    for (const auto& round : result.rounds) {
      std::fprintf(stderr,
                   "  round: %zu accounts, ratio %.4f, acceptance %.4f\n",
                   round.detected.size(), round.ratio,
                   round.acceptance_rate);
    }
    for (graph::NodeId v : result.detected) {
      std::printf("%llu\n",
                  static_cast<unsigned long long>(loaded.original_id[v]));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
