// Quickstart: the 60-second tour of the Rejecto public API.
//
//   1. Generate a legitimate social graph (Holme–Kim, Facebook-like).
//   2. Overlay a friend-spam attack (sim::BuildScenario).
//   3. Run the full Rejecto pipeline (detect::DetectFriendSpammers).
//   4. Score the detection against ground truth.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "detect/iterative.h"
#include "gen/holme_kim.h"
#include "graph/layout.h"
#include "metrics/classification.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/rng.h"

int main() {
  using namespace rejecto;

  // 1. A 5K-user OSN with realistic clustering.
  util::Rng rng(42);
  const auto legit_graph = gen::HolmeKim(
      {.num_nodes = 5'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);

  // 2. 500 fake accounts flood friend requests: 20 per account, 70% of
  //    which legitimate users reject (the paper's RenRen-measured rate).
  sim::ScenarioConfig attack;
  attack.seed = 7;
  attack.num_fakes = 500;
  attack.requests_per_spammer = 20;
  attack.spam_rejection_rate = 0.7;
  const sim::Scenario scenario = sim::BuildScenario(legit_graph, attack);
  std::printf("OSN: %u users, %llu friendships, %llu rejections\n",
              scenario.NumNodes(),
              static_cast<unsigned long long>(
                  scenario.graph.Friendships().NumEdges()),
              static_cast<unsigned long long>(
                  scenario.graph.Rejections().NumArcs()));

  // 3. Rejecto: a handful of manually-verified seeds, then iterative MAAR
  //    cuts until the OSN's fake-population estimate is reached.
  util::Rng seed_rng(3);
  const detect::Seeds seeds = scenario.SampleSeeds(/*legit=*/25,
                                                   /*spammer=*/8, seed_rng);
  detect::IterativeConfig config;
  config.target_detections = attack.num_fakes;  // OSN estimate
  config.maar.num_threads = util::ThreadCount();  // REJECTO_THREADS, 0=auto
  config.maar.layout = graph::LayoutPolicyFromEnv();  // REJECTO_LAYOUT
  const detect::DetectionResult result =
      detect::DetectFriendSpammers(scenario.graph, seeds, config);

  // 4. Score.
  const auto cm = metrics::EvaluateDetection(scenario.is_fake, result.detected);
  std::printf(
      "Detected %zu accounts in %zu round(s) — %.3fs, %llu KL runs, "
      "%llu switches, %d sweep thread(s)\n",
      result.detected.size(), result.rounds.size(), result.total_seconds,
      static_cast<unsigned long long>(result.total_kl_runs),
      static_cast<unsigned long long>(result.total_switches),
      result.threads_used);
  for (const auto& round : result.rounds) {
    std::printf(
        "  round: %zu accounts, friends-to-rejections ratio %.3f, aggregate "
        "acceptance rate %.3f\n",
        round.detected.size(), round.ratio, round.acceptance_rate);
  }
  std::printf("precision %.4f, recall %.4f\n", cm.Precision(), cm.Recall());
  return cm.Precision() > 0.9 ? 0 : 1;
}
