// Distributed detection over a real transport (paper §V scale-out).
//
// The master shards the augmented graph across N workers and runs the full
// iterative MAAR pipeline with every fetch/update crossing the Transport
// boundary as RJNET001 frames. Three backends, same detection bits:
//
//   --transport=loopback   in-process shards, no frames (the baseline)
//   --transport=simnet     deterministic simulated network with fault
//                          matrices (drop/duplicate/corrupt/reorder)
//   --transport=socket     real worker processes over UNIX-domain sockets
//                          (forked with --spawn=N, or external via
//                          --endpoints=...)
//
// Self-checking: always runs the loopback baseline first and exits nonzero
// if the wire-backed detection diverges by a single bit — including under
// --flaky (10% drops) and --kill-one (worker 1 hard-exits mid-run and the
// master fails over from lineage).
//
// A worker process is this same binary:
//   ./build/examples/dist_detect --worker --listen=unix:/tmp/w0.sock
//
// Env knobs: REJECTO_TRANSPORT overrides the default backend;
// REJECTO_SEED reseeds the world.
//
// Build & run:  cmake --build build && ./build/examples/dist_detect
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "detect/iterative.h"
#include "engine/cluster.h"
#include "engine/dist_detector.h"
#include "engine/net_worker.h"
#include "gen/holme_kim.h"
#include "metrics/classification.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace rejecto;

struct Options {
  bool worker = false;
  std::string listen;
  net::TransportKind transport = net::TransportKindFromEnv();
  int spawn = 3;
  std::vector<std::string> endpoints;
  bool flaky = false;
  bool kill_one = false;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return arg.compare(0, std::strlen(prefix), prefix) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (arg == "--worker") {
      o.worker = true;
    } else if (const char* v = value("--listen=")) {
      o.listen = v;
    } else if (const char* v = value("--transport=")) {
      o.transport = net::ParseTransportKind(v);
    } else if (const char* v = value("--spawn=")) {
      o.spawn = std::atoi(v);
    } else if (const char* v = value("--endpoints=")) {
      o.endpoints = SplitCsv(v);
    } else if (arg == "--flaky") {
      o.flaky = true;
    } else if (arg == "--kill-one") {
      o.kill_one = true;
    } else {
      std::fprintf(stderr,
                   "usage: dist_detect [--transport=loopback|simnet|socket]"
                   " [--spawn=N | --endpoints=ep,ep,...] [--flaky]"
                   " [--kill-one]\n"
                   "       dist_detect --worker --listen=<endpoint>\n");
      std::exit(2);
    }
  }
  return o;
}

void PrintIo(const char* tag, const engine::IoStats& io) {
  std::printf(
      "%-9s fetches %-6llu nodes %-8llu retries %-4llu failovers %-3llu "
      "hit-rate %.2f\n",
      tag, static_cast<unsigned long long>(io.fetch_requests),
      static_cast<unsigned long long>(io.nodes_fetched),
      static_cast<unsigned long long>(io.fetch_retries),
      static_cast<unsigned long long>(io.shard_failovers), io.HitRate());
  std::printf(
      "%-9s wire: %llu/%llu frames out/in, %llu/%llu bytes, "
      "%llu timeouts, %llu reconnects, %llu corrupt, %llu dropped\n",
      "", static_cast<unsigned long long>(io.wire.frames_sent),
      static_cast<unsigned long long>(io.wire.frames_received),
      static_cast<unsigned long long>(io.wire.bytes_sent),
      static_cast<unsigned long long>(io.wire.bytes_received),
      static_cast<unsigned long long>(io.wire.timeouts),
      static_cast<unsigned long long>(io.wire.reconnects),
      static_cast<unsigned long long>(io.wire.corrupt_frames),
      static_cast<unsigned long long>(io.wire.dropped_frames));
}

bool SameDetection(const engine::DistDetectionResult& a,
                   const engine::DistDetectionResult& b) {
  if (a.detection.detected != b.detection.detected) return false;
  if (a.detection.rounds.size() != b.detection.rounds.size()) return false;
  for (std::size_t r = 0; r < a.detection.rounds.size(); ++r) {
    if (a.detection.rounds[r].detected != b.detection.rounds[r].detected ||
        a.detection.rounds[r].ratio != b.detection.rounds[r].ratio) {
      return false;
    }
  }
  return true;
}

pid_t SpawnWorkerProcess(const std::string& endpoint, bool die_mid_run) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    net::WorkerOptions wopts;
    if (die_mid_run) wopts.die_after_frames = 5;
    int rc = 3;
    try {
      rc = engine::RunShardWorker(endpoint, wopts);
    } catch (...) {
      rc = 2;
    }
    std::_Exit(rc);
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Parse(argc, argv);

  if (opts.worker) {
    if (opts.listen.empty()) {
      std::fprintf(stderr, "--worker requires --listen=<endpoint>\n");
      return 2;
    }
    return engine::RunShardWorker(opts.listen);
  }

  // The attack world: an organic Holme-Kim graph with an injected fake
  // region whose rejection edges the detector exploits.
  util::Rng rng(util::ExperimentSeed());
  const auto legit = gen::HolmeKim(
      {.num_nodes = 1'000, .edges_per_node = 4, .triad_probability = 0.4},
      rng);
  sim::ScenarioConfig scfg;
  scfg.seed = util::ExperimentSeed() + 1;
  scfg.num_fakes = 200;
  const auto scenario = sim::BuildScenario(legit, scfg);
  util::Rng seed_rng(23);
  const auto seeds = scenario.SampleSeeds(16, 6, seed_rng);
  detect::IterativeConfig dcfg;
  dcfg.target_detections = scfg.num_fakes;
  dcfg.maar.seed = 31;

  const std::uint32_t workers =
      opts.endpoints.empty() ? static_cast<std::uint32_t>(opts.spawn)
                             : static_cast<std::uint32_t>(opts.endpoints.size());

  // Baseline: loopback shards, zero frames. Everything else must match it.
  engine::Cluster loop({.num_workers = workers,
                        .prefetch_batch = 64,
                        .buffer_capacity = 1024});
  const auto baseline =
      engine::DetectFriendSpammersDistributed(scenario.graph, seeds, dcfg, loop);
  std::printf("loopback baseline: %zu flagged in %d rounds\n",
              baseline.detection.detected.size(),
              static_cast<int>(baseline.detection.rounds.size()));
  PrintIo("loopback", baseline.io);

  if (opts.transport == net::TransportKind::kLoopback) {
    const auto cm = metrics::EvaluateDetection(scenario.is_fake,
                                               baseline.detection.detected);
    std::printf("precision %.3f recall %.3f\n", cm.Precision(), cm.Recall());
    return 0;
  }

  engine::ClusterConfig cfg{.num_workers = workers,
                            .prefetch_batch = 64,
                            .buffer_capacity = 1024};
  cfg.transport = opts.transport;

  std::vector<pid_t> spawned;
  if (opts.transport == net::TransportKind::kSimNet) {
    cfg.sim.seed = util::ExperimentSeed() + 7;
    if (opts.flaky) {
      cfg.sim.default_link.drop_p = 0.10;
      cfg.sim.default_link.jitter_us = 20.0;
    }
  } else {
    cfg.socket.endpoints = opts.endpoints;
    if (cfg.socket.endpoints.empty()) {
      for (std::uint32_t i = 0; i < workers; ++i) {
        cfg.socket.endpoints.push_back(
            "unix:/tmp/rejecto_dist_" + std::to_string(::getpid()) + "_" +
            std::to_string(i) + ".sock");
        spawned.push_back(SpawnWorkerProcess(cfg.socket.endpoints.back(),
                                             opts.kill_one && i == 1));
      }
    }
    // Real sockets on loaded CI boxes: generous deadlines, retries cover it.
    cfg.fetch.attempt_timeout_us = 2'000'000.0;
    cfg.fetch.publish_timeout_us = 5'000'000.0;
  }

  int rc = 0;
  {
    engine::Cluster wired(cfg);
    // --kill-one on simnet: the worker "crashes" via the engine failpoint
    // instead of a process exit.
    util::ScopedFailpoint crash(
        "engine/worker_crash",
        opts.kill_one && opts.transport == net::TransportKind::kSimNet
            ? util::FailpointPolicy::OnNth(40)
            : util::FailpointPolicy::Off());
    const auto wire_result = engine::DetectFriendSpammersDistributed(
        scenario.graph, seeds, dcfg, wired);

    std::printf("\n%s: %zu flagged in %d rounds, %u dead worker(s)\n",
                net::TransportKindName(opts.transport),
                wire_result.detection.detected.size(),
                static_cast<int>(wire_result.detection.rounds.size()),
                wired.NumDeadWorkers());
    PrintIo(net::TransportKindName(opts.transport), wire_result.io);

    if (!SameDetection(wire_result, baseline)) {
      std::printf("\nFAIL: wire-backed detection diverged from loopback\n");
      rc = 1;
    } else if (wire_result.io.wire.frames_sent == 0) {
      std::printf("\nFAIL: no frames crossed the wire\n");
      rc = 1;
    } else if (opts.kill_one && wired.NumDeadWorkers() != 1) {
      std::printf("\nFAIL: --kill-one but no worker died\n");
      rc = 1;
    } else {
      std::printf("\nOK: detection over %s is bit-identical to loopback\n",
                  net::TransportKindName(opts.transport));
    }
    wired.ShutdownTransport();
  }

  for (std::size_t i = 0; i < spawned.size(); ++i) {
    int status = 0;
    ::waitpid(spawned[i], &status, 0);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    const int expect = (opts.kill_one && i == 1) ? 137 : 0;
    if (code != expect) {
      std::printf("FAIL: worker %zu exited %d (expected %d)\n", i, code,
                  expect);
      rc = 1;
    }
  }
  return rc;
}
