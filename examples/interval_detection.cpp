// Compromised-account detection via time-sharded request logs (paper §VII).
//
// A compromised account behaves legitimately for a long time, then — once
// hijacked — starts sending friend spam. Running Rejecto on the whole
// history dilutes the post-compromise signal with years of organic
// behaviour; the paper's deployment note suggests sharding requests and
// rejections by time interval and running Rejecto on the augmented graph
// of each interval. sim::BuildTemporalScenario models that: three
// intervals of organic churn with a 200-account block compromised before
// the last one.
//
// Each interval is driven through the streaming engine::EpochDetector (the
// interval's request log replayed as a mutation stream, then one detection
// epoch) with warm starts off, so the results are bit-identical to running
// the batch pipeline on the interval's graph — pinned by
// tests/integration_test.cpp (IntervalDetectionUnchangedUnderEpochDetector).
//
// Build & run:  cmake --build build && ./build/examples/interval_detection
#include <cstdio>

#include "detect/iterative.h"
#include "engine/epoch_detector.h"
#include "metrics/classification.h"
#include "sim/stream_feed.h"
#include "sim/temporal.h"
#include "util/flags.h"
#include "util/rng.h"

int main() {
  using namespace rejecto;

  sim::TemporalConfig cfg;
  cfg.seed = 42;
  cfg.num_users = 4'000;
  cfg.num_intervals = 3;
  cfg.num_compromised = 200;
  cfg.compromise_interval = 2;
  const auto scenario = sim::BuildTemporalScenario(cfg);

  std::printf("%u accounts; %u compromised before interval %d\n\n",
              cfg.num_users, cfg.num_compromised, cfg.compromise_interval);

  for (int interval = 0; interval < cfg.num_intervals; ++interval) {
    const auto& log = scenario.intervals[static_cast<std::size_t>(interval)];

    // A few known-good accounts pin the KL search away from legit-region
    // cuts (SIV-F); termination is the acceptance-rate threshold (SIV-E) —
    // there is no fake-population estimate for compromised accounts.
    detect::Seeds seeds;
    util::Rng s_rng(900 + static_cast<std::uint64_t>(interval));
    for (std::uint64_t v : s_rng.SampleWithoutReplacement(cfg.num_users, 40)) {
      if (!scenario.is_compromised[static_cast<std::size_t>(v)]) {
        seeds.legit.push_back(static_cast<graph::NodeId>(v));
      }
    }
    engine::EpochConfig ecfg;
    ecfg.detect.target_detections = 0;
    ecfg.detect.acceptance_rate_threshold = 0.40;
    // Compromised accounts are a small minority; the provider encodes that
    // prior as a cap on the suspicious region, which rules out spurious
    // wide cuts in otherwise-clean intervals.
    ecfg.detect.maar.max_region_fraction = 0.2;
    ecfg.detect.maar.seed = 31;
    ecfg.detect.maar.num_threads = util::ThreadCount();  // REJECTO_THREADS
    ecfg.warm_start = false;  // keep batch-identical results per interval
    ecfg.events_per_epoch = 0;  // one explicit epoch per interval

    // Replay the interval's requests as a mutation stream, then detect.
    engine::EpochDetector detector(cfg.num_users, seeds, ecfg);
    detector.IngestAll(sim::ToMutationLog(log).Events());
    detector.RunEpoch();
    const auto& result = detector.LastResult();

    const auto cm =
        metrics::EvaluateDetection(scenario.is_compromised, result.detected);
    std::printf(
        "interval %d (%s): %llu requests, flagged %zu accounts, precision "
        "%.3f, recall %.3f\n",
        interval,
        scenario.IntervalIsPostCompromise(interval, cfg)
            ? "post-compromise"
            : "pre-compromise ",
        static_cast<unsigned long long>(log.NumRequests()),
        result.detected.size(), cm.Precision(), cm.Recall());
  }
  std::printf(
      "\nExpected: no accounts flagged in the clean intervals; the"
      " compromised block surfaces in interval 2. False positives are"
      " largely the careless users who accepted the spam - the soft"
      " responses of SVII (CAPTCHA, rate limits) tolerate them.\n");
  return 0;
}
