// Scenario exporter: produce a synthetic friend-spam workload as the three
// text files the file-driven tooling consumes.
//
// Usage:
//   generate_scenario <out_dir> [num_legit] [num_fakes] [seed]
//
// Writes into <out_dir>:
//   friendships.txt  — undirected OSN links ("u v" per line)
//   rejections.txt   — directed rejections ("rejector rejected" per line)
//   requests.txt     — the full request log (RequestLog format)
//   ground_truth.txt — the fake account ids, one per line
//
// Round trip:
//   ./generate_scenario /tmp/demo 5000 500
//   ./detect_from_files /tmp/demo/friendships.txt /tmp/demo/rejections.txt 500
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "gen/holme_kim.h"
#include "sim/scenario.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rejecto;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <out_dir> [num_legit] [num_fakes] [seed]\n",
                 argv[0]);
    return 2;
  }
  const std::string out_dir = argv[1];
  const auto num_legit =
      static_cast<graph::NodeId>(argc > 2 ? std::atoll(argv[2]) : 5'000);
  const auto num_fakes =
      static_cast<graph::NodeId>(argc > 3 ? std::atoll(argv[3]) : 500);
  const auto seed =
      static_cast<std::uint64_t>(argc > 4 ? std::atoll(argv[4]) : 42);

  try {
    std::filesystem::create_directories(out_dir);

    util::Rng rng(seed);
    const auto legit = gen::HolmeKim(
        {.num_nodes = num_legit, .edges_per_node = 4, .triad_probability = 0.5},
        rng);
    sim::ScenarioConfig cfg;
    cfg.seed = seed + 1;
    cfg.num_fakes = num_fakes;
    const auto scenario = sim::BuildScenario(legit, cfg);

    // friendships / rejections in the LoadAugmentedGraph format.
    {
      std::ofstream fr(out_dir + "/friendships.txt");
      fr << "# friendships: u v\n";
      for (const auto& e : scenario.graph.Friendships().Edges()) {
        fr << e.u << ' ' << e.v << '\n';
      }
      std::ofstream rej(out_dir + "/rejections.txt");
      rej << "# rejections: rejector rejected_sender\n";
      for (const auto& a : scenario.graph.Rejections().Arcs()) {
        rej << a.from << ' ' << a.to << '\n';
      }
    }
    scenario.log.Save(out_dir + "/requests.txt");
    {
      std::ofstream truth(out_dir + "/ground_truth.txt");
      truth << "# fake account ids\n";
      for (graph::NodeId v = 0; v < scenario.NumNodes(); ++v) {
        if (scenario.IsFake(v)) truth << v << '\n';
      }
    }

    std::printf(
        "wrote %s/{friendships,rejections,requests,ground_truth}.txt\n"
        "  %u users (%u legit + %u fake), %llu friendships, %llu rejections,"
        " %zu requests\n",
        out_dir.c_str(), scenario.NumNodes(), scenario.num_legit,
        scenario.num_fakes,
        static_cast<unsigned long long>(
            scenario.graph.Friendships().NumEdges()),
        static_cast<unsigned long long>(
            scenario.graph.Rejections().NumArcs()),
        scenario.log.NumRequests());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
