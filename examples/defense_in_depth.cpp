// Defense in depth (paper §II-C, §VI-D): Rejecto + SybilRank.
//
// Friend spam manufactures attack edges, which break the core assumption
// of social-graph-based Sybil defenses (few edges between the Sybil and
// honest regions). This example shows the two-layer defense: Rejecto
// detects and removes the friend spammers, then SybilRank cleanly ranks
// the remaining (quiet) Sybils to the bottom.
//
// Build & run:  cmake --build build && ./build/examples/defense_in_depth
#include <cstdio>

#include "baseline/sybilrank.h"
#include "detect/iterative.h"
#include "gen/holme_kim.h"
#include "graph/subgraph.h"
#include "metrics/ranking.h"
#include "sim/scenario.h"
#include "util/flags.h"

namespace {

using namespace rejecto;

double RankingQuality(const graph::AugmentedGraph& g,
                      const std::vector<char>& is_fake,
                      const std::vector<graph::NodeId>& trust_seeds) {
  baseline::SybilRankConfig cfg;
  cfg.trust_seeds = trust_seeds;
  const auto scores = baseline::RunSybilRank(g.Friendships(), cfg);
  return metrics::AreaUnderRoc(scores, is_fake);
}

}  // namespace

int main() {
  util::Rng rng(42);
  const auto legit_graph = gen::HolmeKim(
      {.num_nodes = 4'000, .edges_per_node = 4, .triad_probability = 0.5},
      rng);

  // 1000 Sybils; only half spam (the other half lie low with few attack
  // edges — classic SybilRank prey, but shielded by the spammers' edges).
  sim::ScenarioConfig attack;
  attack.seed = 9;
  attack.num_fakes = 1'000;
  attack.spamming_fraction = 0.5;
  attack.requests_per_spammer = 50;
  const auto scenario = sim::BuildScenario(legit_graph, attack);

  util::Rng seed_rng(5);
  const auto seeds = scenario.SampleSeeds(40, 12, seed_rng);

  const double auc_before =
      RankingQuality(scenario.graph, scenario.is_fake, seeds.legit);
  std::printf("SybilRank alone, polluted graph:      AUC = %.4f\n",
              auc_before);

  // Layer 1: Rejecto removes the friend spammers and their edges.
  detect::IterativeConfig cfg;
  cfg.target_detections = attack.num_fakes / 2;
  cfg.maar.num_threads = util::ThreadCount();  // REJECTO_THREADS, 0=auto
  const auto detection =
      detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
  std::printf("Rejecto removed %zu friend spammers in %zu round(s)\n",
              detection.detected.size(), detection.rounds.size());

  std::vector<char> keep(scenario.NumNodes(), 1);
  for (graph::NodeId v : detection.detected) keep[v] = 0;
  const auto residual = graph::InducedSubgraph(scenario.graph, keep);

  // Remap ground truth and trust seeds onto the residual graph.
  std::vector<char> residual_fake(residual.parent_id.size(), 0);
  for (std::size_t nid = 0; nid < residual.parent_id.size(); ++nid) {
    residual_fake[nid] = scenario.is_fake[residual.parent_id[nid]];
  }
  std::vector<graph::NodeId> new_id(scenario.NumNodes(), graph::kInvalidNode);
  for (graph::NodeId nid = 0;
       nid < static_cast<graph::NodeId>(residual.parent_id.size()); ++nid) {
    new_id[residual.parent_id[nid]] = nid;
  }
  std::vector<graph::NodeId> residual_seeds;
  for (graph::NodeId s : seeds.legit) {
    if (new_id[s] != graph::kInvalidNode) residual_seeds.push_back(new_id[s]);
  }

  // Layer 2: SybilRank on the sterilized graph.
  const double auc_after =
      RankingQuality(residual.graph, residual_fake, residual_seeds);
  std::printf("SybilRank after Rejecto sterilizes:   AUC = %.4f\n", auc_after);
  std::printf("Improvement: +%.4f (paper Fig 16: AUC -> ~1 as spammers are"
              " removed)\n",
              auc_after - auc_before);
  return auc_after > auc_before ? 0 : 1;
}
