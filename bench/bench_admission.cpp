// Serving-tier mixed-load benchmark for serve::AdmissionService.
//
// One run per (reclaim mode, reader count) configuration: the writer
// ingests the attack event stream (auto-cutting epochs every
// events_per_epoch events, detection off the hot path) while N reader
// threads decide continuously against whichever epoch is published. After
// ingest drains and a final forced epoch lands, readers run on until the
// measurement window closes. Appends one "admission_<reclaim>_r<N>" record
// per configuration with combined decisions/sec, writer ingest events/sec,
// the mean epoch-publish stall (the only time ingest pauses), and merged
// reader p50/p95/p99 decision latency.
//
// Divergence guard: every reader samples decisions (sender, verdict, score,
// epoch id) into a bounded reservoir; after the run a serial
// engine::EpochDetector replay of the same stream rebuilds every published
// epoch's scoring baseline and recomputes each sampled decision. One
// mismatch aborts the whole binary before anything is appended — the bench
// is only allowed to report numbers for a service that serves the
// serial-identical answer.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "engine/epoch_detector.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "harness.h"
#include "serve/admission.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "util/flags.h"
#include "util/latency.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace rejecto;

struct Sampled {
  graph::NodeId sender = 0;
  serve::Decision decision;
};

struct RunResult {
  bench::AdmissionBenchRecord record;
  std::vector<std::vector<Sampled>> sampled;  // per reader
};

struct BenchWorkload {
  stream::MutationLog log;
  detect::Seeds seeds;
  engine::EpochConfig epoch;
};

BenchWorkload MakeWorkload(const bench::ExperimentContext& ctx) {
  util::Rng rng(ctx.seed + 77);
  const graph::NodeId users = ctx.fast ? 2'000 : 20'000;
  const auto legit = gen::ErdosRenyi(
      {.num_nodes = users, .num_edges = static_cast<graph::EdgeId>(users) * 8},
      rng);
  sim::ScenarioConfig scfg;
  scfg.seed = ctx.seed + 5;
  scfg.num_fakes = users / 10;
  const auto scenario = sim::BuildScenario(legit, scfg);
  util::Rng seed_rng(ctx.seed + 11);
  sim::ChurnConfig churn;
  churn.seed = ctx.seed + 3;
  BenchWorkload w{sim::GenerateChurnLog(scenario.log, churn),
                  scenario.SampleSeeds(ctx.fast ? 15 : 40,
                                       ctx.fast ? 5 : 12, seed_rng),
                  {}};
  w.epoch.detect.target_detections = scfg.num_fakes;
  w.epoch.detect.maar.seed = 23;
  w.epoch.detect.maar.num_threads = static_cast<int>(util::ThreadCount());
  w.epoch.events_per_epoch = w.log.NumEvents() / 4 + 1;
  return w;
}

RunResult RunConfig(const BenchWorkload& w, serve::ReclaimMode reclaim,
                    int readers, double min_window_seconds) {
  serve::AdmissionConfig cfg;
  cfg.epoch = w.epoch;
  cfg.reclaim = reclaim;
  cfg.grey_margin = 2.0;
  serve::AdmissionService svc(
      graph::GraphBuilder(w.log.NumNodes()).BuildAugmented(), w.seeds, cfg);

  std::atomic<bool> stop{false};
  RunResult out;
  out.sampled.resize(readers);
  std::vector<util::LatencyHistogram> hists(readers);
  std::vector<std::uint64_t> decided(readers, 0);
  std::vector<std::thread> threads;
  util::WallTimer window;
  for (int r = 0; r < readers; ++r) {
    auto reader = svc.CreateReader();
    threads.emplace_back([&, r, rd = std::move(reader)]() mutable {
      util::Rng rng(r * 6151 + 13);
      const std::uint64_t n = w.log.NumNodes() + 16;
      std::uint64_t t = 0;
      auto& samples = out.sampled[r];
      samples.reserve(1 << 12);
      while (!stop.load(std::memory_order_acquire)) {
        const auto sender = static_cast<graph::NodeId>(rng.NextUInt(n));
        const serve::Decision d = rd.Decide(sender, t++);
        // Bounded reservoir for the divergence guard: every 64th decision
        // until full — cheap enough to not distort the measured rate.
        if ((t & 63) == 0 && samples.size() < (1u << 13)) {
          samples.push_back({sender, d});
        }
      }
      hists[r] = rd.Latency();
      decided[r] = rd.Decisions();
    });
  }

  util::WallTimer ingest_timer;
  for (const stream::Event& e : w.log.Events()) svc.Submit(e);
  svc.Drain();
  const double ingest_seconds = ingest_timer.Seconds();
  svc.ForceEpoch();
  // Keep the decision window open long enough for stable throughput even
  // when ingest finishes quickly.
  while (window.Seconds() < min_window_seconds) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double window_seconds = window.Seconds();

  const serve::AdmissionStats stats = svc.Stats();
  util::LatencyHistogram merged;
  std::uint64_t decisions = 0;
  for (int r = 0; r < readers; ++r) {
    merged.Merge(hists[r]);
    decisions += decided[r];
  }

  auto& rec = out.record;
  rec.bench = "bench_admission";
  rec.reclaim = serve::ReclaimModeName(reclaim);
  rec.admission =
      "admission_" + rec.reclaim + "_r" + std::to_string(readers);
  rec.readers = readers;
  rec.users = static_cast<std::int64_t>(w.log.NumNodes());
  rec.events = static_cast<std::int64_t>(stats.events_ingested);
  rec.decisions = static_cast<std::int64_t>(decisions);
  rec.epochs = static_cast<std::int64_t>(stats.epochs_published);
  rec.decisions_per_sec = static_cast<double>(decisions) / window_seconds;
  rec.ingest_events_per_sec =
      static_cast<double>(stats.events_ingested) / ingest_seconds;
  rec.epoch_publish_stall_seconds =
      stats.epochs_published > 0
          ? stats.snapshot_seconds_total /
                static_cast<double>(stats.epochs_published)
          : 0.0;
  rec.detect_seconds = stats.last_detect_seconds;
  rec.p50_ns = static_cast<std::int64_t>(merged.P50());
  rec.p95_ns = static_cast<std::int64_t>(merged.P95());
  rec.p99_ns = static_cast<std::int64_t>(merged.P99());
  return out;
}

// Serial replay of the same stream with the same epoch config; index =
// published epoch id. Mirrors AdmissionService's publication contract.
std::vector<serve::PublishedEpoch> BuildOracle(const BenchWorkload& w) {
  std::vector<serve::PublishedEpoch> epochs;
  epochs.emplace_back();  // bootstrap epoch 0: no baseline
  engine::EpochDetector det(w.log.NumNodes(), w.seeds, w.epoch);
  const auto capture = [&] {
    serve::PublishedEpoch pe;
    pe.epoch_id = epochs.size();
    pe.graph =
        std::make_shared<const graph::AugmentedGraph>(det.Graph().Graph());
    pe.has_baseline = det.HasIncrementalBaseline();
    if (pe.has_baseline) {
      pe.mask = det.IncrementalMask();
      pe.mask.resize(pe.graph->NumNodes(), 0);
      pe.k = det.IncrementalK();
    }
    epochs.push_back(std::move(pe));
  };
  for (const stream::Event& e : w.log.Events()) {
    if (det.Ingest(e) != nullptr) capture();
  }
  det.RunEpoch();
  capture();
  return epochs;
}

void DivergenceGuard(const BenchWorkload& w,
                     const std::vector<RunResult>& runs) {
  const std::vector<serve::PublishedEpoch> oracle = BuildOracle(w);
  std::uint64_t checked = 0;
  for (const RunResult& run : runs) {
    for (const auto& per_reader : run.sampled) {
      for (const Sampled& s : per_reader) {
        if (s.decision.epoch_id >= oracle.size()) {
          std::cerr << "bench_admission: DIVERGENCE: decision cites epoch "
                    << s.decision.epoch_id << " but the serial replay "
                    << "published only " << oracle.size() - 1 << "\n";
          std::abort();
        }
        const serve::Decision expect = serve::DecideAgainst(
            oracle[s.decision.epoch_id], s.sender, /*grey_margin=*/2.0);
        if (expect.verdict != s.decision.verdict ||
            expect.score != s.decision.score) {
          std::cerr << "bench_admission: DIVERGENCE: sender " << s.sender
                    << " epoch " << s.decision.epoch_id << " concurrent={"
                    << serve::VerdictName(s.decision.verdict) << ", "
                    << s.decision.score << "} serial={"
                    << serve::VerdictName(expect.verdict) << ", "
                    << expect.score << "}\n";
          std::abort();
        }
        ++checked;
      }
    }
  }
  std::cout << "divergence guard: " << checked
            << " sampled concurrent decisions reproduced serially\n";
}

}  // namespace

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();
  const BenchWorkload w = MakeWorkload(ctx);
  const double window = ctx.fast ? 0.3 : 2.0;

  struct Config {
    serve::ReclaimMode reclaim;
    int readers;
  };
  const std::vector<Config> configs =
      ctx.fast ? std::vector<Config>{{serve::ReclaimMode::kHazard, 2},
                                     {serve::ReclaimMode::kSharedPtr, 2}}
               : std::vector<Config>{{serve::ReclaimMode::kHazard, 1},
                                     {serve::ReclaimMode::kHazard, 4},
                                     {serve::ReclaimMode::kHazard, 8},
                                     {serve::ReclaimMode::kSharedPtr, 4}};

  std::vector<RunResult> runs;
  for (const Config& c : configs) {
    runs.push_back(RunConfig(w, c.reclaim, c.readers, window));
  }

  // The guard runs before anything is appended: no record is emitted for a
  // run whose concurrent answers the serial replay cannot reproduce.
  DivergenceGuard(w, runs);

  util::Table t({"reclaim", "readers", "decisions/s", "ingest ev/s",
                 "publish stall us", "p50 ns", "p95 ns", "p99 ns",
                 "epochs"});
  t.set_precision(0);
  std::vector<bench::AdmissionBenchRecord> records;
  for (const RunResult& run : runs) {
    const auto& r = run.record;
    t.AddRow({r.reclaim, static_cast<std::int64_t>(r.readers),
              r.decisions_per_sec, r.ingest_events_per_sec,
              r.epoch_publish_stall_seconds * 1e6, r.p50_ns, r.p95_ns,
              r.p99_ns, static_cast<std::int64_t>(r.epochs)});
    records.push_back(r);
  }
  ctx.Emit("bench_admission", "Admission service mixed load (record actuals)",
           t);
  bench::AppendAdmissionBenchJson(records);
  return 0;
}
