// EXTENSION (beyond the paper's figures): defense in depth with SybilLimit
// [37] — the second social-graph defense the paper names as a beneficiary
// of Rejecto's sterilization (§II-C lists [15], [19], [37]).
//
// SybilLimit bounds accepted Sybils per attack edge, so friend spam (which
// manufactures attack edges wholesale) erodes it exactly as it erodes
// SybilRank. We measure SybilLimit's ranking quality (AUC of the
// acceptance fraction) before and after Rejecto removes the spammers, at a
// reduced scale (SybilLimit needs r ≈ √m routes per node, so the full 92K
// graphs are impractical for a benchmark sweep).
#include <iostream>

#include "baseline/sybillimit.h"
#include "gen/holme_kim.h"
#include "graph/subgraph.h"
#include "harness.h"
#include "metrics/ranking.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();

  // Reduced-scale attack: 3K legit + 600 Sybils, half spamming hard.
  util::Rng grng(ctx.seed + 3);
  const auto legit = gen::HolmeKim(
      {.num_nodes = ctx.fast ? 1'000u : 3'000u,
       .edges_per_node = 4,
       .triad_probability = 0.5},
      grng);
  sim::ScenarioConfig cfg;
  cfg.seed = ctx.seed + 4;
  cfg.num_fakes = legit.NumNodes() / 5;
  cfg.spamming_fraction = 0.5;
  cfg.requests_per_spammer = 50;
  // SybilLimit admits O(log n) Sybils per attack edge, so even sparse
  // careless accepts onto the non-spamming half would dominate at this
  // scale; keep the careless channel small so the spam-manufactured edges
  // are the variable under test.
  cfg.careless_fraction = 0.02;
  const auto scenario = sim::BuildScenario(legit, cfg);

  util::Rng seed_rng(ctx.seed ^ 0x5b111417ULL);
  const auto seeds = scenario.SampleSeeds(20, 8, seed_rng);

  baseline::SybilLimitConfig sl;
  sl.seed = ctx.seed;
  sl.num_routes = static_cast<std::uint32_t>(
      2.0 * std::sqrt(static_cast<double>(
                2 * scenario.graph.Friendships().NumEdges())));
  std::vector<graph::NodeId> verifiers(seeds.legit.begin(),
                                       seeds.legit.begin() + 5);

  const auto before = baseline::RunSybilLimit(scenario.graph.Friendships(),
                                              verifiers, sl);
  const double auc_before =
      metrics::AreaUnderRoc(before.accept_fraction, scenario.is_fake);

  // Rejecto removes the spamming half; SybilLimit runs on the residual.
  auto dcfg = bench::PaperDetectorConfig(ctx, scenario.num_fakes / 2);
  const auto detection =
      detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);
  std::vector<char> keep(scenario.NumNodes(), 1);
  for (graph::NodeId v : detection.detected) keep[v] = 0;
  const auto residual = graph::InducedSubgraph(scenario.graph, keep);

  std::vector<graph::NodeId> new_id(scenario.NumNodes(), graph::kInvalidNode);
  for (graph::NodeId nid = 0;
       nid < static_cast<graph::NodeId>(residual.parent_id.size()); ++nid) {
    new_id[residual.parent_id[nid]] = nid;
  }
  std::vector<graph::NodeId> residual_verifiers;
  for (graph::NodeId v : verifiers) {
    if (new_id[v] != graph::kInvalidNode) {
      residual_verifiers.push_back(new_id[v]);
    }
  }
  std::vector<char> residual_fake(residual.parent_id.size(), 0);
  for (std::size_t nid = 0; nid < residual.parent_id.size(); ++nid) {
    residual_fake[nid] = scenario.is_fake[residual.parent_id[nid]];
  }
  const auto after = baseline::RunSybilLimit(residual.graph.Friendships(),
                                             residual_verifiers, sl);
  const double auc_after =
      metrics::AreaUnderRoc(after.accept_fraction, residual_fake);

  util::Table t({"stage", "sybillimit_auc", "routes_per_node"});
  t.set_precision(4);
  t.AddRow({std::string("polluted graph"), auc_before,
            static_cast<std::int64_t>(before.num_routes)});
  t.AddRow({std::string("after Rejecto removes spammers"), auc_after,
            static_cast<std::int64_t>(after.num_routes)});
  ctx.Emit("ext_sybillimit",
           "Extension: SybilLimit before/after Rejecto sterilization", t);
  std::cout << "\nExpected: friend spam's manufactured attack edges degrade"
               " SybilLimit; removing the spammers restores it (the SII-C"
               " defense-in-depth claim for [37]).\n";
  return 0;
}
