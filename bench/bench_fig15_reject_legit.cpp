// Figure 15: spammers rejecting legitimate users' requests —
// precision/recall vs. the number of rejections cast by fakes onto
// legitimate users (16K .. 160K), Facebook graph. The legit-onto-fake
// rejection mass is fixed at 140K (10K fakes x 20 requests x 0.7).
//
// Paper shape: Rejecto tolerates a large volume (accuracy high below
// ~120K) and then drops abruptly as the planted rejections make
// legitimate users look like spammers; VoteTrust decays almost linearly
// from the start.
#include <iostream>

#include "harness.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  // Scale the x-axis with the fake population so fast mode keeps the shape.
  const auto base = bench::PaperAttackConfig(ctx);
  const double scale = static_cast<double>(base.num_fakes) / 10'000.0;

  util::Table t({"rejections_to_legit(K)", "rejecto", "votetrust"});
  t.set_precision(4);
  for (double k_rejections :
       bench::Sweep({16, 32, 48, 64, 80, 96, 112, 128, 144, 160}, ctx)) {
    auto cfg = base;
    cfg.legit_requests_rejected_by_fakes =
        static_cast<std::uint64_t>(k_rejections * 1000.0 * scale);
    const auto scenario = sim::BuildScenario(legit, cfg);
    const auto r = bench::RunBothDetectors(scenario, ctx);
    t.AddRow({static_cast<std::int64_t>(k_rejections), r.rejecto,
              r.votetrust});
  }
  ctx.Emit("fig15",
           "Figure 15: rejections of legitimate requests by spammers"
           " (facebook)",
           t);
  std::cout << "\nShape check: Rejecto high until ~120K then an abrupt drop"
               " near the 140K legit->fake rejection mass; VoteTrust decays"
               " ~linearly.\n";
  return 0;
}
