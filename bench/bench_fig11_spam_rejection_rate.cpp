// Figure 11: precision/recall vs. rejection rate of spam requests
// (0.5 .. 0.95), Facebook graph.
//
// Paper shape: both schemes improve as legitimate users reject more spam;
// Rejecto detects almost all fakes once the rate passes ~0.6.
#include <iostream>

#include "harness.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"spam_rejection_rate", "rejecto", "votetrust"});
  t.set_precision(4);
  for (double rate :
       bench::Sweep({0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95},
                    ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.spam_rejection_rate = rate;
    const auto scenario = sim::BuildScenario(legit, cfg);
    const auto r = bench::RunBothDetectors(scenario, ctx);
    t.AddRow({rate, r.rejecto, r.votetrust});
  }
  ctx.Emit("fig11",
           "Figure 11: precision/recall vs rejection rate of spam requests"
           " (facebook)",
           t);
  std::cout << "\nShape check: both rise with the rate; Rejecto ~1.0 beyond"
               " 0.6.\n";
  return 0;
}
