// Figure 10: precision/recall vs. number of requests per fake account when
// only HALF the fakes send spam (stealth probing), Facebook graph.
//
// Paper shape: Rejecto keeps high accuracy — placing the silent fakes in
// the legitimate region would raise the cut's acceptance ratio because
// they are linked to the spamming fakes. VoteTrust collapses to ~0.5: its
// per-user vote aggregation misses the fakes that never sent requests.
#include <iostream>

#include "harness.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"requests_per_fake", "rejecto", "votetrust"});
  for (double req :
       bench::Sweep({5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.requests_per_spammer = static_cast<std::uint32_t>(req);
    cfg.spamming_fraction = 0.5;
    const auto scenario = sim::BuildScenario(legit, cfg);
    const auto r = bench::RunBothDetectors(scenario, ctx);
    t.AddRow({static_cast<std::int64_t>(req), r.rejecto, r.votetrust});
  }
  ctx.Emit("fig10",
           "Figure 10: precision/recall vs requests per fake (half of fakes"
           " spam, facebook)",
           t);
  std::cout << "\nShape check: Rejecto high; VoteTrust pinned near 0.5"
               " (misses the non-sending half).\n";
  return 0;
}
