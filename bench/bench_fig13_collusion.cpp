// Figure 13: resilience to collusion — precision/recall vs. the number of
// non-attack (intra-fake) accepted edges per fake account (4 .. 40),
// Facebook graph.
//
// Paper shape: Rejecto stays high even as each fake's individual rejection
// rate drops from ~70% to ~23% — edges among colluders never touch the
// aggregate acceptance rate toward legitimate users. VoteTrust degrades as
// the collusion gets denser.
#include <iostream>

#include "harness.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"intra_fake_edges_per_account", "avg_fake_rejection_rate",
                 "rejecto", "votetrust"});
  t.set_precision(4);
  for (double edges : bench::Sweep({4, 8, 12, 16, 20, 24, 28, 32, 36, 40},
                                   ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.intra_fake_links_per_account = static_cast<std::uint32_t>(edges);
    const auto scenario = sim::BuildScenario(legit, cfg);
    // Per-account rejection rate: 14 rejected of (20 spam + ~edges intra).
    const double per_account_rate = 14.0 / (20.0 + edges);
    const auto r = bench::RunBothDetectors(scenario, ctx);
    t.AddRow({static_cast<std::int64_t>(edges), per_account_rate, r.rejecto,
              r.votetrust});
  }
  ctx.Emit("fig13",
           "Figure 13: resilience to collusion (intra-fake accepted edges,"
           " facebook)",
           t);
  std::cout << "\nShape check: Rejecto flat-high while the per-account"
               " rejection rate collapses; VoteTrust drifts down.\n";
  return 0;
}
