// Figure 9: precision/recall vs. number of requests per fake account, all
// fakes sending spam, on the Facebook sample graph.
//
// Paper shape: Rejecto stays flat near 1.0 across the 5..50 range;
// VoteTrust starts lower and improves with request volume (its PageRank
// vote assignment is sensitive to volume, §VI-B).
#include <iostream>

#include "harness.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"requests_per_fake", "rejecto", "votetrust",
                 "rejecto_rounds", "rejecto_seconds"});
  for (double req :
       bench::Sweep({5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.requests_per_spammer = static_cast<std::uint32_t>(req);
    const auto scenario = sim::BuildScenario(legit, cfg);
    const auto r = bench::RunBothDetectors(scenario, ctx);
    t.AddRow({static_cast<std::int64_t>(req), r.rejecto, r.votetrust,
              static_cast<std::int64_t>(r.rejecto_rounds),
              r.rejecto_seconds});
  }
  ctx.Emit("fig09",
           "Figure 9: precision/recall vs requests per fake (all fakes spam,"
           " facebook)",
           t);
  std::cout << "\nShape check: Rejecto flat-high across the sweep; VoteTrust"
               " below it and volume-sensitive.\n";
  return 0;
}
