// Figure 20 (repo extension): adaptive adversaries vs the temporal
// detector.
//
// Replays the same Facebook-based temporal world under all four adversary
// strategies (sim/temporal_eval.h) — the static §VI-A campaign and three
// adaptive ones that consume the evolving rejection/detection state
// (probe-then-flood, rejection-aware retargeting, slow-drip collusion) —
// and compares time-to-detection, harm-before-detection, and final
// detection quality.
//
// Acceptance guard (the point of the figure): adaptivity must BUY the
// attacker something measurable — at least one adaptive strategy must
// worsen at least one defender metric vs the static baseline (more harm
// before detection, longer survival, or lower final recall). If every
// adaptive strategy is dominated by static, the adversary model is
// toothless and the bench aborts.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/temporal_eval.h"
#include "study/early_detection.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  const std::vector<sim::AdversaryKind> kinds = {
      sim::AdversaryKind::kStaticCampaign,
      sim::AdversaryKind::kProbeThenFlood,
      sim::AdversaryKind::kRejectionRetarget,
      sim::AdversaryKind::kSlowDripCollusion,
  };

  struct RunSummary {
    sim::AdversaryKind kind;
    study::EarlyDetectionResult res;
    std::int64_t users = 0;
  };
  std::vector<RunSummary> runs;
  for (sim::AdversaryKind kind : kinds) {
    sim::TemporalEvalConfig cfg;
    cfg.seed = ctx.seed;
    cfg.adversary = kind;
    cfg.num_fakes = ctx.fast ? 150 : 400;
    cfg.num_intervals = ctx.fast ? 5 : 8;
    cfg.requests_per_spammer_per_interval = ctx.fast ? 6 : 8;

    sim::TemporalWorld world(legit, cfg);
    sim::AdaptiveAdversary adversary(world);
    util::Rng seed_rng(ctx.seed ^ 0x5eedbeefULL);
    const auto seeds = world.SampleSeeds(ctx.fast ? 40 : 100,
                                         ctx.fast ? 10 : 30, seed_rng);
    study::EarlyDetectionConfig ecfg;
    ecfg.detect = bench::PaperDetectorConfig(ctx, world.NumFakes());
    RunSummary run;
    run.kind = kind;
    run.res = study::RunEarlyDetection(world, adversary, seeds, ecfg);
    run.users = static_cast<std::int64_t>(world.NumLegit());
    runs.push_back(std::move(run));
  }

  util::Table t({"adversary", "spam_requests", "spam_accepted", "detected",
                 "undetected", "mean_ttd", "mean_harm", "final_recall",
                 "recall_at_10"});
  t.set_precision(4);
  auto recall_at = [](const study::EarlyDetectionResult& r, std::uint32_t n) {
    for (const auto& cp : r.checkpoints) {
      if (cp.requests == n) return cp.Recall();
    }
    return 0.0;
  };
  for (const auto& run : runs) {
    const auto& r = run.res;
    t.AddRow({std::string(sim::AdversaryName(run.kind)),
              static_cast<std::int64_t>(r.total_spam_requests),
              static_cast<std::int64_t>(r.total_spam_accepted),
              static_cast<std::int64_t>(r.spammers_detected),
              static_cast<std::int64_t>(r.spammers_total -
                                        r.spammers_detected),
              r.mean_time_to_detection, r.mean_harm_before_detection,
              r.curve.back().recall, recall_at(r, 10)});
  }
  ctx.Emit("fig20",
           "Figure 20: adaptive adversaries vs temporal detection (facebook)",
           t);

  // Acceptance guard: adaptivity must worsen >= 1 defender metric somewhere.
  const auto& base = runs.front().res;
  bool adaptive_wins_something = false;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const auto& r = runs[i].res;
    const bool more_harm =
        r.mean_harm_before_detection > base.mean_harm_before_detection;
    const bool survives_longer =
        r.mean_time_to_detection > base.mean_time_to_detection;
    const bool lower_recall = r.curve.back().recall < base.curve.back().recall;
    const bool more_undetected =
        (r.spammers_total - r.spammers_detected) >
        (base.spammers_total - base.spammers_detected);
    if (more_harm || survives_longer || lower_recall || more_undetected) {
      adaptive_wins_something = true;
    }
  }
  if (!adaptive_wins_something) {
    std::cerr << "DIVERGENCE: no adaptive adversary worsened any metric vs "
                 "the static baseline — adversary model is toothless\n";
    std::abort();
  }

  std::vector<bench::TemporalBenchRecord> records;
  for (const auto& run : runs) {
    const auto& r = run.res;
    bench::TemporalBenchRecord ttd;
    ttd.bench = "bench_fig20";
    ttd.metric = "time_to_detection";
    ttd.adversary = std::string(sim::AdversaryName(run.kind));
    ttd.users = run.users;
    ttd.spammers = static_cast<std::int64_t>(r.spammers_total);
    ttd.requests = static_cast<std::int64_t>(r.total_spam_requests);
    ttd.mean = r.mean_time_to_detection;
    ttd.detected = static_cast<std::int64_t>(r.spammers_detected);
    ttd.undetected =
        static_cast<std::int64_t>(r.spammers_total - r.spammers_detected);
    ttd.final_precision = r.curve.back().precision;
    ttd.final_recall = r.curve.back().recall;
    ttd.recall_at_5 = recall_at(r, 5);
    ttd.recall_at_10 = recall_at(r, 10);
    ttd.recall_at_20 = recall_at(r, 20);
    ttd.recall_at_50 = recall_at(r, 50);
    bench::TemporalBenchRecord harm = ttd;
    harm.metric = "harm_before_detection";
    harm.mean = r.mean_harm_before_detection;
    records.push_back(std::move(ttd));
    records.push_back(std::move(harm));
  }
  bench::AppendTemporalBenchJson(records);

  std::cout << "\nShape check: at least one adaptive strategy lands more harm"
               " or survives longer than the static campaign.\n";
  return 0;
}
