// Figure 14: resilience to the self-rejection whitewash — precision/recall
// vs. the rejection rate of the intra-fake whitewash requests (0 .. 0.95),
// Facebook graph. Attackers try to disguise 5K of the 10K fakes as
// legitimate users by having them reject requests from the other 5K.
//
// Paper shape: Rejecto stays high except for a dip when the self-rejection
// rate is close to the 0.7 spam rejection rate (the crafted inner cut's
// ratio becomes indistinguishable from the global spammer cut); above it,
// iterative MAAR peels the senders first and the whitewashed next. The
// strategy is counterproductive against VoteTrust — extra rejections only
// hurt the senders' individual ratings, so VoteTrust *improves*.
#include <iostream>

#include "harness.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"self_rejection_rate", "rejecto", "votetrust",
                 "rejecto_rounds"});
  t.set_precision(4);
  for (double rate : bench::Sweep(
           {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}, ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.whitewashed_fakes = cfg.num_fakes / 2;
    cfg.self_rejection_requests_per_sender = 20;
    cfg.self_rejection_rate = rate;
    const auto scenario = sim::BuildScenario(legit, cfg);
    const auto r = bench::RunBothDetectors(scenario, ctx);
    t.AddRow({rate, r.rejecto, r.votetrust,
              static_cast<std::int64_t>(r.rejecto_rounds)});
  }
  ctx.Emit("fig14",
           "Figure 14: resilience to self-rejection whitewashing (facebook)",
           t);
  std::cout << "\nShape check: Rejecto high with at most a dip near rate ~0.7;"
               " VoteTrust improves with the rate (counterproductive"
               " strategy).\n";
  return 0;
}
