// Ablations of the design choices DESIGN.md calls out (§IV-D/E/F):
//   1. k-sweep granularity (geometric scale factor) and Dinkelbach
//      refinement on/off — how close does the sweep get to the best ratio?
//   2. seed count — the false-positive reduction of §IV-F.
//   3. initial-partition strategy — rejection heuristic vs random only.
//   4. bucket-list gain resolution — quantization's effect on quality/time.
#include <iostream>

#include "detect/classic_kl.h"
#include "harness.h"
#include "metrics/classification.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace rejecto;

struct Run {
  double precision = 0.0;
  double seconds = 0.0;
};

Run RunRejecto(const sim::Scenario& scenario, const detect::Seeds& seeds,
               detect::IterativeConfig cfg) {
  util::WallTimer t;
  const auto result = detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
  return {metrics::EvaluateDetection(scenario.is_fake, result.detected)
              .Precision(),
          t.Seconds()};
}

}  // namespace

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  // A moderately hard setting: half the fakes spam, so trivial per-user
  // signals are weak and the cut search does the work.
  auto cfg = bench::PaperAttackConfig(ctx);
  cfg.spamming_fraction = 0.5;
  const auto scenario = sim::BuildScenario(legit, cfg);
  util::Rng seed_rng(ctx.seed ^ 0xab1a7e5ULL);
  const auto seeds = scenario.SampleSeeds(100, 30, seed_rng);
  const auto base = bench::PaperDetectorConfig(ctx, scenario.num_fakes);

  // --- 1. k sweep granularity & Dinkelbach ---
  {
    util::Table t({"k_scale", "dinkelbach_rounds", "precision", "seconds"});
    t.set_precision(4);
    for (double scale : {4.0, 2.0, 1.5}) {
      for (int dk : {0, 3}) {
        auto c = base;
        c.maar.k_scale = scale;
        c.maar.dinkelbach_rounds = dk;
        const Run r = RunRejecto(scenario, seeds, c);
        t.AddRow({scale, static_cast<std::int64_t>(dk), r.precision,
                  r.seconds});
      }
    }
    ctx.Emit("ablation_ksweep",
             "Ablation 1: k-sweep granularity x Dinkelbach refinement", t);
  }

  // --- 2. seed count ---
  {
    util::Table t({"legit_seeds", "spammer_seeds", "precision", "seconds"});
    t.set_precision(4);
    for (const auto& [nl, ns] : std::vector<std::pair<int, int>>{
             {0, 0}, {10, 3}, {50, 15}, {200, 60}}) {
      util::Rng rng(ctx.seed + 77);
      const auto s = scenario.SampleSeeds(static_cast<graph::NodeId>(nl),
                                          static_cast<graph::NodeId>(ns), rng);
      const Run r = RunRejecto(scenario, s, base);
      t.AddRow({static_cast<std::int64_t>(nl), static_cast<std::int64_t>(ns),
                r.precision, r.seconds});
    }
    ctx.Emit("ablation_seeds", "Ablation 2: seed count (SIV-F)", t);
  }

  // --- 3. initial partition strategy ---
  {
    util::Table t({"strategy", "precision", "seconds"});
    t.set_precision(4);
    {
      auto c = base;  // heuristic + 1 random init (default)
      const Run r = RunRejecto(scenario, seeds, c);
      t.AddRow({std::string("heuristic+random"), r.precision, r.seconds});
    }
    {
      auto c = base;
      c.maar.num_random_inits = 4;  // heavier random restarts
      const Run r = RunRejecto(scenario, seeds, c);
      t.AddRow({std::string("heuristic+4random"), r.precision, r.seconds});
    }
    {
      auto c = base;
      c.maar.num_random_inits = 0;  // heuristic only
      const Run r = RunRejecto(scenario, seeds, c);
      t.AddRow({std::string("heuristic-only"), r.precision, r.seconds});
    }
    ctx.Emit("ablation_init", "Ablation 3: initial partition strategy", t);
  }

  // --- 4. bucket-list gain resolution ---
  {
    util::Table t({"gain_resolution", "precision", "seconds"});
    t.set_precision(4);
    for (double res : {4.0, 64.0, 1024.0}) {
      auto c = base;
      c.maar.kl.gain_resolution = res;
      const Run r = RunRejecto(scenario, seeds, c);
      t.AddRow({res, r.precision, r.seconds});
    }
    ctx.Emit("ablation_resolution",
             "Ablation 4: bucket-list gain quantization", t);
  }

  // --- 5. why the extension: classic balanced KL vs extended KL ---
  {
    // §IV-C/IV-D's motivating design choice, quantified: the textbook KL
    // bisects the *friendship* graph with fixed part sizes and no rejection
    // weighting, so even handed the true fake fraction it cannot separate
    // spammers; the extended KL with the weighted augmented graph can.
    util::Table t({"algorithm", "balance", "precision"});
    t.set_precision(4);
    const double true_fraction =
        static_cast<double>(scenario.num_fakes) /
        static_cast<double>(scenario.NumNodes());
    for (double balance : {0.25, true_fraction, 0.5}) {
      const auto r = detect::ClassicKl(scenario.graph.Friendships(),
                                       {.balance = balance, .seed = ctx.seed});
      std::vector<graph::NodeId> declared;
      for (graph::NodeId v = 0; v < scenario.NumNodes(); ++v) {
        if (r.in_u[v]) declared.push_back(v);
      }
      const auto cm = metrics::EvaluateDetection(scenario.is_fake, declared);
      t.AddRow({std::string("classic-KL"), balance, cm.Precision()});
    }
    {
      const Run r = RunRejecto(scenario, seeds, base);
      t.AddRow({std::string("extended-KL (Rejecto)"), true_fraction,
                r.precision});
    }
    ctx.Emit("ablation_classic_kl",
             "Ablation 5: classic balanced KL vs the SIV-D extension", t);
  }

  std::cout << "\nExpected: accuracy is robust to coarser k sweeps (with"
               " Dinkelbach compensating), degrades gracefully with zero"
               " seeds, is insensitive to gain resolution, and classic"
               " balanced KL (no rejections, fixed sizes) cannot find the"
               " spammers at any balance.\n";
  return 0;
}
