// Figure 17 (appendix A): the four sensitivity sweeps of §VI-B repeated on
// the six non-facebook graphs of Table I — columns: (a) request volume with
// all fakes spamming, (b) request volume with half spamming, (c) spam
// rejection rate, (d) legitimate rejection rate.
//
// Paper shape: the same trends as Figs 9-12 on every graph. Full mode runs
// all six graphs with thinned 3-point sweeps per column (the full 10-point
// sweeps live in the per-figure binaries); REJECTO_FIG17_FULL=1 restores
// 10-point sweeps.
#include <iostream>

#include "harness.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace rejecto;

std::vector<double> Thin(std::vector<double> full, bool full_sweep) {
  if (full_sweep) return full;
  return {full.front(), full[full.size() / 2], full.back()};
}

}  // namespace

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();
  const bool full_sweep = util::GetEnvBool("REJECTO_FIG17_FULL", false);

  util::Table t({"graph", "scenario", "x", "rejecto", "votetrust"});
  t.set_precision(4);

  for (const std::string& name : bench::AppendixDatasets(ctx)) {
    const auto& legit = bench::Dataset(name, ctx);

    // (a) request volume, all fakes spam.
    for (double req : Thin({5, 20, 35, 50}, full_sweep)) {
      auto cfg = bench::PaperAttackConfig(ctx);
      cfg.requests_per_spammer = static_cast<std::uint32_t>(req);
      const auto r =
          bench::RunBothDetectors(sim::BuildScenario(legit, cfg), ctx);
      t.AddRow({name, std::string("a:req_volume"), req, r.rejecto,
                r.votetrust});
    }
    // (b) request volume, half of the fakes spam.
    for (double req : Thin({5, 20, 35, 50}, full_sweep)) {
      auto cfg = bench::PaperAttackConfig(ctx);
      cfg.requests_per_spammer = static_cast<std::uint32_t>(req);
      cfg.spamming_fraction = 0.5;
      const auto r =
          bench::RunBothDetectors(sim::BuildScenario(legit, cfg), ctx);
      t.AddRow({name, std::string("b:half_spam"), req, r.rejecto,
                r.votetrust});
    }
    // (c) rejection rate of spam requests.
    for (double rate : Thin({0.5, 0.7, 0.95}, full_sweep)) {
      auto cfg = bench::PaperAttackConfig(ctx);
      cfg.spam_rejection_rate = rate;
      const auto r =
          bench::RunBothDetectors(sim::BuildScenario(legit, cfg), ctx);
      t.AddRow({name, std::string("c:spam_rr"), rate, r.rejecto,
                r.votetrust});
    }
    // (d) rejection rate among legitimate users.
    for (double rate : Thin({0.05, 0.4, 0.8}, full_sweep)) {
      auto cfg = bench::PaperAttackConfig(ctx);
      cfg.legit_rejection_rate = rate;
      const auto r =
          bench::RunBothDetectors(sim::BuildScenario(legit, cfg), ctx);
      t.AddRow({name, std::string("d:legit_rr"), rate, r.rejecto,
                r.votetrust});
    }
  }
  ctx.Emit("fig17",
           "Figure 17: sensitivity sweeps on the six appendix graphs", t);
  std::cout << "\nShape check: per graph, same trends as Figs 9-12 —"
               " Rejecto flat-high (a,b), rising in (c), decaying in (d).\n";
  return 0;
}
