#include "harness.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>

#include "baseline/votetrust.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "util/flags.h"
#include "util/timer.h"

namespace rejecto::bench {

ExperimentContext ExperimentContext::FromEnv() {
  ExperimentContext ctx;
  ctx.fast = util::FastBenchMode();
  ctx.seed = util::ExperimentSeed();
  ctx.csv_dir = util::GetEnvString("REJECTO_CSV_DIR");
  return ctx;
}

void ExperimentContext::Emit(const std::string& id, const std::string& title,
                             const util::Table& table) const {
  table.PrintWithTitle(title);
  if (csv_dir) {
    std::filesystem::create_directories(*csv_dir);
    std::ofstream out(*csv_dir + "/" + id + ".csv");
    table.WriteCsv(out);
  }
}

sim::ScenarioConfig PaperAttackConfig(const ExperimentContext& ctx) {
  sim::ScenarioConfig cfg;
  cfg.seed = ctx.seed;
  cfg.num_fakes = ctx.fast ? 2'000 : 10'000;
  cfg.intra_fake_links_per_account = 6;
  cfg.spamming_fraction = 1.0;
  cfg.requests_per_spammer = 20;
  cfg.spam_rejection_rate = 0.7;
  cfg.legit_rejection_rate = 0.2;
  cfg.careless_fraction = 0.15;
  return cfg;
}

detect::IterativeConfig PaperDetectorConfig(const ExperimentContext& ctx,
                                            std::uint64_t target) {
  detect::IterativeConfig cfg;
  cfg.target_detections = target;
  cfg.maar.seed = ctx.seed * 7919 + 13;
  return cfg;
}

const graph::SocialGraph& Dataset(const std::string& name,
                                  const ExperimentContext& ctx) {
  static std::map<std::string, graph::SocialGraph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, gen::MakeDataset(name, ctx.seed)).first;
  }
  return it->second;
}

DetectorScores RunBothDetectors(const sim::Scenario& scenario,
                                const ExperimentContext& ctx) {
  util::Rng seed_rng(ctx.seed ^ 0x5eedbeefULL);
  const graph::NodeId n_legit_seeds = ctx.fast ? 40 : 100;
  const graph::NodeId n_spam_seeds = ctx.fast ? 10 : 30;
  const auto seeds =
      scenario.SampleSeeds(n_legit_seeds, n_spam_seeds, seed_rng);

  DetectorScores out;
  {
    util::WallTimer t;
    const auto cfg = PaperDetectorConfig(ctx, scenario.num_fakes);
    const auto result =
        detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
    out.rejecto_seconds = t.Seconds();
    out.rejecto_rounds = static_cast<int>(result.rounds.size());
    out.rejecto =
        metrics::EvaluateDetection(scenario.is_fake, result.detected)
            .Precision();
  }
  {
    baseline::VoteTrustConfig cfg;
    cfg.trust_seeds = seeds.legit;
    const auto vt = baseline::RunVoteTrust(scenario.log, cfg);
    out.votetrust =
        metrics::EvaluateDetection(
            scenario.is_fake,
            metrics::LowestScored(vt.ratings, scenario.num_fakes))
            .Precision();
  }
  return out;
}

std::vector<double> Sweep(std::vector<double> full,
                          const ExperimentContext& ctx) {
  if (!ctx.fast || full.size() <= 3) return full;
  // Keep first, middle, last.
  return {full.front(), full[full.size() / 2], full.back()};
}

std::vector<std::string> AppendixDatasets(const ExperimentContext& ctx) {
  if (ctx.fast) return {"ca-HepTh"};
  return {"ca-HepTh",      "ca-AstroPh",  "email-Enron",
          "soc-Epinions",  "soc-Slashdot", "synthetic"};
}

}  // namespace rejecto::bench
