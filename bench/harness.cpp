#include "harness.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <numeric>
#include <span>
#include <sstream>
#include <unordered_map>

#include "baseline/votetrust.h"
#include "detect/bucket_list.h"
#include "detect/partition.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "util/buffer.h"
#include "util/flags.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rejecto::bench {

ExperimentContext ExperimentContext::FromEnv() {
  ExperimentContext ctx;
  ctx.fast = util::FastBenchMode();
  ctx.seed = util::ExperimentSeed();
  ctx.csv_dir = util::GetEnvString("REJECTO_CSV_DIR");
  return ctx;
}

void ExperimentContext::Emit(const std::string& id, const std::string& title,
                             const util::Table& table) const {
  table.PrintWithTitle(title);
  if (csv_dir) {
    std::filesystem::create_directories(*csv_dir);
    std::ofstream out(*csv_dir + "/" + id + ".csv");
    table.WriteCsv(out);
  }
}

sim::ScenarioConfig PaperAttackConfig(const ExperimentContext& ctx) {
  sim::ScenarioConfig cfg;
  cfg.seed = ctx.seed;
  cfg.num_fakes = ctx.fast ? 2'000 : 10'000;
  cfg.intra_fake_links_per_account = 6;
  cfg.spamming_fraction = 1.0;
  cfg.requests_per_spammer = 20;
  cfg.spam_rejection_rate = 0.7;
  cfg.legit_rejection_rate = 0.2;
  cfg.careless_fraction = 0.15;
  return cfg;
}

detect::IterativeConfig PaperDetectorConfig(const ExperimentContext& ctx,
                                            std::uint64_t target) {
  detect::IterativeConfig cfg;
  cfg.target_detections = target;
  cfg.maar.seed = ctx.seed * 7919 + 13;
  // REJECTO_THREADS (0 = hardware); bit-identical results either way, so
  // every bench may run its sweeps parallel by default.
  cfg.maar.num_threads = util::ThreadCount();
  // REJECTO_LAYOUT (identity|bfs): detection results are invariant under
  // the layout (graph/layout.h), so the knob only changes cache behavior.
  cfg.maar.layout = graph::LayoutPolicyFromEnv();
  return cfg;
}

const graph::SocialGraph& Dataset(const std::string& name,
                                  const ExperimentContext& ctx) {
  static std::map<std::string, graph::SocialGraph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, gen::MakeDataset(name, ctx.seed)).first;
  }
  return it->second;
}

DetectorScores RunBothDetectors(const sim::Scenario& scenario,
                                const ExperimentContext& ctx) {
  util::Rng seed_rng(ctx.seed ^ 0x5eedbeefULL);
  const graph::NodeId n_legit_seeds = ctx.fast ? 40 : 100;
  const graph::NodeId n_spam_seeds = ctx.fast ? 10 : 30;
  const auto seeds =
      scenario.SampleSeeds(n_legit_seeds, n_spam_seeds, seed_rng);

  DetectorScores out;
  {
    util::WallTimer t;
    const auto cfg = PaperDetectorConfig(ctx, scenario.num_fakes);
    const auto result =
        detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
    out.rejecto_seconds = t.Seconds();
    out.rejecto_rounds = static_cast<int>(result.rounds.size());
    out.rejecto =
        metrics::EvaluateDetection(scenario.is_fake, result.detected)
            .Precision();
  }
  {
    baseline::VoteTrustConfig cfg;
    cfg.trust_seeds = seeds.legit;
    const auto vt = baseline::RunVoteTrust(scenario.log, cfg);
    out.votetrust =
        metrics::EvaluateDetection(
            scenario.is_fake,
            metrics::LowestScored(vt.ratings, scenario.num_fakes))
            .Precision();
  }
  return out;
}

std::vector<double> Sweep(std::vector<double> full,
                          const ExperimentContext& ctx) {
  if (!ctx.fast || full.size() <= 3) return full;
  // Keep first, middle, last.
  return {full.front(), full[full.size() / 2], full.back()};
}

std::vector<std::string> AppendixDatasets(const ExperimentContext& ctx) {
  if (ctx.fast) return {"ca-HepTh"};
  return {"ca-HepTh",      "ca-AstroPh",  "email-Enron",
          "soc-Epinions",  "soc-Slashdot", "synthetic"};
}

namespace {

#ifndef REJECTO_GIT_SHA
#define REJECTO_GIT_SHA "unknown"
#endif

// Scans a BENCH_maar.json body for the largest "run_id" value; 0 when the
// file is missing, fresh, or predates the provenance stamps.
std::uint64_t MaxRunId(const std::string& json) {
  static const std::string key = "\"run_id\": ";
  std::uint64_t max_id = 0;
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    std::uint64_t id = 0;
    for (std::size_t i = pos + key.size();
         i < json.size() && std::isdigit(static_cast<unsigned char>(json[i]));
         ++i) {
      id = id * 10 + static_cast<std::uint64_t>(json[i] - '0');
    }
    max_id = std::max(max_id, id);
  }
  return max_id;
}

// Reopens the flat JSON array in <REJECTO_JSON_DIR or cwd>/BENCH_maar.json
// and appends the pre-rendered record objects (one per string, no leading
// whitespace or trailing comma). Every record is stamped with the build's
// git sha and a run_id one past the largest already in the file, so a
// record's provenance (which commit, which append batch) survives the
// file's whole accumulation history.
void AppendBenchJsonRecords(const std::vector<std::string>& rendered) {
  if (rendered.empty()) return;
  const std::string dir =
      util::GetEnvString("REJECTO_JSON_DIR").value_or(".");
  const std::string path = dir + "/BENCH_maar.json";

  std::string existing;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    existing = ss.str();
  }
  const std::uint64_t run_id = MaxRunId(existing) + 1;
  const std::string stamp = std::string("{\"git_sha\": \"") + REJECTO_GIT_SHA +
                            "\", \"run_id\": " + std::to_string(run_id) +
                            ", ";
  auto rtrim = [](std::string& s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.pop_back();
    }
  };
  rtrim(existing);

  std::ostringstream body;
  bool first = true;
  if (!existing.empty() && existing.front() == '[' &&
      existing.back() == ']') {
    existing.pop_back();  // reopen the array to append
    rtrim(existing);
    body << existing;
    first = existing == "[";
  } else {
    body << "[";  // missing or malformed: start fresh
  }
  for (const auto& r : rendered) {
    if (!first) body << ",";
    first = false;
    body << "\n  " << stamp << r.substr(1);  // r starts with '{'
  }
  body << "\n]\n";
  std::ofstream out(path, std::ios::trunc);
  out << body.str();
}

}  // namespace

void AppendMaarBenchJson(const std::vector<MaarBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"users\": " << r.users
       << ", \"edges\": " << r.edges << ", \"threads\": " << r.threads
       << ", \"seconds\": " << r.seconds << ", \"kl_runs\": " << r.kl_runs
       << ", \"speedup\": " << r.speedup << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void AppendKernelBenchJson(const std::vector<KernelBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"kernel\": \"" << r.kernel
       << "\", \"users\": " << r.users << ", \"edges\": " << r.edges
       << ", \"items\": " << r.items << ", \"seconds\": " << r.seconds
       << ", \"seconds_median\": " << r.seconds_median
       << ", \"throughput\": " << r.throughput
       << ", \"speedup\": " << r.speedup << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void RunMaarSpeedupProbe(const std::string& bench_name,
                         const graph::AugmentedGraph& g,
                         detect::MaarConfig config,
                         const std::vector<int>& threads_list) {
  std::vector<MaarBenchRecord> records;
  double serial_seconds = 0.0;
  std::vector<char> reference_mask;
  for (int t : threads_list) {
    config.num_threads = t;
    detect::MaarSolver solver(g, {}, config);
    const detect::MaarCut cut = solver.Solve();
    if (records.empty()) {
      serial_seconds = cut.total_seconds;
      reference_mask = cut.in_u;
    } else if (cut.in_u != reference_mask) {
      std::cerr << bench_name << ": PARALLEL SWEEP DETERMINISM VIOLATION at "
                << t << " threads\n";
      std::abort();
    }
    MaarBenchRecord r;
    r.bench = bench_name;
    r.users = static_cast<std::int64_t>(g.NumNodes());
    r.edges = static_cast<std::int64_t>(g.Friendships().NumEdges());
    r.threads = t;
    r.seconds = cut.total_seconds;
    r.kl_runs = cut.kl_runs;
    r.speedup = serial_seconds / std::max(cut.total_seconds, 1e-9);
    std::cout << bench_name << " MAAR sweep: users=" << r.users
              << " threads=" << t << " seconds=" << r.seconds
              << " kl_runs=" << r.kl_runs << " speedup=" << r.speedup
              << "\n";
    records.push_back(std::move(r));
  }
  AppendMaarBenchJson(records);
}

namespace {

// Median of a rep-sample set; the min stays the headline number (classic
// min-of-reps noise rejection), the median is reported alongside so a run
// with one lucky rep on a noisy box is visible in the record itself.
double MedianSeconds(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

// One emitted kernel record + stdout line, shared by the probes below.
void PushKernelRecord(std::vector<KernelBenchRecord>& records,
                      const std::string& bench_name, const char* kernel,
                      const graph::AugmentedGraph& g, std::int64_t items,
                      double seconds, double seconds_median,
                      double baseline_seconds) {
  KernelBenchRecord r;
  r.bench = bench_name;
  r.kernel = kernel;
  r.users = static_cast<std::int64_t>(g.NumNodes());
  r.edges = static_cast<std::int64_t>(g.Friendships().NumEdges());
  r.items = items;
  r.seconds = seconds;
  r.seconds_median = seconds_median;
  r.throughput = static_cast<double>(items) / std::max(seconds, 1e-9);
  r.speedup = baseline_seconds / std::max(seconds, 1e-9);
  std::cout << bench_name << " kernel=" << kernel << " users=" << r.users
            << " items=" << r.items << " seconds=" << r.seconds
            << " median=" << r.seconds_median
            << " throughput=" << r.throughput << " speedup=" << r.speedup
            << "\n";
  records.push_back(std::move(r));
}

// Times one switch-sequence run of the fused kernel on `g`; returns the
// final objective so callers can cross-check runs on relaid-out copies.
double RunSwitchSequence(const graph::AugmentedGraph& g,
                         const std::vector<char>& init,
                         const std::vector<graph::NodeId>& seq, double k,
                         double* seconds_out) {
  const graph::NodeId n = g.NumNodes();
  const double gain_bound =
      std::max(1.0, static_cast<double>(g.MaxFriendshipDegree()) +
                        k * static_cast<double>(g.MaxRejectionDegree()));
  detect::Partition p(g, init);
  detect::BucketList bl(n, gain_bound, detect::KlConfig{}.gain_resolution);
  for (graph::NodeId v = 0; v < n; ++v) {
    bl.Insert(v, -p.DeltaObjective(v, k));
  }
  util::AlignedVector<graph::NodeId> touched;
  touched.reserve(static_cast<std::size_t>(g.MaxFriendshipDegree() +
                                           g.MaxRejectionDegree()));
  util::WallTimer t;
  for (graph::NodeId v : seq) {
    p.SwitchFused(v, k, bl, touched);
  }
  *seconds_out = t.Seconds();
  return p.Objective(k);
}

// The istringstream-based edge-list loader the string_view scanner
// replaced, kept verbatim as the text_load_old baseline (mirrors the
// kl_switch_old convention: old code lives on in the bench that proves the
// replacement's speedup).
graph::AugmentedGraph OldTextLoad(const std::string& friendships_path,
                                  const std::string& rejections_path) {
  graph::GraphBuilder builder;
  std::unordered_map<std::uint64_t, graph::NodeId> dense;
  std::vector<std::uint64_t> original;
  std::string context;
  auto intern = [&](std::uint64_t raw) -> graph::NodeId {
    auto [it, inserted] = dense.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      builder.AddNode();
      original.push_back(raw);
    }
    return it->second;
  };
  auto parse = [&](const std::string& path, bool friendships) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("OldTextLoad: cannot open " + path);
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      context = "LoadAugmentedGraph: " + path + " line " +
                std::to_string(lineno);
      std::istringstream ls(line);
      std::string a_tok, b_tok, extra_tok;
      if (!(ls >> a_tok >> b_tok)) {
        throw std::runtime_error(context + ": expected two node ids");
      }
      const std::uint64_t a = util::ParseU64Checked(a_tok, context);
      const std::uint64_t b = util::ParseU64Checked(b_tok, context);
      if (ls >> extra_tok) {
        throw std::runtime_error(context + ": trailing token '" + extra_tok +
                                 "' after edge");
      }
      if (a == b) continue;
      const graph::NodeId ua = intern(a);
      const graph::NodeId ub = intern(b);
      if (friendships) {
        builder.AddFriendship(ua, ub);
      } else {
        builder.AddRejection(ua, ub);
      }
    }
  };
  parse(friendships_path, /*friendships=*/true);
  parse(rejections_path, /*friendships=*/false);
  return builder.BuildAugmented();
}

}  // namespace

void RunLayoutKernelProbe(const std::string& bench_name,
                          const graph::AugmentedGraph& g, bool fast) {
  const graph::NodeId n = g.NumNodes();
  if (n < 2) return;

  // Baseline: a deterministic Fisher–Yates shuffle of the ids — the "as
  // interned from a text file" order the layout subsystem exists to fix.
  // (Generator graphs are born in a friendly order, so comparing against g
  // itself would understate what relayout buys on real ingested data.)
  util::Rng rng(97);
  std::vector<graph::NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (graph::NodeId i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextUInt(i + 1)]);
  }
  const graph::Layout shuffle =
      graph::LayoutFromPermutation(std::move(perm));
  const graph::AugmentedGraph g_shuf = graph::ApplyLayout(g, shuffle);
  const graph::Layout bfs =
      graph::ComputeLayout(g_shuf, graph::LayoutPolicy::kBfs);
  const graph::AugmentedGraph g_bfs = graph::ApplyLayout(g_shuf, bfs);

  // One logical workload on both layouts: same init mask, same switch
  // sequence, translated into each graph's id space. The sequence is a
  // propagation-ordered sweep — the BFS visit order of the shuffled graph
  // from its highest-combined-degree hubs, truncated — because that is the
  // temporal shape of the detector's hot passes (a KL sweep chasing the
  // gain frontier, vote propagation): each switch lands next to the
  // previous one in graph distance. The layout under test decides whether
  // that graph-adjacency becomes address-adjacency. A uniform-random
  // sequence would instead measure a workload no vertex order can help.
  std::vector<char> init(n, 0);
  for (auto& c : init) c = rng.NextBool(0.35) ? 1 : 0;
  const std::vector<char> init_bfs = graph::MaskToLayout(bfs, init);
  std::vector<graph::NodeId> seq;
  seq.reserve(n);
  {
    std::vector<std::uint32_t> degree(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      degree[v] = g_shuf.Friendships().Degree(v) +
                  g_shuf.Rejections().InDegree(v) +
                  g_shuf.Rejections().OutDegree(v);
    }
    std::vector<graph::NodeId> order(n);
    std::iota(order.begin(), order.end(), graph::NodeId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return degree[a] > degree[b];
                     });
    std::vector<char> vis(n, 0);
    auto expand = [&](std::span<const graph::NodeId> row) {
      for (graph::NodeId w : row) {
        if (!vis[w]) {
          vis[w] = 1;
          seq.push_back(w);
        }
      }
    };
    for (graph::NodeId s : order) {
      if (vis[s]) continue;
      vis[s] = 1;
      std::size_t head = seq.size();
      seq.push_back(s);
      for (; head < seq.size(); ++head) {
        const graph::NodeId u = seq[head];
        expand(g_shuf.Friendships().Neighbors(u));
        expand(g_shuf.Rejections().Rejectees(u));
        expand(g_shuf.Rejections().Rejectors(u));
      }
    }
  }
  seq.resize(std::min<std::size_t>(seq.size(), fast ? 40'000 : 200'000));
  std::vector<graph::NodeId> seq_bfs(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    seq_bfs[i] = bfs.new_of_old[seq[i]];
  }

  const double k = 1.0;
  const int reps = fast ? 5 : 7;
  std::vector<double> shuf_samples, bfs_samples;
  for (int i = 0; i < reps; ++i) {
    // Alternate layouts across reps so machine noise hits both equally;
    // keep the best rep of each (the kernel is deterministic).
    double s = 0.0;
    const double shuf_obj = RunSwitchSequence(g_shuf, init, seq, k, &s);
    shuf_samples.push_back(s);
    const double bfs_obj = RunSwitchSequence(g_bfs, init_bfs, seq_bfs, k, &s);
    bfs_samples.push_back(s);
    if (shuf_obj != bfs_obj) {
      std::cerr << bench_name << ": LAYOUT KERNEL DIVERGED (" << shuf_obj
                << " vs " << bfs_obj << ")\n";
      std::abort();
    }
  }
  const double shuf_s =
      *std::min_element(shuf_samples.begin(), shuf_samples.end());
  const double bfs_s =
      *std::min_element(bfs_samples.begin(), bfs_samples.end());

  std::vector<KernelBenchRecord> records;
  const auto switches = static_cast<std::int64_t>(seq.size());
  PushKernelRecord(records, bench_name, "layout_identity", g, switches,
                   shuf_s, MedianSeconds(shuf_samples), shuf_s);
  PushKernelRecord(records, bench_name, "layout_bfs", g, switches, bfs_s,
                   MedianSeconds(bfs_samples), shuf_s);
  AppendKernelBenchJson(records);
}

void RunSnapshotLoadProbe(const std::string& bench_name,
                          const graph::AugmentedGraph& g, bool fast) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("rejecto_probe_" + bench_name);
  fs::create_directories(dir);
  const std::string fr_path = (dir / "friendships.txt").string();
  const std::string rej_path = (dir / "rejections.txt").string();
  const std::string snap_path = (dir / "graph.snap").string();

  graph::SaveEdgeList(g.Friendships(), fr_path);
  {
    std::ofstream out(rej_path);
    out << "# Directed rejection arcs: " << g.NumNodes() << " nodes, "
        << g.Rejections().NumArcs() << " arcs\n";
    for (const graph::Arc& a : g.Rejections().Arcs()) {
      out << a.from << ' ' << a.to << '\n';
    }
  }
  graph::SaveSnapshot(snap_path, g);

  const std::int64_t items = static_cast<std::int64_t>(
      g.Friendships().NumEdges() + g.Rejections().NumArcs());
  const int reps = fast ? 2 : 3;
  std::vector<double> old_samples, new_samples, snap_samples;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer t_old;
    const graph::AugmentedGraph old_loaded = OldTextLoad(fr_path, rej_path);
    old_samples.push_back(t_old.Seconds());

    util::WallTimer t_new;
    const graph::LoadedAugmentedGraph loaded =
        graph::LoadAugmentedGraph(fr_path, rej_path);
    new_samples.push_back(t_new.Seconds());

    util::WallTimer t_snap;
    const graph::Snapshot snap = graph::LoadSnapshot(snap_path);
    snap_samples.push_back(t_snap.Seconds());

    // Both text loaders intern in the same order, so their graphs must be
    // CSR-identical; the snapshot must reproduce g exactly.
    if (loaded.graph != old_loaded) {
      std::cerr << bench_name << ": TEXT LOADER DIVERGED\n";
      std::abort();
    }
    if (snap.graph != g || !snap.layout.IsIdentity()) {
      std::cerr << bench_name << ": SNAPSHOT ROUND-TRIP DIVERGED\n";
      std::abort();
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);  // best-effort scratch cleanup

  const double old_s = *std::min_element(old_samples.begin(), old_samples.end());
  const double new_s = *std::min_element(new_samples.begin(), new_samples.end());
  const double snap_s =
      *std::min_element(snap_samples.begin(), snap_samples.end());
  std::vector<KernelBenchRecord> records;
  PushKernelRecord(records, bench_name, "text_load_old", g, items, old_s,
                   MedianSeconds(old_samples), old_s);
  PushKernelRecord(records, bench_name, "text_load", g, items, new_s,
                   MedianSeconds(new_samples), old_s);
  PushKernelRecord(records, bench_name, "snapshot_load", g, items, snap_s,
                   MedianSeconds(snap_samples), new_s);
  AppendKernelBenchJson(records);
}

}  // namespace rejecto::bench
