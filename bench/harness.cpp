#include "harness.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <numeric>
#include <span>
#include <sstream>
#include <unordered_map>

#include "baseline/votetrust.h"
#include "detect/bucket_list.h"
#include "detect/partition.h"
#include "gen/synthetic_stream.h"
#include "graph/builder.h"
#include "graph/compressed_view.h"
#include "graph/io.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "util/buffer.h"
#include "util/flags.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rejecto::bench {

ExperimentContext ExperimentContext::FromEnv() {
  ExperimentContext ctx;
  ctx.fast = util::FastBenchMode();
  ctx.seed = util::ExperimentSeed();
  ctx.csv_dir = util::GetEnvString("REJECTO_CSV_DIR");
  return ctx;
}

void ExperimentContext::Emit(const std::string& id, const std::string& title,
                             const util::Table& table) const {
  table.PrintWithTitle(title);
  if (csv_dir) {
    std::filesystem::create_directories(*csv_dir);
    std::ofstream out(*csv_dir + "/" + id + ".csv");
    table.WriteCsv(out);
  }
}

sim::ScenarioConfig PaperAttackConfig(const ExperimentContext& ctx) {
  sim::ScenarioConfig cfg;
  cfg.seed = ctx.seed;
  cfg.num_fakes = ctx.fast ? 2'000 : 10'000;
  cfg.intra_fake_links_per_account = 6;
  cfg.spamming_fraction = 1.0;
  cfg.requests_per_spammer = 20;
  cfg.spam_rejection_rate = 0.7;
  cfg.legit_rejection_rate = 0.2;
  cfg.careless_fraction = 0.15;
  return cfg;
}

detect::IterativeConfig PaperDetectorConfig(const ExperimentContext& ctx,
                                            std::uint64_t target) {
  detect::IterativeConfig cfg;
  cfg.target_detections = target;
  cfg.maar.seed = ctx.seed * 7919 + 13;
  // REJECTO_THREADS (0 = hardware); bit-identical results either way, so
  // every bench may run its sweeps parallel by default.
  cfg.maar.num_threads = util::ThreadCount();
  // REJECTO_LAYOUT (identity|bfs): detection results are invariant under
  // the layout (graph/layout.h), so the knob only changes cache behavior.
  cfg.maar.layout = graph::LayoutPolicyFromEnv();
  return cfg;
}

const graph::SocialGraph& Dataset(const std::string& name,
                                  const ExperimentContext& ctx) {
  static std::map<std::string, graph::SocialGraph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, gen::MakeDataset(name, ctx.seed)).first;
  }
  return it->second;
}

DetectorScores RunBothDetectors(const sim::Scenario& scenario,
                                const ExperimentContext& ctx) {
  util::Rng seed_rng(ctx.seed ^ 0x5eedbeefULL);
  const graph::NodeId n_legit_seeds = ctx.fast ? 40 : 100;
  const graph::NodeId n_spam_seeds = ctx.fast ? 10 : 30;
  const auto seeds =
      scenario.SampleSeeds(n_legit_seeds, n_spam_seeds, seed_rng);

  DetectorScores out;
  {
    util::WallTimer t;
    const auto cfg = PaperDetectorConfig(ctx, scenario.num_fakes);
    const auto result =
        detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
    out.rejecto_seconds = t.Seconds();
    out.rejecto_rounds = static_cast<int>(result.rounds.size());
    out.rejecto =
        metrics::EvaluateDetection(scenario.is_fake, result.detected)
            .Precision();
  }
  {
    baseline::VoteTrustConfig cfg;
    cfg.trust_seeds = seeds.legit;
    const auto vt = baseline::RunVoteTrust(scenario.log, cfg);
    out.votetrust =
        metrics::EvaluateDetection(
            scenario.is_fake,
            metrics::LowestScored(vt.ratings, scenario.num_fakes))
            .Precision();
  }
  return out;
}

std::vector<double> Sweep(std::vector<double> full,
                          const ExperimentContext& ctx) {
  if (!ctx.fast || full.size() <= 3) return full;
  // Keep first, middle, last.
  return {full.front(), full[full.size() / 2], full.back()};
}

std::vector<std::string> AppendixDatasets(const ExperimentContext& ctx) {
  if (ctx.fast) return {"ca-HepTh"};
  return {"ca-HepTh",      "ca-AstroPh",  "email-Enron",
          "soc-Epinions",  "soc-Slashdot", "synthetic"};
}

namespace {

#ifndef REJECTO_GIT_SHA
#define REJECTO_GIT_SHA "unknown"
#endif

// Scans a BENCH_maar.json body for the largest "run_id" value; 0 when the
// file is missing, fresh, or predates the provenance stamps.
std::uint64_t MaxRunId(const std::string& json) {
  static const std::string key = "\"run_id\": ";
  std::uint64_t max_id = 0;
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    std::uint64_t id = 0;
    for (std::size_t i = pos + key.size();
         i < json.size() && std::isdigit(static_cast<unsigned char>(json[i]));
         ++i) {
      id = id * 10 + static_cast<std::uint64_t>(json[i] - '0');
    }
    max_id = std::max(max_id, id);
  }
  return max_id;
}

// Reopens the flat JSON array in <REJECTO_JSON_DIR or cwd>/BENCH_maar.json
// and appends the pre-rendered record objects (one per string, no leading
// whitespace or trailing comma). Every record is stamped with the build's
// git sha and a run_id one past the largest already in the file, so a
// record's provenance (which commit, which append batch) survives the
// file's whole accumulation history.
void AppendBenchJsonRecords(const std::vector<std::string>& rendered) {
  if (rendered.empty()) return;
  const std::string dir =
      util::GetEnvString("REJECTO_JSON_DIR").value_or(".");
  const std::string path = dir + "/BENCH_maar.json";

  std::string existing;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    existing = ss.str();
  }
  const std::uint64_t run_id = MaxRunId(existing) + 1;
  const std::string stamp = std::string("{\"git_sha\": \"") + REJECTO_GIT_SHA +
                            "\", \"run_id\": " + std::to_string(run_id) +
                            ", ";
  auto rtrim = [](std::string& s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.pop_back();
    }
  };
  rtrim(existing);

  std::ostringstream body;
  bool first = true;
  if (!existing.empty() && existing.front() == '[' &&
      existing.back() == ']') {
    existing.pop_back();  // reopen the array to append
    rtrim(existing);
    body << existing;
    first = existing == "[";
  } else {
    body << "[";  // missing or malformed: start fresh
  }
  for (const auto& r : rendered) {
    if (!first) body << ",";
    first = false;
    body << "\n  " << stamp << r.substr(1);  // r starts with '{'
  }
  body << "\n]\n";
  std::ofstream out(path, std::ios::trunc);
  out << body.str();
}

}  // namespace

namespace {

// "VmHWM:    123456 kB" -> bytes; 0 when the key is absent (non-Linux) or
// /proc is unavailable.
std::uint64_t ProcStatusBytes(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) != 0) continue;
    std::uint64_t kb = 0;
    for (char c : line) {
      if (std::isdigit(static_cast<unsigned char>(c))) {
        kb = kb * 10 + static_cast<std::uint64_t>(c - '0');
      }
    }
    return kb * 1024;
  }
  return 0;
}

}  // namespace

std::uint64_t PeakRssBytes() { return ProcStatusBytes("VmHWM:"); }
std::uint64_t CurrentRssBytes() { return ProcStatusBytes("VmRSS:"); }

void AppendMaarBenchJson(const std::vector<MaarBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"users\": " << r.users
       << ", \"edges\": " << r.edges << ", \"threads\": " << r.threads
       << ", \"seconds\": " << r.seconds << ", \"kl_runs\": " << r.kl_runs
       << ", \"speedup\": " << r.speedup << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void AppendKernelBenchJson(const std::vector<KernelBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"kernel\": \"" << r.kernel
       << "\", \"users\": " << r.users << ", \"edges\": " << r.edges
       << ", \"items\": " << r.items << ", \"seconds\": " << r.seconds
       << ", \"seconds_median\": " << r.seconds_median
       << ", \"throughput\": " << r.throughput
       << ", \"speedup\": " << r.speedup
       << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
       << ", \"mapped_bytes\": " << r.mapped_bytes << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void AppendTemporalBenchJson(const std::vector<TemporalBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"metric\": \"" << r.metric
       << "\", \"adversary\": \"" << r.adversary
       << "\", \"users\": " << r.users << ", \"spammers\": " << r.spammers
       << ", \"requests\": " << r.requests << ", \"mean\": " << r.mean
       << ", \"detected\": " << r.detected
       << ", \"undetected\": " << r.undetected
       << ", \"final_precision\": " << r.final_precision
       << ", \"final_recall\": " << r.final_recall
       << ", \"recall_at_5\": " << r.recall_at_5
       << ", \"recall_at_10\": " << r.recall_at_10
       << ", \"recall_at_20\": " << r.recall_at_20
       << ", \"recall_at_50\": " << r.recall_at_50 << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void AppendTransportBenchJson(const std::vector<TransportBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"transport\": \""
       << r.transport << "\", \"users\": " << r.users
       << ", \"round\": " << r.round
       << ", \"frames_sent\": " << r.frames_sent
       << ", \"frames_received\": " << r.frames_received
       << ", \"bytes_sent\": " << r.bytes_sent
       << ", \"bytes_received\": " << r.bytes_received
       << ", \"retries\": " << r.retries << ", \"timeouts\": " << r.timeouts
       << ", \"reconnects\": " << r.reconnects
       << ", \"failovers\": " << r.failovers
       << ", \"busy_us\": " << r.busy_us << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void AppendAdmissionBenchJson(const std::vector<AdmissionBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"admission\": \""
       << r.admission << "\", \"reclaim\": \"" << r.reclaim
       << "\", \"readers\": " << r.readers << ", \"users\": " << r.users
       << ", \"events\": " << r.events
       << ", \"decisions\": " << r.decisions << ", \"epochs\": " << r.epochs
       << ", \"decisions_per_sec\": " << r.decisions_per_sec
       << ", \"ingest_events_per_sec\": " << r.ingest_events_per_sec
       << ", \"epoch_publish_stall_seconds\": "
       << r.epoch_publish_stall_seconds
       << ", \"detect_seconds\": " << r.detect_seconds
       << ", \"p50_ns\": " << r.p50_ns << ", \"p95_ns\": " << r.p95_ns
       << ", \"p99_ns\": " << r.p99_ns << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void RunMaarSpeedupProbe(const std::string& bench_name,
                         const graph::AugmentedGraph& g,
                         detect::MaarConfig config,
                         const std::vector<int>& threads_list) {
  std::vector<MaarBenchRecord> records;
  double serial_seconds = 0.0;
  std::vector<char> reference_mask;
  for (int t : threads_list) {
    config.num_threads = t;
    detect::MaarSolver solver(g, {}, config);
    const detect::MaarCut cut = solver.Solve();
    if (records.empty()) {
      serial_seconds = cut.total_seconds;
      reference_mask = cut.in_u;
    } else if (cut.in_u != reference_mask) {
      std::cerr << bench_name << ": PARALLEL SWEEP DETERMINISM VIOLATION at "
                << t << " threads\n";
      std::abort();
    }
    MaarBenchRecord r;
    r.bench = bench_name;
    r.users = static_cast<std::int64_t>(g.NumNodes());
    r.edges = static_cast<std::int64_t>(g.Friendships().NumEdges());
    r.threads = t;
    r.seconds = cut.total_seconds;
    r.kl_runs = cut.kl_runs;
    r.speedup = serial_seconds / std::max(cut.total_seconds, 1e-9);
    std::cout << bench_name << " MAAR sweep: users=" << r.users
              << " threads=" << t << " seconds=" << r.seconds
              << " kl_runs=" << r.kl_runs << " speedup=" << r.speedup
              << "\n";
    records.push_back(std::move(r));
  }
  AppendMaarBenchJson(records);
}

namespace {

// Median of a rep-sample set; the min stays the headline number (classic
// min-of-reps noise rejection), the median is reported alongside so a run
// with one lucky rep on a noisy box is visible in the record itself.
double MedianSeconds(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

// One emitted kernel record + stdout line, shared by the probes below.
void PushKernelRecord(std::vector<KernelBenchRecord>& records,
                      const std::string& bench_name, const char* kernel,
                      const graph::AugmentedGraph& g, std::int64_t items,
                      double seconds, double seconds_median,
                      double baseline_seconds) {
  KernelBenchRecord r;
  r.bench = bench_name;
  r.kernel = kernel;
  r.users = static_cast<std::int64_t>(g.NumNodes());
  r.edges = static_cast<std::int64_t>(g.Friendships().NumEdges());
  r.items = items;
  r.seconds = seconds;
  r.seconds_median = seconds_median;
  r.throughput = static_cast<double>(items) / std::max(seconds, 1e-9);
  r.speedup = baseline_seconds / std::max(seconds, 1e-9);
  std::cout << bench_name << " kernel=" << kernel << " users=" << r.users
            << " items=" << r.items << " seconds=" << r.seconds
            << " median=" << r.seconds_median
            << " throughput=" << r.throughput << " speedup=" << r.speedup
            << "\n";
  records.push_back(std::move(r));
}

// Times one switch-sequence run of the fused kernel on `g`; returns the
// final objective so callers can cross-check runs on relaid-out copies.
double RunSwitchSequence(const graph::AugmentedGraph& g,
                         const std::vector<char>& init,
                         const std::vector<graph::NodeId>& seq, double k,
                         double* seconds_out) {
  const graph::NodeId n = g.NumNodes();
  const double gain_bound =
      std::max(1.0, static_cast<double>(g.MaxFriendshipDegree()) +
                        k * static_cast<double>(g.MaxRejectionDegree()));
  detect::Partition p(g, init);
  detect::BucketList bl(n, gain_bound, detect::KlConfig{}.gain_resolution);
  for (graph::NodeId v = 0; v < n; ++v) {
    bl.Insert(v, -p.DeltaObjective(v, k));
  }
  util::AlignedVector<graph::NodeId> touched;
  touched.reserve(static_cast<std::size_t>(g.MaxFriendshipDegree() +
                                           g.MaxRejectionDegree()));
  util::WallTimer t;
  for (graph::NodeId v : seq) {
    p.SwitchFused(v, k, bl, touched);
  }
  *seconds_out = t.Seconds();
  return p.Objective(k);
}

// The istringstream-based edge-list loader the string_view scanner
// replaced, kept verbatim as the text_load_old baseline (mirrors the
// kl_switch_old convention: old code lives on in the bench that proves the
// replacement's speedup).
graph::AugmentedGraph OldTextLoad(const std::string& friendships_path,
                                  const std::string& rejections_path) {
  graph::GraphBuilder builder;
  std::unordered_map<std::uint64_t, graph::NodeId> dense;
  std::vector<std::uint64_t> original;
  std::string context;
  auto intern = [&](std::uint64_t raw) -> graph::NodeId {
    auto [it, inserted] = dense.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      builder.AddNode();
      original.push_back(raw);
    }
    return it->second;
  };
  auto parse = [&](const std::string& path, bool friendships) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("OldTextLoad: cannot open " + path);
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      context = "LoadAugmentedGraph: " + path + " line " +
                std::to_string(lineno);
      std::istringstream ls(line);
      std::string a_tok, b_tok, extra_tok;
      if (!(ls >> a_tok >> b_tok)) {
        throw std::runtime_error(context + ": expected two node ids");
      }
      const std::uint64_t a = util::ParseU64Checked(a_tok, context);
      const std::uint64_t b = util::ParseU64Checked(b_tok, context);
      if (ls >> extra_tok) {
        throw std::runtime_error(context + ": trailing token '" + extra_tok +
                                 "' after edge");
      }
      if (a == b) continue;
      const graph::NodeId ua = intern(a);
      const graph::NodeId ub = intern(b);
      if (friendships) {
        builder.AddFriendship(ua, ub);
      } else {
        builder.AddRejection(ua, ub);
      }
    }
  };
  parse(friendships_path, /*friendships=*/true);
  parse(rejections_path, /*friendships=*/false);
  return builder.BuildAugmented();
}

}  // namespace

void RunLayoutKernelProbe(const std::string& bench_name,
                          const graph::AugmentedGraph& g, bool fast) {
  const graph::NodeId n = g.NumNodes();
  if (n < 2) return;

  // Baseline: a deterministic Fisher–Yates shuffle of the ids — the "as
  // interned from a text file" order the layout subsystem exists to fix.
  // (Generator graphs are born in a friendly order, so comparing against g
  // itself would understate what relayout buys on real ingested data.)
  util::Rng rng(97);
  std::vector<graph::NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (graph::NodeId i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextUInt(i + 1)]);
  }
  const graph::Layout shuffle =
      graph::LayoutFromPermutation(std::move(perm));
  const graph::AugmentedGraph g_shuf = graph::ApplyLayout(g, shuffle);
  const graph::Layout bfs =
      graph::ComputeLayout(g_shuf, graph::LayoutPolicy::kBfs);
  const graph::AugmentedGraph g_bfs = graph::ApplyLayout(g_shuf, bfs);

  // One logical workload on both layouts: same init mask, same switch
  // sequence, translated into each graph's id space. The sequence is a
  // propagation-ordered sweep — the BFS visit order of the shuffled graph
  // from its highest-combined-degree hubs, truncated — because that is the
  // temporal shape of the detector's hot passes (a KL sweep chasing the
  // gain frontier, vote propagation): each switch lands next to the
  // previous one in graph distance. The layout under test decides whether
  // that graph-adjacency becomes address-adjacency. A uniform-random
  // sequence would instead measure a workload no vertex order can help.
  std::vector<char> init(n, 0);
  for (auto& c : init) c = rng.NextBool(0.35) ? 1 : 0;
  const std::vector<char> init_bfs = graph::MaskToLayout(bfs, init);
  std::vector<graph::NodeId> seq;
  seq.reserve(n);
  {
    std::vector<std::uint32_t> degree(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      degree[v] = g_shuf.Friendships().Degree(v) +
                  g_shuf.Rejections().InDegree(v) +
                  g_shuf.Rejections().OutDegree(v);
    }
    std::vector<graph::NodeId> order(n);
    std::iota(order.begin(), order.end(), graph::NodeId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return degree[a] > degree[b];
                     });
    std::vector<char> vis(n, 0);
    auto expand = [&](std::span<const graph::NodeId> row) {
      for (graph::NodeId w : row) {
        if (!vis[w]) {
          vis[w] = 1;
          seq.push_back(w);
        }
      }
    };
    for (graph::NodeId s : order) {
      if (vis[s]) continue;
      vis[s] = 1;
      std::size_t head = seq.size();
      seq.push_back(s);
      for (; head < seq.size(); ++head) {
        const graph::NodeId u = seq[head];
        expand(g_shuf.Friendships().Neighbors(u));
        expand(g_shuf.Rejections().Rejectees(u));
        expand(g_shuf.Rejections().Rejectors(u));
      }
    }
  }
  seq.resize(std::min<std::size_t>(seq.size(), fast ? 40'000 : 200'000));
  std::vector<graph::NodeId> seq_bfs(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    seq_bfs[i] = bfs.new_of_old[seq[i]];
  }

  const double k = 1.0;
  const int reps = fast ? 5 : 7;
  std::vector<double> shuf_samples, bfs_samples;
  for (int i = 0; i < reps; ++i) {
    // Alternate layouts across reps so machine noise hits both equally;
    // keep the best rep of each (the kernel is deterministic).
    double s = 0.0;
    const double shuf_obj = RunSwitchSequence(g_shuf, init, seq, k, &s);
    shuf_samples.push_back(s);
    const double bfs_obj = RunSwitchSequence(g_bfs, init_bfs, seq_bfs, k, &s);
    bfs_samples.push_back(s);
    if (shuf_obj != bfs_obj) {
      std::cerr << bench_name << ": LAYOUT KERNEL DIVERGED (" << shuf_obj
                << " vs " << bfs_obj << ")\n";
      std::abort();
    }
  }
  const double shuf_s =
      *std::min_element(shuf_samples.begin(), shuf_samples.end());
  const double bfs_s =
      *std::min_element(bfs_samples.begin(), bfs_samples.end());

  std::vector<KernelBenchRecord> records;
  const auto switches = static_cast<std::int64_t>(seq.size());
  PushKernelRecord(records, bench_name, "layout_identity", g, switches,
                   shuf_s, MedianSeconds(shuf_samples), shuf_s);
  PushKernelRecord(records, bench_name, "layout_bfs", g, switches, bfs_s,
                   MedianSeconds(bfs_samples), shuf_s);
  AppendKernelBenchJson(records);
}

void RunSnapshotLoadProbe(const std::string& bench_name,
                          const graph::AugmentedGraph& g, bool fast) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("rejecto_probe_" + bench_name);
  fs::create_directories(dir);
  const std::string fr_path = (dir / "friendships.txt").string();
  const std::string rej_path = (dir / "rejections.txt").string();
  const std::string snap_path = (dir / "graph.snap").string();

  graph::SaveEdgeList(g.Friendships(), fr_path);
  {
    std::ofstream out(rej_path);
    out << "# Directed rejection arcs: " << g.NumNodes() << " nodes, "
        << g.Rejections().NumArcs() << " arcs\n";
    for (const graph::Arc& a : g.Rejections().Arcs()) {
      out << a.from << ' ' << a.to << '\n';
    }
  }
  graph::SaveSnapshot(snap_path, g);

  const std::int64_t items = static_cast<std::int64_t>(
      g.Friendships().NumEdges() + g.Rejections().NumArcs());
  const int reps = fast ? 2 : 3;
  std::vector<double> old_samples, new_samples, snap_samples;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer t_old;
    const graph::AugmentedGraph old_loaded = OldTextLoad(fr_path, rej_path);
    old_samples.push_back(t_old.Seconds());

    util::WallTimer t_new;
    const graph::LoadedAugmentedGraph loaded =
        graph::LoadAugmentedGraph(fr_path, rej_path);
    new_samples.push_back(t_new.Seconds());

    util::WallTimer t_snap;
    const graph::Snapshot snap = graph::LoadSnapshot(snap_path);
    snap_samples.push_back(t_snap.Seconds());

    // Both text loaders intern in the same order, so their graphs must be
    // CSR-identical; the snapshot must reproduce g exactly.
    if (loaded.graph != old_loaded) {
      std::cerr << bench_name << ": TEXT LOADER DIVERGED\n";
      std::abort();
    }
    if (snap.graph != g || !snap.layout.IsIdentity()) {
      std::cerr << bench_name << ": SNAPSHOT ROUND-TRIP DIVERGED\n";
      std::abort();
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);  // best-effort scratch cleanup

  const double old_s = *std::min_element(old_samples.begin(), old_samples.end());
  const double new_s = *std::min_element(new_samples.begin(), new_samples.end());
  const double snap_s =
      *std::min_element(snap_samples.begin(), snap_samples.end());
  std::vector<KernelBenchRecord> records;
  PushKernelRecord(records, bench_name, "text_load_old", g, items, old_s,
                   MedianSeconds(old_samples), old_s);
  PushKernelRecord(records, bench_name, "text_load", g, items, new_s,
                   MedianSeconds(new_samples), old_s);
  PushKernelRecord(records, bench_name, "snapshot_load", g, items, snap_s,
                   MedianSeconds(snap_samples), new_s);
  AppendKernelBenchJson(records);
}

void RunCompressedSnapshotProbe(const std::string& bench_name,
                                const graph::AugmentedGraph& g, bool fast) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("rejecto_cprobe_" + bench_name);
  fs::create_directories(dir);
  const std::string v1_path = (dir / "graph.snap").string();
  const std::string v2_path = (dir / "graph.snap2").string();

  // BFS relayout is the compressed format's target regime (neighbor ids
  // cluster, so the per-row deltas stay in the 1-byte varint range). Both
  // files store the same relaid id space, so the loads compare directly.
  graph::SnapshotOptions v1_opts;
  graph::SnapshotOptions v2_opts;
  v2_opts.format = graph::SnapshotFormat::kRjsnap02;
  graph::SaveSnapshotWithPolicy(v1_path, g, graph::LayoutPolicy::kBfs,
                                v1_opts);
  graph::SaveSnapshotWithPolicy(v2_path, g, graph::LayoutPolicy::kBfs,
                                v2_opts);

  const std::int64_t items = static_cast<std::int64_t>(
      g.Friendships().NumEdges() + g.Rejections().NumArcs());
  const int reps = fast ? 2 : 3;
  std::vector<double> v1_samples, v2_samples;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer t1;
    const graph::Snapshot s1 = graph::LoadSnapshot(v1_path);
    v1_samples.push_back(t1.Seconds());

    util::WallTimer t2;
    const graph::Snapshot s2 = graph::LoadSnapshot(v2_path);
    v2_samples.push_back(t2.Seconds());

    if (s1.graph != s2.graph || !(s1.layout == s2.layout)) {
      std::cerr << bench_name << ": RJSNAP02 LOAD DIVERGED FROM RJSNAP01\n";
      std::abort();
    }
  }

  const auto view = graph::CompressedGraphView::Open(v2_path);
  // The v1 adjacency payload is raw u32: both friendship directions plus
  // the out- and in-arc copies of every rejection.
  const std::uint64_t v1_adj_bytes =
      (2 * g.Friendships().NumEdges() + 2 * g.Rejections().NumArcs()) *
      sizeof(graph::NodeId);
  const double ratio = static_cast<double>(view.AdjacencyBlobBytes()) /
                       static_cast<double>(std::max<std::uint64_t>(
                           v1_adj_bytes, 1));
  std::cout << bench_name << ": rjsnap02 adjacency "
            << view.AdjacencyBlobBytes() << "B vs rjsnap01 " << v1_adj_bytes
            << "B (ratio " << ratio << ")\n";
  // Sanity floor only: the attack scenario carries adversarially scattered
  // rejection edges, so the hard <= 0.5x criterion lives with the
  // 100M-edge BFS-locality run (RunCompressedCeilingProbe); here the
  // encoding must simply never lose to raw u32.
  if (ratio >= 1.0) {
    std::cerr << bench_name << ": COMPRESSION DID NOT SHRINK ADJACENCY\n";
    std::abort();
  }

  // Full-pipeline bit-identity: the out-of-core detector against the
  // in-RAM one on the expanded snapshot, same seeds and config. Seed
  // quality is irrelevant here — only divergence is.
  const graph::Snapshot snap = graph::LoadSnapshot(v2_path);
  const graph::NodeId n = view.NumNodes();
  detect::Seeds seeds;
  if (n >= 16) {
    for (graph::NodeId i = 0; i < 8; ++i) seeds.legit.push_back(i);
    for (graph::NodeId i = n - 8; i < n; ++i) seeds.spammer.push_back(i);
  }
  detect::IterativeConfig cfg;
  cfg.maar.seed = 42 * 7919 + 13;
  cfg.maar.num_threads = util::ThreadCount();
  cfg.max_rounds = 2;
  cfg.target_detections = std::max<std::uint64_t>(1, n / 10);

  util::WallTimer t_ram;
  const detect::DetectionResult ram =
      detect::DetectFriendSpammers(snap.graph, seeds, cfg);
  const double ram_s = t_ram.Seconds();

  util::WallTimer t_mm;
  const detect::DetectionResult mm =
      detect::DetectFriendSpammersCompressed(view, seeds, cfg);
  const double mm_s = t_mm.Seconds();

  bool same = ram.detected == mm.detected &&
              ram.rounds.size() == mm.rounds.size();
  for (std::size_t r = 0; same && r < ram.rounds.size(); ++r) {
    const detect::RoundInfo& a = ram.rounds[r];
    const detect::RoundInfo& b = mm.rounds[r];
    same = a.detected == b.detected &&
           a.cut.cross_friendships == b.cut.cross_friendships &&
           a.cut.rejections_into_u == b.cut.rejections_into_u &&
           a.cut.rejections_from_u == b.cut.rejections_from_u && a.k == b.k;
  }
  if (!same) {
    std::cerr << bench_name << ": COMPRESSED DETECTION DIVERGED FROM RAM\n";
    std::abort();
  }

  const double v1_s =
      *std::min_element(v1_samples.begin(), v1_samples.end());
  const double v2_s =
      *std::min_element(v2_samples.begin(), v2_samples.end());
  std::vector<KernelBenchRecord> records;
  PushKernelRecord(records, bench_name, "snapshot_compressed_load", g, items,
                   v2_s, MedianSeconds(v2_samples), v1_s);
  records.back().mapped_bytes =
      static_cast<std::int64_t>(view.MappedBytes());
  PushKernelRecord(records, bench_name, "detect_ram", g, items, ram_s, ram_s,
                   ram_s);
  PushKernelRecord(records, bench_name, "detect_compressed", g, items, mm_s,
                   mm_s, ram_s);
  records.back().peak_rss_bytes = static_cast<std::int64_t>(PeakRssBytes());
  records.back().mapped_bytes =
      static_cast<std::int64_t>(view.MappedBytes());
  AppendKernelBenchJson(records);

  std::error_code ec;
  fs::remove_all(dir, ec);  // best-effort scratch cleanup
}

void RunCompressedCeilingProbe(const std::string& bench_name) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("rejecto_ceiling_" + bench_name);
  fs::create_directories(dir);
  const std::string path = (dir / "synthetic_100m.snap2").string();

  gen::StreamSnapshotConfig cfg;
  cfg.num_nodes = 12'500'000;
  cfg.friendship_stubs = 8;  // ~100M undirected edges
  cfg.rejection_stubs = 2;
  cfg.locality_window = 64;
  cfg.seed = util::ExperimentSeed();

  std::cout << bench_name
            << ": streaming ~100M-edge synthetic RJSNAP02 to scratch...\n";
  util::WallTimer t_gen;
  const gen::StreamSnapshotStats stats =
      gen::WriteSyntheticCompressedSnapshot(path, cfg);
  const double gen_s = t_gen.Seconds();
  std::cout << bench_name << ": wrote " << stats.num_edges << " edges, "
            << stats.num_arcs << " arcs, " << stats.file_bytes << "B in "
            << gen_s << "s\n";

  const long long budget_mb = util::GetEnvInt("REJECTO_RSS_BUDGET_MB", 600);
  const std::uint64_t baseline = PeakRssBytes();

  // The <= 0.5x compression acceptance bar, measured where the format is
  // designed to win: a BFS-locality graph (the generator's window keeps
  // deltas in the single-byte varint range, like a relaid social graph).
  const std::uint64_t v1_adj_bytes =
      (2 * stats.num_edges + 2 * stats.num_arcs) * sizeof(graph::NodeId);

  // Decode every block of every CSR, releasing the mmapped pages behind
  // the scan so residency stays bounded no matter how big the file is.
  util::WallTimer t_scan;
  const auto view = graph::CompressedGraphView::Open(path);
  const double ratio = static_cast<double>(view.AdjacencyBlobBytes()) /
                       static_cast<double>(std::max<std::uint64_t>(
                           v1_adj_bytes, 1));
  std::cout << bench_name << ": rjsnap02 adjacency "
            << view.AdjacencyBlobBytes() << "B vs rjsnap01 " << v1_adj_bytes
            << "B (ratio " << ratio << ")\n";
  if (ratio > 0.5) {
    std::cerr << bench_name
              << ": COMPRESSION RATIO EXCEEDS 0.5x ON BFS-LOCALITY GRAPH\n";
    std::abort();
  }
  util::AlignedVector<std::uint32_t> row_offsets;
  util::AlignedVector<graph::NodeId> adj;
  std::uint64_t checksum = 0;
  std::uint64_t release_floor = 0;
  constexpr std::uint64_t kReleaseChunk = 128ull << 20;
  for (int csr = 0; csr < 3; ++csr) {
    for (graph::NodeId b = 0; b < view.NumBlocks(); ++b) {
      view.DecodeBlockInto(csr, b, row_offsets, adj);
      checksum += adj.size() + (adj.empty() ? 0 : adj.back());
      std::uint64_t off = 0;
      std::uint64_t len = 0;
      view.BlockFileRange(csr, b, &off, &len);
      if (off > release_floor + kReleaseChunk) {
        view.Bytes().ReleaseRange(release_floor, off - release_floor);
        release_floor = off;
      }
    }
  }
  const double scan_s = t_scan.Seconds();
  const std::uint64_t peak = PeakRssBytes();
  const std::uint64_t grew = peak > baseline ? peak - baseline : 0;
  std::cout << bench_name << ": scanned all blocks in " << scan_s
            << "s (checksum=" << checksum << "), RSS grew "
            << (grew >> 20) << "MB over baseline (budget " << budget_mb
            << "MB, peak " << (peak >> 20) << "MB)\n";
  if (grew > static_cast<std::uint64_t>(budget_mb) << 20) {
    std::cerr << bench_name << ": 100M-EDGE SCAN EXCEEDED "
              << budget_mb << "MB RSS BUDGET\n";
    std::abort();
  }

  KernelBenchRecord r;
  r.bench = bench_name;
  r.kernel = "compressed_scan_100m";
  r.users = static_cast<std::int64_t>(cfg.num_nodes);
  r.edges = static_cast<std::int64_t>(stats.num_edges);
  r.items = static_cast<std::int64_t>(stats.num_edges + stats.num_arcs);
  r.seconds = scan_s;
  r.seconds_median = scan_s;
  r.throughput = static_cast<double>(r.items) / std::max(scan_s, 1e-9);
  r.speedup = 1.0;
  r.peak_rss_bytes = static_cast<std::int64_t>(peak);
  r.mapped_bytes = static_cast<std::int64_t>(view.MappedBytes());
  std::cout << bench_name << " kernel=" << r.kernel << " users=" << r.users
            << " items=" << r.items << " seconds=" << r.seconds
            << " throughput=" << r.throughput << "\n";
  AppendKernelBenchJson({r});

  std::error_code ec;
  fs::remove_all(dir, ec);  // best-effort scratch cleanup
}

}  // namespace rejecto::bench
