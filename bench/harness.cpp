#include "harness.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "baseline/votetrust.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "util/flags.h"
#include "util/timer.h"

namespace rejecto::bench {

ExperimentContext ExperimentContext::FromEnv() {
  ExperimentContext ctx;
  ctx.fast = util::FastBenchMode();
  ctx.seed = util::ExperimentSeed();
  ctx.csv_dir = util::GetEnvString("REJECTO_CSV_DIR");
  return ctx;
}

void ExperimentContext::Emit(const std::string& id, const std::string& title,
                             const util::Table& table) const {
  table.PrintWithTitle(title);
  if (csv_dir) {
    std::filesystem::create_directories(*csv_dir);
    std::ofstream out(*csv_dir + "/" + id + ".csv");
    table.WriteCsv(out);
  }
}

sim::ScenarioConfig PaperAttackConfig(const ExperimentContext& ctx) {
  sim::ScenarioConfig cfg;
  cfg.seed = ctx.seed;
  cfg.num_fakes = ctx.fast ? 2'000 : 10'000;
  cfg.intra_fake_links_per_account = 6;
  cfg.spamming_fraction = 1.0;
  cfg.requests_per_spammer = 20;
  cfg.spam_rejection_rate = 0.7;
  cfg.legit_rejection_rate = 0.2;
  cfg.careless_fraction = 0.15;
  return cfg;
}

detect::IterativeConfig PaperDetectorConfig(const ExperimentContext& ctx,
                                            std::uint64_t target) {
  detect::IterativeConfig cfg;
  cfg.target_detections = target;
  cfg.maar.seed = ctx.seed * 7919 + 13;
  // REJECTO_THREADS (0 = hardware); bit-identical results either way, so
  // every bench may run its sweeps parallel by default.
  cfg.maar.num_threads = util::ThreadCount();
  return cfg;
}

const graph::SocialGraph& Dataset(const std::string& name,
                                  const ExperimentContext& ctx) {
  static std::map<std::string, graph::SocialGraph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, gen::MakeDataset(name, ctx.seed)).first;
  }
  return it->second;
}

DetectorScores RunBothDetectors(const sim::Scenario& scenario,
                                const ExperimentContext& ctx) {
  util::Rng seed_rng(ctx.seed ^ 0x5eedbeefULL);
  const graph::NodeId n_legit_seeds = ctx.fast ? 40 : 100;
  const graph::NodeId n_spam_seeds = ctx.fast ? 10 : 30;
  const auto seeds =
      scenario.SampleSeeds(n_legit_seeds, n_spam_seeds, seed_rng);

  DetectorScores out;
  {
    util::WallTimer t;
    const auto cfg = PaperDetectorConfig(ctx, scenario.num_fakes);
    const auto result =
        detect::DetectFriendSpammers(scenario.graph, seeds, cfg);
    out.rejecto_seconds = t.Seconds();
    out.rejecto_rounds = static_cast<int>(result.rounds.size());
    out.rejecto =
        metrics::EvaluateDetection(scenario.is_fake, result.detected)
            .Precision();
  }
  {
    baseline::VoteTrustConfig cfg;
    cfg.trust_seeds = seeds.legit;
    const auto vt = baseline::RunVoteTrust(scenario.log, cfg);
    out.votetrust =
        metrics::EvaluateDetection(
            scenario.is_fake,
            metrics::LowestScored(vt.ratings, scenario.num_fakes))
            .Precision();
  }
  return out;
}

std::vector<double> Sweep(std::vector<double> full,
                          const ExperimentContext& ctx) {
  if (!ctx.fast || full.size() <= 3) return full;
  // Keep first, middle, last.
  return {full.front(), full[full.size() / 2], full.back()};
}

std::vector<std::string> AppendixDatasets(const ExperimentContext& ctx) {
  if (ctx.fast) return {"ca-HepTh"};
  return {"ca-HepTh",      "ca-AstroPh",  "email-Enron",
          "soc-Epinions",  "soc-Slashdot", "synthetic"};
}

namespace {

// Reopens the flat JSON array in <REJECTO_JSON_DIR or cwd>/BENCH_maar.json
// and appends the pre-rendered record objects (one per string, no leading
// whitespace or trailing comma).
void AppendBenchJsonRecords(const std::vector<std::string>& rendered) {
  if (rendered.empty()) return;
  const std::string dir =
      util::GetEnvString("REJECTO_JSON_DIR").value_or(".");
  const std::string path = dir + "/BENCH_maar.json";

  std::string existing;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    existing = ss.str();
  }
  auto rtrim = [](std::string& s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.pop_back();
    }
  };
  rtrim(existing);

  std::ostringstream body;
  bool first = true;
  if (!existing.empty() && existing.front() == '[' &&
      existing.back() == ']') {
    existing.pop_back();  // reopen the array to append
    rtrim(existing);
    body << existing;
    first = existing == "[";
  } else {
    body << "[";  // missing or malformed: start fresh
  }
  for (const auto& r : rendered) {
    if (!first) body << ",";
    first = false;
    body << "\n  " << r;
  }
  body << "\n]\n";
  std::ofstream out(path, std::ios::trunc);
  out << body.str();
}

}  // namespace

void AppendMaarBenchJson(const std::vector<MaarBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"users\": " << r.users
       << ", \"edges\": " << r.edges << ", \"threads\": " << r.threads
       << ", \"seconds\": " << r.seconds << ", \"kl_runs\": " << r.kl_runs
       << ", \"speedup\": " << r.speedup << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void AppendKernelBenchJson(const std::vector<KernelBenchRecord>& records) {
  std::vector<std::string> rendered;
  rendered.reserve(records.size());
  for (const auto& r : records) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"bench\": \"" << r.bench << "\", \"kernel\": \"" << r.kernel
       << "\", \"users\": " << r.users << ", \"edges\": " << r.edges
       << ", \"items\": " << r.items << ", \"seconds\": " << r.seconds
       << ", \"throughput\": " << r.throughput
       << ", \"speedup\": " << r.speedup << "}";
    rendered.push_back(os.str());
  }
  AppendBenchJsonRecords(rendered);
}

void RunMaarSpeedupProbe(const std::string& bench_name,
                         const graph::AugmentedGraph& g,
                         detect::MaarConfig config,
                         const std::vector<int>& threads_list) {
  std::vector<MaarBenchRecord> records;
  double serial_seconds = 0.0;
  std::vector<char> reference_mask;
  for (int t : threads_list) {
    config.num_threads = t;
    detect::MaarSolver solver(g, {}, config);
    const detect::MaarCut cut = solver.Solve();
    if (records.empty()) {
      serial_seconds = cut.total_seconds;
      reference_mask = cut.in_u;
    } else if (cut.in_u != reference_mask) {
      std::cerr << bench_name << ": PARALLEL SWEEP DETERMINISM VIOLATION at "
                << t << " threads\n";
      std::abort();
    }
    MaarBenchRecord r;
    r.bench = bench_name;
    r.users = static_cast<std::int64_t>(g.NumNodes());
    r.edges = static_cast<std::int64_t>(g.Friendships().NumEdges());
    r.threads = t;
    r.seconds = cut.total_seconds;
    r.kl_runs = cut.kl_runs;
    r.speedup = serial_seconds / std::max(cut.total_seconds, 1e-9);
    std::cout << bench_name << " MAAR sweep: users=" << r.users
              << " threads=" << t << " seconds=" << r.seconds
              << " kl_runs=" << r.kl_runs << " speedup=" << r.speedup
              << "\n";
    records.push_back(std::move(r));
  }
  AppendMaarBenchJson(records);
}

}  // namespace rejecto::bench
