// EXTENSION (beyond the paper's figures): §II-B's argument that per-user
// ML classifiers are insufficient, quantified.
//
// Three individual-signal detectors vs Rejecto under the collusion sweep
// of Fig 13 (intra-fake accepted edges 4 → 40):
//   * naive acceptance-rate filter (the [16]/[36] strawman)
//   * logistic regression on six per-user behaviour features, trained on
//     the same seeds Rejecto gets ([36]-style, retrained per scenario)
//   * Rejecto (aggregate acceptance-rate cut)
// Collusion lifts every fake's individual acceptance rate, so the
// individual-signal detectors degrade; the aggregate cut does not.
#include <iostream>
#include <optional>

#include "baseline/acceptance_filter.h"
#include "baseline/feature_classifier.h"
#include "harness.h"
#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"intra_fake_edges", "acceptance_filter",
                 "ml_retrained", "ml_stale", "rejecto"});
  t.set_precision(4);

  // The "stale" classifier is trained once on the honest workload
  // (4 intra edges) and then applied unchanged as the attacker adapts —
  // the "extensive calibration efforts" liability of SII-B.
  std::optional<baseline::FeatureClassifier> stale_clf;
  {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.intra_fake_links_per_account = 4;
    const auto honest = sim::BuildScenario(legit, cfg);
    util::Rng seed_rng(ctx.seed ^ 0x111c1a55ULL);
    const auto seeds =
        honest.SampleSeeds(ctx.fast ? 40 : 100, ctx.fast ? 10 : 30,
                           seed_rng);
    stale_clf.emplace(baseline::ExtractUserFeatures(honest.log), seeds,
                      baseline::FeatureClassifierConfig{});
  }

  for (double edges : bench::Sweep({4, 12, 20, 28, 40}, ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.intra_fake_links_per_account = static_cast<std::uint32_t>(edges);
    const auto scenario = sim::BuildScenario(legit, cfg);
    util::Rng seed_rng(ctx.seed ^ 0x111c1a55ULL);
    const auto seeds =
        scenario.SampleSeeds(ctx.fast ? 40 : 100, ctx.fast ? 10 : 30,
                             seed_rng);

    const auto filter_scores =
        baseline::AcceptanceRateScores(scenario.log, {});
    const double p_filter =
        metrics::EvaluateDetection(
            scenario.is_fake,
            metrics::LowestScored(filter_scores, scenario.num_fakes))
            .Precision();

    const auto feats = baseline::ExtractUserFeatures(scenario.log);
    const baseline::FeatureClassifier clf(feats, seeds, {});
    const double p_ml =
        metrics::EvaluateDetection(
            scenario.is_fake,
            metrics::LowestScored(clf.TrustScores(feats),
                                  scenario.num_fakes))
            .Precision();
    const double p_stale =
        metrics::EvaluateDetection(
            scenario.is_fake,
            metrics::LowestScored(stale_clf->TrustScores(feats),
                                  scenario.num_fakes))
            .Precision();

    const auto dcfg = bench::PaperDetectorConfig(ctx, scenario.num_fakes);
    const auto detection =
        detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);
    const double p_rejecto =
        metrics::EvaluateDetection(scenario.is_fake, detection.detected)
            .Precision();

    t.AddRow({static_cast<std::int64_t>(edges), p_filter, p_ml, p_stale,
              p_rejecto});
  }
  ctx.Emit("ext_ml_classifier",
           "Extension: per-user signals vs the aggregate cut under"
           " collusion (SII-B)",
           t);
  std::cout << "\nExpected: the acceptance filter collapses under collusion;"
               " a classifier retrained per attack partly adapts (leaning on"
               " degree features), but the stale model calibrated on the"
               " honest workload degrades - the SII-B calibration liability."
               " Rejecto needs no training and stays flat.\n";
  return 0;
}
