// EXTENSION (beyond the paper's figures): the negative-feedback design
// space the paper argues about in §VIII related work.
//
// Three ways to use rejections against Sybils, on the same attack:
//   1. SybilRank alone           — ignores rejections entirely [15]
//   2. SybilFence                — per-node trust discounts from negative
//                                  feedback, Rejecto's predecessor [16]
//   3. Rejecto + SybilRank       — cut out friend spammers first, then
//                                  rank the residual graph (§VI-D)
// Swept over the spam volume (requests per spammer = attack edges), the
// axis that pollutes ranking-based defenses: every accepted request is an
// attack edge leaking trust into the Sybil region. SybilFence's discounts
// resist partially (spammers carry rejections), but only removing the
// spammers restores the small-cut assumption outright.
#include <iostream>

#include "baseline/sybilfence.h"
#include "baseline/sybilrank.h"
#include "graph/subgraph.h"
#include "harness.h"
#include "metrics/ranking.h"
#include "util/table.h"

namespace {

using namespace rejecto;

double AucOf(const std::vector<double>& scores,
             const std::vector<char>& is_fake) {
  return metrics::AreaUnderRoc(scores, is_fake);
}

}  // namespace

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"requests_per_spammer", "sybilrank_auc", "sybilfence_auc",
                 "rejecto+sybilrank_auc"});
  t.set_precision(4);

  for (double req : bench::Sweep({20, 40, 60, 80, 100}, ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.spamming_fraction = 0.5;
    cfg.requests_per_spammer = static_cast<std::uint32_t>(req);
    const auto scenario = sim::BuildScenario(legit, cfg);

    util::Rng seed_rng(ctx.seed ^ 0xfe11beadULL);
    const auto seeds =
        scenario.SampleSeeds(ctx.fast ? 40 : 100, ctx.fast ? 10 : 30,
                             seed_rng);

    baseline::SybilRankConfig sr;
    sr.trust_seeds = seeds.legit;
    const double auc_rank =
        AucOf(baseline::RunSybilRank(scenario.graph.Friendships(), sr),
              scenario.is_fake);

    baseline::SybilFenceConfig sf;
    sf.trust_seeds = seeds.legit;
    const double auc_fence =
        AucOf(baseline::RunSybilFence(scenario.graph, sf), scenario.is_fake);

    // Rejecto removes the spamming half, SybilRank ranks the residual.
    auto dcfg = bench::PaperDetectorConfig(ctx, scenario.num_fakes / 2);
    const auto detection =
        detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);
    std::vector<char> keep(scenario.NumNodes(), 1);
    for (graph::NodeId v : detection.detected) keep[v] = 0;
    const auto residual = graph::InducedSubgraph(scenario.graph, keep);
    baseline::SybilRankConfig sr2;
    {
      std::vector<graph::NodeId> new_id(scenario.NumNodes(),
                                        graph::kInvalidNode);
      for (graph::NodeId nid = 0;
           nid < static_cast<graph::NodeId>(residual.parent_id.size());
           ++nid) {
        new_id[residual.parent_id[nid]] = nid;
      }
      for (graph::NodeId s : seeds.legit) {
        if (new_id[s] != graph::kInvalidNode) {
          sr2.trust_seeds.push_back(new_id[s]);
        }
      }
    }
    std::vector<char> residual_fake(residual.parent_id.size(), 0);
    for (std::size_t nid = 0; nid < residual.parent_id.size(); ++nid) {
      residual_fake[nid] = scenario.is_fake[residual.parent_id[nid]];
    }
    const double auc_rejecto =
        AucOf(baseline::RunSybilRank(residual.graph.Friendships(), sr2),
              residual_fake);

    t.AddRow({static_cast<std::int64_t>(req), auc_rank, auc_fence,
              auc_rejecto});
  }
  ctx.Emit("ext_negative_feedback",
           "Extension: negative-feedback design space under rising spam"
           " volume (SybilRank vs SybilFence vs Rejecto+SybilRank)",
           t);
  std::cout << "\nExpected: SybilRank degrades as attack edges multiply;"
               " SybilFence resists partially via rejection discounts; only"
               " Rejecto+SybilRank stays near 1.0.\n";
  return 0;
}
