// Figure 18 (appendix B): the three strategy-resilience sweeps of §VI-C on
// the six non-facebook graphs — columns: (a) collusion, (b) self-rejection,
// (c) legitimate requests rejected by Sybils.
//
// Paper shape: same trends as Figs 13-15 on every graph. 3-point sweeps per
// column by default; REJECTO_FIG18_FULL=1 restores dense sweeps.
#include <iostream>

#include "harness.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace rejecto;

std::vector<double> Thin(std::vector<double> full, bool full_sweep) {
  if (full_sweep) return full;
  return {full.front(), full[full.size() / 2], full.back()};
}

}  // namespace

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();
  const bool full_sweep = util::GetEnvBool("REJECTO_FIG18_FULL", false);

  util::Table t({"graph", "scenario", "x", "rejecto", "votetrust"});
  t.set_precision(4);

  for (const std::string& name : bench::AppendixDatasets(ctx)) {
    const auto& legit = bench::Dataset(name, ctx);
    const auto base = bench::PaperAttackConfig(ctx);
    const double scale = static_cast<double>(base.num_fakes) / 10'000.0;

    // (a) collusion: intra-fake accepted edges per account.
    for (double edges : Thin({4, 12, 20, 28, 40}, full_sweep)) {
      auto cfg = base;
      cfg.intra_fake_links_per_account = static_cast<std::uint32_t>(edges);
      const auto r =
          bench::RunBothDetectors(sim::BuildScenario(legit, cfg), ctx);
      t.AddRow({name, std::string("a:collusion"), edges, r.rejecto,
                r.votetrust});
    }
    // (b) self-rejection whitewash.
    for (double rate : Thin({0.05, 0.5, 0.95}, full_sweep)) {
      auto cfg = base;
      cfg.whitewashed_fakes = cfg.num_fakes / 2;
      cfg.self_rejection_rate = rate;
      const auto r =
          bench::RunBothDetectors(sim::BuildScenario(legit, cfg), ctx);
      t.AddRow({name, std::string("b:self_rejection"), rate, r.rejecto,
                r.votetrust});
    }
    // (c) rejections of legitimate requests by Sybils (x in thousands at
    // paper scale, scaled with the fake population).
    for (double k_rej : Thin({16, 80, 160}, full_sweep)) {
      auto cfg = base;
      cfg.legit_requests_rejected_by_fakes =
          static_cast<std::uint64_t>(k_rej * 1000.0 * scale);
      const auto r =
          bench::RunBothDetectors(sim::BuildScenario(legit, cfg), ctx);
      t.AddRow({name, std::string("c:reject_legit(K)"), k_rej, r.rejecto,
                r.votetrust});
    }
  }
  ctx.Emit("fig18",
           "Figure 18: strategy resilience on the six appendix graphs", t);
  std::cout << "\nShape check: per graph, same trends as Figs 13-15.\n";
  return 0;
}
