// Table I: the social graphs used in the simulation — nodes, edges,
// clustering coefficient, diameter.
//
// Paper values are reproduced side by side with the synthesized graphs'
// measured statistics (DESIGN.md substitution #1: generators calibrated to
// the published node/edge/clustering figures; diameters of growth models
// are smaller than the crawled graphs' — reported, not matched).
#include <iostream>

#include "graph/stats.h"
#include "harness.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();

  util::Table t({"graph", "nodes", "edges(paper)", "edges(ours)",
                 "clustering(paper)", "clustering(ours)", "diam(paper)",
                 "diam(ours>=)"});
  t.set_precision(4);

  for (const auto& spec : gen::TableOneDatasets()) {
    if (ctx.fast && spec.nodes > 40'000) continue;
    const auto& g = bench::Dataset(spec.name, ctx);
    util::Rng rng(ctx.seed + 1);
    const double cc = graph::AverageClusteringCoefficient(g);
    const auto diam = graph::EstimateDiameter(g, ctx.fast ? 4 : 12, rng);
    t.AddRow({spec.name, static_cast<std::int64_t>(g.NumNodes()),
              static_cast<std::int64_t>(spec.paper_edges),
              static_cast<std::int64_t>(g.NumEdges()),
              spec.paper_clustering, cc,
              static_cast<std::int64_t>(spec.paper_diameter),
              static_cast<std::int64_t>(diam)});
  }
  ctx.Emit("table1", "Table I: simulation social graphs (paper vs measured)",
           t);
  return 0;
}
