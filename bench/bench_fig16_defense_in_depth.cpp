// Figure 16: defense in depth with social-graph-based Sybil detection —
// SybilRank's area under the ROC curve as a function of the number of
// suspicious accounts removed by Rejecto, on the facebook and ca-AstroPh
// graphs. The attack plants 10K Sybils of which 5K send 20 spam requests
// each at 70% rejection.
//
// Paper shape: SybilRank's AUC climbs toward ~1 as Rejecto's removals
// approach the 5K spamming accounts — removing the friend spammers strips
// most attack edges, restoring the small-cut assumption social-graph
// defenses need.
#include <iostream>
#include <memory>

#include "baseline/sybilrank.h"
#include "graph/builder.h"
#include "graph/subgraph.h"
#include "harness.h"
#include "metrics/ranking.h"
#include "serve/admission.h"
#include "serve/policy.h"
#include "sim/stream_feed.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace rejecto;

double SybilRankAuc(const sim::Scenario& scenario,
                    const std::vector<graph::NodeId>& removed,
                    const std::vector<graph::NodeId>& trust_seeds) {
  std::vector<char> keep(scenario.NumNodes(), 1);
  for (graph::NodeId v : removed) keep[v] = 0;
  const auto residual = graph::InducedSubgraph(scenario.graph, keep);

  std::vector<graph::NodeId> new_id(scenario.NumNodes(), graph::kInvalidNode);
  for (graph::NodeId nid = 0;
       nid < static_cast<graph::NodeId>(residual.parent_id.size()); ++nid) {
    new_id[residual.parent_id[nid]] = nid;
  }
  baseline::SybilRankConfig cfg;
  for (graph::NodeId s : trust_seeds) {
    if (new_id[s] != graph::kInvalidNode) {
      cfg.trust_seeds.push_back(new_id[s]);
    }
  }
  const auto scores = baseline::RunSybilRank(residual.graph.Friendships(), cfg);
  std::vector<char> residual_fake(residual.parent_id.size(), 0);
  for (std::size_t nid = 0; nid < residual.parent_id.size(); ++nid) {
    residual_fake[nid] = scenario.is_fake[residual.parent_id[nid]];
  }
  return metrics::AreaUnderRoc(scores, residual_fake);
}

}  // namespace

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();

  util::Table t({"graph", "pollution", "removed_by_rejecto",
                 "sybilrank_auc"});
  t.set_precision(4);

  // Two pollution levels: the paper's exact workload (20 requests per
  // spammer), and a heavy variant (50). On our synthesized graphs the
  // intra-fake arrival links inflate fake degrees enough that
  // degree-normalized SybilRank already ranks well at the paper's level
  // (AUC ~0.99 before removal); the heavy variant restores the paper's
  // low starting point so the improvement curve is visible. Both rows show
  // the same monotone AUC -> ~1 shape (see EXPERIMENTS.md).
  for (const std::string name : {"facebook", "ca-AstroPh"}) {
    if (ctx.fast && name == "ca-AstroPh") continue;
    const auto& legit = bench::Dataset(name, ctx);

    for (const std::uint32_t requests : {20u, 50u}) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.spamming_fraction = 0.5;           // 5K of the 10K Sybils spam
    cfg.requests_per_spammer = requests;
    const auto scenario = sim::BuildScenario(legit, cfg);

    util::Rng seed_rng(ctx.seed ^ 0x16161616ULL);
    const auto seeds =
        scenario.SampleSeeds(ctx.fast ? 40 : 100, ctx.fast ? 10 : 30,
                             seed_rng);

    // One full Rejecto run up to the spamming-half target; removal prefixes
    // give the x-axis points.
    const std::uint64_t max_removed = scenario.num_fakes / 2;
    auto dcfg = bench::PaperDetectorConfig(ctx, max_removed);
    const auto detection =
        detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);

    const std::vector<double> fractions =
        ctx.fast ? std::vector<double>{0.0, 0.5, 1.0}
                 : std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
    for (double f : fractions) {
      const auto count = static_cast<std::size_t>(
          f * static_cast<double>(detection.detected.size()));
      std::vector<graph::NodeId> removed(detection.detected.begin(),
                                         detection.detected.begin() +
                                             static_cast<std::ptrdiff_t>(count));
      t.AddRow({name,
                requests == 20 ? std::string("paper(20req)")
                               : std::string("heavy(50req)"),
                static_cast<std::int64_t>(count),
                SybilRankAuc(scenario, removed, seeds.legit)});
    }
    }
  }
  ctx.Emit("fig16",
           "Figure 16: SybilRank ranking quality vs accounts removed by"
           " Rejecto",
           t);
  std::cout << "\nShape check: AUC rises toward ~1 as removals approach the"
               " spamming population.\n";

  // Serving-mode layer of the same defense-in-depth story: instead of
  // removing detected accounts after the fact, run the attack stream
  // through the online admission service (serve/) with the layered policy
  // chain — per-sender token bucket in front of the epoch score threshold —
  // and measure what each layer does to fake vs legit senders at decision
  // time. Appended to BENCH_maar.json as an "admission_fig16_serving"
  // record alongside the figure.
  {
    const auto& legit = bench::Dataset("facebook", ctx);
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.spamming_fraction = 0.5;
    const auto scenario = sim::BuildScenario(legit, cfg);
    const stream::MutationLog log = sim::ToMutationLog(scenario.log);
    util::Rng seed_rng(ctx.seed ^ 0x5e71ceULL);
    const auto seeds =
        scenario.SampleSeeds(ctx.fast ? 40 : 100, ctx.fast ? 10 : 30,
                             seed_rng);

    serve::AdmissionConfig scfg;
    scfg.epoch.detect =
        bench::PaperDetectorConfig(ctx, scenario.num_fakes / 2);
    scfg.epoch.events_per_epoch = log.NumEvents() / 2 + 1;
    scfg.grey_margin = 2.0;
    serve::AdmissionService svc(
        graph::GraphBuilder(log.NumNodes()).BuildAugmented(), seeds, scfg);
    serve::TokenBucketConfig tb;
    tb.capacity = 20.0;
    tb.refill_per_tick = 1.0;
    tb.on_limit = serve::Verdict::kGrey;
    tb.num_senders = static_cast<std::size_t>(log.NumNodes());
    svc.AddPolicy(std::make_unique<serve::TokenBucketPolicy>(tb));

    auto reader = svc.CreateReader();
    util::WallTimer ingest_timer;
    for (const stream::Event& e : log.Events()) svc.Submit(e);
    svc.Drain();
    const double ingest_seconds = ingest_timer.Seconds();
    svc.ForceEpoch();

    // One post-epoch admission decision per account (logical time = one
    // tick per sweep, so the bucket layer only fires on senders the stream
    // itself saturated — none here; the score layer carries the load).
    std::int64_t fake_rejected = 0, fake_greyed = 0, fake_admitted = 0;
    std::int64_t legit_rejected = 0, legit_greyed = 0, legit_admitted = 0;
    util::WallTimer decide_timer;
    for (graph::NodeId s = 0; s < scenario.NumNodes(); ++s) {
      const serve::Decision d = reader.Decide(s, 1);
      const bool fake = scenario.is_fake[s] != 0;
      switch (d.verdict) {
        case serve::Verdict::kReject: (fake ? fake_rejected
                                            : legit_rejected)++; break;
        case serve::Verdict::kGrey: (fake ? fake_greyed
                                          : legit_greyed)++; break;
        case serve::Verdict::kAdmit: (fake ? fake_admitted
                                           : legit_admitted)++; break;
      }
    }
    const double decide_seconds = decide_timer.Seconds();

    util::Table st({"senders", "verdict", "count"});
    st.AddRow({std::string("fake"), std::string("reject"), fake_rejected});
    st.AddRow({std::string("fake"), std::string("grey"), fake_greyed});
    st.AddRow({std::string("fake"), std::string("admit"), fake_admitted});
    st.AddRow({std::string("legit"), std::string("reject"), legit_rejected});
    st.AddRow({std::string("legit"), std::string("grey"), legit_greyed});
    st.AddRow({std::string("legit"), std::string("admit"), legit_admitted});
    ctx.Emit("fig16_serving",
             "Figure 16 (serving mode): admission verdicts by sender class"
             " under the token-bucket + score-threshold chain",
             st);

    const serve::AdmissionStats stats = svc.Stats();
    bench::AdmissionBenchRecord rec;
    rec.bench = "bench_fig16_defense_in_depth";
    rec.admission = "admission_fig16_serving";
    rec.reclaim = serve::ReclaimModeName(scfg.reclaim);
    rec.readers = 1;
    rec.users = static_cast<std::int64_t>(log.NumNodes());
    rec.events = static_cast<std::int64_t>(stats.events_ingested);
    rec.decisions = static_cast<std::int64_t>(reader.Decisions());
    rec.epochs = static_cast<std::int64_t>(stats.epochs_published);
    rec.decisions_per_sec =
        static_cast<double>(reader.Decisions()) / decide_seconds;
    rec.ingest_events_per_sec =
        static_cast<double>(stats.events_ingested) / ingest_seconds;
    rec.epoch_publish_stall_seconds =
        stats.epochs_published > 0
            ? stats.snapshot_seconds_total /
                  static_cast<double>(stats.epochs_published)
            : 0.0;
    rec.detect_seconds = stats.last_detect_seconds;
    rec.p50_ns = static_cast<std::int64_t>(reader.Latency().P50());
    rec.p95_ns = static_cast<std::int64_t>(reader.Latency().P95());
    rec.p99_ns = static_cast<std::int64_t>(reader.Latency().P99());
    bench::AppendAdmissionBenchJson({rec});
  }
  return 0;
}
