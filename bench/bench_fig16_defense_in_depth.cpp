// Figure 16: defense in depth with social-graph-based Sybil detection —
// SybilRank's area under the ROC curve as a function of the number of
// suspicious accounts removed by Rejecto, on the facebook and ca-AstroPh
// graphs. The attack plants 10K Sybils of which 5K send 20 spam requests
// each at 70% rejection.
//
// Paper shape: SybilRank's AUC climbs toward ~1 as Rejecto's removals
// approach the 5K spamming accounts — removing the friend spammers strips
// most attack edges, restoring the small-cut assumption social-graph
// defenses need.
#include <iostream>

#include "baseline/sybilrank.h"
#include "graph/subgraph.h"
#include "harness.h"
#include "metrics/ranking.h"
#include "util/table.h"

namespace {

using namespace rejecto;

double SybilRankAuc(const sim::Scenario& scenario,
                    const std::vector<graph::NodeId>& removed,
                    const std::vector<graph::NodeId>& trust_seeds) {
  std::vector<char> keep(scenario.NumNodes(), 1);
  for (graph::NodeId v : removed) keep[v] = 0;
  const auto residual = graph::InducedSubgraph(scenario.graph, keep);

  std::vector<graph::NodeId> new_id(scenario.NumNodes(), graph::kInvalidNode);
  for (graph::NodeId nid = 0;
       nid < static_cast<graph::NodeId>(residual.parent_id.size()); ++nid) {
    new_id[residual.parent_id[nid]] = nid;
  }
  baseline::SybilRankConfig cfg;
  for (graph::NodeId s : trust_seeds) {
    if (new_id[s] != graph::kInvalidNode) {
      cfg.trust_seeds.push_back(new_id[s]);
    }
  }
  const auto scores = baseline::RunSybilRank(residual.graph.Friendships(), cfg);
  std::vector<char> residual_fake(residual.parent_id.size(), 0);
  for (std::size_t nid = 0; nid < residual.parent_id.size(); ++nid) {
    residual_fake[nid] = scenario.is_fake[residual.parent_id[nid]];
  }
  return metrics::AreaUnderRoc(scores, residual_fake);
}

}  // namespace

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();

  util::Table t({"graph", "pollution", "removed_by_rejecto",
                 "sybilrank_auc"});
  t.set_precision(4);

  // Two pollution levels: the paper's exact workload (20 requests per
  // spammer), and a heavy variant (50). On our synthesized graphs the
  // intra-fake arrival links inflate fake degrees enough that
  // degree-normalized SybilRank already ranks well at the paper's level
  // (AUC ~0.99 before removal); the heavy variant restores the paper's
  // low starting point so the improvement curve is visible. Both rows show
  // the same monotone AUC -> ~1 shape (see EXPERIMENTS.md).
  for (const std::string name : {"facebook", "ca-AstroPh"}) {
    if (ctx.fast && name == "ca-AstroPh") continue;
    const auto& legit = bench::Dataset(name, ctx);

    for (const std::uint32_t requests : {20u, 50u}) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.spamming_fraction = 0.5;           // 5K of the 10K Sybils spam
    cfg.requests_per_spammer = requests;
    const auto scenario = sim::BuildScenario(legit, cfg);

    util::Rng seed_rng(ctx.seed ^ 0x16161616ULL);
    const auto seeds =
        scenario.SampleSeeds(ctx.fast ? 40 : 100, ctx.fast ? 10 : 30,
                             seed_rng);

    // One full Rejecto run up to the spamming-half target; removal prefixes
    // give the x-axis points.
    const std::uint64_t max_removed = scenario.num_fakes / 2;
    auto dcfg = bench::PaperDetectorConfig(ctx, max_removed);
    const auto detection =
        detect::DetectFriendSpammers(scenario.graph, seeds, dcfg);

    const std::vector<double> fractions =
        ctx.fast ? std::vector<double>{0.0, 0.5, 1.0}
                 : std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
    for (double f : fractions) {
      const auto count = static_cast<std::size_t>(
          f * static_cast<double>(detection.detected.size()));
      std::vector<graph::NodeId> removed(detection.detected.begin(),
                                         detection.detected.begin() +
                                             static_cast<std::ptrdiff_t>(count));
      t.AddRow({name,
                requests == 20 ? std::string("paper(20req)")
                               : std::string("heavy(50req)"),
                static_cast<std::int64_t>(count),
                SybilRankAuc(scenario, removed, seeds.legit)});
    }
    }
  }
  ctx.Emit("fig16",
           "Figure 16: SybilRank ranking quality vs accounts removed by"
           " Rejecto",
           t);
  std::cout << "\nShape check: AUC rises toward ~1 as removals approach the"
               " spamming population.\n";
  return 0;
}
