// Figure 12: precision/recall vs. rejection rate of requests among
// legitimate users (0.05 .. 0.95) with the spam rate fixed at 0.7, Facebook
// graph.
//
// Paper shape: both schemes degrade as the legit rejection rate approaches
// (and passes) the spam rejection rate — the rejection-rate gap between
// fake and legitimate users shrinks and the populations blur.
#include <iostream>

#include "harness.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  util::Table t({"legit_rejection_rate", "rejecto", "votetrust"});
  t.set_precision(4);
  for (double rate : bench::Sweep(
           {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}, ctx)) {
    auto cfg = bench::PaperAttackConfig(ctx);
    cfg.legit_rejection_rate = rate;
    const auto scenario = sim::BuildScenario(legit, cfg);
    const auto r = bench::RunBothDetectors(scenario, ctx);
    t.AddRow({rate, r.rejecto, r.votetrust});
  }
  ctx.Emit("fig12",
           "Figure 12: precision/recall vs rejection rate of legitimate"
           " requests (facebook)",
           t);
  std::cout << "\nShape check: both decay as the legit rate approaches the"
               " 0.7 spam rate.\n";
  return 0;
}
