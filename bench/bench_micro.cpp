// Micro-benchmarks (google-benchmark): data-structure and algorithm
// throughput underlying the headline numbers — bucket-list operations, the
// incremental partition switch, a full extended-KL solve, the parallel MAAR
// sweep, generator throughput, and the engine's fetch path. After the
// registered benchmarks run, main() executes a serial-vs-parallel MAAR
// speedup probe and appends it to BENCH_maar.json (see bench/harness.h).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "detect/bucket_list.h"
#include "detect/extended_kl.h"
#include "detect/maar.h"
#include "detect/partition.h"
#include "engine/cluster.h"
#include "engine/epoch_detector.h"
#include "engine/prefetch.h"
#include "engine/shard_store.h"
#include "gen/barabasi_albert.h"
#include "gen/holme_kim.h"
#include "graph/builder.h"
#include "graph/subgraph.h"
#include "harness.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"
#include "util/buffer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace rejecto;

sim::Scenario MakeScenario(graph::NodeId legit_nodes, graph::NodeId fakes) {
  util::Rng rng(7);
  const auto legit = gen::BarabasiAlbert(
      {.num_nodes = legit_nodes, .edges_per_node = 4}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.num_fakes = fakes;
  return sim::BuildScenario(legit, cfg);
}

void BM_BucketListInsertPop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(3);
  std::vector<double> gains(n);
  for (auto& g : gains) g = rng.NextDouble(-50.0, 50.0);
  for (auto _ : state) {
    detect::BucketList bl(n, 50.0, 64.0);
    for (graph::NodeId v = 0; v < n; ++v) bl.Insert(v, gains[v]);
    while (!bl.Empty()) benchmark::DoNotOptimize(bl.PopMax());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_BucketListInsertPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BucketListUpdate(benchmark::State& state) {
  const graph::NodeId n = 1 << 14;
  util::Rng rng(3);
  detect::BucketList bl(n, 50.0, 64.0);
  for (graph::NodeId v = 0; v < n; ++v) bl.Insert(v, rng.NextDouble(-50, 50));
  graph::NodeId v = 0;
  for (auto _ : state) {
    bl.Update(v, rng.NextDouble(-50.0, 50.0));
    v = (v + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketListUpdate);

void BM_PartitionSwitch(benchmark::State& state) {
  const auto scenario = MakeScenario(10'000, 1'000);
  std::vector<char> mask(scenario.NumNodes(), 0);
  for (graph::NodeId v = 0; v < scenario.NumNodes(); ++v) {
    mask[v] = scenario.graph.Rejections().InDegree(v) > 0 ? 1 : 0;
  }
  detect::Partition p(scenario.graph, mask);
  util::Rng rng(5);
  for (auto _ : state) {
    p.Switch(static_cast<graph::NodeId>(rng.NextUInt(scenario.NumNodes())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionSwitch);

void BM_ExtendedKlSolve(benchmark::State& state) {
  const auto scenario = MakeScenario(
      static_cast<graph::NodeId>(state.range(0)),
      static_cast<graph::NodeId>(state.range(0) / 10));
  std::vector<char> init(scenario.NumNodes(), 0);
  for (graph::NodeId v = 0; v < scenario.NumNodes(); ++v) {
    init[v] = scenario.graph.Rejections().InDegree(v) > 0 ? 1 : 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::ExtendedKl(
        scenario.graph, init, {}, detect::KlConfig{.k = 0.5}));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(scenario.graph.Friendships().NumEdges()));
}
BENCHMARK(BM_ExtendedKlSolve)->Arg(5'000)->Arg(20'000)->Unit(benchmark::kMillisecond);

void BM_MaarSolve(benchmark::State& state) {
  // The full k-sweep grid (default 11 k values × 4 inits) at the given
  // thread count; Arg(0) resolves to hardware concurrency.
  const auto scenario = MakeScenario(10'000, 1'000);
  detect::MaarConfig cfg;
  cfg.num_random_inits = 3;
  cfg.num_threads = static_cast<int>(state.range(0));
  cfg.seed = 17;
  for (auto _ : state) {
    detect::MaarSolver solver(scenario.graph, {}, cfg);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaarSolve)->Arg(1)->Arg(2)->Arg(4)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_BarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(
        gen::BarabasiAlbert({.num_nodes = n, .edges_per_node = 4}, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BarabasiAlbert)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_HolmeKim(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(gen::HolmeKim(
        {.num_nodes = n, .edges_per_node = 4, .triad_probability = 0.5},
        rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HolmeKim)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_ShardFetchBatch(benchmark::State& state) {
  const auto scenario = MakeScenario(20'000, 2'000);
  engine::ClusterConfig ccfg;
  ccfg.num_workers = 4;
  engine::Cluster cluster(ccfg);
  const engine::ShardedGraphStore store(scenario.graph, 4, cluster.Pool());
  util::Rng rng(9);
  std::vector<graph::NodeId> batch(static_cast<std::size_t>(state.range(0)));
  engine::IoStats stats;
  for (auto _ : state) {
    for (auto& v : batch) {
      v = static_cast<graph::NodeId>(rng.NextUInt(scenario.NumNodes()));
    }
    benchmark::DoNotOptimize(store.FetchBatch(batch, stats));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShardFetchBatch)->Arg(16)->Arg(256);

void BM_PrefetchBufferGet(benchmark::State& state) {
  const auto scenario = MakeScenario(20'000, 2'000);
  engine::ClusterConfig ccfg;
  ccfg.num_workers = 4;
  engine::Cluster cluster(ccfg);
  const engine::ShardedGraphStore store(scenario.graph, 4, cluster.Pool());
  engine::PrefetchBuffer buf(store, 4096, 64);
  util::Rng rng(9);
  for (auto _ : state) {
    // Zipf-ish locality: 80% of accesses hit a hot 1K-node region.
    const graph::NodeId v =
        rng.NextBool(0.8)
            ? static_cast<graph::NodeId>(rng.NextUInt(1024))
            : static_cast<graph::NodeId>(rng.NextUInt(scenario.NumNodes()));
    benchmark::DoNotOptimize(buf.Get(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetchBufferGet);

// ---------------------------------------------------------------------------
// Kernel probes: fused-vs-unfused KL switch and CSR-vs-builder compaction,
// appended to BENCH_maar.json as KernelBenchRecords.

// The pre-fusion inner kernel, kept here — and only here — as the baseline
// toggle. OldPartition resurrects the seed's Partition byte for byte,
// including the cost model the fused rewrite removed: every graph accessor
// paid an out-of-line CheckNode call (now a compiled-out REJECTO_DCHECK),
// which the old refresh loop hit once per touched neighbor via
// DeltaFriends → Degree.
[[gnu::noinline]] void OldCheckNode(graph::NodeId u, graph::NodeId n) {
  if (u >= n) throw std::out_of_range("node id out of range");
}

class OldPartition {
 public:
  OldPartition(const graph::AugmentedGraph& g, const std::vector<char>& in_u)
      : g_(&g), in_u_(in_u) {
    const graph::NodeId n = g.NumNodes();
    cross_friends_.assign(n, 0);
    in_from_w_.assign(n, 0);
    out_to_u_.assign(n, 0);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (in_u_[v]) ++size_u_;
      for (graph::NodeId w : Neighbors(v)) {
        if (in_u_[v] != in_u_[w]) ++cross_friends_[v];
      }
      for (graph::NodeId x : Rejectors(v)) {
        if (!in_u_[x]) ++in_from_w_[v];
      }
      for (graph::NodeId y : Rejectees(v)) {
        if (in_u_[y]) ++out_to_u_[v];
      }
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (in_u_[v]) {
        cross_friendships_ += cross_friends_[v];
        rejections_into_u_ += in_from_w_[v];
      }
    }
  }

  // Checked accessors, matching the seed's inline accessor + out-of-line
  // CheckNode split.
  std::uint32_t Degree(graph::NodeId u) const {
    OldCheckNode(u, g_->NumNodes());
    return g_->Friendships().Degree(u);
  }
  std::span<const graph::NodeId> Neighbors(graph::NodeId u) const {
    OldCheckNode(u, g_->NumNodes());
    return g_->Friendships().Neighbors(u);
  }
  std::span<const graph::NodeId> Rejectors(graph::NodeId u) const {
    OldCheckNode(u, g_->NumNodes());
    return g_->Rejections().Rejectors(u);
  }
  std::span<const graph::NodeId> Rejectees(graph::NodeId u) const {
    OldCheckNode(u, g_->NumNodes());
    return g_->Rejections().Rejectees(u);
  }

  void Switch(graph::NodeId v) {
    if (v >= g_->NumNodes()) {
      throw std::out_of_range("OldPartition::Switch: node id");
    }
    cross_friendships_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(cross_friendships_) + DeltaFriends(v));
    rejections_into_u_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rejections_into_u_) + DeltaRejections(v));
    const bool was_in_u = in_u_[v] != 0;
    in_u_[v] = was_in_u ? 0 : 1;
    size_u_ += was_in_u ? -1 : 1;
    cross_friends_[v] = Degree(v) - cross_friends_[v];
    for (graph::NodeId w : Neighbors(v)) {
      if (in_u_[v] != in_u_[w]) {
        ++cross_friends_[w];
      } else {
        --cross_friends_[w];
      }
    }
    const std::int32_t into_u = was_in_u ? -1 : 1;
    for (graph::NodeId x : Rejectors(v)) {
      out_to_u_[x] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(out_to_u_[x]) + into_u);
    }
    for (graph::NodeId y : Rejectees(v)) {
      in_from_w_[y] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(in_from_w_[y]) - into_u);
    }
  }

  double DeltaObjective(graph::NodeId v, double k) const {
    return static_cast<double>(DeltaFriends(v)) -
           k * static_cast<double>(DeltaRejections(v));
  }
  std::int64_t DeltaFriends(graph::NodeId v) const {
    return static_cast<std::int64_t>(Degree(v)) -
           2 * static_cast<std::int64_t>(cross_friends_[v]);
  }
  std::int64_t DeltaRejections(graph::NodeId v) const {
    const std::int64_t d = static_cast<std::int64_t>(out_to_u_[v]) -
                           static_cast<std::int64_t>(in_from_w_[v]);
    return in_u_[v] ? d : -d;
  }
  double Objective(double k) const noexcept {
    return static_cast<double>(cross_friendships_) -
           k * static_cast<double>(rejections_into_u_);
  }
  graph::CutQuantities Quantities() const {
    graph::CutQuantities q;
    q.cross_friendships = cross_friendships_;
    q.rejections_into_u = rejections_into_u_;
    std::uint64_t from_u = 0;
    for (graph::NodeId v = 0; v < g_->NumNodes(); ++v) {
      if (!in_u_[v]) from_u += g_->Rejections().InDegree(v) - in_from_w_[v];
    }
    q.rejections_from_u = from_u;
    return q;
  }
  const std::vector<char>& Mask() const noexcept { return in_u_; }

 private:
  const graph::AugmentedGraph* g_;
  std::vector<char> in_u_;
  graph::NodeId size_u_ = 0;
  std::vector<std::uint32_t> cross_friends_;
  std::vector<std::uint32_t> in_from_w_;
  std::vector<std::uint32_t> out_to_u_;
  std::uint64_t cross_friendships_ = 0;
  std::uint64_t rejections_into_u_ = 0;
};

// The seed's gain bucket list, verbatim: three parallel per-node arrays
// (next/prev/bucket-of) instead of the packed NodeLink records, with the
// hot operations out of line as they were when they lived in their own
// translation unit.
class OldBucketList {
 public:
  OldBucketList(graph::NodeId num_nodes, double max_abs_gain,
                double resolution)
      : resolution_(resolution) {
    max_bucket_ = static_cast<std::int32_t>(std::llround(
                      std::ceil(max_abs_gain * resolution))) + 1;
    heads_.assign(static_cast<std::size_t>(2 * max_bucket_) + 1, kNil);
    next_.assign(num_nodes, kNil);
    prev_.assign(num_nodes, kNil);
    bucket_of_.assign(num_nodes, kAbsent);
    cur_max_ = -max_bucket_;
  }

  bool Empty() const noexcept { return size_ == 0; }
  bool Contains(graph::NodeId v) const { return bucket_of_[v] != kAbsent; }

  [[gnu::noinline]] void Insert(graph::NodeId v, double gain) {
    if (bucket_of_[v] != kAbsent) {
      throw std::invalid_argument("OldBucketList::Insert: already present");
    }
    const std::int32_t b = QuantizeClamped(gain);
    bucket_of_[v] = b;
    const std::size_t h = static_cast<std::size_t>(b + max_bucket_);
    next_[v] = heads_[h];
    prev_[v] = kNil;
    if (heads_[h] != kNil) {
      prev_[static_cast<std::size_t>(heads_[h])] = static_cast<std::int32_t>(v);
    }
    heads_[h] = static_cast<std::int32_t>(v);
    if (b > cur_max_) cur_max_ = b;
    ++size_;
  }

  [[gnu::noinline]] void Update(graph::NodeId v, double new_gain) {
    if (bucket_of_[v] == kAbsent) {
      throw std::invalid_argument("OldBucketList::Update: not present");
    }
    const std::int32_t b = QuantizeClamped(new_gain);
    if (b == bucket_of_[v]) return;
    Unlink(v);
    Insert(v, new_gain);
  }

  [[gnu::noinline]] graph::NodeId PopMax() {
    if (size_ == 0) return graph::kInvalidNode;
    while (heads_[static_cast<std::size_t>(cur_max_ + max_bucket_)] == kNil) {
      --cur_max_;
    }
    const auto v = static_cast<graph::NodeId>(
        heads_[static_cast<std::size_t>(cur_max_ + max_bucket_)]);
    Unlink(v);
    return v;
  }

 private:
  static constexpr std::int32_t kAbsent = INT32_MIN;
  static constexpr std::int32_t kNil = -1;

  std::int32_t QuantizeClamped(double gain) const noexcept {
    const double scaled = gain * resolution_;
    if (scaled >= static_cast<double>(max_bucket_)) return max_bucket_;
    if (scaled <= static_cast<double>(-max_bucket_)) return -max_bucket_;
    return static_cast<std::int32_t>(std::llround(scaled));
  }

  void Unlink(graph::NodeId v) {
    const std::size_t h =
        static_cast<std::size_t>(bucket_of_[v] + max_bucket_);
    if (prev_[v] != kNil) {
      next_[static_cast<std::size_t>(prev_[v])] = next_[v];
    } else {
      heads_[h] = next_[v];
    }
    if (next_[v] != kNil) prev_[static_cast<std::size_t>(next_[v])] = prev_[v];
    bucket_of_[v] = kAbsent;
    --size_;
  }

  double resolution_ = 1.0;
  std::int32_t max_bucket_ = 0;
  std::vector<std::int32_t> heads_;
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> prev_;
  std::vector<std::int32_t> bucket_of_;
  std::int32_t cur_max_ = 0;
  graph::NodeId size_ = 0;
};

// The seed's ExtendedKl inner loop, verbatim: a fresh OldPartition per call,
// a fresh OldBucketList per pass (allocating and zero-filling the bucket
// arrays every time), and the two-traversal Switch + Contains/Update
// refresh per popped node.
detect::KlResult OldExtendedKl(const graph::AugmentedGraph& g,
                               const std::vector<char>& init_in_u,
                               const detect::KlConfig& config) {
  const graph::NodeId n = g.NumNodes();
  OldPartition p(g, init_in_u);
  const double k = config.k;
  const double gain_bound =
      std::max(1.0, static_cast<double>(g.MaxFriendshipDegree()) +
                        k * static_cast<double>(g.MaxRejectionDegree()));
  detect::KlStats stats;
  std::vector<graph::NodeId> seq;
  seq.reserve(n);
  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++stats.passes;
    OldBucketList bl(n, gain_bound, config.gain_resolution);
    for (graph::NodeId v = 0; v < n; ++v) {
      bl.Insert(v, -p.DeltaObjective(v, k));
    }
    seq.clear();
    double cum = 0.0;
    double best_cum = 0.0;
    std::size_t best_prefix = 0;
    auto refresh = [&](graph::NodeId w) {
      if (bl.Contains(w)) bl.Update(w, -p.DeltaObjective(w, k));
    };
    while (!bl.Empty()) {
      const graph::NodeId v = bl.PopMax();
      const double gain = -p.DeltaObjective(v, k);
      p.Switch(v);
      seq.push_back(v);
      cum += gain;
      if (cum > best_cum + 1e-7) {
        best_cum = cum;
        best_prefix = seq.size();
      }
      for (graph::NodeId w : p.Neighbors(v)) refresh(w);
      for (graph::NodeId w : p.Rejectors(v)) refresh(w);
      for (graph::NodeId w : p.Rejectees(v)) refresh(w);
    }
    for (std::size_t i = seq.size(); i > best_prefix; --i) {
      p.Switch(seq[i - 1]);
    }
    stats.switches_applied += best_prefix;
    if (best_prefix == 0) break;
  }
  detect::KlResult result;
  result.cut = p.Quantities();
  stats.final_objective = p.Objective(k);
  result.stats = stats;
  result.in_u = p.Mask();
  return result;
}

// GraphBuilder-based compaction — the implementation the CSR filter
// replaced, retained as the probe's baseline.
graph::CompactedGraph BuilderCompact(const graph::AugmentedGraph& g,
                                     const std::vector<char>& keep) {
  std::vector<graph::NodeId> new_id(g.NumNodes(), graph::kInvalidNode);
  graph::CompactedGraph out;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (keep[u]) {
      new_id[u] = static_cast<graph::NodeId>(out.parent_id.size());
      out.parent_id.push_back(u);
    }
  }
  graph::GraphBuilder builder(static_cast<graph::NodeId>(out.parent_id.size()));
  const auto& fr = g.Friendships();
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!keep[u]) continue;
    for (graph::NodeId v : fr.Neighbors(u)) {
      if (u < v && keep[v]) builder.AddFriendship(new_id[u], new_id[v]);
    }
  }
  const auto& rej = g.Rejections();
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!keep[u]) continue;
    for (graph::NodeId v : rej.Rejectees(u)) {
      if (keep[v]) builder.AddRejection(new_id[u], new_id[v]);
    }
  }
  out.graph = builder.BuildAugmented();
  return out;
}

void RunKernelProbes(const std::string& bench_name, bool fast) {
  const auto ctx = rejecto::bench::ExperimentContext::FromEnv();
  std::vector<std::string> datasets = {"ca-HepTh"};
  if (!fast) datasets.push_back("synthetic");

  std::vector<rejecto::bench::KernelBenchRecord> records;
  for (const std::string& name : datasets) {
    // Table I-calibrated host graph with the paper's rejection overlay.
    const graph::SocialGraph& legit = rejecto::bench::Dataset(name, ctx);
    sim::ScenarioConfig scfg;
    scfg.seed = 23;
    scfg.num_fakes = fast ? 400 : 2'000;
    const auto scenario = sim::BuildScenario(legit, scfg);
    const auto& g = scenario.graph;
    const auto n = g.NumNodes();

    // Min-of-reps is the headline, the median rides along so one lucky rep
    // on a noisy box is visible in the record itself.
    auto median_of = [](std::vector<double> samples) {
      std::sort(samples.begin(), samples.end());
      const std::size_t mid = samples.size() / 2;
      if (samples.size() % 2 == 1) return samples[mid];
      return 0.5 * (samples[mid - 1] + samples[mid]);
    };
    auto min_of = [](const std::vector<double>& samples) {
      return *std::min_element(samples.begin(), samples.end());
    };
    auto record = [&](const char* kernel, std::int64_t items, double seconds,
                      double seconds_median, double baseline_seconds) {
      rejecto::bench::KernelBenchRecord r;
      r.bench = bench_name;
      r.kernel = kernel;
      r.users = static_cast<std::int64_t>(n);
      r.edges = static_cast<std::int64_t>(g.Friendships().NumEdges());
      r.items = items;
      r.seconds = seconds;
      r.seconds_median = seconds_median;
      r.throughput = static_cast<double>(items) / std::max(seconds, 1e-9);
      r.speedup = baseline_seconds / std::max(seconds, 1e-9);
      std::cout << bench_name << " kernel=" << kernel << " dataset=" << name
                << " items=" << r.items << " seconds=" << r.seconds
                << " median=" << r.seconds_median
                << " throughput=" << r.throughput
                << " speedup=" << r.speedup << "\n";
      records.push_back(std::move(r));
    };

    // KL switch kernel: one recorded random switch sequence driven through
    // the seed's two-traversal Switch + Contains/Update refresh (on the
    // seed's data layouts) and through the fused single-traversal
    // SwitchFused, with a bitwise-equal objective checksum as the
    // divergence guard. A full-solve cross-check (OldExtendedKl vs the
    // scratch-reusing ExtendedKl) guards the ends of both loops too.
    {
      util::Rng rng(31);
      std::vector<char> init(n, 0);
      for (auto& c : init) c = rng.NextBool(0.35) ? 1 : 0;
      const detect::KlConfig kcfg{.k = 1.0};
      const double k = kcfg.k;
      const double gain_bound =
          std::max(1.0, static_cast<double>(g.MaxFriendshipDegree()) +
                            k * static_cast<double>(g.MaxRejectionDegree()));

      detect::KlScratch scratch;
      const auto fused_ref = detect::ExtendedKl(g, init, {}, kcfg, &scratch);
      const auto old_ref = OldExtendedKl(g, init, kcfg);
      if (old_ref.in_u != fused_ref.in_u ||
          old_ref.stats.passes != fused_ref.stats.passes ||
          old_ref.stats.final_objective != fused_ref.stats.final_objective) {
        std::cerr << bench_name << ": FUSED KL KERNEL DIVERGED\n";
        std::abort();
      }

      std::vector<graph::NodeId> seq(fast ? 40'000 : 200'000);
      for (auto& v : seq) v = static_cast<graph::NodeId>(rng.NextUInt(n));

      // Alternate the two kernels across reps so frequency drift and other
      // machine noise hit both sides equally, and keep the best rep of each:
      // both kernels are deterministic, so any rep-to-rep spread is
      // interference, and min-of-reps converges on the true cost.
      const int reps = fast ? 5 : 7;
      std::vector<double> old_samples, fused_samples;
      for (int i = 0; i < reps; ++i) {
        double old_sum = 0.0;
        {
          OldPartition p(g, init);
          OldBucketList bl(n, gain_bound, kcfg.gain_resolution);
          for (graph::NodeId v = 0; v < n; ++v) {
            bl.Insert(v, -p.DeltaObjective(v, k));
          }
          util::WallTimer t;
          for (graph::NodeId v : seq) {
            p.Switch(v);
            for (graph::NodeId w : p.Neighbors(v)) {
              if (bl.Contains(w)) bl.Update(w, -p.DeltaObjective(w, k));
            }
            for (graph::NodeId w : p.Rejectors(v)) {
              if (bl.Contains(w)) bl.Update(w, -p.DeltaObjective(w, k));
            }
            for (graph::NodeId w : p.Rejectees(v)) {
              if (bl.Contains(w)) bl.Update(w, -p.DeltaObjective(w, k));
            }
          }
          old_samples.push_back(t.Seconds());
          old_sum = p.Objective(k);
        }

        double fused_sum = 0.0;
        {
          detect::Partition p(g, init);
          detect::BucketList bl(n, gain_bound, kcfg.gain_resolution);
          for (graph::NodeId v = 0; v < n; ++v) {
            bl.Insert(v, -p.DeltaObjective(v, k));
          }
          util::AlignedVector<graph::NodeId> touched;
          touched.reserve(static_cast<std::size_t>(g.MaxFriendshipDegree() +
                                                   g.MaxRejectionDegree()));
          util::WallTimer t;
          for (graph::NodeId v : seq) {
            p.SwitchFused(v, k, bl, touched);
          }
          fused_samples.push_back(t.Seconds());
          fused_sum = p.Objective(k);
        }

        if (old_sum != fused_sum) {
          std::cerr << bench_name << ": FUSED SWITCH KERNEL DIVERGED ("
                    << old_sum << " vs " << fused_sum << ")\n";
          std::abort();
        }
      }
      const auto switches = static_cast<std::int64_t>(seq.size());
      const double old_s = min_of(old_samples);
      record("kl_switch_old", switches, old_s, median_of(old_samples), old_s);
      record("kl_switch_fused", switches, min_of(fused_samples),
             median_of(fused_samples), old_s);
    }

    // Compaction kernel: prune a MAAR-round-sized region, GraphBuilder path
    // vs the sort-free CSR filter on a pool. Min-of-reps like every other
    // probe (both kernels are deterministic; the spread is interference).
    {
      util::Rng rng(57);
      std::vector<char> keep(n, 1);
      for (auto& c : keep) c = rng.NextBool(0.3) ? 0 : 1;
      const int reps = fast ? 3 : 8;
      util::ThreadPool pool(rejecto::util::HardwareThreads());

      std::vector<double> builder_samples, csr_samples;
      std::int64_t kept = 0;
      for (int i = 0; i < reps; ++i) {
        util::WallTimer tb;
        const auto ref = BuilderCompact(g, keep);
        builder_samples.push_back(tb.Seconds());
        util::WallTimer tc;
        const auto csr = graph::InducedSubgraph(g, keep, &pool);
        csr_samples.push_back(tc.Seconds());
        kept = static_cast<std::int64_t>(csr.parent_id.size());
        if (ref.graph.Friendships().NumEdges() !=
                csr.graph.Friendships().NumEdges() ||
            ref.graph.Rejections().NumArcs() !=
                csr.graph.Rejections().NumArcs() ||
            ref.parent_id != csr.parent_id) {
          std::cerr << bench_name << ": CSR COMPACTION DIVERGED\n";
          std::abort();
        }
      }
      const double builder_s = min_of(builder_samples);
      record("compact_builder", kept, builder_s, median_of(builder_samples),
             builder_s);
      record("compact_csr", kept, min_of(csr_samples),
             median_of(csr_samples), builder_s);
    }

    // Cut-count kernel (AugmentedGraph::ComputeCut): the scalar oracle vs
    // the gather-based AVX2 zero-byte counter, on the same mask. Each rep
    // times an inner batch of full recomputations so a single O(E+R) pass
    // is well above timer resolution. Exact integer counts: any mismatch
    // between the modes aborts the bench.
    {
      const auto prev_mode = util::simd::ActiveMode();
      if (!util::simd::Avx2Supported()) {
        std::cout << bench_name << ": host lacks AVX2; cut_count_avx2 and "
                  << "merge_avx2 run the scalar fallback (speedup ~1)\n";
      }
      util::Rng rng(83);
      std::vector<char> in_u(n, 0);
      for (auto& c : in_u) c = rng.NextBool(0.4) ? 1 : 0;
      const int reps = fast ? 5 : 9;
      const int inner = fast ? 4 : 8;
      std::vector<double> scalar_samples, avx2_samples;
      for (int i = 0; i < reps; ++i) {
        // Alternate modes across reps so machine noise hits both equally.
        util::simd::SetModeForTest(util::simd::SimdMode::kScalar);
        graph::CutQuantities cs{};
        util::WallTimer ts;
        for (int j = 0; j < inner; ++j) cs = g.ComputeCut(in_u);
        scalar_samples.push_back(ts.Seconds());

        util::simd::SetModeForTest(util::simd::SimdMode::kAvx2);
        graph::CutQuantities cv{};
        util::WallTimer tv;
        for (int j = 0; j < inner; ++j) cv = g.ComputeCut(in_u);
        avx2_samples.push_back(tv.Seconds());

        if (cs.cross_friendships != cv.cross_friendships ||
            cs.rejections_into_u != cv.rejections_into_u ||
            cs.rejections_from_u != cv.rejections_from_u) {
          std::cerr << bench_name << ": CUT COUNT KERNEL DIVERGED\n";
          std::abort();
        }
      }
      util::simd::SetModeForTest(prev_mode);
      const auto scanned = static_cast<std::int64_t>(
          inner * (2 * g.Friendships().NumEdges() +
                   2 * g.Rejections().NumArcs()));
      const double cut_scalar_s = min_of(scalar_samples);
      record("cut_count_scalar", scanned, cut_scalar_s,
             median_of(scalar_samples), cut_scalar_s);
      record("cut_count_avx2", scanned, min_of(avx2_samples),
             median_of(avx2_samples), cut_scalar_s);
    }

    // Delta-merge kernel (stream::DeltaGraph::Compact's per-row merge):
    // the seed's element-wise two-pointer walk — which every row paid
    // before the fast paths landed, retained here as the baseline like
    // kl_switch_old — vs the shipped MergeRow dispatch, where overlay-free
    // rows (the overwhelming majority at any realistic compaction
    // threshold; ~2% of rows get a synthetic overlay here) bulk-copy
    // through the SIMD tier. Both legs must produce identical bytes.
    {
      const auto prev_mode = util::simd::ActiveMode();
      util::Rng rng(71);
      const auto& fr = g.Friendships();
      std::vector<std::vector<graph::NodeId>> added(n), removed(n);
      std::size_t out_bound = 0;
      for (graph::NodeId u = 0; u < n; ++u) {
        const auto row = fr.Neighbors(u);
        if (!row.empty() && rng.NextBool(0.02)) {
          // removed ⊆ base (every third element); added disjoint from base.
          for (std::size_t j = 0; j < row.size(); j += 3) {
            removed[u].push_back(row[j]);
          }
          for (int t = 0; t < 4; ++t) {
            const auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
            if (!std::binary_search(row.begin(), row.end(), v)) {
              added[u].push_back(v);
            }
          }
          std::sort(added[u].begin(), added[u].end());
          added[u].erase(std::unique(added[u].begin(), added[u].end()),
                         added[u].end());
        }
        out_bound += row.size() + added[u].size();
      }
      util::AlignedVector<graph::NodeId> out_old(out_bound);
      util::AlignedVector<graph::NodeId> out_new(out_bound);

      // The retired path: every row walks element by element.
      auto merge_walk = [](std::span<const graph::NodeId> base_row,
                           const std::vector<graph::NodeId>& rem,
                           const std::vector<graph::NodeId>& add,
                           graph::NodeId* out) {
        std::size_t r = 0;
        std::size_t a = 0;
        for (graph::NodeId v : base_row) {
          if (r < rem.size() && rem[r] == v) {
            ++r;
            continue;
          }
          while (a < add.size() && add[a] < v) *out++ = add[a++];
          *out++ = v;
        }
        while (a < add.size()) *out++ = add[a++];
        return out;
      };
      // The shipped dispatch (mirrors stream/delta_graph.cpp MergeRow).
      auto merge_fast = [&](std::span<const graph::NodeId> base_row,
                            const std::vector<graph::NodeId>& rem,
                            const std::vector<graph::NodeId>& add,
                            graph::NodeId* out) {
        if (rem.empty()) {
          if (add.empty()) {
            util::simd::CopyU32(base_row.data(), base_row.size(), out);
            return out + base_row.size();
          }
          if (base_row.empty()) {
            util::simd::CopyU32(add.data(), add.size(), out);
            return out + add.size();
          }
        }
        return merge_walk(base_row, rem, add, out);
      };

      const int reps = fast ? 7 : 11;
      std::vector<double> merge_old_samples, merge_new_samples;
      std::int64_t merged = 0;
      for (int i = 0; i < reps; ++i) {
        util::simd::SetModeForTest(util::simd::SimdMode::kScalar);
        util::WallTimer t_old;
        graph::NodeId* o = out_old.data();
        for (graph::NodeId u = 0; u < n; ++u) {
          o = merge_walk(fr.Neighbors(u), removed[u], added[u], o);
        }
        merge_old_samples.push_back(t_old.Seconds());

        util::simd::SetModeForTest(util::simd::SimdMode::kAvx2);
        util::WallTimer t_new;
        graph::NodeId* p = out_new.data();
        for (graph::NodeId u = 0; u < n; ++u) {
          p = merge_fast(fr.Neighbors(u), removed[u], added[u], p);
        }
        merge_new_samples.push_back(t_new.Seconds());

        merged = o - out_old.data();
        if (o - out_old.data() != p - out_new.data() ||
            !std::equal(out_old.data(), o, out_new.data())) {
          std::cerr << bench_name << ": DELTA MERGE KERNEL DIVERGED\n";
          std::abort();
        }
      }
      util::simd::SetModeForTest(prev_mode);
      const double merge_old_s = min_of(merge_old_samples);
      record("merge_scalar", merged, merge_old_s,
             median_of(merge_old_samples), merge_old_s);
      record("merge_avx2", merged, min_of(merge_new_samples),
             median_of(merge_new_samples), merge_old_s);
    }
  }
  rejecto::bench::AppendKernelBenchJson(records);
}

// Serving-path scoring probe: engine::EpochDetector::ScoreSenderIncremental
// with the overlay mostly clean — the admission service's steady state,
// where an epoch just compacted and only a trickle of post-epoch events
// touched any node. "incr_score_overlay_old" replicates the pre-fast-path
// kernel (every sender pays the three overlay merge walks even when its
// rows are pure base CSR); "incr_score_fast" is the shipped kernel, whose
// O(1) epoch-tag check sends untouched senders straight down the base CSR.
// Divergence guard: both kernels must produce bit-identical gains for every
// sender.
void RunIncrementalScoreProbe(const std::string& bench_name, bool fast) {
  const auto scenario = MakeScenario(fast ? 4'000 : 20'000, fast ? 400 : 2'000);
  const stream::MutationLog log = sim::ToMutationLog(scenario.log);

  engine::EpochConfig ecfg;
  ecfg.events_per_epoch = 0;  // one explicit epoch below
  ecfg.detect.target_detections = fast ? 400 : 2'000;
  ecfg.detect.maar.seed = 23;
  ecfg.detect.maar.num_threads = 1;
  util::Rng seed_rng(13);
  engine::EpochDetector det(log.NumNodes(),
                            scenario.SampleSeeds(40, 12, seed_rng), ecfg);
  det.IngestAll(log.Events());
  det.RunEpoch();
  if (!det.HasIncrementalBaseline()) {
    std::cerr << bench_name << ": incremental probe: no baseline epoch\n";
    std::abort();
  }

  // Post-epoch trickle: ~1% of nodes touched by fresh friendships, the
  // rest stay on the fast path.
  const graph::NodeId n = det.Graph().NumNodes();
  util::Rng rng(57);
  for (graph::NodeId i = 0; i < n / 200; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.NextUInt(n));
    const auto b = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (a != b) det.Ingest({stream::EventType::kAddFriend, a, b});
  }

  // The retired kernel: unconditional overlay resolution, byte-for-byte
  // the pre-fast-path walk (same side() arithmetic on the same rows).
  const stream::DeltaGraph& delta = det.Graph();
  const std::vector<char>& mask = det.IncrementalMask();
  const double k = det.IncrementalK();
  const auto side = [&](graph::NodeId v) -> bool {
    return v < mask.size() && mask[v] != 0;
  };
  const auto score_old = [&](graph::NodeId s) -> detect::IncrementalScore {
    if (side(s)) return {0.0, true};
    std::int64_t delta_friend = 0;
    std::int64_t delta_rej = 0;
    delta.ForEachFriend(s, [&](graph::NodeId f) {
      delta_friend += side(f) ? -1 : +1;
    });
    delta.ForEachRejector(s, [&](graph::NodeId r) {
      if (!side(r)) ++delta_rej;
    });
    delta.ForEachRejectee(s, [&](graph::NodeId t) {
      if (side(t)) --delta_rej;
    });
    const double gain = static_cast<double>(delta_friend) -
                        k * static_cast<double>(delta_rej);
    return {gain, gain < 0.0};
  };

  const int reps = fast ? 5 : 9;
  std::vector<double> old_samples, fast_samples;
  std::vector<double> gains_old(n), gains_fast(n);
  for (int rep = 0; rep < reps; ++rep) {
    util::WallTimer t_old;
    for (graph::NodeId s = 0; s < n; ++s) gains_old[s] = score_old(s).gain;
    old_samples.push_back(t_old.Seconds());

    util::WallTimer t_fast;
    for (graph::NodeId s = 0; s < n; ++s) {
      gains_fast[s] = det.ScoreSenderIncremental(s).gain;
    }
    fast_samples.push_back(t_fast.Seconds());

    if (gains_old != gains_fast) {
      std::cerr << bench_name << ": INCREMENTAL SCORE KERNEL DIVERGED\n";
      std::abort();
    }
  }

  auto median_of = [](std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    const std::size_t mid = samples.size() / 2;
    if (samples.size() % 2 == 1) return samples[mid];
    return 0.5 * (samples[mid - 1] + samples[mid]);
  };
  const double old_s = *std::min_element(old_samples.begin(),
                                         old_samples.end());
  const double fast_s = *std::min_element(fast_samples.begin(),
                                          fast_samples.end());
  std::vector<rejecto::bench::KernelBenchRecord> records;
  for (const auto& [kernel, seconds, med] :
       {std::tuple{"incr_score_overlay_old", old_s, median_of(old_samples)},
        std::tuple{"incr_score_fast", fast_s, median_of(fast_samples)}}) {
    rejecto::bench::KernelBenchRecord r;
    r.bench = bench_name;
    r.kernel = kernel;
    r.users = static_cast<std::int64_t>(n);
    r.edges = static_cast<std::int64_t>(
        det.Graph().Graph().Friendships().NumEdges());
    r.items = static_cast<std::int64_t>(n);
    r.seconds = seconds;
    r.seconds_median = med;
    r.throughput = static_cast<double>(n) / std::max(seconds, 1e-9);
    r.speedup = old_s / std::max(seconds, 1e-9);
    std::cout << bench_name << " kernel=" << r.kernel << " items=" << r.items
              << " seconds=" << r.seconds << " throughput=" << r.throughput
              << " speedup=" << r.speedup << "\n";
    records.push_back(std::move(r));
  }
  rejecto::bench::AppendKernelBenchJson(records);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Serial-vs-parallel speedup record: the acceptance grid (default k sweep,
  // num_random_inits = 3) at 1/2/4/hardware threads, appended to
  // BENCH_maar.json with bit-identical-cut verification.
  const bool fast = rejecto::util::FastBenchMode();
  const auto scenario =
      MakeScenario(fast ? 4'000 : 20'000, fast ? 400 : 2'000);
  rejecto::detect::MaarConfig cfg;
  cfg.num_random_inits = 3;
  cfg.seed = 21;
  std::vector<int> threads = {
      1, 2, 4, static_cast<int>(rejecto::util::HardwareThreads())};
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  rejecto::bench::RunMaarSpeedupProbe("bench_micro", scenario.graph, cfg,
                                      threads);

  // Kernel probes: fused-vs-unfused KL switch throughput and CSR-vs-builder
  // compaction time, appended to the same BENCH_maar.json array.
  RunKernelProbes("bench_micro", fast);

  // Serving-path scoring: the epoch-tag fast path vs unconditional overlay
  // resolution in EpochDetector::ScoreSenderIncremental.
  RunIncrementalScoreProbe("bench_micro", fast);

  // Memory-layout and cold-start probes (graph/layout.h, graph/snapshot.h):
  // shuffled-vs-BFS-relaid switch throughput, plus text-vs-snapshot load
  // time on the same scenario graph.
  rejecto::bench::RunLayoutKernelProbe("bench_micro", scenario.graph, fast);
  rejecto::bench::RunSnapshotLoadProbe("bench_micro", scenario.graph, fast);

  // Out-of-core probes (graph/compressed_view.h): RJSNAP02 load +
  // detection bit-identity vs RAM, then (full mode only) the 100M-edge
  // streamed scan with its hard RSS-budget assertion.
  rejecto::bench::RunCompressedSnapshotProbe("bench_micro", scenario.graph,
                                             fast);
  if (!fast) rejecto::bench::RunCompressedCeilingProbe("bench_micro");
  return 0;
}
