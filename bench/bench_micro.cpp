// Micro-benchmarks (google-benchmark): data-structure and algorithm
// throughput underlying the headline numbers — bucket-list operations, the
// incremental partition switch, a full extended-KL solve, the parallel MAAR
// sweep, generator throughput, and the engine's fetch path. After the
// registered benchmarks run, main() executes a serial-vs-parallel MAAR
// speedup probe and appends it to BENCH_maar.json (see bench/harness.h).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "detect/bucket_list.h"
#include "detect/extended_kl.h"
#include "detect/maar.h"
#include "detect/partition.h"
#include "engine/cluster.h"
#include "engine/prefetch.h"
#include "engine/shard_store.h"
#include "gen/barabasi_albert.h"
#include "gen/holme_kim.h"
#include "harness.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace rejecto;

sim::Scenario MakeScenario(graph::NodeId legit_nodes, graph::NodeId fakes) {
  util::Rng rng(7);
  const auto legit = gen::BarabasiAlbert(
      {.num_nodes = legit_nodes, .edges_per_node = 4}, rng);
  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.num_fakes = fakes;
  return sim::BuildScenario(legit, cfg);
}

void BM_BucketListInsertPop(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(3);
  std::vector<double> gains(n);
  for (auto& g : gains) g = rng.NextDouble(-50.0, 50.0);
  for (auto _ : state) {
    detect::BucketList bl(n, 50.0, 64.0);
    for (graph::NodeId v = 0; v < n; ++v) bl.Insert(v, gains[v]);
    while (!bl.Empty()) benchmark::DoNotOptimize(bl.PopMax());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_BucketListInsertPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BucketListUpdate(benchmark::State& state) {
  const graph::NodeId n = 1 << 14;
  util::Rng rng(3);
  detect::BucketList bl(n, 50.0, 64.0);
  for (graph::NodeId v = 0; v < n; ++v) bl.Insert(v, rng.NextDouble(-50, 50));
  graph::NodeId v = 0;
  for (auto _ : state) {
    bl.Update(v, rng.NextDouble(-50.0, 50.0));
    v = (v + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketListUpdate);

void BM_PartitionSwitch(benchmark::State& state) {
  const auto scenario = MakeScenario(10'000, 1'000);
  std::vector<char> mask(scenario.NumNodes(), 0);
  for (graph::NodeId v = 0; v < scenario.NumNodes(); ++v) {
    mask[v] = scenario.graph.Rejections().InDegree(v) > 0 ? 1 : 0;
  }
  detect::Partition p(scenario.graph, mask);
  util::Rng rng(5);
  for (auto _ : state) {
    p.Switch(static_cast<graph::NodeId>(rng.NextUInt(scenario.NumNodes())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionSwitch);

void BM_ExtendedKlSolve(benchmark::State& state) {
  const auto scenario = MakeScenario(
      static_cast<graph::NodeId>(state.range(0)),
      static_cast<graph::NodeId>(state.range(0) / 10));
  std::vector<char> init(scenario.NumNodes(), 0);
  for (graph::NodeId v = 0; v < scenario.NumNodes(); ++v) {
    init[v] = scenario.graph.Rejections().InDegree(v) > 0 ? 1 : 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::ExtendedKl(
        scenario.graph, init, {}, detect::KlConfig{.k = 0.5}));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(scenario.graph.Friendships().NumEdges()));
}
BENCHMARK(BM_ExtendedKlSolve)->Arg(5'000)->Arg(20'000)->Unit(benchmark::kMillisecond);

void BM_MaarSolve(benchmark::State& state) {
  // The full k-sweep grid (default 11 k values × 4 inits) at the given
  // thread count; Arg(0) resolves to hardware concurrency.
  const auto scenario = MakeScenario(10'000, 1'000);
  detect::MaarConfig cfg;
  cfg.num_random_inits = 3;
  cfg.num_threads = static_cast<int>(state.range(0));
  cfg.seed = 17;
  for (auto _ : state) {
    detect::MaarSolver solver(scenario.graph, {}, cfg);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaarSolve)->Arg(1)->Arg(2)->Arg(4)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_BarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(
        gen::BarabasiAlbert({.num_nodes = n, .edges_per_node = 4}, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BarabasiAlbert)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_HolmeKim(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(gen::HolmeKim(
        {.num_nodes = n, .edges_per_node = 4, .triad_probability = 0.5},
        rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HolmeKim)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_ShardFetchBatch(benchmark::State& state) {
  const auto scenario = MakeScenario(20'000, 2'000);
  engine::Cluster cluster({.num_workers = 4});
  const engine::ShardedGraphStore store(scenario.graph, 4, cluster.Pool());
  util::Rng rng(9);
  std::vector<graph::NodeId> batch(static_cast<std::size_t>(state.range(0)));
  engine::IoStats stats;
  for (auto _ : state) {
    for (auto& v : batch) {
      v = static_cast<graph::NodeId>(rng.NextUInt(scenario.NumNodes()));
    }
    benchmark::DoNotOptimize(store.FetchBatch(batch, stats));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShardFetchBatch)->Arg(16)->Arg(256);

void BM_PrefetchBufferGet(benchmark::State& state) {
  const auto scenario = MakeScenario(20'000, 2'000);
  engine::Cluster cluster({.num_workers = 4});
  const engine::ShardedGraphStore store(scenario.graph, 4, cluster.Pool());
  engine::PrefetchBuffer buf(store, 4096, 64);
  util::Rng rng(9);
  for (auto _ : state) {
    // Zipf-ish locality: 80% of accesses hit a hot 1K-node region.
    const graph::NodeId v =
        rng.NextBool(0.8)
            ? static_cast<graph::NodeId>(rng.NextUInt(1024))
            : static_cast<graph::NodeId>(rng.NextUInt(scenario.NumNodes()));
    benchmark::DoNotOptimize(buf.Get(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetchBufferGet);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Serial-vs-parallel speedup record: the acceptance grid (default k sweep,
  // num_random_inits = 3) at 1/2/4/hardware threads, appended to
  // BENCH_maar.json with bit-identical-cut verification.
  const bool fast = rejecto::util::FastBenchMode();
  const auto scenario =
      MakeScenario(fast ? 4'000 : 20'000, fast ? 400 : 2'000);
  rejecto::detect::MaarConfig cfg;
  cfg.num_random_inits = 3;
  cfg.seed = 21;
  std::vector<int> threads = {
      1, 2, 4, static_cast<int>(rejecto::util::HardwareThreads())};
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  rejecto::bench::RunMaarSpeedupProbe("bench_micro", scenario.graph, cfg,
                                      threads);
  return 0;
}
