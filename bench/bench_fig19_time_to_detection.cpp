// Figure 19 (repo extension): time-to-detection under the paper's static
// spam campaign, replayed temporally.
//
// The paper evaluates end-state precision/recall; deployment cares how
// EARLY the flag lands. This bench unfolds the §VI-A campaign over
// intervals on the Facebook graph, runs one detection epoch per interval
// (engine::EpochDetector, cold epochs), scores every spammer sub-epoch at
// its 5th/10th/20th/50th request with the O(deg) incremental gain, and
// reports the precision/recall-vs-time curve, the checkpoint recall table,
// and the distribution summary of time-to-detection and
// harm-before-detection.
//
// Divergence guard: with warm starts off, the final epoch must be
// BIT-IDENTICAL to a one-shot batch DetectFriendSpammers over the full
// request log — the temporal harness may not change what the detector
// computes, only when. Any mismatch aborts the bench.
#include <cstdlib>
#include <iostream>

#include "detect/iterative.h"
#include "harness.h"
#include "sim/temporal_eval.h"
#include "study/early_detection.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();
  const auto& legit = bench::Dataset("facebook", ctx);

  sim::TemporalEvalConfig cfg;
  cfg.seed = ctx.seed;
  cfg.adversary = sim::AdversaryKind::kStaticCampaign;
  cfg.num_fakes = ctx.fast ? 150 : 400;
  cfg.num_intervals = ctx.fast ? 5 : 8;
  cfg.requests_per_spammer_per_interval = ctx.fast ? 6 : 8;

  sim::TemporalWorld world(legit, cfg);
  sim::AdaptiveAdversary adversary(world);
  util::Rng seed_rng(ctx.seed ^ 0x5eedbeefULL);
  const auto seeds = world.SampleSeeds(ctx.fast ? 40 : 100,
                                       ctx.fast ? 10 : 30, seed_rng);

  study::EarlyDetectionConfig ecfg;
  ecfg.detect = bench::PaperDetectorConfig(ctx, world.NumFakes());
  const auto res = study::RunEarlyDetection(world, adversary, seeds, ecfg);

  // Guard: final epoch == batch detection on the complete log.
  {
    const auto batch = detect::DetectFriendSpammers(
        world.Log().BuildAugmentedGraph(), seeds, ecfg.detect);
    if (batch.detected != res.final_detection.detected ||
        batch.rounds.size() != res.final_detection.rounds.size()) {
      std::cerr << "DIVERGENCE: temporal final epoch != batch detection on "
                   "the full log\n";
      std::abort();
    }
  }

  util::Table curve({"interval", "requests_replayed", "detected", "precision",
                     "recall", "detect_seconds"});
  curve.set_precision(4);
  for (const auto& p : res.curve) {
    curve.AddRow({static_cast<std::int64_t>(p.interval),
                  static_cast<std::int64_t>(p.requests_replayed),
                  static_cast<std::int64_t>(p.num_detected), p.precision,
                  p.recall, p.detect_seconds});
  }
  ctx.Emit("fig19_curve",
           "Figure 19a: precision/recall vs time (static campaign, facebook)",
           curve);

  util::Table cps({"requests_sent", "spammers_scored", "flagged", "recall"});
  cps.set_precision(4);
  for (const auto& cp : res.checkpoints) {
    cps.AddRow({static_cast<std::int64_t>(cp.requests),
                static_cast<std::int64_t>(cp.scored),
                static_cast<std::int64_t>(cp.flagged), cp.Recall()});
  }
  ctx.Emit("fig19_checkpoints",
           "Figure 19b: sub-epoch incremental recall at request checkpoints",
           cps);

  util::Table agg({"spammers", "detected", "undetected",
                   "mean_time_to_detection", "mean_harm_before_detection",
                   "incremental_flags"});
  agg.set_precision(4);
  agg.AddRow({static_cast<std::int64_t>(res.spammers_total),
              static_cast<std::int64_t>(res.spammers_detected),
              static_cast<std::int64_t>(res.spammers_total -
                                        res.spammers_detected),
              res.mean_time_to_detection, res.mean_harm_before_detection,
              static_cast<std::int64_t>(res.incremental_flags)});
  ctx.Emit("fig19_summary", "Figure 19c: time-to-detection summary", agg);

  auto recall_at = [&](std::uint32_t r) {
    for (const auto& cp : res.checkpoints) {
      if (cp.requests == r) return cp.Recall();
    }
    return 0.0;
  };
  bench::TemporalBenchRecord ttd;
  ttd.bench = "bench_fig19";
  ttd.metric = "time_to_detection";
  ttd.adversary = std::string(sim::AdversaryName(cfg.adversary));
  ttd.users = static_cast<std::int64_t>(world.NumLegit());
  ttd.spammers = static_cast<std::int64_t>(res.spammers_total);
  ttd.requests = static_cast<std::int64_t>(res.total_spam_requests);
  ttd.mean = res.mean_time_to_detection;
  ttd.detected = static_cast<std::int64_t>(res.spammers_detected);
  ttd.undetected =
      static_cast<std::int64_t>(res.spammers_total - res.spammers_detected);
  ttd.final_precision = res.curve.back().precision;
  ttd.final_recall = res.curve.back().recall;
  ttd.recall_at_5 = recall_at(5);
  ttd.recall_at_10 = recall_at(10);
  ttd.recall_at_20 = recall_at(20);
  ttd.recall_at_50 = recall_at(50);
  bench::TemporalBenchRecord harm = ttd;
  harm.metric = "harm_before_detection";
  harm.mean = res.mean_harm_before_detection;
  bench::AppendTemporalBenchJson({ttd, harm});

  std::cout << "\nShape check: recall climbs across epochs while"
               " time-to-detection stays a small fraction of the campaign"
               " budget; the final epoch is bit-identical to batch.\n";
  return 0;
}
