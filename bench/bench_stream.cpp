// Streaming subsystem benchmarks: event-ingest throughput through
// stream::DeltaGraph and warm vs cold epoch re-detection latency through
// engine::EpochDetector, appended to BENCH_maar.json as KernelBenchRecords
// (kernels "stream_ingest", "epoch_cold", "epoch_warm"; epoch_warm.speedup
// = cold seconds / warm seconds — the steady-state payoff of warm starts).
//
// Divergence guards mirror bench_micro: the streamed graph must equal batch
// construction, and a warm-start-disabled epoch must reproduce the batch
// pipeline's detections bit-for-bit; any mismatch aborts the bench.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "detect/iterative.h"
#include "engine/epoch_detector.h"
#include "harness.h"
#include "sim/scenario.h"
#include "sim/stream_feed.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace rejecto;

int main() {
  const auto ctx = bench::ExperimentContext::FromEnv();
  std::vector<std::string> datasets = {"ca-HepTh"};
  if (!ctx.fast) datasets.push_back("synthetic");

  std::vector<bench::KernelBenchRecord> records;
  for (const std::string& name : datasets) {
    const graph::SocialGraph& legit = bench::Dataset(name, ctx);
    sim::ScenarioConfig scfg;
    scfg.seed = 23;
    scfg.num_fakes = ctx.fast ? 400 : 2'000;
    const auto scenario = sim::BuildScenario(legit, scfg);
    util::Rng seed_rng(7);
    const auto seeds = scenario.SampleSeeds(30, 10, seed_rng);
    sim::ChurnConfig churn;
    churn.seed = 13;
    churn.num_removals = 32;
    const auto log = sim::GenerateChurnLog(scenario.log, churn);
    const auto batch_graph = log.BuildAugmentedGraph();

    auto record = [&](const char* kernel, std::int64_t items, double seconds,
                      double baseline_seconds) {
      bench::KernelBenchRecord r;
      r.bench = "bench_stream";
      r.kernel = kernel;
      r.users = static_cast<std::int64_t>(batch_graph.NumNodes());
      r.edges =
          static_cast<std::int64_t>(batch_graph.Friendships().NumEdges());
      r.items = items;
      r.seconds = seconds;
      r.throughput = static_cast<double>(items) / std::max(seconds, 1e-9);
      r.speedup = baseline_seconds / std::max(seconds, 1e-9);
      std::cout << "bench_stream kernel=" << kernel << " dataset=" << name
                << " items=" << r.items << " seconds=" << r.seconds
                << " throughput=" << r.throughput << " speedup=" << r.speedup
                << "\n";
      records.push_back(std::move(r));
    };

    // --- ingest throughput: overlay absorption + auto-compactions ---
    {
      const int reps = ctx.fast ? 3 : 5;
      double best = 1e300;
      for (int i = 0; i < reps; ++i) {
        stream::DeltaGraph d(log.NumNodes());
        util::WallTimer t;
        d.ApplyAll(log.Events());
        best = std::min(best, t.Seconds());
        d.Compact();
        if (d.Graph() != batch_graph) {
          std::cerr << "bench_stream: STREAMED GRAPH DIVERGED from batch\n";
          std::abort();
        }
      }
      record("stream_ingest", static_cast<std::int64_t>(log.NumEvents()),
             best, best);
    }

    // --- epoch re-detection: cold batch vs warm-started epoch ---
    detect::IterativeConfig dcfg;
    dcfg.target_detections = scfg.num_fakes;
    dcfg.maar.seed = 31;
    dcfg.maar.num_threads = util::ThreadCount();

    util::WallTimer cold_timer;
    const auto cold = detect::DetectFriendSpammers(batch_graph, seeds, dcfg);
    const double cold_s = cold_timer.Seconds();

    // Warm-off epoch must be bit-identical to the batch run (the streamed
    // substrate cannot change the detector's answer).
    {
      engine::EpochConfig ecfg;
      ecfg.detect = dcfg;
      ecfg.warm_start = false;
      ecfg.events_per_epoch = 0;
      engine::EpochDetector det(log.NumNodes(), seeds, ecfg);
      det.IngestAll(log.Events());
      det.RunEpoch();
      if (det.LastResult().detected != cold.detected) {
        std::cerr << "bench_stream: COLD EPOCH DIVERGED from batch\n";
        std::abort();
      }
    }

    // Steady state: the first epoch (at ~60% of the stream) runs cold and
    // establishes the warm state; the final epoch absorbs the rest and
    // re-detects on the full graph with the narrowed round-0 sweep — the
    // apples-to-apples comparison against the cold solve above.
    {
      engine::EpochConfig ecfg;
      ecfg.detect = dcfg;
      ecfg.warm_start = true;
      ecfg.events_per_epoch = 0;
      engine::EpochDetector det(log.NumNodes(), seeds, ecfg);
      const auto events = log.Events();
      const std::size_t head = events.size() * 3 / 5;
      det.IngestAll(events.subspan(0, head));
      det.RunEpoch();  // cold; seeds the warm state
      det.IngestAll(events.subspan(head));
      const auto& warm_epoch = det.RunEpoch();
      if (!warm_epoch.warm_started) {
        std::cerr << "bench_stream: WARM EPOCH NEVER WARM-STARTED\n";
        std::abort();
      }
      record("epoch_cold",
             static_cast<std::int64_t>(cold.total_kl_runs), cold_s, cold_s);
      record("epoch_warm",
             static_cast<std::int64_t>(warm_epoch.total_kl_runs),
             warm_epoch.detect_seconds, cold_s);
      std::cout << "bench_stream dataset=" << name
                << " warm-epoch speedup: " << cold_s << "s cold vs "
                << warm_epoch.detect_seconds << "s warm ("
                << cold.total_kl_runs << " vs " << warm_epoch.total_kl_runs
                << " KL runs)\n";
    }
  }
  bench::AppendKernelBenchJson(records);
  return 0;
}
