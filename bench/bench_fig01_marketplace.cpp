// Figure 1: friends and pending requests on the 43 purchased fake accounts.
//
// Paper result: every well-maintained purchased account carries a large
// pending-request backlog — the per-account pending fraction ranges from
// 16.7% to 67.9% (totals: 2804 friends, 2065 pending). Reproduced from the
// synthetic marketplace model (DESIGN.md substitution #2); the shape to
// check is that *no* account escapes social rejections.
#include <iostream>

#include "harness.h"
#include "study/marketplace.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();

  study::MarketplaceConfig cfg;
  cfg.seed = ctx.seed + 2015;
  const auto s = study::GenerateStudy(cfg);

  util::Table t({"account", "friends", "pending", "pending_fraction"});
  t.set_precision(3);
  double min_frac = 1.0, max_frac = 0.0;
  for (std::size_t i = 0; i < s.accounts.size(); ++i) {
    const auto& a = s.accounts[i];
    min_frac = std::min(min_frac, a.PendingFraction());
    max_frac = std::max(max_frac, a.PendingFraction());
    t.AddRow({static_cast<std::int64_t>(i),
              static_cast<std::int64_t>(a.friends),
              static_cast<std::int64_t>(a.pending_requests),
              a.PendingFraction()});
  }
  ctx.Emit("fig01", "Figure 1: purchased accounts, friends vs pending requests",
           t);

  util::Table summary({"metric", "paper", "measured"});
  summary.AddRow({std::string("accounts"), std::int64_t{43},
                  static_cast<std::int64_t>(s.accounts.size())});
  summary.AddRow({std::string("total friends"), std::int64_t{2804},
                  static_cast<std::int64_t>(s.TotalFriends())});
  summary.AddRow({std::string("total pending"), std::int64_t{2065},
                  static_cast<std::int64_t>(s.TotalPending())});
  summary.AddRow({std::string("min pending fraction"), 0.167, min_frac});
  summary.AddRow({std::string("max pending fraction"), 0.679, max_frac});
  ctx.Emit("fig01_summary", "Figure 1 summary: paper vs measured", summary);

  std::cout << "\nShape check: every account has a significant pending-request"
               " backlog (min fraction "
            << min_frac << " > 0).\n";
  return 0;
}
