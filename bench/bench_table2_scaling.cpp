// Table II: Rejecto's execution time with respect to the input graph size
// on the cluster.
//
// The paper runs the Spark prototype on 5x 60GB EC2 machines over 0.5M-10M
// user graphs (~16 edges/user) and reports near-linear scaling. We
// reproduce the identical data layout in-process (DESIGN.md substitution
// #4) — sharded worker storage, master-resident bucket list, batched
// prefetch with LRU — at laptop scale (50K .. 1.6M users, x2 steps). The
// shape to check is near-linear growth of both runtime and simulated
// network traffic with graph size.
#include <algorithm>
#include <iostream>

#include "detect/maar.h"
#include "engine/cluster.h"
#include "engine/dist_detector.h"
#include "engine/dist_maar.h"
#include "engine/shard_store.h"
#include "gen/barabasi_albert.h"
#include "harness.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();

  const std::vector<graph::NodeId> sizes =
      ctx.fast ? std::vector<graph::NodeId>{50'000, 100'000}
               : std::vector<graph::NodeId>{50'000, 100'000, 200'000,
                                            400'000, 800'000};

  util::Table t({"users", "edges", "arcs", "shards", "time_sec",
                 "sim_net_sec", "fetch_requests", "mb_transferred",
                 "prefetch_hit_rate"});
  t.set_precision(3);

  for (graph::NodeId n : sizes) {
    // ~16 edges/user as in Table II; a 5% fake region sends spam.
    util::Rng grng(ctx.seed + n);
    const auto legit =
        gen::BarabasiAlbert({.num_nodes = n, .edges_per_node = 8}, grng);
    sim::ScenarioConfig scfg;
    scfg.seed = ctx.seed + n;
    scfg.num_fakes = n / 20;
    scfg.careless_fraction = 0.05;
    const auto scenario = sim::BuildScenario(legit, scfg);

    // The master's prefetch buffer holds a fixed fraction of the node set,
    // mirroring how the paper provisions the cluster so memory scales with
    // the graph ("provided that the aggregate memory ... suffices").
    engine::ClusterConfig ccfg;
    ccfg.num_workers = 4;
    ccfg.prefetch_batch = 512;
    ccfg.buffer_capacity = std::max<std::size_t>(8192, n / 2);
    engine::Cluster cluster(ccfg);
    const engine::ShardedGraphStore store(scenario.graph, 4, cluster.Pool());

    // A full (reduced-sweep) MAAR solve on the cluster substrate: the k
    // sweep, multi-init KL runs, and Dinkelbach refinement all pull
    // adjacency through the workers — what the paper's Table II times.
    detect::MaarConfig maar;
    maar.k_min = 0.25;
    maar.k_max = 4.0;
    maar.k_scale = 4.0;  // 3 sweep points
    maar.num_random_inits = 0;
    maar.dinkelbach_rounds = 1;
    maar.seed = ctx.seed;

    util::WallTimer timer;
    const auto result = engine::SolveMaarDistributed(scenario.graph, store,
                                                     cluster, {}, maar);
    const double secs = timer.Seconds();

    // The same reduced sweep in-process, serial vs parallel, appended to
    // BENCH_maar.json — the single-machine counterpart of this table's
    // cluster scaling numbers.
    detect::MaarConfig probe = maar;
    probe.num_random_inits = 3;
    const int parallel = detect::EffectiveThreads(util::ThreadCount());
    std::vector<int> threads = {1};
    if (parallel > 1) threads.push_back(parallel);
    bench::RunMaarSpeedupProbe("bench_table2_scaling", scenario.graph, probe,
                               threads);

    // At the sweep's largest size — where the CSRs have long outgrown the
    // caches — measure what the locality layout and the binary snapshots
    // buy: shuffled-vs-BFS-relaid switch throughput (the acceptance bar is
    // layout_bfs >= 1.2x on this graph) and text-vs-snapshot load time.
    if (n == sizes.back()) {
      bench::RunLayoutKernelProbe("bench_table2_scaling", scenario.graph,
                                  ctx.fast);
      bench::RunSnapshotLoadProbe("bench_table2_scaling", scenario.graph,
                                  ctx.fast);
    }

    // Wire probe at the smallest size: the same detection over the simnet
    // transport, with every fetch/update crossing the RJNET001 frame
    // boundary. Per-round transport counters go to BENCH_maar.json so the
    // traffic decay across pruning rounds is machine-readable.
    if (n == sizes.front()) {
      engine::ClusterConfig wcfg;
      wcfg.num_workers = 4;
      wcfg.prefetch_batch = 512;
      wcfg.buffer_capacity = std::max<std::size_t>(8192, n / 2);
      wcfg.transport = net::TransportKind::kSimNet;
      wcfg.sim.seed = ctx.seed + 101;
      engine::Cluster wired(wcfg);
      util::Rng srng(ctx.seed + 9);
      const auto seeds = scenario.SampleSeeds(16, 6, srng);
      detect::IterativeConfig dcfg;
      dcfg.target_detections = scfg.num_fakes;
      dcfg.maar = maar;
      const auto wire = engine::DetectFriendSpammersDistributed(
          scenario.graph, seeds, dcfg, wired);
      std::vector<bench::TransportBenchRecord> rounds;
      for (std::size_t r = 0; r < wire.per_round.size(); ++r) {
        const engine::IoStats& io = wire.per_round[r];
        rounds.push_back({.bench = "bench_table2_scaling",
                          .transport = net::TransportKindName(
                              net::TransportKind::kSimNet),
                          .users = static_cast<std::int64_t>(n),
                          .round = static_cast<std::int64_t>(r),
                          .frames_sent =
                              static_cast<std::int64_t>(io.wire.frames_sent),
                          .frames_received = static_cast<std::int64_t>(
                              io.wire.frames_received),
                          .bytes_sent =
                              static_cast<std::int64_t>(io.wire.bytes_sent),
                          .bytes_received = static_cast<std::int64_t>(
                              io.wire.bytes_received),
                          .retries =
                              static_cast<std::int64_t>(io.fetch_retries),
                          .timeouts =
                              static_cast<std::int64_t>(io.wire.timeouts),
                          .reconnects =
                              static_cast<std::int64_t>(io.wire.reconnects),
                          .failovers =
                              static_cast<std::int64_t>(io.shard_failovers),
                          .busy_us = io.wire.busy_us});
      }
      bench::AppendTransportBenchJson(rounds);
      std::cout << "wire probe (simnet, " << n << " users): "
                << wire.per_round.size() << " rounds, "
                << wire.io.wire.frames_sent << " frames, "
                << wire.io.wire.bytes_sent + wire.io.wire.bytes_received
                << " bytes on the wire\n";
    }

    t.AddRow({static_cast<std::int64_t>(n),
              static_cast<std::int64_t>(
                  scenario.graph.Friendships().NumEdges()),
              static_cast<std::int64_t>(scenario.graph.Rejections().NumArcs()),
              std::int64_t{4}, secs,
              result.io.simulated_network_us / 1e6,
              static_cast<std::int64_t>(result.io.fetch_requests),
              static_cast<double>(result.io.bytes_transferred) / 1e6,
              result.io.HitRate()});
    (void)result.cut;
  }
  ctx.Emit("table2",
           "Table II: distributed MAAR solve runtime vs graph size (4"
           " simulated workers)",
           t);
  std::cout << "\nShape check: time and traffic grow near-linearly with"
               " users (the paper's 0.5M->10M scaling claim at laptop"
               " scale).\n";
  return 0;
}
