// Shared experiment harness for the per-figure/per-table bench binaries.
//
// Each binary reproduces exactly one table or figure of the paper
// (DESIGN.md §3): it assembles the paper's workload via sim::BuildScenario,
// runs Rejecto and the VoteTrust baseline, and prints the same rows/series
// the paper reports. Environment knobs (util/flags.h):
//   REJECTO_BENCH_FAST=1  reduced sweeps / smaller attack for CI
//   REJECTO_SEED=<u64>    experiment seed (default 42)
//   REJECTO_CSV_DIR=<dir> additionally write each table as CSV
//   REJECTO_THREADS=<n>   MAAR sweep threads (0 = hardware concurrency)
//   REJECTO_JSON_DIR=<dir> where BENCH_maar.json is written (default cwd)
//   REJECTO_LAYOUT=<p>    vertex-layout policy: identity (default) or bfs;
//                         results are invariant, only locality changes
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "detect/iterative.h"
#include "gen/datasets.h"
#include "graph/social_graph.h"
#include "sim/scenario.h"
#include "util/table.h"

namespace rejecto::bench {

struct ExperimentContext {
  bool fast = false;
  std::uint64_t seed = 42;
  std::optional<std::string> csv_dir;

  static ExperimentContext FromEnv();

  // Prints the table with a title and, if csv_dir is set, writes
  // <csv_dir>/<id>.csv.
  void Emit(const std::string& id, const std::string& title,
            const util::Table& table) const;
};

// The paper's common attack setup (§VI-A): 10K fakes, 6 intra-fake links on
// arrival, 20 requests per spammer at 70% rejection, 20% legit rejection
// rate, 15% careless legit users. Fast mode shrinks the fake region to 2K.
sim::ScenarioConfig PaperAttackConfig(const ExperimentContext& ctx);

// Rejecto's default detector configuration for the evaluation: stop at the
// OSN's estimate of the fake population (= the injected count).
detect::IterativeConfig PaperDetectorConfig(const ExperimentContext& ctx,
                                            std::uint64_t target);

// Cached per-process dataset instantiation (Table I registry).
const graph::SocialGraph& Dataset(const std::string& name,
                                  const ExperimentContext& ctx);

struct DetectorScores {
  double rejecto = 0.0;     // precision == recall (declared = injected)
  double votetrust = 0.0;
  double rejecto_seconds = 0.0;
  int rejecto_rounds = 0;
};

// Runs both schemes on the scenario with freshly sampled seeds
// (100 legit / 30 spammer seeds, scaled down in fast mode).
DetectorScores RunBothDetectors(const sim::Scenario& scenario,
                                const ExperimentContext& ctx);

// The sweep values used by a figure, thinned in fast mode.
std::vector<double> Sweep(std::vector<double> full,
                          const ExperimentContext& ctx);

// Dataset list for the appendix figures: the six non-facebook graphs (full
// mode) or just ca-HepTh (fast mode).
std::vector<std::string> AppendixDatasets(const ExperimentContext& ctx);

// One MAAR-sweep timing sample for the serial-vs-parallel speedup record.
struct MaarBenchRecord {
  std::string bench;     // emitting binary, e.g. "bench_micro"
  std::int64_t users = 0;
  std::int64_t edges = 0;
  int threads = 1;
  double seconds = 0.0;
  int kl_runs = 0;
  double speedup = 1.0;  // serial (threads=1) seconds / this run's seconds
};

// Appends the records to <REJECTO_JSON_DIR or cwd>/BENCH_maar.json, kept as
// one flat JSON array so bench_micro and bench_table2_scaling can both
// contribute to the same machine-readable file. Every appended record is
// stamped with provenance keys: "git_sha" (the short commit sha the harness
// was built from) and "run_id" (one past the largest run_id already in the
// file, so ids increase monotonically across append batches and survive
// mixed-binary accumulation).
void AppendMaarBenchJson(const std::vector<MaarBenchRecord>& records);

// One data-structure kernel timing sample: the fused-vs-unfused KL switch
// kernel and the CSR-filter-vs-GraphBuilder compaction, appended to the
// same BENCH_maar.json array as the MAAR sweep records (records are
// distinguished by the presence of the "kernel" key).
struct KernelBenchRecord {
  std::string bench;          // emitting binary, e.g. "bench_micro"
  std::string kernel;         // "kl_switch_old", "kl_switch_fused",
                              // "compact_builder", "compact_csr",
                              // "cut_count_scalar/avx2", "merge_scalar/avx2"
  std::int64_t users = 0;
  std::int64_t edges = 0;
  std::int64_t items = 0;     // work units: switches applied / nodes kept
  double seconds = 0.0;         // min of reps (the headline number)
  double seconds_median = 0.0;  // median of reps (noise indicator run-to-run)
  double throughput = 0.0;    // items / seconds
  double speedup = 1.0;       // old-kernel seconds / this kernel's seconds

  // Memory profile of the probed operation (0 = not measured). peak_rss is
  // the process VmHWM after the run — the number the out-of-core path's
  // "bounded RSS" claim is about; mapped is the bytes the probe mmapped
  // (file size for snapshot views — residency is what stays small).
  std::int64_t peak_rss_bytes = 0;
  std::int64_t mapped_bytes = 0;
};

void AppendKernelBenchJson(const std::vector<KernelBenchRecord>& records);

// One temporal early-detection sample (study/early_detection.h): a whole
// adaptive-adversary run reduced to its headline time-axis metrics,
// appended to the same BENCH_maar.json array (distinguished by the
// "metric" key: "time_to_detection" or "harm_before_detection").
struct TemporalBenchRecord {
  std::string bench;       // emitting binary, e.g. "bench_fig19"
  std::string metric;      // "time_to_detection" / "harm_before_detection"
  std::string adversary;   // sim::AdversaryName of the campaign
  std::int64_t users = 0;       // legit users
  std::int64_t spammers = 0;    // spam-sending fakes
  std::int64_t requests = 0;    // spam requests emitted over the run
  double mean = 0.0;            // mean TTD (detected) / mean harm (all)
  std::int64_t detected = 0;    // spammers flagged at least once
  std::int64_t undetected = 0;  // spammers never flagged
  double final_precision = 0.0;  // last epoch's detection quality
  double final_recall = 0.0;
  double recall_at_5 = 0.0;   // sub-epoch checkpoint recall (serving tier)
  double recall_at_10 = 0.0;
  double recall_at_20 = 0.0;
  double recall_at_50 = 0.0;
};

void AppendTemporalBenchJson(const std::vector<TemporalBenchRecord>& records);

// One detection round's wire-level transport counters (engine
// DistDetectionResult::per_round over a simnet/socket cluster), appended to
// the same BENCH_maar.json array (distinguished by the "transport" key).
// Each detection round pushes a fresh store generation to every worker and
// pulls the sweep's adjacency through it, so per-round records expose how
// traffic decays as rounds prune the residual graph.
struct TransportBenchRecord {
  std::string bench;      // emitting binary, e.g. "bench_table2_scaling"
  std::string transport;  // net::TransportKindName: "simnet" / "socket"
  std::int64_t users = 0;
  std::int64_t round = 0;  // detection round (= store generation), 0-based
  std::int64_t frames_sent = 0;
  std::int64_t frames_received = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  std::int64_t retries = 0;    // engine-level RPC attempts repeated
  std::int64_t timeouts = 0;
  std::int64_t reconnects = 0;
  std::int64_t failovers = 0;  // shards rebuilt from lineage
  double busy_us = 0.0;        // time inside Transport::Call (virtual for
                               // simnet, wall-clock for socket)
};

void AppendTransportBenchJson(const std::vector<TransportBenchRecord>& records);

// One serving-tier mixed-load sample from bench_admission (serve/): a whole
// AdmissionService run — ingest pressure + N reader threads deciding
// continuously — reduced to its headline throughput and tail-latency
// numbers, appended to the same BENCH_maar.json array (distinguished by the
// "admission" key, which names the measured configuration, e.g.
// "admission_hazard_r4"). The bench aborts before appending anything if its
// divergence guard finds one concurrent decision the serial oracle does not
// reproduce.
struct AdmissionBenchRecord {
  std::string bench;      // emitting binary, e.g. "bench_admission"
  std::string admission;  // "admission_<reclaim>_r<readers>"
  std::string reclaim;    // serve::ReclaimModeName: "hazard" / "shared_ptr"
  int readers = 0;
  std::int64_t users = 0;
  std::int64_t events = 0;             // ingest events applied over the run
  std::int64_t decisions = 0;          // admit/grey/reject verdicts issued
  std::int64_t epochs = 0;             // detection epochs published
  double decisions_per_sec = 0.0;      // all readers combined
  double ingest_events_per_sec = 0.0;  // writer-thread drain rate
  double epoch_publish_stall_seconds = 0.0;  // max snapshot cut (writer stall)
  double detect_seconds = 0.0;               // mean off-path detection time
  std::int64_t p50_ns = 0;  // merged reader decision latency quantiles
  std::int64_t p95_ns = 0;
  std::int64_t p99_ns = 0;
};

void AppendAdmissionBenchJson(const std::vector<AdmissionBenchRecord>& records);

// Process peak resident set (VmHWM) and current resident set (VmRSS) from
// /proc/self/status, in bytes; 0 where the kernel does not expose them.
std::uint64_t PeakRssBytes();
std::uint64_t CurrentRssBytes();

// Runs MaarSolver::Solve over `threads_list` on the scenario graph with the
// given config, asserts the cuts are bit-identical to the threads=1 run
// (aborting the bench otherwise), appends one record per thread count under
// `bench_name`, and prints a short speedup summary to stdout.
void RunMaarSpeedupProbe(const std::string& bench_name,
                         const graph::AugmentedGraph& g,
                         detect::MaarConfig config,
                         const std::vector<int>& threads_list);

// Locality probe for graph/layout.h: drives one propagation-ordered switch
// sweep (the BFS visit order of the graph — the temporal shape of a KL
// pass or a vote-propagation round) through the fused KL kernel on a
// deterministically SHUFFLED copy of g (simulating the arbitrary id order
// a text intern produces — the layout subsystem's motivating baseline) and
// on its BFS relayout, with a bit-equal final-objective divergence guard.
// Appends "layout_identity" and "layout_bfs" kernel records; layout_bfs's
// speedup is shuffled-seconds / bfs-seconds.
void RunLayoutKernelProbe(const std::string& bench_name,
                          const graph::AugmentedGraph& g, bool fast);

// Cold-start probe for graph/snapshot.h: round-trips g through text edge
// lists and a binary snapshot in a scratch directory, then times three
// loaders — the retired istringstream text parser (kept here as the
// baseline, like the other *_old kernels), graph::LoadAugmentedGraph with
// the string_view scanner, and graph::LoadSnapshot. Appends
// "text_load_old", "text_load" (speedup vs old), and "snapshot_load"
// (speedup vs text_load) records; aborts on any loader disagreement.
void RunSnapshotLoadProbe(const std::string& bench_name,
                          const graph::AugmentedGraph& g, bool fast);

// Out-of-core probes for graph/compressed_view.h. Saves g (BFS-relaid, the
// format's target regime) as both RJSNAP01 and RJSNAP02 in a scratch dir,
// then:
//   "snapshot_compressed_load" — LoadSnapshot(v2) time vs the v1 load,
//     with the v2/v1 adjacency-bytes ratio printed and a hard abort if the
//     two loads disagree or compression fails to shrink adjacency at all
//     (the hard <= 0.5x bar lives in RunCompressedCeilingProbe — the attack
//     scenario's scattered rejection edges are the format's worst case);
//   "detect_compressed" / "detect_ram" — the full iterative pipeline over
//     the mmap view vs in RAM, aborting unless detected sets, rounds and
//     cuts are bit-identical; the compressed record carries peak_rss and
//     mapped bytes.
void RunCompressedSnapshotProbe(const std::string& bench_name,
                                const graph::AugmentedGraph& g, bool fast);

// 100M-edge memory-ceiling assertion (skipped in fast mode by the callers):
// streams a synthetic 100M-edge RJSNAP02 to scratch via gen/ without
// materializing the graph, then decodes every block of every CSR through a
// bounded cursor while releasing cold pages, and ABORTS if VmHWM grew by
// more than REJECTO_RSS_BUDGET_MB (default 600) over the pre-open baseline,
// or if the compressed adjacency exceeds 0.5x the equivalent RJSNAP01
// adjacency bytes (the acceptance bar, measured on the BFS-locality graph
// the format targets). Appends a "compressed_scan_100m" record with the
// measured peak.
void RunCompressedCeilingProbe(const std::string& bench_name);

}  // namespace rejecto::bench
