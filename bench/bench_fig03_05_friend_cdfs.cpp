// Figures 3-5: CDFs of the purchased accounts' friends with respect to
// social degree (Fig 3), wall posts / likes / comments (Fig 4), and photos /
// likes / comments (Fig 5).
//
// Paper result: the delivered friends are largely *active* accounts (posts,
// photos, engagement), but a visible tail has social degree > 1000 —
// "either careless Facebook users or abusive fake accounts". Reproduced
// from the synthetic marketplace model; the shapes to check are the heavy
// tails and the >1000-degree fraction.
#include <iostream>

#include "harness.h"
#include "study/marketplace.h"
#include "util/table.h"

int main() {
  using namespace rejecto;
  const auto ctx = bench::ExperimentContext::FromEnv();

  study::MarketplaceConfig cfg;
  cfg.seed = ctx.seed + 2015;
  const auto s = study::GenerateStudy(cfg);

  const std::vector<double> qs = {0.1, 0.25, 0.5, 0.75, 0.9, 0.99};
  auto column = [&](auto getter) {
    std::vector<std::uint32_t> vals;
    vals.reserve(s.friends.size());
    for (const auto& f : s.friends) vals.push_back(getter(f));
    return study::CdfQuantiles(vals, qs);
  };

  const auto degree = column([](const auto& f) { return f.social_degree; });
  util::Table fig3({"cdf", "friend_degree"});
  for (std::size_t i = 0; i < qs.size(); ++i) {
    fig3.AddRow({qs[i], static_cast<std::int64_t>(degree[i])});
  }
  ctx.Emit("fig03", "Figure 3: CDF of friends' social degree", fig3);

  const auto posts = column([](const auto& f) { return f.posts; });
  const auto post_likes = column([](const auto& f) { return f.post_likes; });
  const auto post_comments =
      column([](const auto& f) { return f.post_comments; });
  util::Table fig4({"cdf", "posts", "likes_on_posts", "comments_on_posts"});
  for (std::size_t i = 0; i < qs.size(); ++i) {
    fig4.AddRow({qs[i], static_cast<std::int64_t>(posts[i]),
                 static_cast<std::int64_t>(post_likes[i]),
                 static_cast<std::int64_t>(post_comments[i])});
  }
  ctx.Emit("fig04", "Figure 4: CDFs of friends' wall activity", fig4);

  const auto photos = column([](const auto& f) { return f.photos; });
  const auto photo_likes =
      column([](const auto& f) { return f.photo_likes; });
  const auto photo_comments =
      column([](const auto& f) { return f.photo_comments; });
  util::Table fig5({"cdf", "photos", "likes_on_photos", "comments_on_photos"});
  for (std::size_t i = 0; i < qs.size(); ++i) {
    fig5.AddRow({qs[i], static_cast<std::int64_t>(photos[i]),
                 static_cast<std::int64_t>(photo_likes[i]),
                 static_cast<std::int64_t>(photo_comments[i])});
  }
  ctx.Emit("fig05", "Figure 5: CDFs of friends' photo activity", fig5);

  std::uint64_t high_degree = 0;
  for (const auto& f : s.friends) high_degree += (f.social_degree > 1000);
  std::cout << "\nShape check: " << high_degree << " / " << s.friends.size()
            << " friends have social degree > 1000 (the suspicious tail of"
               " Fig 3).\n";
  return 0;
}
