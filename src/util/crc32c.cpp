#include "util/crc32c.h"

#include <array>

namespace rejecto::util {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (len >= 8) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[7][crc & 0xff] ^ kTables.t[6][(crc >> 8) & 0xff] ^
          kTables.t[5][(crc >> 16) & 0xff] ^ kTables.t[4][crc >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace rejecto::util
