#include "util/simd.h"

#include <immintrin.h>

#include <atomic>
#include <cstring>

#include "util/flags.h"

namespace rejecto::util::simd {

namespace {

// 0 unresolved, otherwise 1 + static_cast<int>(SimdMode).
std::atomic<int> g_mode{0};

SimdMode ResolveMode() {
  const auto spec = GetEnvString("REJECTO_SIMD");
  if (spec.has_value()) {
    if (*spec == "scalar") return SimdMode::kScalar;
    if (*spec == "avx2") {
      return Avx2Supported() ? SimdMode::kAvx2 : SimdMode::kScalar;
    }
    // Anything else (including "auto") falls through to auto-detection.
  }
  return Avx2Supported() ? SimdMode::kAvx2 : SimdMode::kScalar;
}

std::size_t CountZeroAtScalar(const unsigned char* mask,
                              const std::uint32_t* idx, std::size_t count) {
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < count; ++i) {
    zeros += mask[idx[i]] == 0;
  }
  return zeros;
}

std::size_t FilterMapRowScalar(const unsigned char* keep,
                               const std::uint32_t* map,
                               const std::uint32_t* row, std::size_t count,
                               std::uint32_t* out) {
  std::size_t written = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t v = row[i];
    if (keep[v] != 0) out[written++] = map[v];
  }
  return written;
}

#if defined(__x86_64__) || defined(__i386__)

// Left-pack permutation table: row m lists the set-bit lanes of m in order.
struct CompressLut {
  alignas(32) std::uint32_t perm[256][8];
  CompressLut() {
    for (int m = 0; m < 256; ++m) {
      int k = 0;
      for (int b = 0; b < 8; ++b) {
        if ((m >> b) & 1) perm[m][k++] = static_cast<std::uint32_t>(b);
      }
      for (; k < 8; ++k) perm[m][k] = 0;
    }
  }
};

// Store masks for maskstore: row c enables the first c lanes.
struct StoreLut {
  alignas(32) std::uint32_t lanes[9][8];
  StoreLut() {
    for (int c = 0; c <= 8; ++c) {
      for (int j = 0; j < 8; ++j) {
        lanes[c][j] = j < c ? 0xFFFFFFFFu : 0u;
      }
    }
  }
};

const CompressLut& Compress() {
  static const CompressLut lut;
  return lut;
}

const StoreLut& StoreMasks() {
  static const StoreLut lut;
  return lut;
}

__attribute__((target("avx2,popcnt"))) std::size_t CountZeroAtAvx2(
    const unsigned char* mask, const std::uint32_t* idx, std::size_t count) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i low_byte = _mm256_set1_epi32(0xFF);
  std::size_t zeros = 0;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    // Scale-1 gather: 4-byte load at mask + idx[lane]; the 3 high bytes are
    // slack reads covered by the AlignedVector padding contract.
    __m256i bytes = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(mask), vidx, 1);
    bytes = _mm256_and_si256(bytes, low_byte);
    const __m256i is_zero = _mm256_cmpeq_epi32(bytes, zero);
    zeros += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(is_zero)))));
  }
  for (; i < count; ++i) {
    zeros += mask[idx[i]] == 0;
  }
  return zeros;
}

__attribute__((target("avx2,popcnt"))) std::size_t FilterMapRowAvx2(
    const unsigned char* keep, const std::uint32_t* map,
    const std::uint32_t* row, std::size_t count, std::uint32_t* out) {
  const CompressLut& compress = Compress();
  const StoreLut& stores = StoreMasks();
  const __m256i zero = _mm256_setzero_si256();
  const __m256i low_byte = _mm256_set1_epi32(0xFF);
  std::size_t written = 0;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i vrow =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    __m256i kept = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(keep), vrow, 1);
    kept = _mm256_and_si256(kept, low_byte);
    const unsigned drop_bits = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(kept, zero))));
    const unsigned keep_bits = ~drop_bits & 0xFFu;
    if (keep_bits == 0) continue;
    const __m256i mapped = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(map), vrow, 4);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(compress.perm[keep_bits]));
    const __m256i packed = _mm256_permutevar8x32_epi32(mapped, perm);
    const int lanes = __builtin_popcount(keep_bits);
    // Masked store: never writes past the kept lanes, so concurrent fills of
    // adjacent output rows cannot race on out-of-row bytes.
    _mm256_maskstore_epi32(
        reinterpret_cast<int*>(out + written),
        _mm256_load_si256(reinterpret_cast<const __m256i*>(stores.lanes[lanes])),
        packed);
    written += static_cast<std::size_t>(lanes);
  }
  for (; i < count; ++i) {
    const std::uint32_t v = row[i];
    if (keep[v] != 0) out[written++] = map[v];
  }
  return written;
}

__attribute__((target("avx2"))) void CopyU32Avx2(const std::uint32_t* src,
                                                std::size_t count,
                                                std::uint32_t* dst) {
  std::size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 8));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 8), b);
  }
  if (i < count) std::memcpy(dst + i, src + i, (count - i) * sizeof(*src));
}

#endif  // x86

}  // namespace

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdMode ActiveMode() {
  int packed = g_mode.load(std::memory_order_relaxed);
  if (packed == 0) {
    packed = 1 + static_cast<int>(ResolveMode());
    g_mode.store(packed, std::memory_order_relaxed);
  }
  return static_cast<SimdMode>(packed - 1);
}

void SetModeForTest(SimdMode mode) {
  if (mode == SimdMode::kAvx2 && !Avx2Supported()) mode = SimdMode::kScalar;
  g_mode.store(1 + static_cast<int>(mode), std::memory_order_relaxed);
}

const char* ModeName(SimdMode mode) {
  return mode == SimdMode::kAvx2 ? "avx2" : "scalar";
}

std::size_t CountZeroAt(const unsigned char* mask, const std::uint32_t* idx,
                        std::size_t count) {
#if defined(__x86_64__) || defined(__i386__)
  if (ActiveMode() == SimdMode::kAvx2) {
    return CountZeroAtAvx2(mask, idx, count);
  }
#endif
  return CountZeroAtScalar(mask, idx, count);
}

std::size_t FilterMapRow(const unsigned char* keep, const std::uint32_t* map,
                         const std::uint32_t* row, std::size_t count,
                         std::uint32_t* out) {
#if defined(__x86_64__) || defined(__i386__)
  if (ActiveMode() == SimdMode::kAvx2) {
    return FilterMapRowAvx2(keep, map, row, count, out);
  }
#endif
  return FilterMapRowScalar(keep, map, row, count, out);
}

void CopyU32(const std::uint32_t* src, std::size_t count, std::uint32_t* dst) {
#if defined(__x86_64__) || defined(__i386__)
  if (ActiveMode() == SimdMode::kAvx2) {
    CopyU32Avx2(src, count, dst);
    return;
  }
#endif
  std::memcpy(dst, src, count * sizeof(*src));
}

}  // namespace rejecto::util::simd
