// Deterministic random number generation for reproducible experiments.
//
// All randomness in the repository flows through `Rng`, a thin convenience
// wrapper around xoshiro256** seeded via splitmix64. Given the same seed,
// every simulation, generator, and detector run is bit-for-bit reproducible
// across platforms (we never use std:: distributions whose output is
// implementation-defined; the few continuous distributions we need are
// implemented here from first principles).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace rejecto::util {

// splitmix64: used to expand a single 64-bit seed into a full xoshiro state.
// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit PRNG.
// Reference: Blackman & Vigna, http://prng.di.unimi.it/xoshiro256starstar.c
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Equivalent to 2^128 calls of operator(); used to derive independent
  // streams for parallel workers.
  constexpr void Jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t j : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (j & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

// Convenience facade used everywhere. Cheap to copy; copies diverge.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedf00dULL) noexcept : gen_(seed) {}

  static constexpr result_type min() noexcept { return Xoshiro256::min(); }
  static constexpr result_type max() noexcept { return Xoshiro256::max(); }
  result_type operator()() noexcept { return gen_(); }

  // Derives an independent stream (for a worker / submodule) without
  // correlating with this stream's future output.
  Rng Fork() noexcept {
    Rng child = *this;
    child.gen_.Jump();
    (*this)();  // advance parent so successive forks differ
    return child;
  }

  // Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t NextUInt(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) noexcept {
    return lo + (hi - lo) * NextDouble();
  }

  bool NextBool(double p_true) noexcept { return NextDouble() < p_true; }

  // Standard normal via Box–Muller (deterministic across platforms).
  double NextGaussian() noexcept {
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  // Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * NextGaussian());
  }

  // Geometric: number of Bernoulli(p) failures before the first success.
  // Precondition: 0 < p <= 1.
  std::uint64_t NextGeometric(double p);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[NextUInt(i)]);
    }
  }

  // k distinct values sampled uniformly from [0, n) (Floyd's algorithm for
  // small k, shuffle-prefix otherwise). Result order is unspecified.
  // Precondition: k <= n.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::uint64_t k);

 private:
  Xoshiro256 gen_;
};

}  // namespace rejecto::util
