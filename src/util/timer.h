// Wall-clock timing helpers for benchmarks and the engine's I/O accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace rejecto::util {

// Monotonic stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void Reset() noexcept { start_ = Clock::now(); }

  double Seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t Millis() const noexcept {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  std::int64_t Micros() const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rejecto::util
