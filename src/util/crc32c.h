// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding WAL
// records and checkpoint payloads. Software slice-by-8 implementation: no
// SSE4.2 dependency, ~1 GB/s, bit-identical on every platform. The check
// value of "123456789" is 0xE3069283.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rejecto::util {

// CRC of `len` bytes starting at `data`, continuing from `crc` (pass 0 to
// start; feed a previous result to checksum incrementally).
std::uint32_t Crc32c(const void* data, std::size_t len,
                     std::uint32_t crc = 0);

}  // namespace rejecto::util
