// Debug-only invariant checks for hot paths.
//
// REJECTO_DCHECK compiles to nothing under NDEBUG (the default Release
// build), so bounds checks that sit inside the innermost KL loops —
// SocialGraph::Degree/Neighbors, RejectionGraph::Rejectors/Rejectees —
// cost no branch in optimized builds. Debug builds keep the historical
// contract: a failed check throws std::out_of_range, which the graph
// bounds-check tests assert.
#pragma once

#ifdef NDEBUG

#define REJECTO_DCHECK(cond, msg) ((void)0)

#else  // !NDEBUG

#include <stdexcept>

#define REJECTO_DCHECK(cond, msg) \
  do {                            \
    if (!(cond)) {                \
      throw std::out_of_range(msg); \
    }                             \
  } while (0)

#endif  // NDEBUG
