#include "util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace rejecto::util {

std::uint64_t Rng::NextUInt(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::NextUInt: bound must be > 0");
  // Lemire's nearly-divisionless bounded generation with rejection to make
  // the distribution exactly uniform.
  const std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t r = gen_();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::NextInt: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(gen_());  // full 64-bit range
  return lo + static_cast<std::int64_t>(NextUInt(span));
}

std::uint64_t Rng::NextGeometric(double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("Rng::NextGeometric: p must be in (0, 1]");
  }
  if (p == 1.0) return 0;
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(std::uint64_t n,
                                                         std::uint64_t k) {
  if (k > n) {
    throw std::invalid_argument("SampleWithoutReplacement: k > n");
  }
  // Floyd's algorithm: O(k) expected time, no O(n) allocation, ideal when
  // k << n (the common case: sampling seeds or targets out of a large OSN).
  if (k < n / 4) {
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(static_cast<std::size_t>(k) * 2);
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(k));
    for (std::uint64_t j = n - k; j < n; ++j) {
      const std::uint64_t t = NextUInt(j + 1);
      if (chosen.insert(t).second) {
        out.push_back(t);
      } else {
        chosen.insert(j);
        out.push_back(j);
      }
    }
    return out;
  }
  std::vector<std::uint64_t> all(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t j = i + NextUInt(n - i);
    std::swap(all[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(j)]);
  }
  all.resize(static_cast<std::size_t>(k));
  return all;
}

}  // namespace rejecto::util
