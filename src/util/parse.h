// Checked numeric parsing for text loaders.
//
// std::stoull and istream extraction both accept input the loaders must
// reject: "-5" wraps modulo 2^64, "12garbage" parses the prefix, and values
// past the target type's range either throw std::out_of_range from deep
// inside the parser or silently saturate. These helpers parse a full token
// with std::from_chars, so loaders can report *which line* of *which file*
// is malformed instead of leaking UB or a context-free exception.
#pragma once

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "graph/types.h"

namespace rejecto::util {

// Parses the ENTIRE token as an unsigned integer <= max. Rejects empty
// tokens, signs, garbage prefixes/suffixes, and out-of-range values.
// Throws std::runtime_error with `context` (e.g. "file.txt line 12: ...").
inline std::uint64_t ParseU64Checked(std::string_view token,
                                     const std::string& context,
                                     std::uint64_t max = UINT64_MAX) {
  if (token.empty()) {
    throw std::runtime_error(context + ": missing integer token");
  }
  if (token.front() == '-' || token.front() == '+') {
    throw std::runtime_error(context + ": signed id '" + std::string(token) +
                             "' (ids must be non-negative integers)");
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range || (ec == std::errc{} && value > max)) {
    throw std::runtime_error(context + ": id '" + std::string(token) +
                             "' out of range (max " + std::to_string(max) +
                             ")");
  }
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw std::runtime_error(context + ": malformed integer '" +
                             std::string(token) + "'");
  }
  return value;
}

// Node-id parse: full-token, non-negative, and within NodeId (the dense
// id type) minus the reserved kInvalidNode sentinel.
inline graph::NodeId ParseNodeIdChecked(std::string_view token,
                                        const std::string& context) {
  return static_cast<graph::NodeId>(
      ParseU64Checked(token, context, graph::kInvalidNode - 1));
}

// The whitespace set istream extraction skips in the default "C" locale —
// the scanner below must accept exactly the lines the istringstream-based
// loaders accepted.
inline constexpr bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

// Scans the next whitespace-delimited token off `rest`, consuming it (and
// its leading whitespace). Returns an empty view at end of input — tokens
// themselves are never empty. Zero-allocation replacement for
// `istringstream >> token` in the line loaders.
inline std::string_view NextToken(std::string_view& rest) {
  std::size_t i = 0;
  while (i < rest.size() && IsSpace(rest[i])) ++i;
  std::size_t j = i;
  while (j < rest.size() && !IsSpace(rest[j])) ++j;
  const std::string_view token = rest.substr(i, j - i);
  rest.remove_prefix(j);
  return token;
}

// Fast full-token u64 parse for the ingest hot loop: returns false instead
// of throwing on empty/signed/garbage/overflowing tokens (from_chars
// rejects all of them for an unsigned target). Callers fall back to
// ParseU64Checked to produce the diagnostic.
inline bool TryParseU64(std::string_view token, std::uint64_t& value) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace rejecto::util
