// Checked numeric parsing for text loaders.
//
// std::stoull and istream extraction both accept input the loaders must
// reject: "-5" wraps modulo 2^64, "12garbage" parses the prefix, and values
// past the target type's range either throw std::out_of_range from deep
// inside the parser or silently saturate. These helpers parse a full token
// with std::from_chars, so loaders can report *which line* of *which file*
// is malformed instead of leaking UB or a context-free exception.
#pragma once

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "graph/types.h"

namespace rejecto::util {

// Parses the ENTIRE token as an unsigned integer <= max. Rejects empty
// tokens, signs, garbage prefixes/suffixes, and out-of-range values.
// Throws std::runtime_error with `context` (e.g. "file.txt line 12: ...").
inline std::uint64_t ParseU64Checked(std::string_view token,
                                     const std::string& context,
                                     std::uint64_t max = UINT64_MAX) {
  if (token.empty()) {
    throw std::runtime_error(context + ": missing integer token");
  }
  if (token.front() == '-' || token.front() == '+') {
    throw std::runtime_error(context + ": signed id '" + std::string(token) +
                             "' (ids must be non-negative integers)");
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range || (ec == std::errc{} && value > max)) {
    throw std::runtime_error(context + ": id '" + std::string(token) +
                             "' out of range (max " + std::to_string(max) +
                             ")");
  }
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw std::runtime_error(context + ": malformed integer '" +
                             std::string(token) + "'");
  }
  return value;
}

// Node-id parse: full-token, non-negative, and within NodeId (the dense
// id type) minus the reserved kInvalidNode sentinel.
inline graph::NodeId ParseNodeIdChecked(std::string_view token,
                                        const std::string& context) {
  return static_cast<graph::NodeId>(
      ParseU64Checked(token, context, graph::kInvalidNode - 1));
}

}  // namespace rejecto::util
