#include "util/memory.h"

#include <sys/mman.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "util/failpoint.h"
#include "util/flags.h"

namespace rejecto::util::memory {

namespace {

std::atomic<int> g_hugepages{-1};  // -1 unresolved, 0 off, 1 on

struct Counters {
  std::atomic<std::uint64_t> heap_allocs{0};
  std::atomic<std::uint64_t> mapped_allocs{0};
  std::atomic<std::uint64_t> mapped_bytes{0};
  std::atomic<std::uint64_t> hugepage_fallbacks{0};
};

Counters& GlobalCounters() {
  static Counters counters;
  return counters;
}

std::size_t RoundUp(std::size_t bytes) {
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

}  // namespace

bool HugepagesEnabled() {
  int v = g_hugepages.load(std::memory_order_relaxed);
  if (v < 0) {
    v = GetEnvBool("REJECTO_HUGEPAGES", false) ? 1 : 0;
    g_hugepages.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetHugepagesForTest(bool enabled) {
  g_hugepages.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Block Allocate(std::size_t bytes) {
  if (bytes == 0) return {};
  const std::size_t total = RoundUp(bytes + kSimdSlackBytes);
  Counters& counters = GlobalCounters();
  if (HugepagesEnabled() && total >= kHugepageThreshold) {
    void* map = MAP_FAILED;
    if (!Failpoints::Instance().ShouldFail("memory/hugepage_map")) {
      map = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    }
    if (map != MAP_FAILED) {
      // Best effort: kernels without THP reject the advice; the mapping is
      // still a valid 64-byte-aligned zeroed block either way.
      (void)::madvise(map, total, MADV_HUGEPAGE);
      counters.mapped_allocs.fetch_add(1, std::memory_order_relaxed);
      counters.mapped_bytes.fetch_add(total, std::memory_order_relaxed);
      return {map, total, true};
    }
    counters.hugepage_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::aligned_alloc(kAlignment, total);
  if (ptr == nullptr) throw std::bad_alloc();
  std::memset(ptr, 0, total);
  counters.heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return {ptr, total, false};
}

void Deallocate(Block& block) noexcept {
  if (block.ptr != nullptr) {
    if (block.mapped) {
      ::munmap(block.ptr, block.bytes);
    } else {
      std::free(block.ptr);
    }
  }
  block = {};
}

ArenaStats Stats() {
  const Counters& counters = GlobalCounters();
  ArenaStats out;
  out.heap_allocs = counters.heap_allocs.load(std::memory_order_relaxed);
  out.mapped_allocs = counters.mapped_allocs.load(std::memory_order_relaxed);
  out.mapped_bytes = counters.mapped_bytes.load(std::memory_order_relaxed);
  out.hugepage_fallbacks =
      counters.hugepage_fallbacks.load(std::memory_order_relaxed);
  return out;
}

}  // namespace rejecto::util::memory
