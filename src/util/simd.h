// Runtime-dispatched SIMD primitives for the detection kernels.
//
// Every primitive here has a scalar implementation (the oracle) and an AVX2
// implementation compiled with a per-function target attribute, so the
// default build stays portable — no -mavx2 is needed, and non-AVX2 hosts
// simply never execute the vector bodies. Which body runs is a process-wide
// mode resolved once from the environment:
//
//   REJECTO_SIMD=auto     use AVX2 when the CPU supports it (default)
//   REJECTO_SIMD=avx2     force AVX2 (falls back to scalar if unsupported)
//   REJECTO_SIMD=scalar   force the scalar oracle
//
// All primitives are bit-identical across modes: they compute exact integer
// counts and copies, never reassociated floating point. Tests pin this
// (tests/simd_kernel_test.cpp) and the kernel benches abort on divergence.
//
// Addressing contract: the AVX2 paths gather 4 bytes at byte-granularity
// addresses (scale-1 gathers), so `mask`/`keep` buffers must have at least
// 3 readable bytes past the highest indexed element. Buffers owned by
// util::AlignedVector satisfy this with 64 bytes of readable slack; plain
// std::vector buffers do NOT — copy them into an AlignedVector first.
// Indices must be < 2^31 (they are sign-extended by the gather).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rejecto::util::simd {

enum class SimdMode : std::uint8_t { kScalar, kAvx2 };

// True when the host CPU can execute the AVX2 paths.
bool Avx2Supported();

// The process-wide mode (cached after first resolution).
SimdMode ActiveMode();

// Overrides the cached mode; requesting kAvx2 on a host without AVX2 support
// silently keeps scalar so tests can call it unconditionally.
void SetModeForTest(SimdMode mode);

const char* ModeName(SimdMode mode);

// Returns the number of i in [0, count) with mask[idx[i]] == 0. With a 0/1
// mask over graph nodes this is exactly the "how many neighbours are outside
// U" cut count. `mask` needs the 3-byte slack described above.
std::size_t CountZeroAt(const unsigned char* mask, const std::uint32_t* idx,
                        std::size_t count);

// Left-packing filter for the subgraph compaction kernel: for each v in
// row[0..count) with keep[v] != 0, writes map[v] to `out` preserving row
// order; returns the number written. `out` must have room for every kept
// element; nothing is written past the returned count (the AVX2 path uses
// masked stores), so disjoint output rows can be filled concurrently.
// `keep` needs the 3-byte slack; `map` is indexed exactly (4-byte loads).
std::size_t FilterMapRow(const unsigned char* keep, const std::uint32_t* map,
                         const std::uint32_t* row, std::size_t count,
                         std::uint32_t* out);

// Copies count u32 values (the delta-merge untouched-row fast path).
void CopyU32(const std::uint32_t* src, std::size_t count, std::uint32_t* dst);

}  // namespace rejecto::util::simd
