// Minimal environment-variable configuration for bench/example binaries.
//
// Experiments honor:
//   REJECTO_BENCH_FAST=1   -> reduced sweeps (CI-friendly)
//   REJECTO_SEED=<u64>     -> global experiment seed override
//   REJECTO_CSV_DIR=<dir>  -> also write each table as CSV into <dir>
//   REJECTO_THREADS=<int>  -> MAAR sweep threads (0 = hardware concurrency)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace rejecto::util {

std::optional<std::string> GetEnvString(const std::string& name);
std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback);
double GetEnvDouble(const std::string& name, double fallback);
bool GetEnvBool(const std::string& name, bool fallback);

// True when REJECTO_BENCH_FAST is set to a truthy value.
bool FastBenchMode();

// Global experiment seed (REJECTO_SEED or 42).
std::uint64_t ExperimentSeed();

// The --threads knob for every binary that runs MAAR sweeps: REJECTO_THREADS,
// defaulting to 0 (resolve to hardware concurrency). Results are identical
// for any value — the sweep's reduction is deterministic.
int ThreadCount();

}  // namespace rejecto::util
