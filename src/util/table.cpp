#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace rejecto::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::AddRow(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::AddRow: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::Format(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return oss.str();
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(Format(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (const auto& r : cells) emit(r);
}

void Table::WriteCsv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(Format(row[c]));
    }
    os << '\n';
  }
}

void Table::PrintWithTitle(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n";
  Print(std::cout);
  std::cout.flush();
}

}  // namespace rejecto::util
