// Aligned console tables + CSV export for the experiment harnesses.
//
// Every bench binary prints the rows/series of one paper table or figure;
// `Table` keeps that output uniform and machine-parsable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace rejecto::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> headers);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return headers_.size(); }

  // Appends one row. Precondition: cells.size() == num_cols().
  void AddRow(std::vector<Cell> cells);

  // Number of fraction digits used when formatting double cells (default 4).
  void set_precision(int digits) noexcept { precision_ = digits; }

  // Renders an aligned, boxless text table.
  void Print(std::ostream& os) const;

  // Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void WriteCsv(std::ostream& os) const;

  // Convenience: Print to std::cout with a title line.
  void PrintWithTitle(const std::string& title) const;

 private:
  std::string Format(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace rejecto::util
