// Deterministic fault-injection framework.
//
// Every IO and worker boundary in the repository names a *failpoint site*
// ("wal/append_write", "engine/fetch_shard", ...) and asks the process-wide
// registry whether an injected failure should fire there. Sites are inert
// until armed — the unarmed fast path is one relaxed atomic load, so
// production code pays nothing measurable for carrying the hooks.
//
// A site is armed with a trigger policy:
//   off          never fires (counts hits only)
//   on:N         fires exactly on the Nth evaluation (1-based), once
//   every:N      fires on every Nth evaluation (N, 2N, 3N, ...)
//   p:P[:seed]   fires with probability P per evaluation, from a per-site
//                xoshiro stream seeded with `seed` (default 42) — the same
//                arming always yields the same firing sequence, so fault
//                tests are bit-reproducible
//
// Arming happens programmatically (tests: Arm / ScopedFailpoint) or from
// the environment: REJECTO_FAILPOINTS="site=policy;site=policy" is parsed
// once on first registry use, e.g.
//   REJECTO_FAILPOINTS="wal/sync=on:3;engine/fetch_shard=p:0.1:7"
//
// What "fires" means is up to the call site: WAL appends tear the record,
// loaders throw, shard fetches fail the attempt. The registry only decides
// *when*, deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rejecto::util {

struct FailpointPolicy {
  enum class Kind : std::uint8_t { kOff, kOnNth, kEveryNth, kProbability };

  Kind kind = Kind::kOff;
  std::uint64_t n = 0;       // kOnNth / kEveryNth
  double p = 0.0;            // kProbability
  std::uint64_t seed = 42;   // kProbability

  static FailpointPolicy Off() { return {}; }
  static FailpointPolicy OnNth(std::uint64_t nth) {
    return {Kind::kOnNth, nth, 0.0, 0};
  }
  static FailpointPolicy EveryNth(std::uint64_t nth) {
    return {Kind::kEveryNth, nth, 0.0, 0};
  }
  static FailpointPolicy Probability(double p, std::uint64_t seed = 42) {
    return {Kind::kProbability, 0, p, seed};
  }

  // Parses one policy ("on:3", "every:10", "p:0.1:7", "off"); throws
  // std::invalid_argument on anything else.
  static FailpointPolicy Parse(std::string_view text);
};

class Failpoints {
 public:
  // Process-wide registry; arms from REJECTO_FAILPOINTS on first use.
  static Failpoints& Instance();

  // (Re)arms `site`, resetting its hit/fire counters and RNG stream.
  void Arm(const std::string& site, const FailpointPolicy& policy);
  void Disarm(const std::string& site);
  void DisarmAll();

  // Parses and arms a "site=policy;site=policy" spec (empty segments are
  // ignored). Throws std::invalid_argument on malformed input.
  void ArmFromSpec(const std::string& spec);

  // Evaluates the site. Unarmed sites return false without locking or
  // counting. Armed sites count the hit and report whether the policy
  // fires on it. Thread-safe; evaluation order at a site defines its "Nth".
  bool ShouldFail(std::string_view site);

  // Counters for armed sites (0 for unarmed ones).
  std::uint64_t Hits(const std::string& site) const;
  std::uint64_t Fires(const std::string& site) const;

 private:
  Failpoints();
  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

// RAII arming for tests: arms in the constructor, disarms in the
// destructor (even when the test body throws).
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, const FailpointPolicy& policy)
      : site_(std::move(site)) {
    Failpoints::Instance().Arm(site_, policy);
  }
  ~ScopedFailpoint() { Failpoints::Instance().Disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace rejecto::util
