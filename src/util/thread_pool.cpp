#include "util/thread_pool.h"

#include <stdexcept>

namespace rejecto::util {

std::size_t HardwareThreads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool: num_threads must be > 0");
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopped_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  ParallelFor(n, std::function<void(std::size_t, std::size_t)>(
                     [&fn](std::size_t, std::size_t i) { fn(i); }));
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t blocks = std::min(n, size());
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futs;
  futs.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(Submit([b, lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(b, i);
    }));
  }
  // Wait for every block before rethrowing: the tasks capture `fn` by
  // reference, so no block may outlive this frame, and draining them all
  // makes the propagated exception (lowest-indexed failing block) stable
  // across worker schedules.
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace rejecto::util
