#include "util/thread_pool.h"

#include <stdexcept>

namespace rejecto::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool: num_threads must be > 0");
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopped_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t blocks = std::min(n, size());
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futs;
  futs.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(Submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();  // propagates the first exception
}

}  // namespace rejecto::util
