// AlignedVector<T> — the contiguous container for every hot array.
//
// A drop-in std::vector replacement for trivially copyable element types,
// backed by util::memory blocks. It adds two guarantees std::vector cannot
// give:
//
//   * data() is 64-byte aligned (memory::kAlignment), so CSR rows and packed
//     record stores never straddle cache lines at their base and vector
//     loads can assume alignment of the first lane.
//   * at least memory::kSimdSlackBytes (64) readable bytes follow
//     data() + size() * sizeof(T) — SIMD gathers with byte-granularity
//     addressing may overread up to 3 bytes past the last element without
//     faulting (see util/simd.h).
//
// Growth is geometric (x2) like std::vector; elements move by memcpy, which
// the trivially-copyable constraint makes exact. The container deliberately
// supports only the slice of the std::vector API the repository uses — if a
// call site needs more, extend it here rather than working around it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/memory.h"

namespace rejecto::util {

template <typename T>
class AlignedVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedVector moves elements with memcpy; only trivially "
                "copyable types are supported");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using reference = T&;
  using const_reference = const T&;
  using iterator = T*;
  using const_iterator = const T*;

  AlignedVector() = default;
  explicit AlignedVector(size_type n) { resize(n); }
  AlignedVector(size_type n, const T& value) { assign(n, value); }
  AlignedVector(std::initializer_list<T> init) {
    Append(init.begin(), init.size());
  }
  explicit AlignedVector(const std::vector<T>& other) {
    Append(other.data(), other.size());
  }

  AlignedVector(const AlignedVector& other) {
    Append(other.data_, other.size_);
  }
  AlignedVector(AlignedVector&& other) noexcept
      : block_(other.block_),
        data_(other.data_),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.block_ = {};
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  AlignedVector& operator=(const AlignedVector& other) {
    if (this != &other) {
      size_ = 0;
      Append(other.data_, other.size_);
    }
    return *this;
  }
  AlignedVector& operator=(AlignedVector&& other) noexcept {
    if (this != &other) {
      memory::Deallocate(block_);
      block_ = other.block_;
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.block_ = {};
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }
  AlignedVector& operator=(std::initializer_list<T> init) {
    size_ = 0;
    Append(init.begin(), init.size());
    return *this;
  }

  ~AlignedVector() { memory::Deallocate(block_); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  size_type size() const noexcept { return size_; }
  size_type capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }
  const_iterator cbegin() const noexcept { return data_; }
  const_iterator cend() const noexcept { return data_ + size_; }

  reference operator[](size_type i) noexcept { return data_[i]; }
  const_reference operator[](size_type i) const noexcept { return data_[i]; }
  reference front() noexcept { return data_[0]; }
  const_reference front() const noexcept { return data_[0]; }
  reference back() noexcept { return data_[size_ - 1]; }
  const_reference back() const noexcept { return data_[size_ - 1]; }

  void reserve(size_type n) {
    if (n > capacity_) Grow(n);
  }

  void resize(size_type n) {
    if (n > size_) {
      reserve(n);
      std::uninitialized_value_construct_n(data_ + size_, n - size_);
    }
    size_ = n;
  }
  void resize(size_type n, const T& value) {
    if (n > size_) {
      reserve(n);
      std::uninitialized_fill_n(data_ + size_, n - size_, value);
    }
    size_ = n;
  }

  void assign(size_type n, const T& value) {
    size_ = 0;
    resize(n, value);
  }

  void clear() noexcept { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  // Bulk append; the workhorse behind SwitchFused's touched list. `n == 0`
  // is fine with any pointer, including null.
  void Append(const T* values, size_type n) {
    if (n == 0) return;
    if (size_ + n > capacity_) Grow(size_ + n);
    std::memcpy(data_ + size_, values, n * sizeof(T));
    size_ += n;
  }

  void pop_back() noexcept { --size_; }

  void swap(AlignedVector& other) noexcept {
    std::swap(block_, other.block_);
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
  }

  std::vector<T> ToStdVector() const {
    return std::vector<T>(data_, data_ + size_);
  }

  friend bool operator==(const AlignedVector& a, const AlignedVector& b) {
    return a.size_ == b.size_ && std::equal(a.data_, a.data_ + a.size_, b.data_);
  }
  friend bool operator!=(const AlignedVector& a, const AlignedVector& b) {
    return !(a == b);
  }

 private:
  void Grow(size_type min_capacity) {
    size_type new_capacity = capacity_ == 0 ? size_type{8} : capacity_ * 2;
    if (new_capacity < min_capacity) new_capacity = min_capacity;
    memory::Block fresh = memory::Allocate(new_capacity * sizeof(T));
    if (size_ != 0) std::memcpy(fresh.ptr, data_, size_ * sizeof(T));
    memory::Deallocate(block_);
    block_ = fresh;
    data_ = static_cast<T*>(fresh.ptr);
    // The block may be larger than requested (slack + alignment rounding);
    // only the requested capacity is usable so the slack guarantee holds
    // past end() at any size.
    capacity_ = new_capacity;
  }

  memory::Block block_;
  T* data_ = nullptr;
  size_type size_ = 0;
  size_type capacity_ = 0;
};

template <typename T>
void swap(AlignedVector<T>& a, AlignedVector<T>& b) noexcept {
  a.swap(b);
}

}  // namespace rejecto::util
