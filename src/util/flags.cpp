#include "util/flags.h"

#include <cstdlib>

namespace rejecto::util {

std::optional<std::string> GetEnvString(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback) {
  const auto s = GetEnvString(name);
  if (!s) return fallback;
  try {
    return std::stoll(*s);
  } catch (...) {
    return fallback;
  }
}

double GetEnvDouble(const std::string& name, double fallback) {
  const auto s = GetEnvString(name);
  if (!s) return fallback;
  try {
    return std::stod(*s);
  } catch (...) {
    return fallback;
  }
}

bool GetEnvBool(const std::string& name, bool fallback) {
  const auto s = GetEnvString(name);
  if (!s) return fallback;
  return *s == "1" || *s == "true" || *s == "TRUE" || *s == "yes" || *s == "on";
}

bool FastBenchMode() { return GetEnvBool("REJECTO_BENCH_FAST", false); }

std::uint64_t ExperimentSeed() {
  return static_cast<std::uint64_t>(GetEnvInt("REJECTO_SEED", 42));
}

int ThreadCount() {
  return static_cast<int>(GetEnvInt("REJECTO_THREADS", 0));
}

}  // namespace rejecto::util
