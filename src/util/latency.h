// Fixed-bucket latency histogram for the serving layer's tail metrics.
//
// A concurrent admission service cannot afford a per-decision allocation (or
// a sorted vector of a billion samples) just to report p99, and its reader
// threads cannot share one histogram without contending on every Record.
// This histogram is the standard fix: a fixed 8KB table of counters bucketed
// by magnitude — log2 major buckets (one per bit width of the sample) split
// into kSubBuckets linear minor buckets — so Record is branch-light O(1),
// quantile extraction is one O(buckets) scan, and the relative quantile
// error is bounded by 1/kSubBuckets (6.25%). Each reader thread records into
// its own instance and the collector Merge()s them: counters are plain
// uint64, so merging is elementwise addition and needs no synchronization
// beyond happens-before on the handoff (the unit test pins merged quantiles
// == whole-trace quantiles).
//
// Values are whatever unit the caller samples in (the serving stack uses
// nanoseconds); 0 lands in the first bucket and values past 2^63-1 clamp
// into the last.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace rejecto::util {

class LatencyHistogram {
 public:
  static constexpr int kMajorBuckets = 64;   // one per bit width
  static constexpr int kSubBuckets = 16;     // linear split of each octave
  static constexpr int kNumBuckets = kMajorBuckets * kSubBuckets;

  void Record(std::uint64_t value) noexcept {
    counts_[BucketIndex(value)] += 1;
    total_ += 1;
  }

  // Elementwise addition; the mergeability contract behind per-thread
  // instances. `other` is unchanged.
  void Merge(const LatencyHistogram& other) noexcept {
    for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  void Reset() noexcept {
    counts_.fill(0);
    total_ = 0;
  }

  std::uint64_t Count() const noexcept { return total_; }

  // The value at quantile q in [0, 1] (q=0.5 -> p50), estimated as the
  // inclusive upper bound of the bucket holding the ceil(q*N)-th smallest
  // sample — so for every recorded sample x counted at or below the
  // returned bound, oracle_quantile <= bound and bound <= oracle_quantile
  // * (1 + 1/kSubBuckets) + 1 (the containment the unit test pins against
  // a sorted-vector oracle). Returns 0 on an empty histogram.
  std::uint64_t Quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // rank in [1, total]: the ceil(q*N)-th smallest sample.
    const double exact = q * static_cast<double>(total_);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact) ++rank;
    rank = std::clamp<std::uint64_t>(rank, 1, total_);
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return BucketUpperBound(i);
    }
    return BucketUpperBound(kNumBuckets - 1);
  }

  std::uint64_t P50() const noexcept { return Quantile(0.50); }
  std::uint64_t P95() const noexcept { return Quantile(0.95); }
  std::uint64_t P99() const noexcept { return Quantile(0.99); }

  // Exact bucket geometry, exposed so the oracle test can assert the
  // containment guarantee rather than an arbitrary tolerance.
  static int BucketIndex(std::uint64_t value) noexcept {
    if (value < kSubBuckets) {
      // Values below one full octave of sub-buckets map linearly: one
      // value per bucket, exact.
      return static_cast<int>(value);
    }
    const int bits = 64 - std::countl_zero(value);  // >= 5 here
    const int major = bits - 1;                     // value in [2^major, 2^(major+1))
    const int sub =
        static_cast<int>((value >> (major - 4)) & (kSubBuckets - 1));
    return major * kSubBuckets + sub;
  }

  // Largest value mapping into bucket i (inclusive).
  static std::uint64_t BucketUpperBound(int i) noexcept {
    if (i < kSubBuckets) return static_cast<std::uint64_t>(i);
    const int major = i / kSubBuckets;
    const int sub = i % kSubBuckets;
    const std::uint64_t base = std::uint64_t{1} << major;
    const std::uint64_t width = base / kSubBuckets;  // major >= 4 => >= 1
    return base + width * static_cast<std::uint64_t>(sub + 1) - 1;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace rejecto::util
