#include "util/failpoint.h"

#include <atomic>
#include <charconv>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "util/flags.h"
#include "util/rng.h"

namespace rejecto::util {

namespace {

std::uint64_t ParseCount(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value == 0) {
    throw std::invalid_argument("FailpointPolicy: bad " + std::string(what) +
                                " count '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

FailpointPolicy FailpointPolicy::Parse(std::string_view text) {
  if (text == "off") return Off();
  const auto colon = text.find(':');
  const std::string_view head = text.substr(0, colon);
  const std::string_view rest =
      colon == std::string_view::npos ? std::string_view{}
                                      : text.substr(colon + 1);
  if (head == "on") return OnNth(ParseCount(rest, "on"));
  if (head == "every") return EveryNth(ParseCount(rest, "every"));
  if (head == "p") {
    const auto colon2 = rest.find(':');
    const std::string prob(rest.substr(0, colon2));
    std::size_t used = 0;
    double p = -1.0;
    try {
      p = std::stod(prob, &used);
    } catch (...) {
      // fall through to the range check below
    }
    if (used != prob.size() || p < 0.0 || p > 1.0) {
      throw std::invalid_argument("FailpointPolicy: bad probability '" +
                                  prob + "'");
    }
    std::uint64_t seed = 42;
    if (colon2 != std::string_view::npos) {
      seed = ParseCount(rest.substr(colon2 + 1), "seed");
    }
    return Probability(p, seed);
  }
  throw std::invalid_argument("FailpointPolicy: unknown policy '" +
                              std::string(text) + "'");
}

struct Failpoints::Impl {
  struct Site {
    FailpointPolicy policy;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    Xoshiro256 rng{42};
  };

  // Fast path: when no site is armed, ShouldFail is one relaxed load.
  std::atomic<std::size_t> armed{0};
  mutable std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

Failpoints::Failpoints() : impl_(new Impl) {
  if (const auto spec = GetEnvString("REJECTO_FAILPOINTS")) {
    ArmFromSpec(*spec);
  }
}

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // intentionally leaked
  return *instance;
}

void Failpoints::Arm(const std::string& site, const FailpointPolicy& policy) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Site s;
  s.policy = policy;
  s.rng = Xoshiro256(policy.seed);
  impl_->sites.insert_or_assign(site, s);
  impl_->armed.store(impl_->sites.size(), std::memory_order_release);
}

void Failpoints::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sites.erase(site);
  impl_->armed.store(impl_->sites.size(), std::memory_order_release);
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sites.clear();
  impl_->armed.store(0, std::memory_order_release);
}

void Failpoints::ArmFromSpec(const std::string& spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string_view segment =
        std::string_view(spec).substr(
            pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (segment.empty()) continue;
    const std::size_t eq = segment.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument(
          "Failpoints: malformed spec segment '" + std::string(segment) +
          "' (want site=policy)");
    }
    Arm(std::string(segment.substr(0, eq)),
        FailpointPolicy::Parse(segment.substr(eq + 1)));
  }
}

bool Failpoints::ShouldFail(std::string_view site) {
  if (impl_->armed.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(impl_->mu);
  // Transparent lookup would need a heterogeneous hash; armed evaluation is
  // off the hot path, so a temporary string is fine.
  const auto it = impl_->sites.find(std::string(site));
  if (it == impl_->sites.end()) return false;
  Impl::Site& s = it->second;
  ++s.hits;
  bool fire = false;
  switch (s.policy.kind) {
    case FailpointPolicy::Kind::kOff:
      break;
    case FailpointPolicy::Kind::kOnNth:
      fire = s.hits == s.policy.n;
      break;
    case FailpointPolicy::Kind::kEveryNth:
      fire = s.hits % s.policy.n == 0;
      break;
    case FailpointPolicy::Kind::kProbability:
      fire = static_cast<double>(s.rng() >> 11) * 0x1.0p-53 < s.policy.p;
      break;
  }
  if (fire) ++s.fires;
  return fire;
}

std::uint64_t Failpoints::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.hits;
}

std::uint64_t Failpoints::Fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.fires;
}

}  // namespace rejecto::util
