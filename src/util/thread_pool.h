// Fixed-size thread pool used by the distributed-execution substrate
// (src/engine) to model cluster workers, and by graph statistics for
// parallel BFS sweeps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rejecto::util {

class ThreadPool {
 public:
  // Precondition: num_threads > 0.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Enqueues a task; the returned future observes its result or exception.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        throw std::runtime_error("ThreadPool::Submit after shutdown");
      }
      tasks_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, n), partitioned into size() contiguous blocks.
  // Blocks until all iterations complete; rethrows the first exception.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

}  // namespace rejecto::util
