// Fixed-size thread pool used by the distributed-execution substrate
// (src/engine) to model cluster workers, by graph statistics for parallel
// BFS sweeps, and by the detect::MaarSolver parallel (k × init) sweep.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rejecto::util {

// std::thread::hardware_concurrency() clamped to >= 1 (the standard allows
// it to return 0 when the count is unknowable).
std::size_t HardwareThreads() noexcept;

class ThreadPool {
 public:
  // Precondition: num_threads > 0.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Drains the queued tasks and joins all workers. Idempotent; called by
  // the destructor. After Shutdown, Submit/ParallelFor throw.
  void Shutdown();

  // Enqueues a task; the returned future observes its result or exception.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        throw std::runtime_error("ThreadPool::Submit after shutdown");
      }
      tasks_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, n), partitioned into size() contiguous blocks.
  // n == 0 returns immediately without touching the queue. Blocks until all
  // iterations complete; when several blocks throw, the exception from the
  // lowest-indexed block is rethrown (deterministic regardless of worker
  // scheduling — every block runs to completion before the rethrow).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Same partition, but fn also receives the index b of the contiguous block
  // the iteration belongs to (b < min(n, size())). Each block runs as exactly
  // one task, so callers may keep unsynchronized per-block state (e.g. one
  // reusable KL scratch workspace per block) indexed by b.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

}  // namespace rejecto::util
