// Memory tier for the hot integer arrays.
//
// Every CSR offset/adjacency array and packed record store in the detection
// path allocates through this module instead of the default allocator. Two
// guarantees matter to the kernels built on top:
//
//   1. 64-byte alignment — every Block starts on a cache-line (and AVX-512
//      friendly) boundary, so vector loads never straddle lines and packed
//      16-byte records never split.
//   2. Readable slack — every Block is at least kSimdSlackBytes longer than
//      requested, and the extra bytes are readable (zero-initialised).
//      SIMD gathers that load 4 bytes at a 1-byte-granularity address may
//      therefore overread up to 3 bytes past the last valid element without
//      faulting. See util/simd.h for the kernels that rely on this.
//
// Large blocks can additionally be backed by transparent hugepages: when the
// REJECTO_HUGEPAGES env knob is truthy, allocations of at least
// kHugepageThreshold bytes come from an anonymous mmap region advised with
// MADV_HUGEPAGE. The advice is best-effort — kernels without THP simply
// ignore it — and when the mapping itself cannot be created the allocator
// falls back to the plain 64-byte-aligned heap path, so the flag can never
// make an allocation fail that would otherwise succeed. The failpoint site
// "memory/hugepage_map" forces that fallback deterministically in tests.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rejecto::util::memory {

// Alignment of every block handed out by Allocate().
inline constexpr std::size_t kAlignment = 64;

// Minimum readable bytes past the requested size (see module comment).
inline constexpr std::size_t kSimdSlackBytes = 64;

// Allocations at least this large use the hugepage path when enabled.
inline constexpr std::size_t kHugepageThreshold = std::size_t{2} << 20;

struct Block {
  void* ptr = nullptr;       // 64-byte aligned, or nullptr for the empty block
  std::size_t bytes = 0;     // total readable bytes (>= request + slack)
  bool mapped = false;       // true when mmap-backed (hugepage arena)
};

// Returns a zero-initialised block of at least `bytes + kSimdSlackBytes`
// readable bytes (rounded up to a multiple of kAlignment). `bytes == 0`
// yields the empty block. Throws std::bad_alloc when the heap path fails.
Block Allocate(std::size_t bytes);

// Releases a block obtained from Allocate() and resets it to empty.
// Safe on the empty block.
void Deallocate(Block& block) noexcept;

// Whether the hugepage path is active (REJECTO_HUGEPAGES, cached on first
// use; SetHugepagesForTest overrides it).
bool HugepagesEnabled();
void SetHugepagesForTest(bool enabled);

// Process-wide allocator counters, for tests and diagnostics.
struct ArenaStats {
  std::uint64_t heap_allocs = 0;       // aligned heap blocks handed out
  std::uint64_t mapped_allocs = 0;     // mmap-backed blocks handed out
  std::uint64_t mapped_bytes = 0;      // total bytes in mapped blocks
  std::uint64_t hugepage_fallbacks = 0;  // hugepage requests served by heap
};
ArenaStats Stats();

}  // namespace rejecto::util::memory
