// Uniform adjacency source for the detection kernels: an in-RAM
// AugmentedGraph or an out-of-core DecodeCursor behind one row-span API.
//
// Partition and ExtendedKl only ever consume per-node degrees and sorted
// row spans; GraphSource is that contract as a value type (two pointers),
// so the hot loops compile to one predictable branch per accessor and the
// existing AugmentedGraph call sites keep working through the implicit
// conversion. Cursor-backed spans follow DecodeCursor's lifetime rule (a
// row stays valid across the handful of accesses a switch makes, not
// forever); RAM-backed spans live as long as the graph.
//
// Both backends return identical bytes for identical graphs, which is the
// root of the compressed path's bit-identical-cut guarantee: every quantity
// detection derives — aggregates, gains, tie-breaks, degree maxima for the
// bucket bound — flows through these accessors.
#pragma once

#include <cstdint>
#include <span>

#include "graph/augmented_graph.h"
#include "graph/compressed_view.h"
#include "graph/types.h"

namespace rejecto::graph {

class GraphSource {
 public:
  // Empty source; usable only after assignment (Partition's default state).
  GraphSource() = default;

  // Implicit by design: every Partition/ExtendedKl call site holding an
  // AugmentedGraph keeps compiling unchanged.
  GraphSource(const AugmentedGraph& g) : ram_(&g) {}  // NOLINT

  // Cursor-backed (out-of-core) source. The cursor must outlive the source
  // and is mutated by the accessors (its block cache); one cursor per
  // thread, like any other KL scratch state.
  explicit GraphSource(DecodeCursor* cursor) : cursor_(cursor) {}

  NodeId NumNodes() const {
    return ram_ != nullptr ? ram_->NumNodes() : cursor_->NumNodes();
  }

  std::uint64_t MaxFriendshipDegree() const {
    return ram_ != nullptr ? ram_->MaxFriendshipDegree()
                           : cursor_->View().MaxFriendshipDegree();
  }
  std::uint64_t MaxRejectionDegree() const {
    return ram_ != nullptr ? ram_->MaxRejectionDegree()
                           : cursor_->View().MaxRejectionDegree();
  }

  std::uint32_t FriendDegree(NodeId u) const {
    return ram_ != nullptr ? ram_->Friendships().Degree(u)
                           : cursor_->FriendDegree(u);
  }
  std::uint32_t RejOutDegree(NodeId u) const {
    return ram_ != nullptr ? ram_->Rejections().OutDegree(u)
                           : cursor_->OutDegree(u);
  }
  std::uint32_t RejInDegree(NodeId u) const {
    return ram_ != nullptr ? ram_->Rejections().InDegree(u)
                           : cursor_->InDegree(u);
  }

  std::span<const NodeId> Friends(NodeId u) const {
    return ram_ != nullptr ? ram_->Friendships().Neighbors(u)
                           : cursor_->Friends(u);
  }
  std::span<const NodeId> Rejectees(NodeId u) const {
    return ram_ != nullptr ? ram_->Rejections().Rejectees(u)
                           : cursor_->Rejectees(u);
  }
  std::span<const NodeId> Rejectors(NodeId u) const {
    return ram_ != nullptr ? ram_->Rejections().Rejectors(u)
                           : cursor_->Rejectors(u);
  }

  // Non-null when RAM-backed (callers needing the full graph API).
  const AugmentedGraph* Ram() const noexcept { return ram_; }

 private:
  const AugmentedGraph* ram_ = nullptr;
  DecodeCursor* cursor_ = nullptr;
};

}  // namespace rejecto::graph
