// Out-of-core view of an RJSNAP02 compressed snapshot.
//
// CompressedGraphView mmaps the file and exposes the three adjacency
// structures (friendship, rejection-out, rejection-in) at block granularity:
// Open() validates the container, the meta section and the three block
// indexes — a few KB of reads — without paging in a single adjacency byte.
// Each block's encoded bytes carry their own CRC32C in the index, verified
// on first decode, so a 100M+-edge snapshot opens in milliseconds and
// integrity checking is paid only for the blocks detection actually visits.
//
// DecodeCursor is the per-thread access path detection runs on: a bounded
// LRU of decoded blocks per CSR (three independent caches, so the three
// row spans SwitchFused holds for one vertex can never evict each other),
// reusable aligned decode scratch, and span accessors mirroring the
// AugmentedGraph API. Peak RSS of a detection pass over the view is
// index + per-cursor cache + scratch — independent of the edge count.
//
// Span lifetime: a span returned for node u stays valid until `capacity`
// further *distinct-block* accesses on the same CSR (LRU order). Callers
// holding a row across long stretches must copy it; the detection kernels
// only ever hold one row per CSR at a time.
//
// Materialize() decodes every block (optionally in parallel) into a plain
// in-RAM Snapshot — the v2 path of LoadSnapshot, and the reference the
// bit-identity property tests compare the out-of-core path against.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/layout.h"
#include "graph/snapshot.h"
#include "graph/snapshot_format.h"
#include "graph/types.h"
#include "util/buffer.h"

namespace rejecto::util {
class ThreadPool;
}  // namespace rejecto::util

namespace rejecto::graph {

class CompressedGraphView {
 public:
  // CSR selector for the block APIs.
  enum Csr : int { kFriend = 0, kRejOut = 1, kRejIn = 2 };

  // Maps and validates `path`. Throws std::runtime_error (with the usual
  // "snapshot: <path> at offset <n>: ..." diagnostics) on any container
  // violation; rejects RJSNAP01 files (those load via LoadSnapshot, which
  // dispatches on the magic).
  static CompressedGraphView Open(const std::string& path);

  NodeId NumNodes() const noexcept { return n_; }
  std::uint64_t NumEdges() const noexcept { return edges_; }
  std::uint64_t NumArcs() const noexcept { return arcs_; }
  std::uint32_t BlockRows() const noexcept { return block_rows_; }
  // Identical for all three CSRs (same row count, same span).
  NodeId NumBlocks() const noexcept { return num_blocks_; }

  // Degree maxima from the meta section — exact, computed by the writer,
  // so ExtendedKl's gain bound is identical on the RAM and compressed
  // paths (a prerequisite for bit-identical cuts).
  std::uint64_t MaxFriendshipDegree() const noexcept {
    return max_friendship_degree_;
  }
  std::uint64_t MaxRejectionDegree() const noexcept {
    return max_rejection_degree_;
  }

  // The stored layout (empty when the snapshot was saved in identity
  // layout); ids handed to/returned from this view live in the stored
  // (laid-out) id space, exactly like Snapshot::graph.
  const Layout& StoredLayout() const noexcept { return layout_; }

  const std::string& Path() const noexcept { return path_; }

  // Bytes of file mapped (the whole file; residency is what stays small).
  std::uint64_t MappedBytes() const noexcept { return file_->size(); }

  // Total encoded adjacency bytes across the three blob sections.
  std::uint64_t AdjacencyBlobBytes() const noexcept {
    return csr_[0].blob_len + csr_[1].blob_len + csr_[2].blob_len;
  }

  // Global adjacency index of the first entry of `block` (== the CSR offset
  // of the block's first row).
  std::uint64_t BlockFirstAdj(int csr, NodeId block) const;

  // Rows in `block` (block_rows_ except possibly the last block).
  std::uint32_t BlockRowCount(int csr, NodeId block) const;

  // File-absolute byte range of the block's encoded bytes, for
  // FileBytes::ReleaseRange during bounded-RSS scans.
  void BlockFileRange(int csr, NodeId block, std::uint64_t* offset,
                      std::uint64_t* length) const;

  // CRC-verifies and decodes one block into reusable scratch: block-local
  // row offsets (BlockRowCount + 1 entries) and the block's adjacency.
  // Throws std::runtime_error naming the section, block and file offset on
  // CRC mismatch or malformed block bytes.
  void DecodeBlockInto(int csr, NodeId block,
                       util::AlignedVector<std::uint32_t>& row_offsets,
                       util::AlignedVector<NodeId>& adj) const;

  const snapfmt::FileBytes& Bytes() const noexcept { return *file_; }

  // Full in-RAM expansion (LoadSnapshot's v2 path). Decodes blocks in
  // parallel when a pool is supplied (each writes a disjoint slice of the
  // target CSR), serially otherwise.
  Snapshot Materialize(util::ThreadPool* pool = nullptr) const;

 private:
  struct CsrView {
    const unsigned char* index = nullptr;  // (num_blocks + 1) records
    const unsigned char* blob = nullptr;
    std::uint64_t blob_file_offset = 0;
    std::uint64_t blob_len = 0;
    std::uint64_t total_adj = 0;
  };

  CompressedGraphView() = default;

  // {byte_off, first_adj, crc, rows} of index record `block` (the sentinel
  // included, as record num_blocks_).
  void IndexRecord(int csr, NodeId block, std::uint64_t* byte_off,
                   std::uint64_t* first_adj, std::uint32_t* crc,
                   std::uint32_t* rows) const;

  std::shared_ptr<snapfmt::FileBytes> file_;
  std::string path_;
  NodeId n_ = 0;
  std::uint64_t edges_ = 0;
  std::uint64_t arcs_ = 0;
  std::uint32_t block_rows_ = 0;
  NodeId num_blocks_ = 0;
  std::uint64_t max_friendship_degree_ = 0;
  std::uint64_t max_rejection_degree_ = 0;
  Layout layout_;
  CsrView csr_[3];
};

// Per-thread decoded-block cache over a CompressedGraphView. Not
// thread-safe; create one per worker (MaarSolver keeps one per scratch
// slot). Row accessors mirror SocialGraph/RejectionGraph.
class DecodeCursor {
 public:
  // cache_rows: decoded rows retained per CSR (three caches of this size).
  // < 0 reads REJECTO_DECODE_CACHE_ROWS (default 65536). The cache always
  // holds at least 4 blocks per CSR so short access patterns never thrash.
  explicit DecodeCursor(const CompressedGraphView& view,
                        std::int64_t cache_rows = -1);

  const CompressedGraphView& View() const noexcept { return *view_; }
  NodeId NumNodes() const noexcept { return view_->NumNodes(); }

  std::span<const NodeId> Friends(NodeId u) {
    return Row(CompressedGraphView::kFriend, u);
  }
  std::span<const NodeId> Rejectees(NodeId u) {
    return Row(CompressedGraphView::kRejOut, u);
  }
  std::span<const NodeId> Rejectors(NodeId u) {
    return Row(CompressedGraphView::kRejIn, u);
  }

  std::uint32_t FriendDegree(NodeId u) {
    return RowDegree(CompressedGraphView::kFriend, u);
  }
  std::uint32_t OutDegree(NodeId u) {
    return RowDegree(CompressedGraphView::kRejOut, u);
  }
  std::uint32_t InDegree(NodeId u) {
    return RowDegree(CompressedGraphView::kRejIn, u);
  }

  std::uint64_t BlocksDecoded() const noexcept { return blocks_decoded_; }
  std::uint64_t CacheHits() const noexcept { return cache_hits_; }

 private:
  struct Slot {
    NodeId block = kInvalidNode;
    std::uint64_t tick = 0;
    util::AlignedVector<std::uint32_t> row_offsets;
    util::AlignedVector<NodeId> adj;
  };
  struct Cache {
    std::vector<std::int32_t> slot_of_block;  // -1 when not resident
    std::vector<Slot> slots;
  };

  const Slot& Fetch(int csr, NodeId block);

  std::span<const NodeId> Row(int csr, NodeId u) {
    const Slot& s = Fetch(csr, u / view_->BlockRows());
    const std::uint32_t r = u % view_->BlockRows();
    return {s.adj.data() + s.row_offsets[r],
            s.adj.data() + s.row_offsets[r + 1]};
  }
  std::uint32_t RowDegree(int csr, NodeId u) {
    const Slot& s = Fetch(csr, u / view_->BlockRows());
    const std::uint32_t r = u % view_->BlockRows();
    return s.row_offsets[r + 1] - s.row_offsets[r];
  }

  const CompressedGraphView* view_;
  std::uint64_t tick_ = 0;
  std::uint64_t blocks_decoded_ = 0;
  std::uint64_t cache_hits_ = 0;
  Cache caches_[3];
};

}  // namespace rejecto::graph
