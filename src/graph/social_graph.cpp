#include "graph/social_graph.h"

#include <algorithm>

namespace rejecto::graph {

SocialGraph::SocialGraph(NodeId num_nodes,
                         util::AlignedVector<std::size_t> offsets,
                         util::AlignedVector<NodeId> adjacency)
    : num_nodes_(num_nodes),
      num_edges_(adjacency.size() / 2),
      offsets_(std::move(offsets)),
      adjacency_(std::move(adjacency)) {
  for (NodeId u = 0; u < num_nodes_; ++u) {
    max_degree_ = std::max(
        max_degree_, static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]));
  }
}

bool SocialGraph::HasEdge(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> SocialGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges_));
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

}  // namespace rejecto::graph
