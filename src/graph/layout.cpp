#include "graph/layout.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "graph/csr_build.h"
#include "util/buffer.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace rejecto::graph {

using internal::ForEachNode;
using internal::PrefixSum;

namespace {

void CheckLayoutSize(const Layout& layout, NodeId n, const char* who) {
  if (layout.IsIdentity()) {
    if (!layout.old_of_new.empty()) {
      throw std::invalid_argument(std::string(who) +
                                  ": half-empty layout (new_of_old empty but "
                                  "old_of_new is not)");
    }
    return;
  }
  if (layout.new_of_old.size() != n || layout.old_of_new.size() != n) {
    throw std::invalid_argument(std::string(who) + ": layout size mismatch");
  }
}

// Remaps one CSR (offsets/adjacency) into layout order: row t of the output
// is the remapped row of old node old_of_new[t]. Each output row is a
// disjoint range filled and sorted independently, so the block-parallel
// fill is deterministic at any thread count; no global edge sort happens.
template <typename RowFn>
void PermuteCsr(NodeId n, const Layout& layout, const RowFn& row,
                util::ThreadPool* pool,
                util::AlignedVector<std::size_t>& offsets,
                util::AlignedVector<NodeId>& adjacency) {
  offsets.assign(n + 1, 0);
  ForEachNode(pool, n, [&](std::size_t t) {
    offsets[t + 1] = row(layout.old_of_new[t]).size();
  });
  PrefixSum(offsets);
  adjacency.resize(offsets[n]);
  ForEachNode(pool, n, [&](std::size_t t) {
    std::size_t w = offsets[t];
    for (NodeId v : row(layout.old_of_new[t])) {
      adjacency[w++] = layout.new_of_old[v];
    }
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[t]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(w));
  });
}

}  // namespace

LayoutPolicy ParseLayoutPolicy(const std::string& name) {
  if (name == "identity") return LayoutPolicy::kIdentity;
  if (name == "bfs") return LayoutPolicy::kBfs;
  throw std::invalid_argument("ParseLayoutPolicy: unknown layout '" + name +
                              "' (expected 'identity' or 'bfs')");
}

LayoutPolicy LayoutPolicyFromEnv() {
  const auto value = util::GetEnvString("REJECTO_LAYOUT");
  if (!value || value->empty()) return LayoutPolicy::kIdentity;
  return ParseLayoutPolicy(*value);
}

const char* LayoutPolicyName(LayoutPolicy policy) {
  switch (policy) {
    case LayoutPolicy::kIdentity:
      return "identity";
    case LayoutPolicy::kBfs:
      return "bfs";
  }
  return "unknown";
}

Layout IdentityLayout(NodeId n) {
  Layout layout;
  layout.new_of_old.resize(n);
  layout.old_of_new.resize(n);
  std::iota(layout.new_of_old.begin(), layout.new_of_old.end(), NodeId{0});
  std::iota(layout.old_of_new.begin(), layout.old_of_new.end(), NodeId{0});
  return layout;
}

Layout LayoutFromPermutation(std::vector<NodeId> new_of_old) {
  const std::size_t n = new_of_old.size();
  Layout layout;
  layout.old_of_new.assign(n, kInvalidNode);
  for (std::size_t old = 0; old < n; ++old) {
    const NodeId t = new_of_old[old];
    if (t >= n || layout.old_of_new[t] != kInvalidNode) {
      throw std::invalid_argument(
          "LayoutFromPermutation: not a bijection on [0, n)");
    }
    layout.old_of_new[t] = static_cast<NodeId>(old);
  }
  layout.new_of_old = std::move(new_of_old);
  return layout;
}

Layout ComputeLayout(const AugmentedGraph& g, LayoutPolicy policy,
                     util::ThreadPool* /*pool*/) {
  if (policy == LayoutPolicy::kIdentity) return Layout{};

  const NodeId n = g.NumNodes();
  const SocialGraph& fr = g.Friendships();
  const RejectionGraph& rej = g.Rejections();

  // Combined degree over both relations: the BFS treats friendship edges
  // and rejection arcs (either direction) alike — the switch kernel
  // traverses all three lists, so all three define "close".
  std::vector<std::uint32_t> degree(n);
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = fr.Degree(v) + rej.InDegree(v) + rej.OutDegree(v);
  }

  // Component seeds: highest combined degree first, ties on the smaller id.
  std::vector<NodeId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), NodeId{0});
  std::stable_sort(seeds.begin(), seeds.end(), [&](NodeId a, NodeId b) {
    return degree[a] > degree[b];
  });

  Layout layout;
  layout.new_of_old.assign(n, kInvalidNode);
  layout.old_of_new.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<NodeId> queue;
  queue.reserve(n);

  auto assign = [&](NodeId old) {
    layout.new_of_old[old] = static_cast<NodeId>(layout.old_of_new.size());
    layout.old_of_new.push_back(old);
  };

  // Plain FIFO expansion, children in row order. (A frontier re-sorted by
  // descending degree was tried first and benched SLOWER than this: the
  // sort interleaves children of different parents, which breaks exactly
  // the parent-adjacency that makes traversal-ordered passes stream. See
  // the layout_bfs record in BENCH_maar.json.)
  for (NodeId seed : seeds) {
    if (visited[seed]) continue;
    visited[seed] = 1;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      assign(u);
      auto collect = [&](std::span<const NodeId> row) {
        for (NodeId w : row) {
          if (!visited[w]) {
            visited[w] = 1;
            queue.push_back(w);
          }
        }
      };
      collect(fr.Neighbors(u));
      collect(rej.Rejectees(u));
      collect(rej.Rejectors(u));
    }
  }
  return layout;
}

SocialGraph ApplyLayout(const SocialGraph& g, const Layout& layout,
                        util::ThreadPool* pool) {
  CheckLayoutSize(layout, g.NumNodes(), "ApplyLayout");
  if (layout.IsIdentity()) return g;
  const NodeId n = g.NumNodes();
  util::AlignedVector<std::size_t> offsets;
  util::AlignedVector<NodeId> adjacency;
  PermuteCsr(
      n, layout, [&](NodeId old) { return g.Neighbors(old); }, pool, offsets,
      adjacency);
  return SocialGraph::FromCsr(n, std::move(offsets), std::move(adjacency));
}

RejectionGraph ApplyLayout(const RejectionGraph& g, const Layout& layout,
                           util::ThreadPool* pool) {
  CheckLayoutSize(layout, g.NumNodes(), "ApplyLayout");
  if (layout.IsIdentity()) return g;
  const NodeId n = g.NumNodes();
  util::AlignedVector<std::size_t> out_off, in_off;
  util::AlignedVector<NodeId> out_adj, in_adj;
  // Both directions are remapped independently; the in-adjacency stays the
  // exact mirror of the out-adjacency because a permutation drops nothing.
  PermuteCsr(
      n, layout, [&](NodeId old) { return g.Rejectees(old); }, pool, out_off,
      out_adj);
  PermuteCsr(
      n, layout, [&](NodeId old) { return g.Rejectors(old); }, pool, in_off,
      in_adj);
  return RejectionGraph::FromCsr(n, std::move(out_off), std::move(out_adj),
                                 std::move(in_off), std::move(in_adj));
}

AugmentedGraph ApplyLayout(const AugmentedGraph& g, const Layout& layout,
                           util::ThreadPool* pool) {
  return AugmentedGraph(ApplyLayout(g.Friendships(), layout, pool),
                        ApplyLayout(g.Rejections(), layout, pool));
}

Layout InvertLayout(const Layout& layout) {
  Layout inverse;
  inverse.new_of_old = layout.old_of_new;
  inverse.old_of_new = layout.new_of_old;
  return inverse;
}

std::vector<char> MaskToLayout(const Layout& layout,
                               const std::vector<char>& mask) {
  CheckLayoutSize(layout, static_cast<NodeId>(mask.size()), "MaskToLayout");
  if (layout.IsIdentity()) return mask;
  std::vector<char> out(mask.size());
  for (std::size_t old = 0; old < mask.size(); ++old) {
    out[layout.new_of_old[old]] = mask[old];
  }
  return out;
}

std::vector<char> MaskFromLayout(const Layout& layout,
                                 const std::vector<char>& mask) {
  CheckLayoutSize(layout, static_cast<NodeId>(mask.size()), "MaskFromLayout");
  if (layout.IsIdentity()) return mask;
  std::vector<char> out(mask.size());
  for (std::size_t t = 0; t < mask.size(); ++t) {
    out[layout.old_of_new[t]] = mask[t];
  }
  return out;
}

std::vector<NodeId> IdsToLayout(const Layout& layout,
                                const std::vector<NodeId>& ids) {
  if (layout.IsIdentity()) return ids;
  std::vector<NodeId> out;
  out.reserve(ids.size());
  for (NodeId v : ids) {
    if (v >= layout.new_of_old.size()) {
      throw std::invalid_argument("IdsToLayout: id out of range");
    }
    out.push_back(layout.new_of_old[v]);
  }
  return out;
}

std::vector<NodeId> IdsFromLayout(const Layout& layout,
                                  const std::vector<NodeId>& ids) {
  if (layout.IsIdentity()) return ids;
  std::vector<NodeId> out;
  out.reserve(ids.size());
  for (NodeId v : ids) {
    if (v >= layout.old_of_new.size()) {
      throw std::invalid_argument("IdsFromLayout: id out of range");
    }
    out.push_back(layout.old_of_new[v]);
  }
  return out;
}

}  // namespace rejecto::graph
