// The rejection-augmented social graph G = (V, F, R⃗) (paper §III-A), plus
// the cut quantities Rejecto's objective is defined over.
//
// For a "suspicious" node set U (represented as a boolean membership mask):
//   F(Ū,U)   — friendships straddling the cut (attack edges, if U = Sybils)
//   R⃗(Ū,U)  — rejections cast from outside U onto members of U
//   AC⟨U,Ū⟩ — aggregate acceptance rate of requests from U to Ū:
//              |F(Ū,U)| / (|F(Ū,U)| + |R⃗(Ū,U)|)
// These reference implementations are O(E); the detector maintains them
// incrementally, and the tests check it against these.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/rejection_graph.h"
#include "graph/social_graph.h"
#include "graph/types.h"

namespace rejecto::graph {

struct CutQuantities {
  std::uint64_t cross_friendships = 0;   // |F(Ū,U)|
  std::uint64_t rejections_into_u = 0;   // |R⃗(Ū,U)|
  std::uint64_t rejections_from_u = 0;   // |R⃗(U,Ū)|

  // Aggregate acceptance rate AC⟨U,Ū⟩ of the requests from U to Ū.
  // Returns 1.0 for the degenerate 0/0 cut (no cross requests at all).
  double AcceptanceRate() const noexcept {
    const std::uint64_t denom = cross_friendships + rejections_into_u;
    return denom == 0 ? 1.0
                      : static_cast<double>(cross_friendships) /
                            static_cast<double>(denom);
  }

  // Friends-to-rejections ratio |F(Ū,U)| / |R⃗(Ū,U)| — the quantity the
  // MAAR cut minimizes (§IV-B). Infinity when there are no incoming
  // rejections (such cuts are invalid MAAR candidates).
  double FriendsToRejectionsRatio() const noexcept;
};

class AugmentedGraph {
 public:
  AugmentedGraph() = default;

  // Precondition: both graphs have the same node count.
  AugmentedGraph(SocialGraph friendships, RejectionGraph rejections);

  NodeId NumNodes() const noexcept { return friendships_.NumNodes(); }

  const SocialGraph& Friendships() const noexcept { return friendships_; }
  const RejectionGraph& Rejections() const noexcept { return rejections_; }

  // Degree maxima over V, computed once at construction (so also at every
  // subgraph compaction, which rebuilds the graph). ExtendedKl derives its
  // per-run gain bound max_F + k·max_R from these in O(1) instead of
  // rescanning all nodes on every KL invocation of the MAAR sweep.
  std::uint64_t MaxFriendshipDegree() const noexcept {
    return max_friendship_degree_;
  }
  // max over v of InDegree(v) + OutDegree(v) on the rejection graph.
  std::uint64_t MaxRejectionDegree() const noexcept {
    return max_rejection_degree_;
  }

  // O(E+R) reference computation of the cut quantities for suspicious set
  // U = { u : in_u[u] }. Precondition: in_u.size() == NumNodes().
  CutQuantities ComputeCut(const std::vector<char>& in_u) const;

  // Structural equality: both CSR graphs byte-identical (the streaming
  // differential invariant — replay + compaction vs batch construction).
  friend bool operator==(const AugmentedGraph&, const AugmentedGraph&) =
      default;

 private:
  SocialGraph friendships_;
  RejectionGraph rejections_;
  std::uint64_t max_friendship_degree_ = 0;
  std::uint64_t max_rejection_degree_ = 0;
};

}  // namespace rejecto::graph
