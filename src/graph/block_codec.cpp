#include "graph/block_codec.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <bit>
#include <stdexcept>

#include "graph/varint.h"
#include "util/simd.h"

namespace rejecto::graph {
namespace {

// Decodes `count` u32 varints from [p, end) into `out`; returns the position
// past the last consumed byte, or nullptr on truncated/over-long input.
const unsigned char* DecodeU32RunScalar(const unsigned char* p,
                                        const unsigned char* end,
                                        std::uint32_t* out,
                                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    p = varint::GetU32(p, end, &out[i]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

#if defined(__x86_64__) || defined(__i386__)
// AVX2 fast path: a 32-byte chunk whose sign-bit movemask is zero holds 32
// complete single-byte varints — widen them straight to u32 lanes. Any
// continuation byte drops to the scalar stepper for the prefix of
// single-byte values plus the one multi-byte varint, then retries the
// vector path. Same values as the scalar decoder for every input.
__attribute__((target("avx2"))) const unsigned char* DecodeU32RunAvx2(
    const unsigned char* p, const unsigned char* end, std::uint32_t* out,
    std::size_t count) {
  std::size_t i = 0;
  while (i < count) {
    if (count - i >= 32 && end - p >= 32) {
      const __m256i bytes =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      const unsigned mask =
          static_cast<unsigned>(_mm256_movemask_epi8(bytes));
      if (mask == 0) {
        const __m128i lo = _mm256_castsi256_si128(bytes);
        const __m128i hi = _mm256_extracti128_si256(bytes, 1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_cvtepu8_epi32(lo));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                            _mm256_cvtepu8_epi32(_mm_srli_si128(lo, 8)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 16),
                            _mm256_cvtepu8_epi32(hi));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 24),
                            _mm256_cvtepu8_epi32(_mm_srli_si128(hi, 8)));
        p += 32;
        i += 32;
        continue;
      }
      const unsigned leading = std::countr_zero(mask);
      for (unsigned j = 0; j < leading; ++j) out[i++] = p[j];
      p = varint::GetU32(p + leading, end, &out[i]);
      if (p == nullptr) return nullptr;
      ++i;
      continue;
    }
    p = varint::GetU32(p, end, &out[i]);
    if (p == nullptr) return nullptr;
    ++i;
  }
  return p;
}
#endif  // x86

const unsigned char* DecodeU32Run(const unsigned char* p,
                                  const unsigned char* end, std::uint32_t* out,
                                  std::size_t count) {
#if defined(__x86_64__) || defined(__i386__)
  if (util::simd::ActiveMode() == util::simd::SimdMode::kAvx2) {
    return DecodeU32RunAvx2(p, end, out, count);
  }
#endif
  return DecodeU32RunScalar(p, end, out, count);
}

bool SetError(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

void EncodeAdjBlock(NodeId first_row, std::span<const std::uint32_t> degrees,
                    const NodeId* adj, std::vector<unsigned char>& out) {
  std::uint64_t total = 0;
  for (std::uint32_t d : degrees) total += d;
  if (total > 0xffff'ffffULL) {
    throw std::invalid_argument(
        "EncodeAdjBlock: block adjacency exceeds the u32 row-offset space");
  }
  for (std::uint32_t d : degrees) varint::PutU32(out, d);
  const NodeId* row = adj;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    const std::uint32_t d = degrees[i];
    if (d > 0) {
      const std::int64_t base =
          static_cast<std::int64_t>(first_row) + static_cast<std::int64_t>(i);
      varint::PutU64(out, varint::ZigZagEncode64(
                              static_cast<std::int64_t>(row[0]) - base));
      for (std::uint32_t j = 1; j < d; ++j) {
        const std::int64_t gap = static_cast<std::int64_t>(row[j]) -
                                 static_cast<std::int64_t>(row[j - 1]);
        if (gap <= 0) {
          throw std::invalid_argument(
              "EncodeAdjBlock: row is not strictly increasing");
        }
        varint::PutU32(out, static_cast<std::uint32_t>(gap - 1));
      }
    }
    row += d;
  }
}

bool DecodeAdjBlock(const unsigned char* p, std::size_t len, NodeId first_row,
                    std::uint32_t rows,
                    util::AlignedVector<std::uint32_t>& row_offsets,
                    util::AlignedVector<NodeId>& adj, std::string* error) {
  const unsigned char* end = p + len;
  row_offsets.clear();
  row_offsets.resize(static_cast<std::size_t>(rows) + 1);
  row_offsets[0] = 0;
  if (rows > 0) {
    // The degree run lands in row_offsets[1..rows], then an in-place prefix
    // sum turns it into block-local offsets.
    p = DecodeU32Run(p, end, row_offsets.data() + 1, rows);
    if (p == nullptr) return SetError(error, "malformed degree varint");
  }
  std::uint64_t acc = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    acc += row_offsets[r + 1];
    if (acc > 0xffff'ffffULL) {
      return SetError(error, "block adjacency total overflows u32 offsets");
    }
    row_offsets[r + 1] = static_cast<std::uint32_t>(acc);
  }

  adj.clear();
  adj.resize(static_cast<std::size_t>(acc));
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t off = row_offsets[r];
    const std::uint32_t deg = row_offsets[r + 1] - off;
    if (deg == 0) continue;
    std::uint64_t zz = 0;
    p = varint::GetU64(p, end, &zz);
    if (p == nullptr) return SetError(error, "malformed first-neighbor varint");
    const std::int64_t base =
        static_cast<std::int64_t>(first_row) + static_cast<std::int64_t>(r);
    const std::int64_t first = base + varint::ZigZagDecode64(zz);
    if (first < 0 || first > 0xffff'ffffLL) {
      return SetError(error, "first neighbor outside the 32-bit id space");
    }
    NodeId* dst = adj.data() + off;
    dst[0] = static_cast<NodeId>(first);
    if (deg > 1) {
      // Gaps decode into the row's own tail slots, then accumulate in place.
      p = DecodeU32Run(p, end, dst + 1, deg - 1);
      if (p == nullptr) return SetError(error, "malformed gap varint");
      std::uint64_t cur = static_cast<std::uint64_t>(dst[0]);
      for (std::uint32_t j = 1; j < deg; ++j) {
        cur += static_cast<std::uint64_t>(dst[j]) + 1;
        if (cur > 0xffff'ffffULL) {
          return SetError(error, "neighbor id outside the 32-bit id space");
        }
        dst[j] = static_cast<NodeId>(cur);
      }
    }
  }
  if (p != end) return SetError(error, "trailing bytes after block payload");
  return true;
}

}  // namespace rejecto::graph
