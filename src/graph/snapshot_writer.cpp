#include "graph/snapshot_writer.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "graph/block_codec.h"
#include "graph/snapshot_format.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace rejecto::graph {

namespace {
constexpr std::uint32_t kCsrBlobKind[3] = {
    snapfmt::kFrBlocks, snapfmt::kOutBlocks, snapfmt::kInBlocks};
constexpr std::uint32_t kCsrIndexKind[3] = {
    snapfmt::kFrIndex, snapfmt::kOutIndex, snapfmt::kInIndex};
}  // namespace

CompressedSnapshotWriter::CompressedSnapshotWriter(std::string path,
                                                  NodeId num_nodes,
                                                  Options options,
                                                  Layout layout)
    : path_(std::move(path)),
      tmp_(path_ + ".tmp"),
      n_(num_nodes),
      block_rows_(std::clamp<std::uint32_t>(options.block_rows, 64, 256)),
      layout_(std::move(layout)) {
  if (!layout_.IsIdentity() && layout_.old_of_new.size() != n_) {
    throw std::invalid_argument(
        "CompressedSnapshotWriter: layout size mismatch");
  }
  if (util::Failpoints::Instance().ShouldFail("snapshot/write")) {
    throw std::runtime_error("snapshot: injected write failure on " + tmp_);
  }
  file_ = std::fopen(tmp_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("snapshot: cannot open " + tmp_);
  }
  const std::uint32_t sections = 7 + (layout_.IsIdentity() ? 0 : 1);
  section_base_ = snapfmt::kHeaderBytes +
                  static_cast<std::uint64_t>(sections) * snapfmt::kEntryBytes;
  while (section_base_ % snapfmt::kSectionAlign != 0) ++section_base_;
  // Header + table placeholder; patched by Finish() once every section
  // offset and CRC is known.
  const std::vector<unsigned char> zeros(section_base_, 0);
  WriteBytes(zeros.data(), zeros.size());
  csr_[0].section_offset = file_offset_;
}

CompressedSnapshotWriter::~CompressedSnapshotWriter() {
  if (phase_ != 3) Abort();
}

void CompressedSnapshotWriter::Abort() noexcept {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_.c_str());
}

void CompressedSnapshotWriter::WriteBytes(const void* data,
                                          std::size_t length) {
  if (length == 0) return;
  if (std::fwrite(data, 1, length, file_) != length) {
    throw std::runtime_error("snapshot: write failure on " + tmp_);
  }
  file_offset_ += length;
}

void CompressedSnapshotWriter::PadToAlignment() {
  static const unsigned char kZeros[snapfmt::kSectionAlign] = {0};
  const std::uint64_t rem = file_offset_ % snapfmt::kSectionAlign;
  if (rem != 0) WriteBytes(kZeros, snapfmt::kSectionAlign - rem);
}

std::uint64_t CompressedSnapshotWriter::AdjacencyBlobBytes() const noexcept {
  return csr_[0].blob_bytes + csr_[1].blob_bytes + csr_[2].blob_bytes;
}

void CompressedSnapshotWriter::AppendRow(int csr, std::span<const NodeId> row) {
  CsrStream& s = csr_[csr];
  if (s.rows_appended >= n_) {
    throw std::invalid_argument(
        "CompressedSnapshotWriter: more rows than nodes");
  }
  if (!row.empty() && row.back() >= n_) {
    // Rows are sorted (EncodeAdjBlock enforces it at flush), so the last
    // element bounds every neighbor id.
    throw std::invalid_argument(
        "CompressedSnapshotWriter: neighbor id exceeds node count");
  }
  s.degrees.push_back(static_cast<std::uint32_t>(row.size()));
  s.adj.insert(s.adj.end(), row.begin(), row.end());
  ++s.rows_appended;
  if (s.degrees.size() == block_rows_) FlushBlock(csr);
}

void CompressedSnapshotWriter::FlushBlock(int csr) {
  CsrStream& s = csr_[csr];
  if (s.degrees.empty()) return;
  const NodeId first_row =
      s.rows_appended - static_cast<NodeId>(s.degrees.size());
  encode_buf_.clear();
  EncodeAdjBlock(first_row, s.degrees, s.adj.data(), encode_buf_);
  unsigned char rec[snapfmt::kIndexEntryBytes];
  snapfmt::PutU64Le(rec, s.blob_bytes);
  snapfmt::PutU64Le(rec + 8, s.total_adj);
  snapfmt::PutU32Le(rec + 16,
                    util::Crc32c(encode_buf_.data(), encode_buf_.size()));
  snapfmt::PutU32Le(rec + 20, static_cast<std::uint32_t>(s.degrees.size()));
  s.index.insert(s.index.end(), rec, rec + snapfmt::kIndexEntryBytes);
  WriteBytes(encode_buf_.data(), encode_buf_.size());
  s.blob_bytes += encode_buf_.size();
  s.total_adj += s.adj.size();
  s.degrees.clear();
  s.adj.clear();
}

void CompressedSnapshotWriter::FinishStream(int csr) {
  CsrStream& s = csr_[csr];
  if (s.rows_appended != n_) {
    throw std::invalid_argument(
        "CompressedSnapshotWriter: stream is missing rows");
  }
  FlushBlock(csr);
  table_.push_back({kCsrBlobKind[csr], 0, s.section_offset, s.blob_bytes});
  // Sentinel record: blob totals, so readers derive block byte lengths and
  // the final global row offset without a second array.
  unsigned char rec[snapfmt::kIndexEntryBytes];
  snapfmt::PutU64Le(rec, s.blob_bytes);
  snapfmt::PutU64Le(rec + 8, s.total_adj);
  snapfmt::PutU32Le(rec + 16, 0);
  snapfmt::PutU32Le(rec + 20, 0);
  s.index.insert(s.index.end(), rec, rec + snapfmt::kIndexEntryBytes);
  WriteSection(kCsrIndexKind[csr], s.index.data(), s.index.size());
  s.index.clear();
  s.index.shrink_to_fit();
  if (csr < 2) {
    PadToAlignment();
    csr_[csr + 1].section_offset = file_offset_;
  }
}

void CompressedSnapshotWriter::WriteSection(std::uint32_t kind,
                                            const void* data,
                                            std::uint64_t length) {
  PadToAlignment();
  const std::uint32_t crc =
      util::Crc32c(data, static_cast<std::size_t>(length));
  table_.push_back({kind, crc, file_offset_, length});
  WriteBytes(data, static_cast<std::size_t>(length));
}

void CompressedSnapshotWriter::AppendFriendRow(std::span<const NodeId> row) {
  if (phase_ != 0) {
    throw std::logic_error(
        "CompressedSnapshotWriter: friendship rows must come first");
  }
  max_friend_degree_ = std::max<std::uint64_t>(max_friend_degree_, row.size());
  AppendRow(0, row);
}

void CompressedSnapshotWriter::AppendRejectionOutRow(
    std::span<const NodeId> row) {
  if (phase_ == 0) {
    FinishStream(0);
    phase_ = 1;
    out_degree_.assign(n_, 0);
  }
  if (phase_ != 1) {
    throw std::logic_error(
        "CompressedSnapshotWriter: out-rows must precede in-rows");
  }
  out_degree_[csr_[1].rows_appended] = static_cast<std::uint32_t>(row.size());
  AppendRow(1, row);
}

void CompressedSnapshotWriter::AppendRejectionInRow(
    std::span<const NodeId> row) {
  if (phase_ == 0 || phase_ == 1) {
    if (phase_ == 0) {
      FinishStream(0);
      out_degree_.assign(n_, 0);
    }
    FinishStream(1);
    phase_ = 2;
  }
  if (phase_ != 2) {
    throw std::logic_error(
        "CompressedSnapshotWriter: writer already finished");
  }
  // The max rejection degree is per-node in + out, matching what
  // AugmentedGraph computes at construction (ExtendedKl's gain bound must
  // be identical on both paths).
  max_rejection_degree_ = std::max<std::uint64_t>(
      max_rejection_degree_,
      static_cast<std::uint64_t>(out_degree_[csr_[2].rows_appended]) +
          row.size());
  AppendRow(2, row);
}

void CompressedSnapshotWriter::Finish() {
  if (phase_ == 3) {
    throw std::logic_error("CompressedSnapshotWriter: already finished");
  }
  if (phase_ == 0) {
    FinishStream(0);
    out_degree_.assign(n_, 0);
    phase_ = 1;
  }
  if (phase_ == 1) {
    FinishStream(1);
    phase_ = 2;
  }
  FinishStream(2);
  out_degree_.clear();
  out_degree_.shrink_to_fit();

  if (csr_[0].total_adj % 2 != 0) {
    throw std::invalid_argument(
        "CompressedSnapshotWriter: friendship adjacency total is odd");
  }
  if (csr_[1].total_adj != csr_[2].total_adj) {
    throw std::invalid_argument(
        "CompressedSnapshotWriter: in-arc total disagrees with out-arcs");
  }

  unsigned char meta[snapfmt::kMetaBytesV2];
  snapfmt::PutU64Le(meta, n_);
  snapfmt::PutU64Le(meta + 8, csr_[0].total_adj / 2);
  snapfmt::PutU64Le(meta + 16, csr_[1].total_adj);
  snapfmt::PutU64Le(meta + 24,
                    layout_.IsIdentity() ? 0 : snapfmt::kFlagHasLayout);
  snapfmt::PutU64Le(meta + 32, block_rows_);
  snapfmt::PutU64Le(meta + 40, max_friend_degree_);
  snapfmt::PutU64Le(meta + 48, max_rejection_degree_);
  WriteSection(snapfmt::kMeta, meta, sizeof(meta));

  if (!layout_.IsIdentity()) {
    std::vector<unsigned char> le(static_cast<std::size_t>(n_) * 4);
    for (NodeId i = 0; i < n_; ++i) {
      snapfmt::PutU32Le(le.data() + static_cast<std::size_t>(i) * 4,
                        layout_.old_of_new[i]);
    }
    WriteSection(snapfmt::kLayout, le.data(), le.size());
  }

  // Patch the header + section table in place, then publish.
  std::vector<unsigned char> table(table_.size() * snapfmt::kEntryBytes);
  for (std::size_t i = 0; i < table_.size(); ++i) {
    unsigned char* p = table.data() + i * snapfmt::kEntryBytes;
    snapfmt::PutU32Le(p, table_[i].kind);
    snapfmt::PutU32Le(p + 4, table_[i].crc);
    snapfmt::PutU64Le(p + 8, table_[i].offset);
    snapfmt::PutU64Le(p + 16, table_[i].length);
  }
  unsigned char header[snapfmt::kHeaderBytes];
  std::memcpy(header, snapfmt::kMagicV2, 8);
  snapfmt::PutU32Le(header + 8, static_cast<std::uint32_t>(table_.size()));
  snapfmt::PutU32Le(header + 12, util::Crc32c(table.data(), table.size()));

  bool ok = std::fseek(file_, 0, SEEK_SET) == 0;
  ok = ok && std::fwrite(header, 1, sizeof(header), file_) == sizeof(header);
  ok = ok && std::fwrite(table.data(), 1, table.size(), file_) == table.size();
  ok = ok && std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) {
    std::remove(tmp_.c_str());
    throw std::runtime_error("snapshot: write failure on " + tmp_);
  }
  if (util::Failpoints::Instance().ShouldFail("snapshot/rename") ||
      std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    throw std::runtime_error("snapshot: cannot publish " + path_);
  }
  phase_ = 3;
}

}  // namespace rejecto::graph
