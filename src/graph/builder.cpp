#include "graph/builder.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/buffer.h"

namespace rejecto::graph {
namespace {

// Sorts, dedups, and converts a directed arc list into CSR arrays, built
// directly on the aligned memory tier the graphs keep them on.
struct Csr {
  util::AlignedVector<std::size_t> offsets;
  util::AlignedVector<NodeId> adj;
};

Csr ToCsr(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  Csr csr;
  csr.offsets.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [from, to] : pairs) ++csr.offsets[from + 1];
  for (std::size_t i = 1; i < csr.offsets.size(); ++i) {
    csr.offsets[i] += csr.offsets[i - 1];
  }
  csr.adj.reserve(pairs.size());
  for (const auto& [from, to] : pairs) csr.adj.push_back(to);
  return csr;
}

}  // namespace

NodeId GraphBuilder::AddNode() { return AddNodes(1); }

NodeId GraphBuilder::AddNodes(NodeId count) {
  const NodeId first = num_nodes_;
  num_nodes_ += count;
  return first;
}

void GraphBuilder::AddFriendship(NodeId u, NodeId v) {
  if (u == v) {
    throw std::invalid_argument("GraphBuilder: self-friendship is not allowed");
  }
  Touch(u);
  Touch(v);
  edges_.push_back({std::min(u, v), std::max(u, v)});
}

void GraphBuilder::AddRejection(NodeId from, NodeId to) {
  if (from == to) {
    throw std::invalid_argument("GraphBuilder: self-rejection arc <u,u>");
  }
  Touch(from);
  Touch(to);
  arcs_.push_back({from, to});
}

SocialGraph GraphBuilder::BuildSocial() const {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    pairs.emplace_back(e.u, e.v);
    pairs.emplace_back(e.v, e.u);
  }
  Csr csr = ToCsr(num_nodes_, std::move(pairs));
  return SocialGraph(num_nodes_, std::move(csr.offsets), std::move(csr.adj));
}

RejectionGraph GraphBuilder::BuildRejection() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(arcs_.size());
  for (const Arc& a : arcs_) out.emplace_back(a.from, a.to);
  Csr out_csr = ToCsr(num_nodes_, std::move(out));

  // The in-adjacency must mirror the deduplicated out-adjacency exactly.
  std::vector<std::pair<NodeId, NodeId>> in;
  in.reserve(out_csr.adj.size());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (std::size_t i = out_csr.offsets[u]; i < out_csr.offsets[u + 1]; ++i) {
      in.emplace_back(out_csr.adj[i], u);
    }
  }
  Csr in_csr = ToCsr(num_nodes_, std::move(in));

  return RejectionGraph(num_nodes_, std::move(out_csr.offsets),
                        std::move(out_csr.adj), std::move(in_csr.offsets),
                        std::move(in_csr.adj));
}

AugmentedGraph GraphBuilder::BuildAugmented() const {
  return AugmentedGraph(BuildSocial(), BuildRejection());
}

}  // namespace rejecto::graph
