// Streaming RJSNAP02 writer: emits a compressed snapshot row by row,
// without ever materializing the graph.
//
// SaveSnapshot's v2 path feeds it from an in-RAM AugmentedGraph, and the
// 100M-edge synthetic generator (gen/synthetic_stream.h) feeds it straight
// from its row generator — both produce byte-identical files for identical
// rows, so there is exactly one v2 encoder in the tree.
//
// Protocol: construct with the node count, then append all n friendship
// rows, all n rejection out-rows, and all n rejection in-rows, in that
// order and in ascending row id, then Finish(). Rows must be sorted and
// duplicate-free (the CSR invariant). The writer streams encoded blocks to
// `path + ".tmp"` as they fill, keeps only the current block buffer, the
// growing block indexes (24 bytes per block per CSR) and one u32 per node
// (the out-degrees, needed for the exact max-rejection-degree the meta
// section must carry), and publishes atomically via rename in Finish() —
// peak writer RSS is O(n) small constants, independent of edge count.
// Failpoints: "snapshot/write" (construction) and "snapshot/rename"
// (Finish), same sites as the v1 writer.
//
// Destruction before Finish() aborts the file: the tmp is removed and
// `path` is left untouched.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "graph/layout.h"
#include "graph/types.h"

namespace rejecto::graph {

class CompressedSnapshotWriter {
 public:
  struct Options {
    // Rows per compressed block; clamped into [64, 256] (the format's
    // supported span range).
    std::uint32_t block_rows = 128;
  };

  // `layout` follows SaveSnapshot's contract: empty (identity) or sized to
  // n, with rows arriving already in the laid-out id space.
  CompressedSnapshotWriter(std::string path, NodeId num_nodes, Options options,
                           Layout layout = Layout{});
  ~CompressedSnapshotWriter();

  CompressedSnapshotWriter(const CompressedSnapshotWriter&) = delete;
  CompressedSnapshotWriter& operator=(const CompressedSnapshotWriter&) = delete;

  void AppendFriendRow(std::span<const NodeId> row);
  void AppendRejectionOutRow(std::span<const NodeId> row);
  void AppendRejectionInRow(std::span<const NodeId> row);

  // Writes the index/meta/layout sections and the header + section table,
  // fsyncs, and atomically renames the tmp into place. Throws when row
  // counts are incomplete, the in-arc total disagrees with the out-arc
  // total, or the friendship total is odd.
  void Finish();

  // Total encoded blob bytes across the three adjacency streams so far
  // (the number the ≤ 0.5× v1-adjacency compression criterion is about).
  std::uint64_t AdjacencyBlobBytes() const noexcept;

 private:
  struct CsrStream {
    std::vector<std::uint32_t> degrees;  // buffered rows of the open block
    std::vector<NodeId> adj;
    std::vector<unsigned char> index;    // accumulated index records
    std::uint64_t blob_bytes = 0;        // encoded bytes flushed so far
    std::uint64_t total_adj = 0;         // adjacency entries flushed
    NodeId rows_appended = 0;
    std::uint64_t section_offset = 0;    // blob section file offset
  };

  void AppendRow(int csr, std::span<const NodeId> row);
  void FlushBlock(int csr);             // encodes + writes the open block
  void FinishStream(int csr);           // final partial block + index section
  void WriteSection(std::uint32_t kind, const void* data,
                    std::uint64_t length);
  void PadToAlignment();
  void WriteBytes(const void* data, std::size_t length);
  void Abort() noexcept;

  std::string path_;
  std::string tmp_;
  std::FILE* file_ = nullptr;
  NodeId n_ = 0;
  std::uint32_t block_rows_ = 128;
  Layout layout_;
  std::uint64_t file_offset_ = 0;
  std::uint64_t section_base_ = 0;  // first section offset (after the table)
  CsrStream csr_[3];
  int phase_ = 0;  // 0 = friend rows, 1 = out rows, 2 = in rows, 3 = finished
  std::vector<unsigned char> encode_buf_;
  std::vector<std::uint32_t> out_degree_;  // per-node, for max rejection degree
  std::uint64_t max_friend_degree_ = 0;
  std::uint64_t max_rejection_degree_ = 0;
  struct TableEntry {
    std::uint32_t kind;
    std::uint32_t crc;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<TableEntry> table_;
};

}  // namespace rejecto::graph
