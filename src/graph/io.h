// Edge-list I/O in the SNAP text format: one whitespace-separated node pair
// per line, '#' comment lines ignored. Node ids in files may be sparse;
// loading remaps them to dense [0, n) ids and returns the mapping so results
// can be reported in original ids.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/social_graph.h"
#include "graph/types.h"

namespace rejecto::graph {

struct LoadedGraph {
  SocialGraph graph;
  // dense id -> original file id
  std::vector<std::uint64_t> original_id;
};

// Throws std::runtime_error on unreadable files or malformed lines.
LoadedGraph LoadEdgeList(const std::string& path);

// Writes "u v" per edge (dense ids), preceded by a comment header.
void SaveEdgeList(const SocialGraph& g, const std::string& path);

struct LoadedAugmentedGraph {
  AugmentedGraph graph;
  // dense id -> original file id (shared by both input files)
  std::vector<std::uint64_t> original_id;
  std::unordered_map<std::uint64_t, NodeId> dense_id;
};

// Loads a friendship edge list plus a rejection arc list ("rejector
// rejected_sender" per line, same comment syntax) into one augmented graph
// over a shared id space. Nodes appearing in either file are included.
LoadedAugmentedGraph LoadAugmentedGraph(const std::string& friendships_path,
                                        const std::string& rejections_path);

}  // namespace rejecto::graph
