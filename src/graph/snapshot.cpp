#include "graph/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <vector>

#include "util/buffer.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/memory.h"

namespace rejecto::graph {
namespace {

constexpr char kMagic[8] = {'R', 'J', 'S', 'N', 'A', 'P', '0', '1'};

enum SectionKind : std::uint32_t {
  kMeta = 0,
  kFrOffsets = 1,
  kFrAdj = 2,
  kOutOffsets = 3,
  kOutAdj = 4,
  kInOffsets = 5,
  kInAdj = 6,
  kLayout = 7,
};

constexpr std::uint64_t kFlagHasLayout = 1;
constexpr std::size_t kEntryBytes = 24;  // kind + crc + offset + length
constexpr std::size_t kHeaderBytes = 16; // magic + count + table crc
constexpr std::uint32_t kMaxSections = 64;
// Every section starts on a 64-byte boundary (util::memory::kAlignment) so
// an mmap'd view can hand CSR arrays straight to the SIMD kernels; the
// loader rejects misaligned sections instead of silently copying them.
constexpr std::size_t kSectionAlign = util::memory::kAlignment;

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

void PutU32Le(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

void PutU64Le(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

std::uint32_t GetU32Le(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64Le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[noreturn]] void Fail(const std::string& path, std::uint64_t offset,
                       const std::string& what) {
  throw std::runtime_error("snapshot: " + path + " at offset " +
                           std::to_string(offset) + ": " + what);
}

// ---------- save-side image builder ----------

class ImageBuilder {
 public:
  // Appends a section at the next 64-byte-aligned offset, CRC included.
  void AddSection(std::uint32_t kind, const void* data, std::uint64_t length) {
    while (bytes_.size() % kSectionAlign != 0) bytes_.push_back(0);
    SectionEntry e;
    e.kind = kind;
    e.crc = util::Crc32c(data, static_cast<std::size_t>(length));
    e.offset = bytes_.size();  // relative to section area; fixed up below
    e.length = length;
    if (length > 0) {
      const auto* p = static_cast<const unsigned char*>(data);
      bytes_.insert(bytes_.end(), p, p + length);
    }
    entries_.push_back(e);
  }

  // Assembles header + section table + section bytes.
  std::vector<unsigned char> Finish() {
    const std::size_t table_bytes = entries_.size() * kEntryBytes;
    std::size_t base = kHeaderBytes + table_bytes;
    while (base % kSectionAlign != 0) ++base;

    std::vector<unsigned char> table(table_bytes);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      unsigned char* p = table.data() + i * kEntryBytes;
      PutU32Le(p, entries_[i].kind);
      PutU32Le(p + 4, entries_[i].crc);
      PutU64Le(p + 8, entries_[i].offset + base);
      PutU64Le(p + 16, entries_[i].length);
    }

    std::vector<unsigned char> out(base + bytes_.size(), 0);
    std::memcpy(out.data(), kMagic, sizeof(kMagic));
    PutU32Le(out.data() + 8, static_cast<std::uint32_t>(entries_.size()));
    PutU32Le(out.data() + 12, util::Crc32c(table.data(), table.size()));
    std::memcpy(out.data() + kHeaderBytes, table.data(), table.size());
    if (!bytes_.empty()) {
      std::memcpy(out.data() + base, bytes_.data(), bytes_.size());
    }
    return out;
  }

 private:
  std::vector<SectionEntry> entries_;
  std::vector<unsigned char> bytes_;
};

// Offsets are rebuilt from the public degree accessors (the CSR offset
// arrays are private to the graph classes) directly into their on-disk u64
// representation; adjacency is contiguous behind the row spans, so row 0's
// data pointer is the whole array.
std::vector<std::uint64_t> OffsetsU64(
    NodeId n, const std::function<std::uint32_t(NodeId)>& degree) {
  std::vector<std::uint64_t> off(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) off[u + 1] = off[u] + degree(u);
  return off;
}

void AddCsr(ImageBuilder& image, std::uint32_t offsets_kind,
            std::uint32_t adj_kind, const std::vector<std::uint64_t>& off,
            const NodeId* adj_base) {
  image.AddSection(offsets_kind, off.data(), off.size() * sizeof(std::uint64_t));
  image.AddSection(adj_kind, adj_base, off.back() * sizeof(NodeId));
}

void WriteImageAtomically(const std::string& path,
                          const std::vector<unsigned char>& image) {
  const std::string tmp = path + ".tmp";
  if (util::Failpoints::Instance().ShouldFail("snapshot/write")) {
    throw std::runtime_error("snapshot: injected write failure on " + tmp);
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot open " + tmp);
  }
  bool ok = std::fwrite(image.data(), 1, image.size(), f) == image.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: write failure on " + tmp);
  }
  // Atomic publish, exactly like the WAL checkpoints: a crash before the
  // rename leaves the previous snapshot (if any) intact.
  if (util::Failpoints::Instance().ShouldFail("snapshot/rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: cannot publish " + path);
  }
}

// ---------- load-side file access ----------

// Owns the loaded bytes: an mmap'd region, or a heap buffer when mapping is
// unavailable (failpoint "snapshot/map", zero-length files, exotic FS).
class FileBytes {
 public:
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;

  explicit FileBytes(const std::string& path) {
    if (util::Failpoints::Instance().ShouldFail("snapshot/open")) {
      throw std::runtime_error("snapshot: injected open failure on " + path);
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw std::runtime_error("snapshot: cannot open " + path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw std::runtime_error("snapshot: cannot stat " + path);
    }
    size_ = static_cast<std::size_t>(st.st_size);

    const bool force_fallback =
        util::Failpoints::Instance().ShouldFail("snapshot/map");
    if (size_ > 0 && !force_fallback) {
      void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (m != MAP_FAILED) {
        map_ = m;
        data_ = static_cast<const unsigned char*>(m);
      }
    }
    if (data_ == nullptr && size_ > 0) {
      // Buffered fallback: one sequential read of the whole file.
      buf_.resize(size_);
      std::ifstream in(path, std::ios::binary);
      if (!in.read(reinterpret_cast<char*>(buf_.data()),
                   static_cast<std::streamsize>(size_))) {
        ::close(fd);
        throw std::runtime_error("snapshot: cannot read " + path);
      }
      data_ = buf_.data();
    }
    ::close(fd);
  }

  ~FileBytes() {
    if (map_ != nullptr) ::munmap(map_, size_);
  }

  const unsigned char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

 private:
  void* map_ = nullptr;
  std::vector<unsigned char> buf_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

// Bulk-copies a u64 section into the in-memory std::size_t offsets array,
// directly onto the aligned tier the graph keeps it on.
util::AlignedVector<std::size_t> ReadOffsets(const unsigned char* p,
                                             std::size_t count) {
  util::AlignedVector<std::size_t> off(count);
  if constexpr (sizeof(std::size_t) == sizeof(std::uint64_t) &&
                std::endian::native == std::endian::little) {
    std::memcpy(off.data(), p, count * sizeof(std::uint64_t));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      off[i] = static_cast<std::size_t>(GetU64Le(p + i * 8));
    }
  }
  return off;
}

util::AlignedVector<NodeId> ReadNodeIds(const unsigned char* p,
                                        std::size_t count) {
  util::AlignedVector<NodeId> ids(count);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(ids.data(), p, count * sizeof(NodeId));
  } else {
    for (std::size_t i = 0; i < count; ++i) ids[i] = GetU32Le(p + i * 4);
  }
  return ids;
}

void CheckOffsets(const std::string& path, const SectionEntry& e,
                  const util::AlignedVector<std::size_t>& off,
                  std::uint64_t total) {
  if (off.empty() || off.front() != 0) {
    Fail(path, e.offset, "CSR offsets do not start at 0");
  }
  for (std::size_t i = 1; i < off.size(); ++i) {
    if (off[i] < off[i - 1]) Fail(path, e.offset, "CSR offsets not monotone");
  }
  if (off.back() != total) {
    Fail(path, e.offset, "CSR offset total disagrees with the meta section");
  }
}

}  // namespace

void SaveSnapshot(const std::string& path, const AugmentedGraph& g,
                  const Layout& layout) {
  const NodeId n = g.NumNodes();
  if (!layout.IsIdentity() && layout.old_of_new.size() != n) {
    throw std::invalid_argument("SaveSnapshot: layout size mismatch");
  }
  const SocialGraph& fr = g.Friendships();
  const RejectionGraph& rej = g.Rejections();
  const auto fr_off = OffsetsU64(n, [&](NodeId u) { return fr.Degree(u); });
  const auto out_off = OffsetsU64(n, [&](NodeId u) { return rej.OutDegree(u); });
  const auto in_off = OffsetsU64(n, [&](NodeId u) { return rej.InDegree(u); });

  std::uint64_t meta[4] = {n, g.Friendships().NumEdges(),
                           g.Rejections().NumArcs(),
                           layout.IsIdentity() ? 0 : kFlagHasLayout};
  std::uint64_t meta_le[4];
  for (int i = 0; i < 4; ++i) {
    PutU64Le(reinterpret_cast<unsigned char*>(&meta_le[i]), meta[i]);
  }

  ImageBuilder image;
  image.AddSection(kMeta, meta_le, sizeof(meta_le));
  AddCsr(image, kFrOffsets, kFrAdj, fr_off,
         n > 0 ? fr.Neighbors(0).data() : nullptr);
  AddCsr(image, kOutOffsets, kOutAdj, out_off,
         n > 0 ? rej.Rejectees(0).data() : nullptr);
  AddCsr(image, kInOffsets, kInAdj, in_off,
         n > 0 ? rej.Rejectors(0).data() : nullptr);
  if (!layout.IsIdentity()) {
    if constexpr (std::endian::native == std::endian::little) {
      image.AddSection(kLayout, layout.old_of_new.data(),
                       static_cast<std::uint64_t>(n) * sizeof(NodeId));
    } else {
      std::vector<unsigned char> le(static_cast<std::size_t>(n) * 4);
      for (NodeId i = 0; i < n; ++i) {
        PutU32Le(le.data() + static_cast<std::size_t>(i) * 4,
                 layout.old_of_new[i]);
      }
      image.AddSection(kLayout, le.data(), le.size());
    }
  }
  WriteImageAtomically(path, image.Finish());
}

Layout SaveSnapshotWithPolicy(const std::string& path,
                              const AugmentedGraph& g, LayoutPolicy policy) {
  Layout layout = ComputeLayout(g, policy);
  if (layout.IsIdentity()) {
    SaveSnapshot(path, g, layout);
  } else {
    SaveSnapshot(path, ApplyLayout(g, layout), layout);
  }
  return layout;
}

Snapshot LoadSnapshot(const std::string& path) {
  FileBytes file(path);
  const unsigned char* data = file.data();
  const std::size_t size = file.size();

  if (size < kHeaderBytes) Fail(path, size, "truncated header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    Fail(path, 0, "bad magic (not an RJSNAP01 snapshot)");
  }
  const std::uint32_t count = GetU32Le(data + 8);
  if (count == 0 || count > kMaxSections) {
    Fail(path, 8, "implausible section count " + std::to_string(count));
  }
  const std::size_t table_bytes = count * kEntryBytes;
  if (size < kHeaderBytes + table_bytes) {
    Fail(path, size, "truncated section table");
  }
  if (util::Crc32c(data + kHeaderBytes, table_bytes) != GetU32Le(data + 12)) {
    Fail(path, 12, "section table CRC mismatch");
  }

  // Validate every entry's bounds and content CRC before touching payloads.
  SectionEntry sections[kMaxSections];
  const SectionEntry* by_kind[8] = {nullptr};
  for (std::uint32_t i = 0; i < count; ++i) {
    const unsigned char* p = data + kHeaderBytes + i * kEntryBytes;
    SectionEntry& e = sections[i];
    e.kind = GetU32Le(p);
    e.crc = GetU32Le(p + 4);
    e.offset = GetU64Le(p + 8);
    e.length = GetU64Le(p + 16);
    if (e.offset > size || e.length > size - e.offset) {
      Fail(path, e.offset,
           "section " + std::to_string(e.kind) + " of length " +
               std::to_string(e.length) + " exceeds file size " +
               std::to_string(size));
    }
    if (util::Crc32c(data + e.offset, static_cast<std::size_t>(e.length)) !=
        e.crc) {
      Fail(path, e.offset,
           "section " + std::to_string(e.kind) + " CRC mismatch");
    }
    if (e.offset % kSectionAlign != 0) {
      Fail(path, e.offset,
           "section " + std::to_string(e.kind) +
               " is not 64-byte aligned (pre-alignment snapshot? re-save "
               "with this build)");
    }
    if (e.kind < 8) {
      if (by_kind[e.kind] != nullptr) {
        Fail(path, e.offset,
             "duplicate section " + std::to_string(e.kind));
      }
      by_kind[e.kind] = &e;
    }
  }

  const SectionEntry* meta = by_kind[kMeta];
  if (meta == nullptr || meta->length != 32) {
    Fail(path, kHeaderBytes, "missing or malformed meta section");
  }
  const unsigned char* mp = data + meta->offset;
  const std::uint64_t n64 = GetU64Le(mp);
  const std::uint64_t num_edges = GetU64Le(mp + 8);
  const std::uint64_t num_arcs = GetU64Le(mp + 16);
  const std::uint64_t flags = GetU64Le(mp + 24);
  if (n64 >= kInvalidNode) {
    Fail(path, meta->offset, "node count " + std::to_string(n64) +
                                 " exceeds the 32-bit id space");
  }
  const NodeId n = static_cast<NodeId>(n64);

  struct CsrSpec {
    SectionKind off_kind;
    SectionKind adj_kind;
    std::uint64_t total;  // expected adjacency entries
  };
  const CsrSpec specs[3] = {{kFrOffsets, kFrAdj, 2 * num_edges},
                            {kOutOffsets, kOutAdj, num_arcs},
                            {kInOffsets, kInAdj, num_arcs}};
  util::AlignedVector<std::size_t> offs[3];
  util::AlignedVector<NodeId> adjs[3];
  for (int c = 0; c < 3; ++c) {
    const SectionEntry* oe = by_kind[specs[c].off_kind];
    const SectionEntry* ae = by_kind[specs[c].adj_kind];
    if (oe == nullptr || ae == nullptr) {
      Fail(path, kHeaderBytes,
           "missing CSR sections " + std::to_string(specs[c].off_kind) + "/" +
               std::to_string(specs[c].adj_kind));
    }
    if (oe->length != (n64 + 1) * sizeof(std::uint64_t)) {
      Fail(path, oe->offset, "offset section length disagrees with node count");
    }
    if (ae->length != specs[c].total * sizeof(NodeId)) {
      Fail(path, ae->offset,
           "adjacency section length disagrees with the meta section");
    }
    offs[c] = ReadOffsets(data + oe->offset, static_cast<std::size_t>(n64) + 1);
    CheckOffsets(path, *oe, offs[c], specs[c].total);
    adjs[c] = ReadNodeIds(data + ae->offset,
                          static_cast<std::size_t>(specs[c].total));
  }

  Layout layout;
  if ((flags & kFlagHasLayout) != 0) {
    const SectionEntry* le = by_kind[kLayout];
    if (le == nullptr || le->length != n64 * sizeof(NodeId)) {
      Fail(path, kHeaderBytes, "missing or malformed layout section");
    }
    std::vector<NodeId> old_of_new =
        ReadNodeIds(data + le->offset, static_cast<std::size_t>(n64))
            .ToStdVector();
    layout.new_of_old.assign(n, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId o = old_of_new[v];
      if (o >= n || layout.new_of_old[o] != kInvalidNode) {
        Fail(path, le->offset, "layout permutation is not a bijection");
      }
      layout.new_of_old[o] = v;
    }
    layout.old_of_new = std::move(old_of_new);
  }

  Snapshot snap;
  snap.graph = AugmentedGraph(
      SocialGraph::FromCsr(n, std::move(offs[0]), std::move(adjs[0])),
      RejectionGraph::FromCsr(n, std::move(offs[1]), std::move(adjs[1]),
                              std::move(offs[2]), std::move(adjs[2])));
  snap.layout = std::move(layout);
  return snap;
}

}  // namespace rejecto::graph
