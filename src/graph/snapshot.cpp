#include "graph/snapshot.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <vector>

#include "graph/compressed_view.h"
#include "graph/snapshot_format.h"
#include "graph/snapshot_writer.h"
#include "util/buffer.h"
#include "util/crc32c.h"

namespace rejecto::graph {
namespace {

using snapfmt::SectionEntry;

// Offsets are rebuilt from the public degree accessors (the CSR offset
// arrays are private to the graph classes) directly into their on-disk u64
// representation; adjacency is contiguous behind the row spans, so row 0's
// data pointer is the whole array.
std::vector<std::uint64_t> OffsetsU64(
    NodeId n, const std::function<std::uint32_t(NodeId)>& degree) {
  std::vector<std::uint64_t> off(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) off[u + 1] = off[u] + degree(u);
  return off;
}

void AddCsr(snapfmt::ImageBuilder& image, std::uint32_t offsets_kind,
            std::uint32_t adj_kind, const std::vector<std::uint64_t>& off,
            const NodeId* adj_base) {
  image.AddSection(offsets_kind, off.data(),
                   off.size() * sizeof(std::uint64_t));
  image.AddSection(adj_kind, adj_base, off.back() * sizeof(NodeId));
}

void SaveSnapshotV1(const std::string& path, const AugmentedGraph& g,
                    const Layout& layout) {
  const NodeId n = g.NumNodes();
  const SocialGraph& fr = g.Friendships();
  const RejectionGraph& rej = g.Rejections();
  const auto fr_off = OffsetsU64(n, [&](NodeId u) { return fr.Degree(u); });
  const auto out_off =
      OffsetsU64(n, [&](NodeId u) { return rej.OutDegree(u); });
  const auto in_off = OffsetsU64(n, [&](NodeId u) { return rej.InDegree(u); });

  std::uint64_t meta[4] = {n, g.Friendships().NumEdges(),
                           g.Rejections().NumArcs(),
                           layout.IsIdentity() ? 0 : snapfmt::kFlagHasLayout};
  std::uint64_t meta_le[4];
  for (int i = 0; i < 4; ++i) {
    snapfmt::PutU64Le(reinterpret_cast<unsigned char*>(&meta_le[i]), meta[i]);
  }

  snapfmt::ImageBuilder image;
  image.AddSection(snapfmt::kMeta, meta_le, sizeof(meta_le));
  AddCsr(image, snapfmt::kFrOffsets, snapfmt::kFrAdj, fr_off,
         n > 0 ? fr.Neighbors(0).data() : nullptr);
  AddCsr(image, snapfmt::kOutOffsets, snapfmt::kOutAdj, out_off,
         n > 0 ? rej.Rejectees(0).data() : nullptr);
  AddCsr(image, snapfmt::kInOffsets, snapfmt::kInAdj, in_off,
         n > 0 ? rej.Rejectors(0).data() : nullptr);
  if (!layout.IsIdentity()) {
    if constexpr (std::endian::native == std::endian::little) {
      image.AddSection(snapfmt::kLayout, layout.old_of_new.data(),
                       static_cast<std::uint64_t>(n) * sizeof(NodeId));
    } else {
      std::vector<unsigned char> le(static_cast<std::size_t>(n) * 4);
      for (NodeId i = 0; i < n; ++i) {
        snapfmt::PutU32Le(le.data() + static_cast<std::size_t>(i) * 4,
                          layout.old_of_new[i]);
      }
      image.AddSection(snapfmt::kLayout, le.data(), le.size());
    }
  }
  snapfmt::WriteImageAtomically(path, image.Finish(snapfmt::kMagicV1));
}

void SaveSnapshotV2(const std::string& path, const AugmentedGraph& g,
                    const Layout& layout, const SnapshotOptions& options) {
  const NodeId n = g.NumNodes();
  CompressedSnapshotWriter::Options wopts;
  wopts.block_rows = options.block_rows;
  CompressedSnapshotWriter writer(path, n, wopts, layout);
  const SocialGraph& fr = g.Friendships();
  const RejectionGraph& rej = g.Rejections();
  for (NodeId u = 0; u < n; ++u) writer.AppendFriendRow(fr.Neighbors(u));
  for (NodeId u = 0; u < n; ++u) {
    writer.AppendRejectionOutRow(rej.Rejectees(u));
  }
  for (NodeId u = 0; u < n; ++u) writer.AppendRejectionInRow(rej.Rejectors(u));
  writer.Finish();
}

// ---------- v1 load helpers ----------

// Bulk-copies a u64 section into the in-memory std::size_t offsets array,
// directly onto the aligned tier the graph keeps it on.
util::AlignedVector<std::size_t> ReadOffsets(const unsigned char* p,
                                             std::size_t count) {
  util::AlignedVector<std::size_t> off(count);
  if constexpr (sizeof(std::size_t) == sizeof(std::uint64_t) &&
                std::endian::native == std::endian::little) {
    std::memcpy(off.data(), p, count * sizeof(std::uint64_t));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      off[i] = static_cast<std::size_t>(snapfmt::GetU64Le(p + i * 8));
    }
  }
  return off;
}

util::AlignedVector<NodeId> ReadNodeIds(const unsigned char* p,
                                        std::size_t count) {
  util::AlignedVector<NodeId> ids(count);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(ids.data(), p, count * sizeof(NodeId));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      ids[i] = snapfmt::GetU32Le(p + i * 4);
    }
  }
  return ids;
}

void CheckOffsets(const std::string& path, const SectionEntry& e,
                  const util::AlignedVector<std::size_t>& off,
                  std::uint64_t total) {
  if (off.empty() || off.front() != 0) {
    snapfmt::Fail(path, e.offset, "CSR offsets do not start at 0");
  }
  for (std::size_t i = 1; i < off.size(); ++i) {
    if (off[i] < off[i - 1]) {
      snapfmt::Fail(path, e.offset, "CSR offsets not monotone");
    }
  }
  if (off.back() != total) {
    snapfmt::Fail(path, e.offset,
                  "CSR offset total disagrees with the meta section");
  }
}

Snapshot LoadSnapshotV1(const std::string& path) {
  snapfmt::FileBytes file(path);
  const unsigned char* data = file.data();
  const std::size_t size = file.size();
  const snapfmt::ParsedImage img = snapfmt::ParseImage(path, data, size);

  const SectionEntry* meta = img.by_kind[snapfmt::kMeta];
  if (meta == nullptr || meta->length != snapfmt::kMetaBytesV1) {
    snapfmt::Fail(path, snapfmt::kHeaderBytes,
                  "missing or malformed meta section");
  }
  const unsigned char* mp = data + meta->offset;
  const std::uint64_t n64 = snapfmt::GetU64Le(mp);
  const std::uint64_t num_edges = snapfmt::GetU64Le(mp + 8);
  const std::uint64_t num_arcs = snapfmt::GetU64Le(mp + 16);
  const std::uint64_t flags = snapfmt::GetU64Le(mp + 24);
  if (n64 >= kInvalidNode) {
    snapfmt::Fail(path, meta->offset, "node count " + std::to_string(n64) +
                                          " exceeds the 32-bit id space");
  }
  const NodeId n = static_cast<NodeId>(n64);

  struct CsrSpec {
    snapfmt::SectionKind off_kind;
    snapfmt::SectionKind adj_kind;
    std::uint64_t total;  // expected adjacency entries
  };
  const CsrSpec specs[3] = {
      {snapfmt::kFrOffsets, snapfmt::kFrAdj, 2 * num_edges},
      {snapfmt::kOutOffsets, snapfmt::kOutAdj, num_arcs},
      {snapfmt::kInOffsets, snapfmt::kInAdj, num_arcs}};
  util::AlignedVector<std::size_t> offs[3];
  util::AlignedVector<NodeId> adjs[3];
  for (int c = 0; c < 3; ++c) {
    const SectionEntry* oe = img.by_kind[specs[c].off_kind];
    const SectionEntry* ae = img.by_kind[specs[c].adj_kind];
    if (oe == nullptr || ae == nullptr) {
      snapfmt::Fail(path, snapfmt::kHeaderBytes,
                    "missing CSR sections " +
                        std::to_string(specs[c].off_kind) + "/" +
                        std::to_string(specs[c].adj_kind));
    }
    if (oe->length != (n64 + 1) * sizeof(std::uint64_t)) {
      snapfmt::Fail(path, oe->offset,
                    "offset section length disagrees with node count");
    }
    if (ae->length != specs[c].total * sizeof(NodeId)) {
      snapfmt::Fail(path, ae->offset,
                    "adjacency section length disagrees with the meta "
                    "section");
    }
    offs[c] = ReadOffsets(data + oe->offset, static_cast<std::size_t>(n64) + 1);
    CheckOffsets(path, *oe, offs[c], specs[c].total);
    adjs[c] = ReadNodeIds(data + ae->offset,
                          static_cast<std::size_t>(specs[c].total));
  }

  Layout layout;
  if ((flags & snapfmt::kFlagHasLayout) != 0) {
    const SectionEntry* le = img.by_kind[snapfmt::kLayout];
    if (le == nullptr || le->length != n64 * sizeof(NodeId)) {
      snapfmt::Fail(path, snapfmt::kHeaderBytes,
                    "missing or malformed layout section");
    }
    std::vector<NodeId> old_of_new =
        ReadNodeIds(data + le->offset, static_cast<std::size_t>(n64))
            .ToStdVector();
    layout.new_of_old.assign(n, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId o = old_of_new[v];
      if (o >= n || layout.new_of_old[o] != kInvalidNode) {
        snapfmt::Fail(path, le->offset,
                      "layout permutation is not a bijection");
      }
      layout.new_of_old[o] = v;
    }
    layout.old_of_new = std::move(old_of_new);
  }

  Snapshot snap;
  snap.graph = AugmentedGraph(
      SocialGraph::FromCsr(n, std::move(offs[0]), std::move(adjs[0])),
      RejectionGraph::FromCsr(n, std::move(offs[1]), std::move(adjs[1]),
                              std::move(offs[2]), std::move(adjs[2])));
  snap.layout = std::move(layout);
  return snap;
}

}  // namespace

void SaveSnapshot(const std::string& path, const AugmentedGraph& g,
                  const Layout& layout, const SnapshotOptions& options) {
  if (!layout.IsIdentity() && layout.old_of_new.size() != g.NumNodes()) {
    throw std::invalid_argument("SaveSnapshot: layout size mismatch");
  }
  if (options.format == SnapshotFormat::kRjsnap02) {
    SaveSnapshotV2(path, g, layout, options);
  } else {
    SaveSnapshotV1(path, g, layout);
  }
}

Layout SaveSnapshotWithPolicy(const std::string& path, const AugmentedGraph& g,
                              LayoutPolicy policy,
                              const SnapshotOptions& options) {
  Layout layout = ComputeLayout(g, policy);
  if (layout.IsIdentity()) {
    SaveSnapshot(path, g, layout, options);
  } else {
    SaveSnapshot(path, ApplyLayout(g, layout), layout, options);
  }
  return layout;
}

Snapshot LoadSnapshot(const std::string& path) {
  // Dispatch on the magic with a plain 8-byte peek (no failpoints, no map):
  // each branch then opens the file exactly once, so fault-injection
  // counters on "snapshot/open"/"snapshot/map" see one evaluation per load
  // regardless of version. An unreadable file falls through to the v1
  // branch, whose FileBytes produces the canonical error.
  char magic[8] = {};
  {
    std::ifstream in(path, std::ios::binary);
    in.read(magic, sizeof(magic));
  }
  if (std::memcmp(magic, snapfmt::kMagicV2, sizeof(magic)) == 0) {
    return CompressedGraphView::Open(path).Materialize();
  }
  return LoadSnapshotV1(path);
}

}  // namespace rejecto::graph
