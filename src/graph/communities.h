// Community detection via label propagation (Raghavan et al. 2007).
//
// Used for the community-based seed selection of §IV-F: SybilRank [15]
// distributes manually-verified seeds across communities so the trust (or
// here, the pinned KL placement) covers the whole legitimate region rather
// than one neighborhood. Label propagation is near-linear and needs no
// parameters: every node repeatedly adopts the most frequent label among
// its neighbors (ties broken by smallest label for determinism) until a
// fixpoint or the iteration cap.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::graph {

struct CommunityResult {
  // Dense community id per node (isolated nodes form singleton communities).
  std::vector<std::uint32_t> community_of;
  std::uint32_t num_communities = 0;
  int iterations = 0;  // sweeps until fixpoint (or the cap)

  std::vector<std::vector<NodeId>> Members() const;
};

// `rng` randomizes the node visiting order per sweep (the algorithm's
// standard symmetry breaker); results are deterministic given the seed.
CommunityResult LabelPropagation(const SocialGraph& g, util::Rng& rng,
                                 int max_iterations = 32);

// Newman modularity Q of a node labeling: the fraction of edges inside
// communities minus the expectation under the configuration null model.
// Q in [-1/2, 1); higher = stronger community structure. Precondition:
// labels.size() == g.NumNodes(); returns 0 for edgeless graphs.
double Modularity(const SocialGraph& g,
                  const std::vector<std::uint32_t>& labels);

// Conductance of a node set S: cut(S, S̄) / min(vol(S), vol(S̄)) where vol
// is the sum of degrees. Low conductance = a well-separated region — the
// structural property Sybil regions violate only via attack edges.
// Returns 1.0 when either side has zero volume.
double Conductance(const SocialGraph& g, const std::vector<char>& in_set);

}  // namespace rejecto::graph
