#include "graph/rejection_graph.h"

#include <algorithm>

namespace rejecto::graph {

RejectionGraph::RejectionGraph(NodeId num_nodes,
                               util::AlignedVector<std::size_t> out_offsets,
                               util::AlignedVector<NodeId> out_adj,
                               util::AlignedVector<std::size_t> in_offsets,
                               util::AlignedVector<NodeId> in_adj)
    : num_nodes_(num_nodes),
      num_arcs_(out_adj.size()),
      out_offsets_(std::move(out_offsets)),
      out_adj_(std::move(out_adj)),
      in_offsets_(std::move(in_offsets)),
      in_adj_(std::move(in_adj)) {}

bool RejectionGraph::HasArc(NodeId from, NodeId to) const {
  CheckNode(from);
  CheckNode(to);
  const auto out = Rejectees(from);
  return std::binary_search(out.begin(), out.end(), to);
}

std::vector<Arc> RejectionGraph::Arcs() const {
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(num_arcs_));
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : Rejectees(u)) arcs.push_back({u, v});
  }
  return arcs;
}

}  // namespace rejecto::graph
