// Delta+varint block codec for RJSNAP02 compressed adjacency sections.
//
// A block covers a fixed span of consecutive CSR rows (the snapshot's
// block_rows, 64–256; the file's last block may be short). Wire layout:
//
//   for each row r in the block:   varint32  degree(r)
//   for each row r in the block:   payload(r)
// where payload(r) of a non-empty row is
//   svarint64  zigzag(first_neighbor − r)     (signed: a row's first
//                                              neighbor may precede the row)
//   varint32   gap − 1, × (degree − 1)        (gaps between consecutive
//                                              sorted neighbors, ≥ 1)
//
// Degrees lead as their own run so a decoder knows every row boundary —
// and the total adjacency size — before touching the payload stream. The
// codec is deterministic (byte-identical for identical rows) and exact:
// decode(encode(rows)) == rows for every sorted duplicate-free input.
//
// Decode dispatches through util::simd::ActiveMode() (REJECTO_SIMD): the
// AVX2 path batch-widens 32-byte chunks of single-byte varints — the common
// case on BFS-relayouted graphs, where most gaps are < 128 — and falls back
// to the scalar stepper at any continuation byte. Both paths produce
// bit-identical rows (exact integers, no reassociation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/buffer.h"

namespace rejecto::graph {

// Appends the encoded block to `out`. `degrees[i]` is the degree of row
// (first_row + i); `adj` holds the rows' neighbors back to back. Throws
// std::invalid_argument when a row is not strictly increasing (unsorted or
// duplicate neighbors) or the block's total entries overflow the u32
// per-block row-offset space.
void EncodeAdjBlock(NodeId first_row, std::span<const std::uint32_t> degrees,
                    const NodeId* adj, std::vector<unsigned char>& out);

// Decodes a block of `rows` rows starting at row id `first_row` from the
// `len` bytes at `p`. On success fills `row_offsets` (rows + 1 entries,
// block-local) and `adj` (row_offsets.back() entries) and returns true; on
// malformed input returns false with a diagnostic in *error (when non-null)
// and unspecified buffer contents. Exactly `len` bytes must be consumed —
// trailing garbage is malformed. The output vectors are reusable scratch:
// capacity is retained across calls.
bool DecodeAdjBlock(const unsigned char* p, std::size_t len, NodeId first_row,
                    std::uint32_t rows,
                    util::AlignedVector<std::uint32_t>& row_offsets,
                    util::AlignedVector<NodeId>& adj, std::string* error);

}  // namespace rejecto::graph
