// Versioned zero-copy binary snapshots of an AugmentedGraph.
//
// Text edge lists are the interchange format; they are also two orders of
// magnitude slower to load than the graph is to *use* (parse, intern,
// dedup, sort, mirror). A snapshot is the other end of the trade: the three
// CSRs exactly as they sit in memory — little-endian u64 offset arrays and
// u32 adjacency arrays — behind a sectioned, checksummed container, so a
// load is mmap + validate + one bulk memcpy per section straight into the
// target vectors. No parsing, no GraphBuilder pass, no per-edge work.
//
// File format (version tag baked into the magic):
//   [0,  8)  magic "RJSNAP01"
//   [8, 12)  u32 section count
//   [12,16)  u32 CRC32C of the section-table bytes
//   [16, ..) section table, 24 bytes per entry:
//              u32 kind, u32 crc32c(section bytes), u64 offset, u64 length
//   sections, each at a 64-byte-aligned offset
// Section alignment: every section offset is a multiple of 64
// (util::memory::kAlignment). An mmap'd view therefore presents each CSR
// array on the same cache-line boundary the in-memory aligned tier
// guarantees, so the SIMD kernels can consume mapped sections directly.
// The loader verifies the alignment of every section and rejects files
// that violate it with a clear path+offset error (snapshots written before
// the alignment guarantee used 8-byte padding and must be re-saved).
// Section kinds: 0 meta (u64 n, E, R, flags; flag bit 0 = layout stored),
// 1/3/5 friendship/out/in offsets ((n+1) × u64), 2/4/6 the matching
// adjacency (2E / R / R × u32), 7 the layout permutation old_of_new
// (n × u32, present only when the graph was saved in a non-identity
// layout). Every integer is little-endian; every section carries its own
// CRC32C (util/crc32c), so truncation and bit corruption anywhere in the
// file are rejected with a path+offset error before any graph is built.
//
// Durability mirrors the stream/wal checkpoints: SaveSnapshot writes
// `path + ".tmp"`, fsyncs, then renames — a crash leaves either the old
// snapshot or the new one, never a torn file. Failpoint sites:
// "snapshot/write" and "snapshot/rename" on save; "snapshot/open" (open
// fails) and "snapshot/map" (mmap fails, exercising the std::ifstream
// fallback) on load.
//
// Snapshots compose with graph/layout.h: the CSRs are stored in laid-out
// order together with the permutation, so a process restart skips both the
// text parse AND the relayout, and can still translate ids back to the
// original space (Snapshot::layout).
#pragma once

#include <string>

#include "graph/augmented_graph.h"
#include "graph/layout.h"

namespace rejecto::graph {

// A loaded snapshot: the graph in its stored (laid-out) id space plus the
// layout mapping those ids back to original ids. An identity layout loads
// as the empty Layout.
struct Snapshot {
  AugmentedGraph graph;
  Layout layout;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

// Writes g (already in `layout`'s id space — pass the default-constructed
// identity Layout when ids were never remapped) to `path` atomically via
// tmp + rename. Throws std::runtime_error on any IO failure, leaving no
// partial file behind. Precondition: layout is empty or sized to
// g.NumNodes().
void SaveSnapshot(const std::string& path, const AugmentedGraph& g,
                  const Layout& layout = Layout{});

// Convenience: ComputeLayout(policy) + ApplyLayout + SaveSnapshot; returns
// the layout that was stored.
Layout SaveSnapshotWithPolicy(const std::string& path,
                              const AugmentedGraph& g, LayoutPolicy policy);

// Reads a snapshot back (mmap, falling back to buffered reads when mapping
// fails). Every validation error — bad magic, truncation, CRC mismatch,
// inconsistent section lengths, non-bijective permutation — throws
// std::runtime_error naming the file and the byte offset of the problem.
Snapshot LoadSnapshot(const std::string& path);

}  // namespace rejecto::graph
