// Versioned binary snapshots of an AugmentedGraph.
//
// Text edge lists are the interchange format; they are also two orders of
// magnitude slower to load than the graph is to *use* (parse, intern,
// dedup, sort, mirror). Snapshots are the other end of the trade, in two
// on-disk flavors behind one save/load API:
//
//   RJSNAP01 (default) — the three CSRs exactly as they sit in memory:
//   little-endian u64 offset arrays and u32 adjacency arrays behind a
//   sectioned, checksummed container, so a load is mmap + validate + one
//   bulk memcpy per section. No parsing, no per-edge work.
//
//   RJSNAP02 — the same graph with delta+varint compressed adjacency in
//   fixed-span blocks (64–256 rows) behind a per-CSR block index, each
//   block carrying its own CRC32C. Typically well under half the RJSNAP01
//   adjacency bytes on BFS-relayout graphs, and — the real point — readable
//   *in place*: graph/compressed_view.h decodes blocks straight off the
//   mmap, so detection over a 100M+-edge snapshot never expands the file
//   into RAM. LoadSnapshot still works on v2 files (decode-everything), it
//   just stops being the only option.
//
// Shared container layout (graph/snapshot_format.h): magic, section count,
// table CRC32C, a 24-byte-per-entry section table, then 64-byte-aligned
// sections each carrying a CRC32C — except the v2 compressed blob sections,
// whose integrity lives per block in the index so opening never pages the
// adjacency in. The loader distinguishes a *truncated* file (section runs
// past EOF) from *corrupt bytes* (CRC mismatch) and names the offending
// section in either case.
//
// Durability mirrors the stream/wal checkpoints: both writers produce
// `path + ".tmp"`, fsync, then rename — a crash leaves either the old
// snapshot or the new one, never a torn file. Failpoint sites:
// "snapshot/write" and "snapshot/rename" on save; "snapshot/open" (open
// fails) and "snapshot/map" (mmap fails, exercising the std::ifstream
// fallback) on load.
//
// Snapshots compose with graph/layout.h: the CSRs are stored in laid-out
// order together with the permutation, so a process restart skips both the
// text parse AND the relayout, and can still translate ids back to the
// original space (Snapshot::layout).
#pragma once

#include <cstdint>
#include <string>

#include "graph/augmented_graph.h"
#include "graph/layout.h"

namespace rejecto::graph {

// A loaded snapshot: the graph in its stored (laid-out) id space plus the
// layout mapping those ids back to original ids. An identity layout loads
// as the empty Layout.
struct Snapshot {
  AugmentedGraph graph;
  Layout layout;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

enum class SnapshotFormat {
  kRjsnap01,  // raw CSR sections (zero-copy load)
  kRjsnap02,  // block-compressed adjacency (out-of-core readable)
};

struct SnapshotOptions {
  SnapshotFormat format = SnapshotFormat::kRjsnap01;
  // RJSNAP02 only: rows per compressed block, clamped to [64, 256].
  std::uint32_t block_rows = 128;
};

// Writes g (already in `layout`'s id space — pass the default-constructed
// identity Layout when ids were never remapped) to `path` atomically via
// tmp + rename, in the format `options` selects. Throws std::runtime_error
// on any IO failure, leaving no partial file behind. Precondition: layout
// is empty or sized to g.NumNodes().
void SaveSnapshot(const std::string& path, const AugmentedGraph& g,
                  const Layout& layout = Layout{},
                  const SnapshotOptions& options = SnapshotOptions{});

// Convenience: ComputeLayout(policy) + ApplyLayout + SaveSnapshot; returns
// the layout that was stored.
Layout SaveSnapshotWithPolicy(const std::string& path,
                              const AugmentedGraph& g, LayoutPolicy policy,
                              const SnapshotOptions& options =
                                  SnapshotOptions{});

// Reads a snapshot of either version back into RAM, dispatching on the
// magic (RJSNAP02 files decode every block via graph/compressed_view.h;
// use CompressedGraphView directly to stay out of core). Every validation
// error — bad magic, truncation, CRC mismatch, inconsistent section
// lengths, non-bijective permutation — throws std::runtime_error naming
// the file, the section and the byte offset of the problem.
Snapshot LoadSnapshot(const std::string& path);

}  // namespace rejecto::graph
