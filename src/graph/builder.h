// Mutable accumulator producing immutable CSR graphs.
//
// GraphBuilder collects undirected friendship edges and directed rejection
// arcs, then freezes them into SocialGraph / RejectionGraph / AugmentedGraph.
// Duplicates and self-loops are dropped at build time (a duplicate friend
// edge cannot exist in a symmetric OSN; repeated rejections between the same
// ordered pair collapse to one arc, §III-A).
#pragma once

#include <vector>

#include "graph/augmented_graph.h"
#include "graph/rejection_graph.h"
#include "graph/social_graph.h"
#include "graph/types.h"

namespace rejecto::graph {

class GraphBuilder {
 public:
  // num_nodes may grow implicitly: adding an edge touching node u extends
  // the node range to u+1.
  explicit GraphBuilder(NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  NodeId NumNodes() const noexcept { return num_nodes_; }

  // Reserves and returns the id of a fresh node.
  NodeId AddNode();

  // Adds `count` fresh nodes, returning the first new id.
  NodeId AddNodes(NodeId count);

  // Undirected friendship. Self-loops are rejected.
  void AddFriendship(NodeId u, NodeId v);

  // Directed rejection: `from` rejected a request sent by `to`.
  void AddRejection(NodeId from, NodeId to);

  std::size_t NumPendingEdges() const noexcept { return edges_.size(); }
  std::size_t NumPendingArcs() const noexcept { return arcs_.size(); }

  // Freeze. Builders remain reusable (building does not consume state), so a
  // scenario can snapshot the friendship graph before and after an attack.
  SocialGraph BuildSocial() const;
  RejectionGraph BuildRejection() const;
  AugmentedGraph BuildAugmented() const;

 private:
  void Touch(NodeId u) { num_nodes_ = std::max(num_nodes_, u + 1); }

  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<Arc> arcs_;
};

}  // namespace rejecto::graph
