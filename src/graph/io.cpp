#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"
#include "util/failpoint.h"
#include "util/parse.h"

namespace rejecto::graph {

namespace {

// Interning caps the dense id space at NodeId: a file with more distinct
// raw ids than NodeId can address must fail loudly, not wrap.
void CheckInternCapacity(std::size_t num_nodes, const std::string& context) {
  if (num_nodes >= kInvalidNode) {
    throw std::runtime_error(context + ": distinct node count overflows the "
                             "32-bit node id space");
  }
}

// Parses "a b" off a line: full-token checked integers, nothing after them.
// Raw ids may be any u64 (they get interned), but signs, garbage, and
// overflow are malformed input, not data.
void ParseEdgeLine(const std::string& line, const std::string& context,
                   std::uint64_t& a, std::uint64_t& b) {
  std::istringstream ls(line);
  std::string a_tok, b_tok, extra_tok;
  if (!(ls >> a_tok >> b_tok)) {
    throw std::runtime_error(context + ": expected two node ids");
  }
  a = util::ParseU64Checked(a_tok, context);
  b = util::ParseU64Checked(b_tok, context);
  if (ls >> extra_tok) {
    throw std::runtime_error(context + ": trailing token '" + extra_tok +
                             "' after edge");
  }
}

void CheckOpenFailpoint(const std::string& path) {
  if (util::Failpoints::Instance().ShouldFail("graph/io_open")) {
    throw std::runtime_error("injected failure: graph/io_open on " + path);
  }
}

}  // namespace

LoadedGraph LoadEdgeList(const std::string& path) {
  CheckOpenFailpoint(path);
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadEdgeList: cannot open " + path);
  }
  GraphBuilder builder;
  std::unordered_map<std::uint64_t, NodeId> dense;
  std::vector<std::uint64_t> original;
  std::string context;
  auto intern = [&](std::uint64_t raw) -> NodeId {
    auto [it, inserted] = dense.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      CheckInternCapacity(original.size(), context);
      builder.AddNode();
      original.push_back(raw);
    }
    return it->second;
  };
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    context = "LoadEdgeList: " + path + " line " + std::to_string(lineno);
    std::uint64_t a = 0, b = 0;
    ParseEdgeLine(line, context, a, b);
    if (a == b) continue;  // drop self-loops, as SNAP consumers do
    // Intern in reading order (function-argument evaluation order would be
    // unspecified) so original_id is ordered by first appearance.
    const NodeId ua = intern(a);
    const NodeId ub = intern(b);
    builder.AddFriendship(ua, ub);
  }
  return {builder.BuildSocial(), std::move(original)};
}

LoadedAugmentedGraph LoadAugmentedGraph(const std::string& friendships_path,
                                        const std::string& rejections_path) {
  GraphBuilder builder;
  LoadedAugmentedGraph out;
  std::string context;
  auto intern = [&](std::uint64_t raw) -> NodeId {
    auto [it, inserted] = out.dense_id.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      CheckInternCapacity(out.original_id.size(), context);
      builder.AddNode();
      out.original_id.push_back(raw);
    }
    return it->second;
  };
  auto parse = [&](const std::string& path, bool friendships) {
    CheckOpenFailpoint(path);
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("LoadAugmentedGraph: cannot open " + path);
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      context = "LoadAugmentedGraph: " + path + " line " +
                std::to_string(lineno);
      std::uint64_t a = 0, b = 0;
      ParseEdgeLine(line, context, a, b);
      if (a == b) continue;
      const NodeId ua = intern(a);
      const NodeId ub = intern(b);
      if (friendships) {
        builder.AddFriendship(ua, ub);
      } else {
        builder.AddRejection(ua, ub);
      }
    }
  };
  parse(friendships_path, /*friendships=*/true);
  parse(rejections_path, /*friendships=*/false);
  out.graph = builder.BuildAugmented();
  return out;
}

void SaveEdgeList(const SocialGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveEdgeList: cannot open " + path);
  }
  out << "# Undirected edge list: " << g.NumNodes() << " nodes, "
      << g.NumEdges() << " edges\n";
  for (const Edge& e : g.Edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
  if (!out) {
    throw std::runtime_error("SaveEdgeList: write failure on " + path);
  }
}

}  // namespace rejecto::graph
