#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"

namespace rejecto::graph {

LoadedGraph LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadEdgeList: cannot open " + path);
  }
  GraphBuilder builder;
  std::unordered_map<std::uint64_t, NodeId> dense;
  std::vector<std::uint64_t> original;
  auto intern = [&](std::uint64_t raw) -> NodeId {
    auto [it, inserted] = dense.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      builder.AddNode();
      original.push_back(raw);
    }
    return it->second;
  };
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      throw std::runtime_error("LoadEdgeList: malformed line " +
                               std::to_string(lineno) + " in " + path);
    }
    if (a == b) continue;  // drop self-loops, as SNAP consumers do
    // Intern in reading order (function-argument evaluation order would be
    // unspecified) so original_id is ordered by first appearance.
    const NodeId ua = intern(a);
    const NodeId ub = intern(b);
    builder.AddFriendship(ua, ub);
  }
  return {builder.BuildSocial(), std::move(original)};
}

LoadedAugmentedGraph LoadAugmentedGraph(const std::string& friendships_path,
                                        const std::string& rejections_path) {
  GraphBuilder builder;
  LoadedAugmentedGraph out;
  auto intern = [&](std::uint64_t raw) -> NodeId {
    auto [it, inserted] = out.dense_id.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      builder.AddNode();
      out.original_id.push_back(raw);
    }
    return it->second;
  };
  auto parse = [&](const std::string& path, bool friendships) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("LoadAugmentedGraph: cannot open " + path);
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::uint64_t a = 0, b = 0;
      if (!(ls >> a >> b)) {
        throw std::runtime_error("LoadAugmentedGraph: malformed line " +
                                 std::to_string(lineno) + " in " + path);
      }
      if (a == b) continue;
      const NodeId ua = intern(a);
      const NodeId ub = intern(b);
      if (friendships) {
        builder.AddFriendship(ua, ub);
      } else {
        builder.AddRejection(ua, ub);
      }
    }
  };
  parse(friendships_path, /*friendships=*/true);
  parse(rejections_path, /*friendships=*/false);
  out.graph = builder.BuildAugmented();
  return out;
}

void SaveEdgeList(const SocialGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveEdgeList: cannot open " + path);
  }
  out << "# Undirected edge list: " << g.NumNodes() << " nodes, "
      << g.NumEdges() << " edges\n";
  for (const Edge& e : g.Edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
  if (!out) {
    throw std::runtime_error("SaveEdgeList: write failure on " + path);
  }
}

}  // namespace rejecto::graph
