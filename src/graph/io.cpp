#include "graph/io.h"

#include <fstream>
#include <stdexcept>
#include <string_view>

#include "graph/builder.h"
#include "util/failpoint.h"
#include "util/parse.h"

namespace rejecto::graph {

namespace {

// Interning caps the dense id space at NodeId: a file with more distinct
// raw ids than NodeId can address must fail loudly, not wrap. `context` is
// a callable so the hot loop never materializes the context string.
template <typename ContextFn>
void CheckInternCapacity(std::size_t num_nodes, ContextFn&& context) {
  if (num_nodes >= kInvalidNode) {
    throw std::runtime_error(context() +
                             ": distinct node count overflows the "
                             "32-bit node id space");
  }
}

// Parses "a b" off a line: full-token checked integers, nothing after them.
// Raw ids may be any u64 (they get interned), but signs, garbage, and
// overflow are malformed input, not data. The diagnostic path for
// TryParseEdgeLine below — messages here are load-bearing for callers.
void ParseEdgeLine(std::string_view line, const std::string& context,
                   std::uint64_t& a, std::uint64_t& b) {
  std::string_view rest = line;
  const std::string_view a_tok = util::NextToken(rest);
  const std::string_view b_tok = util::NextToken(rest);
  if (a_tok.empty() || b_tok.empty()) {
    throw std::runtime_error(context + ": expected two node ids");
  }
  a = util::ParseU64Checked(a_tok, context);
  b = util::ParseU64Checked(b_tok, context);
  const std::string_view extra_tok = util::NextToken(rest);
  if (!extra_tok.empty()) {
    throw std::runtime_error(context + ": trailing token '" +
                             std::string(extra_tok) + "' after edge");
  }
}

// Allocation-free hot path: a string_view scan plus two from_chars calls.
// Returns false on ANY anomaly (missing token, sign, garbage, overflow,
// trailing token); the caller re-parses through ParseEdgeLine, which
// reproduces the exact pre-existing error message with full context.
bool TryParseEdgeLine(std::string_view line, std::uint64_t& a,
                      std::uint64_t& b) {
  std::string_view rest = line;
  if (!util::TryParseU64(util::NextToken(rest), a)) return false;
  if (!util::TryParseU64(util::NextToken(rest), b)) return false;
  return util::NextToken(rest).empty();
}

void CheckOpenFailpoint(const std::string& path) {
  if (util::Failpoints::Instance().ShouldFail("graph/io_open")) {
    throw std::runtime_error("injected failure: graph/io_open on " + path);
  }
}

}  // namespace

LoadedGraph LoadEdgeList(const std::string& path) {
  CheckOpenFailpoint(path);
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LoadEdgeList: cannot open " + path);
  }
  GraphBuilder builder;
  std::unordered_map<std::uint64_t, NodeId> dense;
  std::vector<std::uint64_t> original;
  std::size_t lineno = 0;
  // Context strings are built ONLY on the error path: the happy path is a
  // string_view scan with zero allocations per line.
  auto context = [&] {
    return "LoadEdgeList: " + path + " line " + std::to_string(lineno);
  };
  auto intern = [&](std::uint64_t raw) -> NodeId {
    auto [it, inserted] = dense.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      CheckInternCapacity(original.size(), context);
      builder.AddNode();
      original.push_back(raw);
    }
    return it->second;
  };
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::uint64_t a = 0, b = 0;
    if (!TryParseEdgeLine(line, a, b)) {
      ParseEdgeLine(line, context(), a, b);  // throws the exact diagnostic
    }
    if (a == b) continue;  // drop self-loops, as SNAP consumers do
    // Intern in reading order (function-argument evaluation order would be
    // unspecified) so original_id is ordered by first appearance.
    const NodeId ua = intern(a);
    const NodeId ub = intern(b);
    builder.AddFriendship(ua, ub);
  }
  return {builder.BuildSocial(), std::move(original)};
}

LoadedAugmentedGraph LoadAugmentedGraph(const std::string& friendships_path,
                                        const std::string& rejections_path) {
  GraphBuilder builder;
  LoadedAugmentedGraph out;
  const std::string* cur_path = nullptr;
  std::size_t lineno = 0;
  auto context = [&] {
    return "LoadAugmentedGraph: " + *cur_path + " line " +
           std::to_string(lineno);
  };
  auto intern = [&](std::uint64_t raw) -> NodeId {
    auto [it, inserted] = out.dense_id.try_emplace(raw, builder.NumNodes());
    if (inserted) {
      CheckInternCapacity(out.original_id.size(), context);
      builder.AddNode();
      out.original_id.push_back(raw);
    }
    return it->second;
  };
  auto parse = [&](const std::string& path, bool friendships) {
    CheckOpenFailpoint(path);
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("LoadAugmentedGraph: cannot open " + path);
    }
    cur_path = &path;
    lineno = 0;
    std::string line;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::uint64_t a = 0, b = 0;
      if (!TryParseEdgeLine(line, a, b)) {
        ParseEdgeLine(line, context(), a, b);
      }
      if (a == b) continue;
      const NodeId ua = intern(a);
      const NodeId ub = intern(b);
      if (friendships) {
        builder.AddFriendship(ua, ub);
      } else {
        builder.AddRejection(ua, ub);
      }
    }
  };
  parse(friendships_path, /*friendships=*/true);
  parse(rejections_path, /*friendships=*/false);
  out.graph = builder.BuildAugmented();
  return out;
}

void SaveEdgeList(const SocialGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SaveEdgeList: cannot open " + path);
  }
  out << "# Undirected edge list: " << g.NumNodes() << " nodes, "
      << g.NumEdges() << " edges\n";
  for (const Edge& e : g.Edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
  if (!out) {
    throw std::runtime_error("SaveEdgeList: write failure on " + path);
  }
}

}  // namespace rejecto::graph
