// Immutable undirected social graph in CSR (compressed sparse row) form.
//
// Nodes are dense ids [0, NumNodes()). Neighbor lists are sorted, enabling
// O(log deg) membership tests and cache-friendly scans. Construction goes
// through graph::GraphBuilder, which deduplicates edges and removes
// self-loops, or — for callers that already hold a valid CSR, like the
// induced-subgraph compaction — through the unchecked FromCsr factory.
// Bounds checks on the accessors are debug-only (REJECTO_DCHECK):
// Degree()/Neighbors() sit inside the innermost KL loops and must compile
// to straight offset arithmetic in Release.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"
#include "util/buffer.h"
#include "util/dcheck.h"

namespace rejecto::graph {

class SocialGraph {
 public:
  SocialGraph() = default;

  // Freezes an already-valid CSR: offsets.size() == num_nodes + 1,
  // offsets[0] == 0, offsets monotone with offsets[num_nodes] ==
  // adjacency.size(), each row sorted and self-loop-free, and every edge
  // present in both endpoint rows (adjacency.size() is even). Preconditions
  // are NOT validated — this is the raw path for code that filters an
  // existing graph's CSR (graph::InducedSubgraph); everything else should
  // go through GraphBuilder.
  static SocialGraph FromCsr(NodeId num_nodes,
                             util::AlignedVector<std::size_t> offsets,
                             util::AlignedVector<NodeId> adjacency) {
    return SocialGraph(num_nodes, std::move(offsets), std::move(adjacency));
  }
  // Convenience overload for callers still holding plain vectors; copies
  // into the aligned tier.
  static SocialGraph FromCsr(NodeId num_nodes,
                             const std::vector<std::size_t>& offsets,
                             const std::vector<NodeId>& adjacency) {
    return SocialGraph(num_nodes, util::AlignedVector<std::size_t>(offsets),
                       util::AlignedVector<NodeId>(adjacency));
  }

  NodeId NumNodes() const noexcept { return num_nodes_; }
  EdgeId NumEdges() const noexcept { return num_edges_; }

  std::uint32_t Degree(NodeId u) const {
    CheckNode(u);
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  // Sorted neighbor list of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    CheckNode(u);
    return {adjacency_.data() + offsets_[u],
            adjacency_.data() + offsets_[u + 1]};
  }

  // O(log deg(u)) membership test.
  bool HasEdge(NodeId u, NodeId v) const;

  // All edges, each reported once with e.u < e.v.
  std::vector<Edge> Edges() const;

  std::uint32_t MaxDegree() const noexcept { return max_degree_; }

  // Structural equality: identical node count AND identical CSR arrays.
  // Because rows are sorted and deduplicated, two graphs over the same edge
  // set always compare equal — this is the "byte-identical" check the
  // streaming differential harness relies on.
  friend bool operator==(const SocialGraph&, const SocialGraph&) = default;

 private:
  friend class GraphBuilder;
  SocialGraph(NodeId num_nodes, util::AlignedVector<std::size_t> offsets,
              util::AlignedVector<NodeId> adjacency);

  void CheckNode([[maybe_unused]] NodeId u) const {
    REJECTO_DCHECK(u < num_nodes_, "SocialGraph: node id out of range");
  }

  // CSR arrays live on the aligned memory tier: 64-byte-aligned bases and
  // >= 64 readable bytes past the end, the contract the SIMD kernels
  // (util/simd.h) gather against.
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  std::uint32_t max_degree_ = 0;
  util::AlignedVector<std::size_t> offsets_;  // size num_nodes_ + 1
  util::AlignedVector<NodeId> adjacency_;     // size 2 * num_edges_
};

}  // namespace rejecto::graph
