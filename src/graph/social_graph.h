// Immutable undirected social graph in CSR (compressed sparse row) form.
//
// Nodes are dense ids [0, NumNodes()). Neighbor lists are sorted, enabling
// O(log deg) membership tests and cache-friendly scans. Construction goes
// through graph::GraphBuilder, which deduplicates edges and removes
// self-loops.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace rejecto::graph {

class SocialGraph {
 public:
  SocialGraph() = default;

  NodeId NumNodes() const noexcept { return num_nodes_; }
  EdgeId NumEdges() const noexcept { return num_edges_; }

  std::uint32_t Degree(NodeId u) const {
    CheckNode(u);
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  // Sorted neighbor list of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    CheckNode(u);
    return {adjacency_.data() + offsets_[u],
            adjacency_.data() + offsets_[u + 1]};
  }

  // O(log deg(u)) membership test.
  bool HasEdge(NodeId u, NodeId v) const;

  // All edges, each reported once with e.u < e.v.
  std::vector<Edge> Edges() const;

  std::uint32_t MaxDegree() const noexcept { return max_degree_; }

 private:
  friend class GraphBuilder;
  SocialGraph(NodeId num_nodes, std::vector<std::size_t> offsets,
              std::vector<NodeId> adjacency);

  void CheckNode(NodeId u) const;

  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<std::size_t> offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> adjacency_;     // size 2 * num_edges_
};

}  // namespace rejecto::graph
