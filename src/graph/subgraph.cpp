#include "graph/subgraph.h"

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "graph/csr_build.h"
#include "util/thread_pool.h"

namespace rejecto::graph {

using internal::ForEachNode;
using internal::PrefixSum;

CompactedGraph InducedSubgraph(const AugmentedGraph& g,
                               const std::vector<char>& keep,
                               util::ThreadPool* pool) {
  if (keep.size() != g.NumNodes()) {
    throw std::invalid_argument("InducedSubgraph: mask size mismatch");
  }
  std::vector<NodeId> new_id(g.NumNodes(), kInvalidNode);
  CompactedGraph out;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (keep[u]) {
      new_id[u] = static_cast<NodeId>(out.parent_id.size());
      out.parent_id.push_back(u);
    }
  }
  const std::size_t m = out.parent_id.size();
  const SocialGraph& fr = g.Friendships();
  const RejectionGraph& rej = g.Rejections();

  std::vector<std::size_t> fr_off(m + 1, 0);
  std::vector<std::size_t> out_off(m + 1, 0);
  std::vector<std::size_t> in_off(m + 1, 0);
  ForEachNode(pool, m, [&](std::size_t nid) {
    const NodeId u = out.parent_id[nid];
    std::size_t c = 0;
    for (NodeId v : fr.Neighbors(u)) c += keep[v] != 0;
    fr_off[nid + 1] = c;
    c = 0;
    for (NodeId v : rej.Rejectees(u)) c += keep[v] != 0;
    out_off[nid + 1] = c;
    c = 0;
    for (NodeId v : rej.Rejectors(u)) c += keep[v] != 0;
    in_off[nid + 1] = c;
  });
  PrefixSum(fr_off);
  PrefixSum(out_off);
  PrefixSum(in_off);

  std::vector<NodeId> fr_adj(fr_off[m]);
  std::vector<NodeId> out_adj(out_off[m]);
  std::vector<NodeId> in_adj(in_off[m]);
  // new_id is monotone in the old id and the source rows are sorted, so
  // each filtered row lands already sorted; the in-adjacency stays the
  // exact mirror of the out-adjacency because both sides drop the same
  // arcs. Rows are disjoint ranges, so block-parallel fills don't race.
  ForEachNode(pool, m, [&](std::size_t nid) {
    const NodeId u = out.parent_id[nid];
    std::size_t w = fr_off[nid];
    for (NodeId v : fr.Neighbors(u)) {
      if (keep[v]) fr_adj[w++] = new_id[v];
    }
    w = out_off[nid];
    for (NodeId v : rej.Rejectees(u)) {
      if (keep[v]) out_adj[w++] = new_id[v];
    }
    w = in_off[nid];
    for (NodeId v : rej.Rejectors(u)) {
      if (keep[v]) in_adj[w++] = new_id[v];
    }
  });

  const NodeId num_new = static_cast<NodeId>(m);
  out.graph = AugmentedGraph(
      SocialGraph::FromCsr(num_new, std::move(fr_off), std::move(fr_adj)),
      RejectionGraph::FromCsr(num_new, std::move(out_off), std::move(out_adj),
                              std::move(in_off), std::move(in_adj)));
  return out;
}

}  // namespace rejecto::graph
