#include "graph/subgraph.h"

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <utility>

#include "graph/compressed_view.h"
#include "graph/csr_build.h"
#include "util/buffer.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace rejecto::graph {

using internal::ForEachNode;
using internal::PrefixSum;

CompactedGraph InducedSubgraph(const AugmentedGraph& g,
                               const std::vector<char>& keep,
                               util::ThreadPool* pool) {
  if (keep.size() != g.NumNodes()) {
    throw std::invalid_argument("InducedSubgraph: mask size mismatch");
  }
  std::vector<NodeId> new_id(g.NumNodes(), kInvalidNode);
  CompactedGraph out;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (keep[u]) {
      new_id[u] = static_cast<NodeId>(out.parent_id.size());
      out.parent_id.push_back(u);
    }
  }
  const std::size_t m = out.parent_id.size();
  const SocialGraph& fr = g.Friendships();
  const RejectionGraph& rej = g.Rejections();

  // The AVX2 path gathers mask bytes and left-packs kept lanes (masked
  // stores only — nothing is written outside a row's disjoint output range,
  // so the block-parallel fills stay race-free). Both paths preserve row
  // order, and new_id is monotone, so the result is bit-identical to the
  // scalar filter at any thread count.
  const bool use_avx2 =
      util::simd::ActiveMode() == util::simd::SimdMode::kAvx2;
  util::AlignedVector<unsigned char> keep_padded;
  if (use_avx2) {
    keep_padded.resize(keep.size());
    std::memcpy(keep_padded.data(), keep.data(), keep.size());
  }
  const auto count_kept = [&](std::span<const NodeId> row) {
    if (use_avx2) {
      return row.size() -
             util::simd::CountZeroAt(keep_padded.data(), row.data(),
                                     row.size());
    }
    std::size_t c = 0;
    for (NodeId v : row) c += keep[v] != 0;
    return c;
  };
  const auto fill_row = [&](std::span<const NodeId> row, NodeId* dst) {
    if (use_avx2) {
      util::simd::FilterMapRow(keep_padded.data(), new_id.data(), row.data(),
                               row.size(), dst);
      return;
    }
    std::size_t w = 0;
    for (NodeId v : row) {
      if (keep[v]) dst[w++] = new_id[v];
    }
  };

  util::AlignedVector<std::size_t> fr_off(m + 1, 0);
  util::AlignedVector<std::size_t> out_off(m + 1, 0);
  util::AlignedVector<std::size_t> in_off(m + 1, 0);
  ForEachNode(pool, m, [&](std::size_t nid) {
    const NodeId u = out.parent_id[nid];
    fr_off[nid + 1] = count_kept(fr.Neighbors(u));
    out_off[nid + 1] = count_kept(rej.Rejectees(u));
    in_off[nid + 1] = count_kept(rej.Rejectors(u));
  });
  PrefixSum(fr_off);
  PrefixSum(out_off);
  PrefixSum(in_off);

  util::AlignedVector<NodeId> fr_adj(fr_off[m]);
  util::AlignedVector<NodeId> out_adj(out_off[m]);
  util::AlignedVector<NodeId> in_adj(in_off[m]);
  // new_id is monotone in the old id and the source rows are sorted, so
  // each filtered row lands already sorted; the in-adjacency stays the
  // exact mirror of the out-adjacency because both sides drop the same
  // arcs. Rows are disjoint ranges, so block-parallel fills don't race.
  ForEachNode(pool, m, [&](std::size_t nid) {
    const NodeId u = out.parent_id[nid];
    fill_row(fr.Neighbors(u), fr_adj.data() + fr_off[nid]);
    fill_row(rej.Rejectees(u), out_adj.data() + out_off[nid]);
    fill_row(rej.Rejectors(u), in_adj.data() + in_off[nid]);
  });

  const NodeId num_new = static_cast<NodeId>(m);
  out.graph = AugmentedGraph(
      SocialGraph::FromCsr(num_new, std::move(fr_off), std::move(fr_adj)),
      RejectionGraph::FromCsr(num_new, std::move(out_off), std::move(out_adj),
                              std::move(in_off), std::move(in_adj)));
  return out;
}

CompactedGraph InducedSubgraph(const CompressedGraphView& view,
                               const std::vector<char>& keep,
                               util::ThreadPool* pool) {
  if (keep.size() != view.NumNodes()) {
    throw std::invalid_argument("InducedSubgraph: mask size mismatch");
  }
  const NodeId n = view.NumNodes();
  std::vector<NodeId> new_id(n, kInvalidNode);
  CompactedGraph out;
  for (NodeId u = 0; u < n; ++u) {
    if (keep[u]) {
      new_id[u] = static_cast<NodeId>(out.parent_id.size());
      out.parent_id.push_back(u);
    }
  }
  const std::size_t m = out.parent_id.size();

  // Same per-row filter kernels as the in-RAM overload, so the residual
  // CSR comes out bit-identical whichever source it was compacted from.
  const bool use_avx2 =
      util::simd::ActiveMode() == util::simd::SimdMode::kAvx2;
  util::AlignedVector<unsigned char> keep_padded;
  if (use_avx2) {
    keep_padded.resize(keep.size());
    std::memcpy(keep_padded.data(), keep.data(), keep.size());
  }
  const auto count_kept = [&](std::span<const NodeId> row) {
    if (use_avx2) {
      return row.size() -
             util::simd::CountZeroAt(keep_padded.data(), row.data(),
                                     row.size());
    }
    std::size_t c = 0;
    for (NodeId v : row) c += keep[v] != 0;
    return c;
  };
  const auto fill_row = [&](std::span<const NodeId> row, NodeId* dst) {
    if (use_avx2) {
      util::simd::FilterMapRow(keep_padded.data(), new_id.data(), row.data(),
                               row.size(), dst);
      return;
    }
    std::size_t w = 0;
    for (NodeId v : row) {
      if (keep[v]) dst[w++] = new_id[v];
    }
  };

  // Block-granular sweeps over the three CSRs (item = csr * num_blocks +
  // block). A block's kept rows map to a contiguous nid range (new_id is
  // monotone), so blocks write disjoint slices of the offset/adjacency
  // arrays and the parallel sweeps are race-free.
  const NodeId nb = view.NumBlocks();
  const std::size_t work = static_cast<std::size_t>(nb) * 3;
  struct Scratch {
    util::AlignedVector<std::uint32_t> ro;
    util::AlignedVector<NodeId> adj;
  };
  const auto for_each_block = [&](auto&& fn) {
    if (pool != nullptr && work > 1) {
      std::vector<Scratch> scratch(std::min(work, pool->size()));
      pool->ParallelFor(work, [&](std::size_t block, std::size_t item) {
        fn(scratch[block], item);
      });
    } else {
      Scratch scratch;
      for (std::size_t item = 0; item < work; ++item) fn(scratch, item);
    }
  };
  const auto block_rows = [&](std::size_t item, int* csr, NodeId* b,
                              NodeId* first_row, std::uint32_t* rows) {
    *csr = static_cast<int>(item / nb);
    *b = static_cast<NodeId>(item % nb);
    *first_row = *b * view.BlockRows();
    *rows = view.BlockRowCount(*csr, *b);
  };

  util::AlignedVector<std::size_t> offs[3] = {
      util::AlignedVector<std::size_t>(m + 1, 0),
      util::AlignedVector<std::size_t>(m + 1, 0),
      util::AlignedVector<std::size_t>(m + 1, 0)};
  for_each_block([&](Scratch& s, std::size_t item) {
    int csr;
    NodeId b, first_row;
    std::uint32_t rows;
    block_rows(item, &csr, &b, &first_row, &rows);
    view.DecodeBlockInto(csr, b, s.ro, s.adj);
    for (std::uint32_t r = 0; r < rows; ++r) {
      const NodeId u = first_row + r;
      if (!keep[u]) continue;
      offs[csr][new_id[u] + 1] = count_kept(
          {s.adj.data() + s.ro[r], s.adj.data() + s.ro[r + 1]});
    }
  });
  for (auto& off : offs) PrefixSum(off);

  util::AlignedVector<NodeId> adjs[3] = {
      util::AlignedVector<NodeId>(offs[0][m]),
      util::AlignedVector<NodeId>(offs[1][m]),
      util::AlignedVector<NodeId>(offs[2][m])};
  for_each_block([&](Scratch& s, std::size_t item) {
    int csr;
    NodeId b, first_row;
    std::uint32_t rows;
    block_rows(item, &csr, &b, &first_row, &rows);
    view.DecodeBlockInto(csr, b, s.ro, s.adj);
    for (std::uint32_t r = 0; r < rows; ++r) {
      const NodeId u = first_row + r;
      if (!keep[u]) continue;
      fill_row({s.adj.data() + s.ro[r], s.adj.data() + s.ro[r + 1]},
               adjs[csr].data() + offs[csr][new_id[u]]);
    }
  });

  const NodeId num_new = static_cast<NodeId>(m);
  out.graph = AugmentedGraph(
      SocialGraph::FromCsr(num_new, std::move(offs[0]), std::move(adjs[0])),
      RejectionGraph::FromCsr(num_new, std::move(offs[1]), std::move(adjs[1]),
                              std::move(offs[2]), std::move(adjs[2])));
  return out;
}

}  // namespace rejecto::graph
