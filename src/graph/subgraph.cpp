#include "graph/subgraph.h"

#include <stdexcept>

#include "graph/builder.h"

namespace rejecto::graph {

CompactedGraph InducedSubgraph(const AugmentedGraph& g,
                               const std::vector<char>& keep) {
  if (keep.size() != g.NumNodes()) {
    throw std::invalid_argument("InducedSubgraph: mask size mismatch");
  }
  std::vector<NodeId> new_id(g.NumNodes(), kInvalidNode);
  CompactedGraph out;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (keep[u]) {
      new_id[u] = static_cast<NodeId>(out.parent_id.size());
      out.parent_id.push_back(u);
    }
  }
  GraphBuilder builder(static_cast<NodeId>(out.parent_id.size()));
  const auto& fr = g.Friendships();
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!keep[u]) continue;
    for (NodeId v : fr.Neighbors(u)) {
      if (u < v && keep[v]) builder.AddFriendship(new_id[u], new_id[v]);
    }
  }
  const auto& rej = g.Rejections();
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!keep[u]) continue;
    for (NodeId v : rej.Rejectees(u)) {
      if (keep[v]) builder.AddRejection(new_id[u], new_id[v]);
    }
  }
  out.graph = builder.BuildAugmented();
  return out;
}

}  // namespace rejecto::graph
