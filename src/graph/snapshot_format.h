// Shared container internals of the RJSNAP01/RJSNAP02 snapshot formats.
//
// Internal header (not part of the public graph API): graph/snapshot.cpp
// (the v1 writer + the version-dispatching loader), graph/snapshot_writer.cpp
// (the streaming v2 writer) and graph/compressed_view.cpp (the mmap v2
// reader) all speak the same header + section-table container, so its
// constants, little-endian codecs, file mapping and validation live here
// once.
//
// Both versions share the layout:
//   [0,  8)  magic "RJSNAP01" or "RJSNAP02"
//   [8, 12)  u32 section count
//   [12,16)  u32 CRC32C of the section-table bytes
//   [16, ..) section table, 24 bytes per entry:
//              u32 kind, u32 crc32c(section bytes), u64 offset, u64 length
//   sections, each at a 64-byte-aligned offset
//
// v2 adds the compressed-adjacency kinds 8–13 and widens the meta section;
// its BLOB kinds (8/10/12) carry entry.crc == 0 and are excluded from the
// load-time whole-section CRC sweep — each compressed block carries its own
// CRC32C in the block index, verified at decode time, so opening a 100M+
// edge snapshot never pages the adjacency bytes in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/memory.h"

namespace rejecto::graph::snapfmt {

inline constexpr char kMagicV1[8] = {'R', 'J', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr char kMagicV2[8] = {'R', 'J', 'S', 'N', 'A', 'P', '0', '2'};

enum SectionKind : std::uint32_t {
  kMeta = 0,
  kFrOffsets = 1,   // v1 only
  kFrAdj = 2,       // v1 only
  kOutOffsets = 3,  // v1 only
  kOutAdj = 4,      // v1 only
  kInOffsets = 5,   // v1 only
  kInAdj = 6,       // v1 only
  kLayout = 7,
  kFrBlocks = 8,    // v2: compressed friendship adjacency blocks
  kFrIndex = 9,     // v2: friendship block index
  kOutBlocks = 10,  // v2: compressed rejection out-adjacency blocks
  kOutIndex = 11,
  kInBlocks = 12,   // v2: compressed rejection in-adjacency blocks
  kInIndex = 13,
};

inline constexpr std::uint64_t kFlagHasLayout = 1;
inline constexpr std::size_t kEntryBytes = 24;   // kind + crc + offset + length
inline constexpr std::size_t kHeaderBytes = 16;  // magic + count + table crc
inline constexpr std::uint32_t kMaxSections = 64;
inline constexpr std::uint32_t kMaxKinds = 16;
// Every section starts on a 64-byte boundary (util::memory::kAlignment) so
// an mmap'd view can hand section payloads straight to the SIMD kernels.
inline constexpr std::size_t kSectionAlign = util::memory::kAlignment;

// v1 meta: 4 × u64 (n, E, R, flags). v2 meta: 7 × u64 (n, E, R, flags,
// block_rows, max_friendship_degree, max_rejection_degree — the degree
// maxima ExtendedKl's gain bound needs, precomputed so a compressed view
// never scans the file to recover them).
inline constexpr std::size_t kMetaBytesV1 = 4 * 8;
inline constexpr std::size_t kMetaBytesV2 = 7 * 8;

// One v2 block-index record (kFrIndex/kOutIndex/kInIndex payloads):
//   u64 byte_off    first byte of the block inside the blob section
//   u64 first_adj   global adjacency index of the block's first entry
//   u32 crc         CRC32C of the block's encoded bytes
//   u32 rows        rows in the block (last block may be short)
// An index section holds num_blocks records plus one sentinel whose
// byte_off/first_adj are the blob's totals (crc = rows = 0), so block byte
// lengths and global row offsets need no second array.
inline constexpr std::size_t kIndexEntryBytes = 24;

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

// v2 blob sections skip the load-time whole-section CRC (see header note).
inline constexpr bool IsBlobKind(std::uint32_t kind) {
  return kind == kFrBlocks || kind == kOutBlocks || kind == kInBlocks;
}

// Human-readable section name for loader diagnostics.
const char* SectionName(std::uint32_t kind);

void PutU32Le(unsigned char* p, std::uint32_t v);
void PutU64Le(unsigned char* p, std::uint64_t v);
std::uint32_t GetU32Le(const unsigned char* p);
std::uint64_t GetU64Le(const unsigned char* p);

// Throws std::runtime_error("snapshot: <path> at offset <n>: <what>").
[[noreturn]] void Fail(const std::string& path, std::uint64_t offset,
                       const std::string& what);

// ---------- save side ----------

// Assembles header + section table + aligned section payloads in memory
// (the v1 writer; v2 streams instead — see graph/snapshot_writer.h).
class ImageBuilder {
 public:
  // Appends a section at the next 64-byte-aligned offset, CRC included.
  void AddSection(std::uint32_t kind, const void* data, std::uint64_t length);
  std::vector<unsigned char> Finish(const char magic[8]);

 private:
  std::vector<SectionEntry> entries_;
  std::vector<unsigned char> bytes_;
};

// tmp + fwrite + fsync + rename, with failpoints "snapshot/write" and
// "snapshot/rename". Throws on failure, leaving no partial file behind.
void WriteImageAtomically(const std::string& path,
                          const std::vector<unsigned char>& image);

// ---------- load side ----------

// Owns the loaded bytes: an mmap'd region, or a heap buffer when mapping is
// unavailable (failpoint "snapshot/map", zero-length files, exotic FS).
class FileBytes {
 public:
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;

  explicit FileBytes(const std::string& path);
  ~FileBytes();

  const unsigned char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

  // Returns the residency of [offset, offset+length) to the kernel when the
  // bytes are mmap'd (madvise DONTNEED; pages reload from disk on the next
  // touch). No-op on the buffered fallback. The 100M-edge bench scan uses
  // this to keep peak RSS bounded while sweeping the whole blob.
  void ReleaseRange(std::size_t offset, std::size_t length) const;

 private:
  void* map_ = nullptr;
  std::vector<unsigned char> buf_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

// The validated header + section table of either snapshot version.
struct ParsedImage {
  int version = 1;  // 1 or 2, from the magic
  std::uint32_t count = 0;
  SectionEntry entries[kMaxSections];
  const SectionEntry* by_kind[kMaxKinds] = {nullptr};
};

// Validates the container: magic, section count, table CRC, and for every
// entry bounds (distinguishing a TRUNCATED file from corrupt bytes), content
// CRC (skipped for v2 blob kinds), 64-byte alignment and kind uniqueness.
// Every failure throws via Fail() naming the section and its offset.
ParsedImage ParseImage(const std::string& path, const unsigned char* data,
                       std::size_t size);

}  // namespace rejecto::graph::snapfmt
