// Immutable directed rejection graph with both out- and in-adjacency in CSR
// form.
//
// An arc <u, v> records that u rejected (or reported) a friend request from
// v (paper §III-A). Multiple rejections between the same ordered pair are
// collapsed to a single arc, as in the paper. Both adjacency directions are
// materialized because the extended-KL gain computation needs a node's
// rejectors *and* rejectees (§IV-D), and VoteTrust needs the request graph
// in both directions. Bounds checks on the accessors are debug-only
// (REJECTO_DCHECK) — Rejectors()/Rejectees() are on the KL hot path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"
#include "util/buffer.h"
#include "util/dcheck.h"

namespace rejecto::graph {

class RejectionGraph {
 public:
  RejectionGraph() = default;

  // Freezes already-valid CSR arrays: both offset arrays sized
  // num_nodes + 1 and monotone from 0, rows sorted, and the in-adjacency an
  // exact mirror of the (deduplicated, self-loop-free) out-adjacency.
  // Preconditions are NOT validated — raw path for CSR filtering
  // (graph::InducedSubgraph); everything else goes through GraphBuilder.
  static RejectionGraph FromCsr(NodeId num_nodes,
                                util::AlignedVector<std::size_t> out_offsets,
                                util::AlignedVector<NodeId> out_adj,
                                util::AlignedVector<std::size_t> in_offsets,
                                util::AlignedVector<NodeId> in_adj) {
    return RejectionGraph(num_nodes, std::move(out_offsets),
                          std::move(out_adj), std::move(in_offsets),
                          std::move(in_adj));
  }
  // Convenience overload for callers still holding plain vectors; copies
  // into the aligned tier.
  static RejectionGraph FromCsr(NodeId num_nodes,
                                const std::vector<std::size_t>& out_offsets,
                                const std::vector<NodeId>& out_adj,
                                const std::vector<std::size_t>& in_offsets,
                                const std::vector<NodeId>& in_adj) {
    return RejectionGraph(num_nodes,
                          util::AlignedVector<std::size_t>(out_offsets),
                          util::AlignedVector<NodeId>(out_adj),
                          util::AlignedVector<std::size_t>(in_offsets),
                          util::AlignedVector<NodeId>(in_adj));
  }

  NodeId NumNodes() const noexcept { return num_nodes_; }
  EdgeId NumArcs() const noexcept { return num_arcs_; }

  // Users that u rejected requests from (sorted).
  std::span<const NodeId> Rejectees(NodeId u) const {
    CheckNode(u);
    return {out_adj_.data() + out_offsets_[u],
            out_adj_.data() + out_offsets_[u + 1]};
  }

  // Users that rejected u's requests (sorted).
  std::span<const NodeId> Rejectors(NodeId u) const {
    CheckNode(u);
    return {in_adj_.data() + in_offsets_[u],
            in_adj_.data() + in_offsets_[u + 1]};
  }

  std::uint32_t OutDegree(NodeId u) const {
    CheckNode(u);
    return static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  std::uint32_t InDegree(NodeId u) const {
    CheckNode(u);
    return static_cast<std::uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  // O(log outdeg(from)) membership test for arc <from, to>.
  bool HasArc(NodeId from, NodeId to) const;

  // All arcs in (from, to) lexicographic order.
  std::vector<Arc> Arcs() const;

  // Structural equality on the CSR arrays (see SocialGraph::operator==).
  friend bool operator==(const RejectionGraph&, const RejectionGraph&) =
      default;

 private:
  friend class GraphBuilder;
  RejectionGraph(NodeId num_nodes, util::AlignedVector<std::size_t> out_offsets,
                 util::AlignedVector<NodeId> out_adj,
                 util::AlignedVector<std::size_t> in_offsets,
                 util::AlignedVector<NodeId> in_adj);

  void CheckNode([[maybe_unused]] NodeId u) const {
    REJECTO_DCHECK(u < num_nodes_, "RejectionGraph: node id out of range");
  }

  // CSR arrays on the aligned memory tier (see SocialGraph for the SIMD
  // addressing contract they uphold).
  NodeId num_nodes_ = 0;
  EdgeId num_arcs_ = 0;
  util::AlignedVector<std::size_t> out_offsets_;
  util::AlignedVector<NodeId> out_adj_;
  util::AlignedVector<std::size_t> in_offsets_;
  util::AlignedVector<NodeId> in_adj_;
};

}  // namespace rejecto::graph
