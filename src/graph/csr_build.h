// Internal helpers shared by the CSR-rebuilding passes (subgraph
// compaction, layout application): block-parallel per-node loops and the
// in-place exclusive prefix sum that turns per-node counts into offsets.
// Both passes follow the same count → prefix → fill structure; every output
// row is a disjoint range, so the fills are deterministic at any thread
// count.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/thread_pool.h"

namespace rejecto::graph::internal {

// Runs fn(i) for i in [0, n), on the pool when one is given.
inline void ForEachNode(util::ThreadPool* pool, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->size() > 1) {
    pool->ParallelFor(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

// offsets[i+1] holds the count for new node i on entry; exclusive prefix
// sum in place turns it into a CSR offset array. Works on any indexable
// container of size_t (std::vector, util::AlignedVector).
template <typename Offsets>
inline void PrefixSum(Offsets& offsets) {
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
}

}  // namespace rejecto::graph::internal
