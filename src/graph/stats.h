// Graph statistics used to calibrate the Table I dataset registry and to
// sanity-check generated graphs: average local clustering coefficient,
// BFS-based diameter estimation, degree distribution, and connected
// components.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::graph {

// Average local clustering coefficient over all nodes (nodes of degree < 2
// contribute 0), the definition used by SNAP for Table I.
double AverageClusteringCoefficient(const SocialGraph& g);

// Lower-bound diameter estimate: max eccentricity observed across BFS sweeps
// from `num_samples` start nodes chosen by the double-sweep heuristic (each
// sweep restarts from the farthest node found, which converges on peripheral
// nodes quickly). Exact on graphs whose true diameter is realized from a
// sampled node. Only the largest connected component is considered.
std::uint32_t EstimateDiameter(const SocialGraph& g, int num_samples,
                               util::Rng& rng);

// Connected component id per node (ids are dense, 0-based, ordered by first
// appearance) plus the component count.
struct Components {
  std::vector<NodeId> component_of;
  NodeId count = 0;
  NodeId largest = 0;        // id of the largest component
  NodeId largest_size = 0;
};
Components ConnectedComponents(const SocialGraph& g);

// BFS distances from `src` (kInvalidNode-distance encoded as UINT32_MAX).
std::vector<std::uint32_t> BfsDistances(const SocialGraph& g, NodeId src);

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
  double median = 0.0;
};
DegreeStats ComputeDegreeStats(const SocialGraph& g);

// Degree histogram: counts[d] = number of nodes with degree d.
std::vector<std::uint64_t> DegreeHistogram(const SocialGraph& g);

// Maximum-likelihood estimate of the power-law exponent alpha of the
// degree distribution's tail (degrees >= d_min), via the discrete
// approximation of Clauset–Shalizi–Newman:
//   alpha ≈ 1 + n_tail / Σ ln(d / (d_min − 0.5)).
// Returns 0 when fewer than 10 nodes reach d_min. Used to verify the
// scale-free property of the BA/HK generators (alpha ≈ 3 for pure BA).
double EstimatePowerLawExponent(const SocialGraph& g, std::uint32_t d_min);

}  // namespace rejecto::graph
