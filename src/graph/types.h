// Fundamental graph types shared across the repository.
//
// Model (paper §III-A): an augmented social graph G = (V, F, R⃗) where V is
// the user set, F the undirected OSN friendship links (mutual agreement),
// and R⃗ the *directed* social rejections: an arc <u, v> means user u
// rejected / ignored / reported a friend request sent by user v.
#pragma once

#include <cstdint>
#include <limits>

namespace rejecto::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Undirected friendship edge.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// Directed rejection arc: `from` rejected a request sent by `to`.
struct Arc {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const Arc&, const Arc&) = default;
};

}  // namespace rejecto::graph
