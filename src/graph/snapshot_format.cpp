#include "graph/snapshot_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/crc32c.h"
#include "util/failpoint.h"

namespace rejecto::graph::snapfmt {

const char* SectionName(std::uint32_t kind) {
  switch (kind) {
    case kMeta: return "meta";
    case kFrOffsets: return "friendship-offsets";
    case kFrAdj: return "friendship-adjacency";
    case kOutOffsets: return "rejection-out-offsets";
    case kOutAdj: return "rejection-out-adjacency";
    case kInOffsets: return "rejection-in-offsets";
    case kInAdj: return "rejection-in-adjacency";
    case kLayout: return "layout";
    case kFrBlocks: return "friendship-blocks";
    case kFrIndex: return "friendship-block-index";
    case kOutBlocks: return "rejection-out-blocks";
    case kOutIndex: return "rejection-out-block-index";
    case kInBlocks: return "rejection-in-blocks";
    case kInIndex: return "rejection-in-block-index";
    default: return "unknown";
  }
}

void PutU32Le(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

void PutU64Le(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

std::uint32_t GetU32Le(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64Le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void Fail(const std::string& path, std::uint64_t offset,
          const std::string& what) {
  throw std::runtime_error("snapshot: " + path + " at offset " +
                           std::to_string(offset) + ": " + what);
}

// ---------- save side ----------

void ImageBuilder::AddSection(std::uint32_t kind, const void* data,
                              std::uint64_t length) {
  while (bytes_.size() % kSectionAlign != 0) bytes_.push_back(0);
  SectionEntry e;
  e.kind = kind;
  e.crc = util::Crc32c(data, static_cast<std::size_t>(length));
  e.offset = bytes_.size();  // relative to section area; fixed up in Finish
  e.length = length;
  if (length > 0) {
    const auto* p = static_cast<const unsigned char*>(data);
    bytes_.insert(bytes_.end(), p, p + length);
  }
  entries_.push_back(e);
}

std::vector<unsigned char> ImageBuilder::Finish(const char magic[8]) {
  const std::size_t table_bytes = entries_.size() * kEntryBytes;
  std::size_t base = kHeaderBytes + table_bytes;
  while (base % kSectionAlign != 0) ++base;

  std::vector<unsigned char> table(table_bytes);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    unsigned char* p = table.data() + i * kEntryBytes;
    PutU32Le(p, entries_[i].kind);
    PutU32Le(p + 4, entries_[i].crc);
    PutU64Le(p + 8, entries_[i].offset + base);
    PutU64Le(p + 16, entries_[i].length);
  }

  std::vector<unsigned char> out(base + bytes_.size(), 0);
  std::memcpy(out.data(), magic, 8);
  PutU32Le(out.data() + 8, static_cast<std::uint32_t>(entries_.size()));
  PutU32Le(out.data() + 12, util::Crc32c(table.data(), table.size()));
  std::memcpy(out.data() + kHeaderBytes, table.data(), table.size());
  if (!bytes_.empty()) {
    std::memcpy(out.data() + base, bytes_.data(), bytes_.size());
  }
  return out;
}

void WriteImageAtomically(const std::string& path,
                          const std::vector<unsigned char>& image) {
  const std::string tmp = path + ".tmp";
  if (util::Failpoints::Instance().ShouldFail("snapshot/write")) {
    throw std::runtime_error("snapshot: injected write failure on " + tmp);
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot open " + tmp);
  }
  bool ok = std::fwrite(image.data(), 1, image.size(), f) == image.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: write failure on " + tmp);
  }
  // Atomic publish, exactly like the WAL checkpoints: a crash before the
  // rename leaves the previous snapshot (if any) intact.
  if (util::Failpoints::Instance().ShouldFail("snapshot/rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: cannot publish " + path);
  }
}

// ---------- load side ----------

FileBytes::FileBytes(const std::string& path) {
  if (util::Failpoints::Instance().ShouldFail("snapshot/open")) {
    throw std::runtime_error("snapshot: injected open failure on " + path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("snapshot: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("snapshot: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);

  const bool force_fallback =
      util::Failpoints::Instance().ShouldFail("snapshot/map");
  if (size_ > 0 && !force_fallback) {
    void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (m != MAP_FAILED) {
      map_ = m;
      data_ = static_cast<const unsigned char*>(m);
    }
  }
  if (data_ == nullptr && size_ > 0) {
    // Buffered fallback: one sequential read of the whole file.
    buf_.resize(size_);
    std::ifstream in(path, std::ios::binary);
    if (!in.read(reinterpret_cast<char*>(buf_.data()),
                 static_cast<std::streamsize>(size_))) {
      ::close(fd);
      throw std::runtime_error("snapshot: cannot read " + path);
    }
    data_ = buf_.data();
  }
  ::close(fd);
}

FileBytes::~FileBytes() {
  if (map_ != nullptr) ::munmap(map_, size_);
}

void FileBytes::ReleaseRange(std::size_t offset, std::size_t length) const {
  if (map_ == nullptr || length == 0 || offset >= size_) return;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t begin = (offset / page) * page;
  std::size_t end = offset + std::min(length, size_ - offset);
  end = ((end + page - 1) / page) * page;
  if (end > size_) end = size_;
  if (end > begin) {
    ::madvise(static_cast<char*>(map_) + begin, end - begin, MADV_DONTNEED);
  }
}

ParsedImage ParseImage(const std::string& path, const unsigned char* data,
                       std::size_t size) {
  ParsedImage img;
  if (size < kHeaderBytes) Fail(path, size, "truncated header");
  if (std::memcmp(data, kMagicV1, 8) == 0) {
    img.version = 1;
  } else if (std::memcmp(data, kMagicV2, 8) == 0) {
    img.version = 2;
  } else {
    Fail(path, 0, "bad magic (not an RJSNAP01/RJSNAP02 snapshot)");
  }
  img.count = GetU32Le(data + 8);
  if (img.count == 0 || img.count > kMaxSections) {
    Fail(path, 8, "implausible section count " + std::to_string(img.count));
  }
  const std::size_t table_bytes = img.count * kEntryBytes;
  if (size < kHeaderBytes + table_bytes) {
    Fail(path, size, "truncated section table");
  }
  if (util::Crc32c(data + kHeaderBytes, table_bytes) != GetU32Le(data + 12)) {
    Fail(path, 12, "section table CRC mismatch");
  }

  // Validate every entry's bounds and content CRC before any payload is
  // consumed. A section running past the end of the file is reported as
  // TRUNCATION (the tail is missing); a section whose bytes are present but
  // fail their CRC is reported as corruption — distinct errors so an
  // operator can tell a torn copy from bit rot.
  for (std::uint32_t i = 0; i < img.count; ++i) {
    const unsigned char* p = data + kHeaderBytes + i * kEntryBytes;
    SectionEntry& e = img.entries[i];
    e.kind = GetU32Le(p);
    e.crc = GetU32Le(p + 4);
    e.offset = GetU64Le(p + 8);
    e.length = GetU64Le(p + 16);
    const std::string name =
        std::string(SectionName(e.kind)) + " section (kind " +
        std::to_string(e.kind) + ")";
    if (e.offset > size || e.length > size - e.offset) {
      Fail(path, e.offset,
           name + " truncated: length " + std::to_string(e.length) +
               " exceeds file size " + std::to_string(size));
    }
    if (!(img.version == 2 && IsBlobKind(e.kind))) {
      if (util::Crc32c(data + e.offset, static_cast<std::size_t>(e.length)) !=
          e.crc) {
        Fail(path, e.offset, name + " CRC mismatch (corrupt bytes)");
      }
    }
    if (e.offset % kSectionAlign != 0) {
      Fail(path, e.offset,
           name +
               " is not 64-byte aligned (pre-alignment snapshot? re-save "
               "with this build)");
    }
    if (e.kind < kMaxKinds) {
      if (img.by_kind[e.kind] != nullptr) {
        Fail(path, e.offset, "duplicate " + name);
      }
      img.by_kind[e.kind] = &e;
    }
  }
  return img;
}

}  // namespace rejecto::graph::snapfmt
