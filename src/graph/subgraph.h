// Node-induced subgraph compaction.
//
// The iterative detector (§IV-E) prunes each detected spammer group — with
// all its friendships and rejections — and re-solves MAAR on the residual
// graph. Compaction produces a fresh dense-id AugmentedGraph plus the
// mapping back to the parent graph's ids.
//
// Implemented as a direct CSR→CSR filter: per-node counts of kept
// neighbors, a prefix sum into fresh offset arrays, and a filtered copy of
// each row with ids remapped. Because the new-id map is monotone in the old
// id, filtered rows stay sorted, so no GraphBuilder pass and no global edge
// sort is needed. The count and fill sweeps are parallelized over node
// blocks when a pool is given; every thread writes disjoint ranges, so the
// output is identical at any thread count.
#pragma once

#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::util {
class ThreadPool;
}  // namespace rejecto::util

namespace rejecto::graph {

class CompressedGraphView;

struct CompactedGraph {
  AugmentedGraph graph;
  // new dense id -> id in the parent graph
  std::vector<NodeId> parent_id;
};

// Keeps exactly the nodes with keep[u] != 0 and the edges/arcs with both
// endpoints kept. Precondition: keep.size() == g.NumNodes().
CompactedGraph InducedSubgraph(const AugmentedGraph& g,
                               const std::vector<char>& keep,
                               util::ThreadPool* pool = nullptr);

// Same filter fed straight from a compressed snapshot view: the count and
// fill sweeps decode each adjacency block exactly twice (once per sweep)
// into per-thread scratch, so peak memory is the residual CSR plus one
// decoded block per worker — the parent graph is never expanded. Produces
// bit-identical output to InducedSubgraph(view.Materialize().graph, keep)
// at any thread count.
CompactedGraph InducedSubgraph(const CompressedGraphView& view,
                               const std::vector<char>& keep,
                               util::ThreadPool* pool = nullptr);

}  // namespace rejecto::graph
