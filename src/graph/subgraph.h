// Node-induced subgraph compaction.
//
// The iterative detector (§IV-E) prunes each detected spammer group — with
// all its friendships and rejections — and re-solves MAAR on the residual
// graph. Compaction produces a fresh dense-id AugmentedGraph plus the
// mapping back to the parent graph's ids.
#pragma once

#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::graph {

struct CompactedGraph {
  AugmentedGraph graph;
  // new dense id -> id in the parent graph
  std::vector<NodeId> parent_id;
};

// Keeps exactly the nodes with keep[u] != 0 and the edges/arcs with both
// endpoints kept. Precondition: keep.size() == g.NumNodes().
CompactedGraph InducedSubgraph(const AugmentedGraph& g,
                               const std::vector<char>& keep);

}  // namespace rejecto::graph
