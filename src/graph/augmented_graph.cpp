#include "graph/augmented_graph.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rejecto::graph {

double CutQuantities::FriendsToRejectionsRatio() const noexcept {
  if (rejections_into_u == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(cross_friendships) /
         static_cast<double>(rejections_into_u);
}

AugmentedGraph::AugmentedGraph(SocialGraph friendships,
                               RejectionGraph rejections)
    : friendships_(std::move(friendships)), rejections_(std::move(rejections)) {
  if (friendships_.NumNodes() != rejections_.NumNodes()) {
    throw std::invalid_argument(
        "AugmentedGraph: friendship and rejection graphs must share the node "
        "set");
  }
  max_friendship_degree_ = friendships_.MaxDegree();
  for (NodeId v = 0; v < NumNodes(); ++v) {
    const std::uint64_t r = static_cast<std::uint64_t>(
        rejections_.InDegree(v) + rejections_.OutDegree(v));
    max_rejection_degree_ = std::max(max_rejection_degree_, r);
  }
}

CutQuantities AugmentedGraph::ComputeCut(const std::vector<char>& in_u) const {
  if (in_u.size() != NumNodes()) {
    throw std::invalid_argument("AugmentedGraph::ComputeCut: mask size");
  }
  CutQuantities q;
  for (NodeId u = 0; u < NumNodes(); ++u) {
    if (!in_u[u]) continue;
    for (NodeId v : friendships_.Neighbors(u)) {
      if (!in_u[v]) ++q.cross_friendships;
    }
    for (NodeId v : rejections_.Rejectors(u)) {
      if (!in_u[v]) ++q.rejections_into_u;
    }
    for (NodeId v : rejections_.Rejectees(u)) {
      if (!in_u[v]) ++q.rejections_from_u;
    }
  }
  return q;
}

}  // namespace rejecto::graph
