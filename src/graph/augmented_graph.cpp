#include "graph/augmented_graph.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/buffer.h"
#include "util/simd.h"

namespace rejecto::graph {

double CutQuantities::FriendsToRejectionsRatio() const noexcept {
  if (rejections_into_u == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(cross_friendships) /
         static_cast<double>(rejections_into_u);
}

AugmentedGraph::AugmentedGraph(SocialGraph friendships,
                               RejectionGraph rejections)
    : friendships_(std::move(friendships)), rejections_(std::move(rejections)) {
  if (friendships_.NumNodes() != rejections_.NumNodes()) {
    throw std::invalid_argument(
        "AugmentedGraph: friendship and rejection graphs must share the node "
        "set");
  }
  max_friendship_degree_ = friendships_.MaxDegree();
  for (NodeId v = 0; v < NumNodes(); ++v) {
    const std::uint64_t r = static_cast<std::uint64_t>(
        rejections_.InDegree(v) + rejections_.OutDegree(v));
    max_rejection_degree_ = std::max(max_rejection_degree_, r);
  }
}

CutQuantities AugmentedGraph::ComputeCut(const std::vector<char>& in_u) const {
  if (in_u.size() != NumNodes()) {
    throw std::invalid_argument("AugmentedGraph::ComputeCut: mask size");
  }
  CutQuantities q;
  if (util::simd::ActiveMode() == util::simd::SimdMode::kAvx2 &&
      NumNodes() > 0) {
    // Vector path: each row count is an exact zero-byte count over the mask,
    // so the result is bit-identical to the scalar loop below. The mask is
    // copied onto the aligned tier for the gather overread slack.
    util::AlignedVector<unsigned char> mask(in_u.size());
    std::memcpy(mask.data(), in_u.data(), in_u.size());
    for (NodeId u = 0; u < NumNodes(); ++u) {
      if (!mask[u]) continue;
      const auto fr = friendships_.Neighbors(u);
      const auto rejectors = rejections_.Rejectors(u);
      const auto rejectees = rejections_.Rejectees(u);
      q.cross_friendships +=
          util::simd::CountZeroAt(mask.data(), fr.data(), fr.size());
      q.rejections_into_u += util::simd::CountZeroAt(
          mask.data(), rejectors.data(), rejectors.size());
      q.rejections_from_u += util::simd::CountZeroAt(
          mask.data(), rejectees.data(), rejectees.size());
    }
    return q;
  }
  // Scalar oracle.
  for (NodeId u = 0; u < NumNodes(); ++u) {
    if (!in_u[u]) continue;
    for (NodeId v : friendships_.Neighbors(u)) {
      if (!in_u[v]) ++q.cross_friendships;
    }
    for (NodeId v : rejections_.Rejectors(u)) {
      if (!in_u[v]) ++q.rejections_into_u;
    }
    for (NodeId v : rejections_.Rejectees(u)) {
      if (!in_u[v]) ++q.rejections_from_u;
    }
  }
  return q;
}

}  // namespace rejecto::graph
