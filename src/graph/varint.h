// LEB128 varint + zigzag primitives for the RJSNAP02 block codec.
//
// Adjacency rows are stored as deltas: within a BFS-relayouted graph,
// consecutive neighbor ids differ by small positive gaps, and a row's first
// neighbor sits near the row's own id — but not necessarily above it, so the
// first delta is SIGNED and zigzag-mapped (0→0, −1→1, 1→2, −2→3, …) before
// the varint. All subsequent gaps are strictly positive (rows are sorted,
// duplicate-free) and stored as unsigned (gap − 1).
//
// Encoding is standard LEB128: 7 payload bits per byte, continuation bit
// 0x80, little-endian groups. Decoders are bounds-checked against an `end`
// pointer and reject over-long encodings, so a corrupt (or truncated) block
// that slipped past its CRC can never read out of bounds or loop — they
// return nullptr instead of a position.
#pragma once

#include <cstdint>
#include <vector>

namespace rejecto::graph::varint {

inline std::uint64_t ZigZagEncode64(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t ZigZagDecode64(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void PutU32(std::vector<unsigned char>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

inline void PutU64(std::vector<unsigned char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

// Decodes one u32 varint from [p, end); stores it in *v and returns the
// position past the last consumed byte, or nullptr when the input is
// truncated or the encoding exceeds 5 bytes / 32 bits.
inline const unsigned char* GetU32(const unsigned char* p,
                                   const unsigned char* end,
                                   std::uint32_t* v) {
  std::uint32_t result = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (p == end) return nullptr;
    const unsigned char byte = *p++;
    const std::uint32_t payload = byte & 0x7f;
    if (shift == 28 && payload > 0x0f) return nullptr;  // overflows 32 bits
    result |= payload << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;  // 5 continuation bytes: over-long encoding
}

// u64 counterpart (up to 10 bytes).
inline const unsigned char* GetU64(const unsigned char* p,
                                   const unsigned char* end,
                                   std::uint64_t* v) {
  std::uint64_t result = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (p == end) return nullptr;
    const unsigned char byte = *p++;
    const std::uint64_t payload = byte & 0x7f;
    if (shift == 63 && payload > 0x01) return nullptr;  // overflows 64 bits
    result |= payload << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;
}

}  // namespace rejecto::graph::varint
