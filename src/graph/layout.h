// Locality-preserving vertex reordering for the CSR graphs.
//
// Hot passes in the detector visit nodes in graph-traversal order — a KL
// sweep chases the gain frontier, vote propagation expands ring by ring,
// warm epochs revisit last round's cut boundary. Under an arbitrary
// interned vertex order every step of such a pass lands on a random CSR
// row and a random aggregate cache line. A Layout is a permutation of the
// node ids that assigns traversal-adjacent nodes adjacent ids; applying it
// once re-bases all three CSRs so a propagation-ordered pass walks the row
// storage and the per-node arrays nearly sequentially — streaming loads
// the prefetcher can cover instead of dependent random misses.
//
// Ordering heuristic (LayoutPolicy::kBfs): a plain FIFO BFS over the union
// of friendship and rejection adjacency, seeded component by component
// from the highest-combined-degree hub, children enqueued in row order —
// so consecutive ids are parent/child or frontier-adjacent, and each
// community occupies one contiguous id range. The order is a pure function
// of the graph (seeds tie-break on the smaller original id), so the same
// graph always yields the same permutation on every platform and thread
// count.
//
// Determinism contract: detection is invariant under relayout. For any
// valid permutation — not just ComputeLayout's — running
// DetectFriendSpammers on ApplyLayout(g) with MaarConfig::rank set to
// Layout::old_of_new returns the SAME detected set (original ids, same
// order), MAAR ratios, and per-round cuts as the identity run, at any
// thread count. Every order-sensitive tie-break in the pipeline (bucket
// insertion order, deferred relink order, trim order, output order) is
// keyed on the original id through that rank array; see detect/maar.h.
//
// ApplyLayout is a CSR→CSR remap in the subgraph-compaction mold (count →
// prefix → fill, block-parallel over disjoint output rows, no GraphBuilder
// pass and no global edge sort): each remapped row is sorted independently
// in cache. Deterministic at any thread count.
#pragma once

#include <string>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::util {
class ThreadPool;
}  // namespace rejecto::util

namespace rejecto::graph {

enum class LayoutPolicy {
  kIdentity = 0,  // keep the interned order (no remap, no rank overhead)
  kBfs = 1,       // FIFO BFS from high-degree hubs, children in row order
};

// Parses "identity" / "bfs" (case-sensitive); throws on anything else.
LayoutPolicy ParseLayoutPolicy(const std::string& name);

// The REJECTO_LAYOUT environment knob; unset/empty means kIdentity.
LayoutPolicy LayoutPolicyFromEnv();

const char* LayoutPolicyName(LayoutPolicy policy);

// A bijection between original ids and laid-out ids. Either both arrays are
// empty (identity) or both have size n and are mutual inverses.
struct Layout {
  std::vector<NodeId> new_of_old;  // original id -> laid-out id
  std::vector<NodeId> old_of_new;  // laid-out id -> original id

  bool IsIdentity() const noexcept { return new_of_old.empty(); }

  friend bool operator==(const Layout&, const Layout&) = default;
};

// The explicit identity permutation over n nodes (both arrays filled).
Layout IdentityLayout(NodeId n);

// Builds a Layout from an explicit old->new permutation; validates that it
// is a bijection on [0, n) and derives the inverse.
Layout LayoutFromPermutation(std::vector<NodeId> new_of_old);

// Computes the ordering for `policy` on g. kIdentity returns an empty
// (identity) Layout. Deterministic; the pool is unused today (the BFS is a
// one-time sequential pass) but part of the contract so callers can hand
// the detector's pool down uniformly.
Layout ComputeLayout(const AugmentedGraph& g, LayoutPolicy policy,
                     util::ThreadPool* pool = nullptr);

// Remaps a graph into the layout's id space. An identity Layout returns a
// copy. Precondition: layout arrays sized to the graph's node count (or
// empty).
SocialGraph ApplyLayout(const SocialGraph& g, const Layout& layout,
                        util::ThreadPool* pool = nullptr);
RejectionGraph ApplyLayout(const RejectionGraph& g, const Layout& layout,
                           util::ThreadPool* pool = nullptr);
AugmentedGraph ApplyLayout(const AugmentedGraph& g, const Layout& layout,
                           util::ThreadPool* pool = nullptr);

// Swaps the two directions: ApplyLayout(g, InvertLayout(L)) undoes
// ApplyLayout(g, L).
Layout InvertLayout(const Layout& layout);

// Mask/id translation at the API boundary. To* maps original-id-indexed
// data into layout space; From* maps back.
std::vector<char> MaskToLayout(const Layout& layout,
                               const std::vector<char>& mask);
std::vector<char> MaskFromLayout(const Layout& layout,
                                 const std::vector<char>& mask);
std::vector<NodeId> IdsToLayout(const Layout& layout,
                                const std::vector<NodeId>& ids);
std::vector<NodeId> IdsFromLayout(const Layout& layout,
                                  const std::vector<NodeId>& ids);

}  // namespace rejecto::graph
