#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace rejecto::graph {

double AverageClusteringCoefficient(const SocialGraph& g) {
  const NodeId n = g.NumNodes();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.Neighbors(u);
    const std::size_t d = nbrs.size();
    if (d < 2) continue;
    // Count links among u's neighbors by merging each neighbor's (sorted)
    // adjacency with nbrs. Cost O(Σ_v∈N(u) deg(v)) per node.
    std::uint64_t links = 0;
    for (NodeId v : nbrs) {
      const auto vn = g.Neighbors(v);
      // Intersect vn with nbrs via two-pointer merge.
      std::size_t i = 0, j = 0;
      while (i < vn.size() && j < nbrs.size()) {
        if (vn[i] < nbrs[j]) {
          ++i;
        } else if (vn[i] > nbrs[j]) {
          ++j;
        } else {
          ++links;
          ++i;
          ++j;
        }
      }
    }
    // Every triangle edge was counted twice (once from each endpoint).
    sum += static_cast<double>(links) / static_cast<double>(d * (d - 1));
  }
  return sum / static_cast<double>(n);
}

std::vector<std::uint32_t> BfsDistances(const SocialGraph& g, NodeId src) {
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.NumNodes(), kUnreached);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.Neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

Components ConnectedComponents(const SocialGraph& g) {
  Components c;
  c.component_of.assign(g.NumNodes(), kInvalidNode);
  std::vector<NodeId> sizes;
  std::queue<NodeId> q;
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    if (c.component_of[s] != kInvalidNode) continue;
    const NodeId id = c.count++;
    sizes.push_back(0);
    c.component_of[s] = id;
    q.push(s);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      ++sizes[id];
      for (NodeId v : g.Neighbors(u)) {
        if (c.component_of[v] == kInvalidNode) {
          c.component_of[v] = id;
          q.push(v);
        }
      }
    }
  }
  for (NodeId id = 0; id < c.count; ++id) {
    if (sizes[id] > c.largest_size) {
      c.largest_size = sizes[id];
      c.largest = id;
    }
  }
  return c;
}

std::uint32_t EstimateDiameter(const SocialGraph& g, int num_samples,
                               util::Rng& rng) {
  if (g.NumNodes() == 0) return 0;
  const Components comps = ConnectedComponents(g);
  std::vector<NodeId> lcc;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (comps.component_of[u] == comps.largest) lcc.push_back(u);
  }
  if (lcc.size() <= 1) return 0;

  std::uint32_t best = 0;
  NodeId start = lcc[rng.NextUInt(lcc.size())];
  for (int s = 0; s < num_samples; ++s) {
    const auto dist = BfsDistances(g, start);
    NodeId farthest = start;
    std::uint32_t ecc = 0;
    for (NodeId u : lcc) {
      if (dist[u] != std::numeric_limits<std::uint32_t>::max() &&
          dist[u] > ecc) {
        ecc = dist[u];
        farthest = u;
      }
    }
    best = std::max(best, ecc);
    // Double-sweep: continue from the farthest node; occasionally restart
    // randomly to escape a non-peripheral basin.
    start = (s % 4 == 3) ? lcc[rng.NextUInt(lcc.size())] : farthest;
  }
  return best;
}

std::vector<std::uint64_t> DegreeHistogram(const SocialGraph& g) {
  std::vector<std::uint64_t> counts(g.MaxDegree() + 1, 0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) ++counts[g.Degree(u)];
  return counts;
}

double EstimatePowerLawExponent(const SocialGraph& g, std::uint32_t d_min) {
  if (d_min == 0) {
    throw std::invalid_argument("EstimatePowerLawExponent: d_min must be > 0");
  }
  std::uint64_t n_tail = 0;
  double log_sum = 0.0;
  const double shift = static_cast<double>(d_min) - 0.5;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const std::uint32_t d = g.Degree(u);
    if (d >= d_min) {
      ++n_tail;
      log_sum += std::log(static_cast<double>(d) / shift);
    }
  }
  if (n_tail < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n_tail) / log_sum;
}

DegreeStats ComputeDegreeStats(const SocialGraph& g) {
  DegreeStats s;
  const NodeId n = g.NumNodes();
  if (n == 0) return s;
  std::vector<std::uint32_t> degs(n);
  std::uint64_t total = 0;
  s.min = std::numeric_limits<std::uint32_t>::max();
  for (NodeId u = 0; u < n; ++u) {
    degs[u] = g.Degree(u);
    total += degs[u];
    s.min = std::min(s.min, degs[u]);
    s.max = std::max(s.max, degs[u]);
  }
  s.mean = static_cast<double>(total) / static_cast<double>(n);
  auto mid = degs.begin() + n / 2;
  std::nth_element(degs.begin(), mid, degs.end());
  s.median = static_cast<double>(*mid);
  if (n % 2 == 0) {
    const auto lower = std::max_element(degs.begin(), mid);
    s.median = (s.median + static_cast<double>(*lower)) / 2.0;
  }
  return s;
}

}  // namespace rejecto::graph
