#include "graph/communities.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace rejecto::graph {

std::vector<std::vector<NodeId>> CommunityResult::Members() const {
  std::vector<std::vector<NodeId>> members(num_communities);
  for (NodeId v = 0; v < community_of.size(); ++v) {
    members[community_of[v]].push_back(v);
  }
  return members;
}

CommunityResult LabelPropagation(const SocialGraph& g, util::Rng& rng,
                                 int max_iterations) {
  const NodeId n = g.NumNodes();
  CommunityResult result;
  std::vector<NodeId> label(n);
  std::iota(label.begin(), label.end(), 0);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::unordered_map<NodeId, std::uint32_t> counts;

  for (int it = 0; it < max_iterations; ++it) {
    ++result.iterations;
    rng.Shuffle(order);
    bool changed = false;
    for (NodeId v : order) {
      const auto nbrs = g.Neighbors(v);
      if (nbrs.empty()) continue;
      counts.clear();
      for (NodeId w : nbrs) ++counts[label[w]];
      // Most frequent neighbor label; ties -> smallest label id, which
      // keeps the sweep deterministic given the shuffled order.
      NodeId best = label[v];
      std::uint32_t best_count = 0;
      for (const auto& [lab, cnt] : counts) {
        if (cnt > best_count || (cnt == best_count && lab < best)) {
          best = lab;
          best_count = cnt;
        }
      }
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Compact label ids to dense [0, k).
  std::unordered_map<NodeId, std::uint32_t> dense;
  result.community_of.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    auto [it, inserted] =
        dense.try_emplace(label[v], static_cast<std::uint32_t>(dense.size()));
    result.community_of[v] = it->second;
  }
  result.num_communities = static_cast<std::uint32_t>(dense.size());
  return result;
}

double Modularity(const SocialGraph& g,
                  const std::vector<std::uint32_t>& labels) {
  if (labels.size() != g.NumNodes()) {
    throw std::invalid_argument("Modularity: label vector size mismatch");
  }
  const double two_m = 2.0 * static_cast<double>(g.NumEdges());
  if (two_m == 0.0) return 0.0;
  // Q = Σ_c [ e_c / m − (vol_c / 2m)² ] with e_c intra-community edges.
  std::unordered_map<std::uint32_t, double> intra, vol;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    vol[labels[u]] += g.Degree(u);
    for (NodeId v : g.Neighbors(u)) {
      if (u < v && labels[u] == labels[v]) intra[labels[u]] += 1.0;
    }
  }
  double q = 0.0;
  for (const auto& [label, volume] : vol) {
    const auto it = intra.find(label);
    const double e_c = it == intra.end() ? 0.0 : it->second;
    q += e_c / (two_m / 2.0) - (volume / two_m) * (volume / two_m);
  }
  return q;
}

double Conductance(const SocialGraph& g, const std::vector<char>& in_set) {
  if (in_set.size() != g.NumNodes()) {
    throw std::invalid_argument("Conductance: mask size mismatch");
  }
  std::uint64_t cut = 0, vol_in = 0, vol_out = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (in_set[u]) {
      vol_in += g.Degree(u);
    } else {
      vol_out += g.Degree(u);
    }
    if (!in_set[u]) continue;
    for (NodeId v : g.Neighbors(u)) {
      if (!in_set[v]) ++cut;
    }
  }
  const std::uint64_t denom = std::min(vol_in, vol_out);
  if (denom == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

}  // namespace rejecto::graph
