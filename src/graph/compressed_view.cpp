#include "graph/compressed_view.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "graph/block_codec.h"
#include "util/crc32c.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace rejecto::graph {
namespace {

constexpr std::uint32_t kCsrBlobKind[3] = {
    snapfmt::kFrBlocks, snapfmt::kOutBlocks, snapfmt::kInBlocks};
constexpr std::uint32_t kCsrIndexKind[3] = {
    snapfmt::kFrIndex, snapfmt::kOutIndex, snapfmt::kInIndex};

std::string BlobName(int csr) {
  return std::string(snapfmt::SectionName(kCsrBlobKind[csr])) +
         " section (kind " + std::to_string(kCsrBlobKind[csr]) + ")";
}

}  // namespace

CompressedGraphView CompressedGraphView::Open(const std::string& path) {
  CompressedGraphView view;
  view.file_ = std::make_shared<snapfmt::FileBytes>(path);
  view.path_ = path;
  const unsigned char* data = view.file_->data();
  const std::size_t size = view.file_->size();

  const snapfmt::ParsedImage img = snapfmt::ParseImage(path, data, size);
  if (img.version != 2) {
    snapfmt::Fail(path, 0,
                  "RJSNAP01 snapshot opened as a compressed view (use "
                  "LoadSnapshot, which dispatches on the magic)");
  }

  const snapfmt::SectionEntry* meta = img.by_kind[snapfmt::kMeta];
  if (meta == nullptr || meta->length != snapfmt::kMetaBytesV2) {
    snapfmt::Fail(path, snapfmt::kHeaderBytes,
                  "missing or malformed meta section");
  }
  const unsigned char* mp = data + meta->offset;
  const std::uint64_t n64 = snapfmt::GetU64Le(mp);
  view.edges_ = snapfmt::GetU64Le(mp + 8);
  view.arcs_ = snapfmt::GetU64Le(mp + 16);
  const std::uint64_t flags = snapfmt::GetU64Le(mp + 24);
  const std::uint64_t block_rows = snapfmt::GetU64Le(mp + 32);
  view.max_friendship_degree_ = snapfmt::GetU64Le(mp + 40);
  view.max_rejection_degree_ = snapfmt::GetU64Le(mp + 48);
  if (n64 >= kInvalidNode) {
    snapfmt::Fail(path, meta->offset,
                  "node count " + std::to_string(n64) +
                      " exceeds the 32-bit id space");
  }
  if (block_rows < 64 || block_rows > 256) {
    snapfmt::Fail(path, meta->offset,
                  "block span " + std::to_string(block_rows) +
                      " outside the supported [64, 256] range");
  }
  view.n_ = static_cast<NodeId>(n64);
  view.block_rows_ = static_cast<std::uint32_t>(block_rows);
  view.num_blocks_ =
      view.n_ == 0
          ? 0
          : (view.n_ + view.block_rows_ - 1) / view.block_rows_;

  const std::uint64_t totals[3] = {2 * view.edges_, view.arcs_, view.arcs_};
  for (int c = 0; c < 3; ++c) {
    const snapfmt::SectionEntry* be = img.by_kind[kCsrBlobKind[c]];
    const snapfmt::SectionEntry* ie = img.by_kind[kCsrIndexKind[c]];
    if (be == nullptr || ie == nullptr) {
      snapfmt::Fail(path, snapfmt::kHeaderBytes,
                    "missing compressed CSR sections " +
                        std::to_string(kCsrBlobKind[c]) + "/" +
                        std::to_string(kCsrIndexKind[c]));
    }
    const std::uint64_t expect_index =
        (static_cast<std::uint64_t>(view.num_blocks_) + 1) *
        snapfmt::kIndexEntryBytes;
    if (ie->length != expect_index) {
      snapfmt::Fail(path, ie->offset,
                    "block index length disagrees with node count");
    }
    CsrView& cv = view.csr_[c];
    cv.index = data + ie->offset;
    cv.blob = data + be->offset;
    cv.blob_file_offset = be->offset;
    cv.blob_len = be->length;
    cv.total_adj = totals[c];

    // Walk the (small) index once: records must tile the blob exactly and
    // the rows must tile [0, n). Everything downstream (block decode,
    // Materialize's disjoint writes) relies on these invariants.
    std::uint64_t prev_off = 0;
    std::uint64_t prev_adj = 0;
    std::uint64_t rows_total = 0;
    for (NodeId b = 0; b <= view.num_blocks_; ++b) {
      std::uint64_t off = 0;
      std::uint64_t adj = 0;
      std::uint32_t crc = 0;
      std::uint32_t rows = 0;
      view.IndexRecord(c, b, &off, &adj, &crc, &rows);
      const std::uint64_t rec_offset =
          ie->offset + static_cast<std::uint64_t>(b) * snapfmt::kIndexEntryBytes;
      if (b == 0 && (off != 0 || adj != 0)) {
        snapfmt::Fail(path, rec_offset,
                      "block index does not start at the blob origin");
      }
      if (off < prev_off || adj < prev_adj) {
        snapfmt::Fail(path, rec_offset, "block index is not monotone");
      }
      if (b < view.num_blocks_) {
        const bool last = b + 1 == view.num_blocks_;
        if (rows == 0 || rows > view.block_rows_ ||
            (!last && rows != view.block_rows_)) {
          snapfmt::Fail(path, rec_offset,
                        "block row count disagrees with the block span");
        }
        rows_total += rows;
      } else {
        // Sentinel: byte_off/first_adj carry the blob totals.
        if (off != cv.blob_len) {
          snapfmt::Fail(path, rec_offset,
                        "block index totals disagree with the blob section "
                        "length");
        }
        if (adj != cv.total_adj) {
          snapfmt::Fail(path, rec_offset,
                        "block index adjacency total disagrees with the meta "
                        "section");
        }
      }
      prev_off = off;
      prev_adj = adj;
    }
    if (rows_total != view.n_) {
      snapfmt::Fail(path, ie->offset,
                    "block rows do not cover the node count");
    }
  }

  if ((flags & snapfmt::kFlagHasLayout) != 0) {
    const snapfmt::SectionEntry* le = img.by_kind[snapfmt::kLayout];
    if (le == nullptr || le->length != n64 * sizeof(NodeId)) {
      snapfmt::Fail(path, snapfmt::kHeaderBytes,
                    "missing or malformed layout section");
    }
    std::vector<NodeId> old_of_new(static_cast<std::size_t>(n64));
    for (std::size_t i = 0; i < old_of_new.size(); ++i) {
      old_of_new[i] = snapfmt::GetU32Le(data + le->offset + i * 4);
    }
    view.layout_.new_of_old.assign(view.n_, kInvalidNode);
    for (NodeId v = 0; v < view.n_; ++v) {
      const NodeId o = old_of_new[v];
      if (o >= view.n_ || view.layout_.new_of_old[o] != kInvalidNode) {
        snapfmt::Fail(path, le->offset,
                      "layout permutation is not a bijection");
      }
      view.layout_.new_of_old[o] = v;
    }
    view.layout_.old_of_new = std::move(old_of_new);
  }
  return view;
}

void CompressedGraphView::IndexRecord(int csr, NodeId block,
                                      std::uint64_t* byte_off,
                                      std::uint64_t* first_adj,
                                      std::uint32_t* crc,
                                      std::uint32_t* rows) const {
  const unsigned char* p =
      csr_[csr].index +
      static_cast<std::size_t>(block) * snapfmt::kIndexEntryBytes;
  *byte_off = snapfmt::GetU64Le(p);
  *first_adj = snapfmt::GetU64Le(p + 8);
  *crc = snapfmt::GetU32Le(p + 16);
  *rows = snapfmt::GetU32Le(p + 20);
}

std::uint64_t CompressedGraphView::BlockFirstAdj(int csr, NodeId block) const {
  std::uint64_t off = 0, adj = 0;
  std::uint32_t crc = 0, rows = 0;
  IndexRecord(csr, block, &off, &adj, &crc, &rows);
  return adj;
}

std::uint32_t CompressedGraphView::BlockRowCount(int csr, NodeId block) const {
  std::uint64_t off = 0, adj = 0;
  std::uint32_t crc = 0, rows = 0;
  IndexRecord(csr, block, &off, &adj, &crc, &rows);
  return rows;
}

void CompressedGraphView::BlockFileRange(int csr, NodeId block,
                                         std::uint64_t* offset,
                                         std::uint64_t* length) const {
  std::uint64_t off = 0, next_off = 0, adj = 0;
  std::uint32_t crc = 0, rows = 0;
  IndexRecord(csr, block, &off, &adj, &crc, &rows);
  IndexRecord(csr, block + 1, &next_off, &adj, &crc, &rows);
  *offset = csr_[csr].blob_file_offset + off;
  *length = next_off - off;
}

void CompressedGraphView::DecodeBlockInto(
    int csr, NodeId block, util::AlignedVector<std::uint32_t>& row_offsets,
    util::AlignedVector<NodeId>& adj) const {
  const CsrView& cv = csr_[csr];
  std::uint64_t off = 0, first_adj = 0, next_off = 0, next_adj = 0;
  std::uint32_t crc = 0, rows = 0, scrap_crc = 0, scrap_rows = 0;
  IndexRecord(csr, block, &off, &first_adj, &crc, &rows);
  IndexRecord(csr, block + 1, &next_off, &next_adj, &scrap_crc, &scrap_rows);
  const unsigned char* bytes = cv.blob + off;
  const std::size_t len = static_cast<std::size_t>(next_off - off);
  const std::string where =
      BlobName(csr) + " block " + std::to_string(block);
  // Per-block integrity: the blob section carries no whole-section CRC
  // (opening must not page it in), so corruption is caught here, on the
  // first decode of the affected block.
  if (util::Crc32c(bytes, len) != crc) {
    snapfmt::Fail(path_, cv.blob_file_offset + off,
                  where + " CRC mismatch (corrupt bytes)");
  }
  std::string error;
  if (!DecodeAdjBlock(bytes, len, block * block_rows_, rows, row_offsets, adj,
                      &error)) {
    snapfmt::Fail(path_, cv.blob_file_offset + off,
                  where + " decode failure: " + error);
  }
  if (adj.size() != next_adj - first_adj) {
    snapfmt::Fail(path_, cv.blob_file_offset + off,
                  where + " adjacency count disagrees with the block index");
  }
}

Snapshot CompressedGraphView::Materialize(util::ThreadPool* pool) const {
  util::AlignedVector<std::size_t> offs[3];
  util::AlignedVector<NodeId> adjs[3];
  for (int c = 0; c < 3; ++c) {
    offs[c].resize(static_cast<std::size_t>(n_) + 1);
    offs[c][0] = 0;
    adjs[c].resize(static_cast<std::size_t>(csr_[c].total_adj));
  }

  // Each block owns a disjoint slice of its CSR ([first_adj, next first_adj)
  // plus its rows' offsets), so blocks decode in parallel with no
  // synchronization beyond the pool barrier.
  const std::size_t work = static_cast<std::size_t>(num_blocks_) * 3;
  auto expand = [&](std::size_t i, util::AlignedVector<std::uint32_t>& ro,
                    util::AlignedVector<NodeId>& scratch) {
    const int c = static_cast<int>(i / num_blocks_);
    const NodeId b = static_cast<NodeId>(i % num_blocks_);
    DecodeBlockInto(c, b, ro, scratch);
    const std::uint64_t first_adj = BlockFirstAdj(c, b);
    const NodeId first_row = b * block_rows_;
    const std::size_t rows = ro.size() - 1;
    for (std::size_t r = 0; r < rows; ++r) {
      offs[c][first_row + r + 1] =
          static_cast<std::size_t>(first_adj) + ro[r + 1];
    }
    if (!scratch.empty()) {
      std::memcpy(adjs[c].data() + first_adj, scratch.data(),
                  scratch.size() * sizeof(NodeId));
    }
  };

  if (pool != nullptr && pool->size() > 1 && work > 1) {
    struct Scratch {
      util::AlignedVector<std::uint32_t> ro;
      util::AlignedVector<NodeId> adj;
    };
    std::vector<Scratch> scratch(std::min(work, pool->size()));
    pool->ParallelFor(work, [&](std::size_t block, std::size_t i) {
      expand(i, scratch[block].ro, scratch[block].adj);
    });
  } else {
    util::AlignedVector<std::uint32_t> ro;
    util::AlignedVector<NodeId> scratch;
    for (std::size_t i = 0; i < work; ++i) expand(i, ro, scratch);
  }

  Snapshot snap;
  snap.graph = AugmentedGraph(
      SocialGraph::FromCsr(n_, std::move(offs[0]), std::move(adjs[0])),
      RejectionGraph::FromCsr(n_, std::move(offs[1]), std::move(adjs[1]),
                              std::move(offs[2]), std::move(adjs[2])));
  snap.layout = layout_;
  return snap;
}

// ---------- DecodeCursor ----------

DecodeCursor::DecodeCursor(const CompressedGraphView& view,
                           std::int64_t cache_rows)
    : view_(&view) {
  if (cache_rows < 0) {
    cache_rows = util::GetEnvInt("REJECTO_DECODE_CACHE_ROWS", 65536);
    if (cache_rows < 0) cache_rows = 65536;
  }
  const std::size_t capacity = std::max<std::size_t>(
      4, static_cast<std::size_t>(cache_rows) / view.BlockRows());
  for (Cache& c : caches_) {
    c.slot_of_block.assign(view.NumBlocks(), -1);
    c.slots.resize(std::min<std::size_t>(
        capacity, std::max<std::size_t>(1, view.NumBlocks())));
  }
}

const DecodeCursor::Slot& DecodeCursor::Fetch(int csr, NodeId block) {
  Cache& c = caches_[csr];
  const std::int32_t hit = c.slot_of_block[block];
  if (hit >= 0) {
    Slot& s = c.slots[static_cast<std::size_t>(hit)];
    s.tick = ++tick_;
    ++cache_hits_;
    return s;
  }
  // Miss: evict the least-recently-used slot. The linear scan is noise next
  // to the block decode it precedes (slot counts are a few hundred).
  std::size_t victim = 0;
  for (std::size_t i = 1; i < c.slots.size(); ++i) {
    if (c.slots[i].tick < c.slots[victim].tick) victim = i;
  }
  Slot& s = c.slots[victim];
  if (s.block != kInvalidNode) c.slot_of_block[s.block] = -1;
  view_->DecodeBlockInto(csr, block, s.row_offsets, s.adj);
  s.block = block;
  s.tick = ++tick_;
  c.slot_of_block[block] = static_cast<std::int32_t>(victim);
  ++blocks_decoded_;
  return s;
}

}  // namespace rejecto::graph
