#include "stream/wal.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>

#include "util/crc32c.h"
#include "util/failpoint.h"

namespace rejecto::stream {

namespace {

constexpr char kWalMagic[8] = {'R', 'J', 'W', 'A', 'L', '0', '0', '1'};
constexpr char kCkptMagic[8] = {'R', 'J', 'C', 'K', 'P', '0', '0', '1'};
constexpr std::uint32_t kPayloadLen = 9;   // tag + u + v
constexpr std::uint32_t kRecordLen = 17;   // len + crc + payload
constexpr std::uint32_t kMaxPayloadLen = 1u << 20;  // length sanity bound
constexpr std::uint8_t kGrowTag = 4;       // after the EventType values

std::string SegmentPathFor(const std::string& base, std::uint32_t index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%06u.wal", index);
  return base + suffix;
}

std::uint32_t ReadU32Le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void WriteU32Le(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

// Serializes an event (or grow marker) into the 9-byte payload.
void EncodePayload(std::uint8_t tag, graph::NodeId u, graph::NodeId v,
                   unsigned char* out) {
  out[0] = tag;
  WriteU32Le(out + 1, u);
  WriteU32Le(out + 5, v);
}

// File-size helper for accounting truncated segments.
std::uint64_t FileSize(std::FILE* f) {
  const long pos = std::ftell(f);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return end < 0 ? 0 : static_cast<std::uint64_t>(end);
}

void FsyncFile(std::FILE* f, const std::string& path, const char* site) {
  if (std::fflush(f) != 0 || util::Failpoints::Instance().ShouldFail(site) ||
      ::fsync(::fileno(f)) != 0) {
    throw std::runtime_error(std::string("wal: fsync failed on ") + path);
  }
}

}  // namespace

// ---------- ByteWriter / ByteReader ----------

void ByteWriter::PutF64(double v) {
  PutU64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::PutBytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf.insert(buf.end(), p, p + len);
}

std::uint8_t ByteReader::GetU8() {
  if (pos_ + 1 > size_) throw std::runtime_error("checkpoint: short payload");
  return data_[pos_++];
}

std::uint32_t ByteReader::GetU32() {
  if (pos_ + 4 > size_) throw std::runtime_error("checkpoint: short payload");
  const std::uint32_t v = ReadU32Le(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::GetU64() {
  const std::uint64_t lo = GetU32();
  const std::uint64_t hi = GetU32();
  return lo | (hi << 32);
}

double ByteReader::GetF64() { return std::bit_cast<double>(GetU64()); }

void ByteReader::GetBytes(void* out, std::size_t len) {
  if (pos_ + len > size_) throw std::runtime_error("checkpoint: short payload");
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
}

// ---------- WalWriter ----------

WalWriter::WalWriter(std::string base_path, WalOptions options)
    : base_path_(std::move(base_path)), options_(options) {
  // Continue after the highest existing segment; a possibly-torn tail in an
  // old segment is recovery's business, never the writer's.
  std::uint32_t last = 0;
  while (true) {
    std::FILE* probe = std::fopen(SegmentPathFor(base_path_, last + 1).c_str(), "rb");
    if (probe == nullptr) break;
    std::fclose(probe);
    ++last;
  }
  segment_index_ = last;
  OpenNextSegment();
}

WalWriter::~WalWriter() {
  try {
    Close();
  } catch (...) {
    // A destructor cannot surface the failure; the tail loss is exactly
    // what RecoverWal tolerates.
  }
}

void WalWriter::OpenNextSegment() {
  ++segment_index_;
  segment_path_ = SegmentPathFor(base_path_, segment_index_);
  if (util::Failpoints::Instance().ShouldFail("wal/open")) {
    throw std::runtime_error("wal: injected open failure on " + segment_path_);
  }
  file_ = std::fopen(segment_path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("wal: cannot open segment " + segment_path_);
  }
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), file_) !=
      sizeof(kWalMagic)) {
    throw std::runtime_error("wal: cannot write header of " + segment_path_);
  }
  segment_bytes_ = sizeof(kWalMagic);
}

void WalWriter::AppendRecord(const unsigned char* payload, std::uint32_t len) {
  if (broken_) {
    throw std::runtime_error(
        "wal: writer broken by an earlier failure; recover before appending");
  }
  if (file_ == nullptr) throw std::runtime_error("wal: writer is closed");

  unsigned char record[kRecordLen];
  WriteU32Le(record, len);
  WriteU32Le(record + 4, util::Crc32c(payload, len));
  std::memcpy(record + 8, payload, len);

  if (util::Failpoints::Instance().ShouldFail("wal/append_write")) {
    // Simulated crash mid-write: a prefix of the record reaches the file,
    // then the process "dies". The record was never acked.
    std::fwrite(record, 1, kRecordLen / 2, file_);
    std::fflush(file_);
    broken_ = true;
    throw std::runtime_error("wal: injected torn write on " + segment_path_);
  }
  if (std::fwrite(record, 1, kRecordLen, file_) != kRecordLen) {
    broken_ = true;
    throw std::runtime_error("wal: short write on " + segment_path_);
  }
  segment_bytes_ += kRecordLen;
  ++appended_;
  ++unsynced_;
  if (options_.sync_every_n > 0 && unsynced_ >= options_.sync_every_n) {
    Sync();
  }
  if (segment_bytes_ >= options_.max_segment_bytes) {
    FsyncFile(file_, segment_path_, "wal/sync");
    std::fclose(file_);
    file_ = nullptr;
    OpenNextSegment();
  }
}

void WalWriter::Append(const Event& e) {
  if (e.u == graph::kInvalidNode ||
      (e.type != EventType::kRemoveNode &&
       (e.v == graph::kInvalidNode || e.u == e.v))) {
    throw std::invalid_argument("WalWriter::Append: invalid event");
  }
  unsigned char payload[kPayloadLen];
  EncodePayload(static_cast<std::uint8_t>(e.type), e.u, e.v, payload);
  AppendRecord(payload, kPayloadLen);
}

void WalWriter::AppendGrowTo(graph::NodeId num_nodes) {
  unsigned char payload[kPayloadLen];
  EncodePayload(kGrowTag, num_nodes, 0, payload);
  AppendRecord(payload, kPayloadLen);
}

void WalWriter::Sync() {
  if (file_ == nullptr || broken_) return;
  try {
    FsyncFile(file_, segment_path_, "wal/sync");
  } catch (...) {
    broken_ = true;  // post-fsync-failure page state is unknowable
    throw;
  }
  unsynced_ = 0;
}

void WalWriter::Close() {
  if (file_ == nullptr) return;
  Sync();
  std::fclose(file_);
  file_ = nullptr;
}

// ---------- Recovery ----------

namespace {

// Decodes and validates one payload; returns false when it is semantically
// invalid (treated exactly like a CRC mismatch — the tail is truncated).
bool DecodePayload(const unsigned char* payload, std::uint32_t len,
                   WalRecoverResult& out) {
  if (len != kPayloadLen) return false;
  const std::uint8_t tag = payload[0];
  const graph::NodeId u = ReadU32Le(payload + 1);
  const graph::NodeId v = ReadU32Le(payload + 5);
  if (tag == kGrowTag) {
    out.num_nodes = std::max(out.num_nodes, u);
    return true;
  }
  if (tag > static_cast<std::uint8_t>(EventType::kRemoveNode)) return false;
  const auto type = static_cast<EventType>(tag);
  if (u == graph::kInvalidNode) return false;
  if (type != EventType::kRemoveNode &&
      (v == graph::kInvalidNode || u == v)) {
    return false;
  }
  out.events.push_back({type, u, v});
  out.num_nodes = std::max(out.num_nodes, u + 1);
  if (type != EventType::kRemoveNode) {
    out.num_nodes = std::max(out.num_nodes, v + 1);
  }
  return true;
}

// Returns true when the segment ended cleanly (recovery may continue into
// the next segment); false truncates here and abandons later segments.
bool RecoverSegment(std::FILE* f, WalRecoverResult& out) {
  const std::uint64_t size = FileSize(f);
  unsigned char magic[sizeof(kWalMagic)];
  std::uint64_t pos = std::fread(magic, 1, sizeof(magic), f);
  if (pos != sizeof(magic) ||
      std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
    out.truncated_bytes += size;
    return false;
  }
  while (true) {
    unsigned char header[8];
    const std::size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) return true;  // clean end
    if (got < sizeof(header)) {
      out.truncated_bytes += got;
      return false;  // torn header
    }
    const std::uint32_t len = ReadU32Le(header);
    const std::uint32_t crc = ReadU32Le(header + 4);
    if (len == 0 || len > kMaxPayloadLen || len > size - pos) {
      out.truncated_bytes += size - pos;
      return false;  // insane length (corrupt header)
    }
    std::vector<unsigned char> payload(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      out.truncated_bytes += size - pos;
      return false;  // torn payload
    }
    if (util::Crc32c(payload.data(), len) != crc ||
        !DecodePayload(payload.data(), len, out)) {
      out.truncated_bytes += size - pos;
      return false;  // corrupt record
    }
    pos += sizeof(header) + len;
    ++out.valid_records;
  }
}

}  // namespace

WalRecoverResult RecoverWalSegment(const std::string& segment_path) {
  WalRecoverResult out;
  std::FILE* f = std::fopen(segment_path.c_str(), "rb");
  if (f == nullptr) return out;
  out.segments_scanned = 1;
  out.clean = RecoverSegment(f, out);
  std::fclose(f);
  return out;
}

WalRecoverResult RecoverWal(const std::string& base_path) {
  WalRecoverResult out;
  for (std::uint32_t seg = 1;; ++seg) {
    std::FILE* f = std::fopen(SegmentPathFor(base_path, seg).c_str(), "rb");
    if (f == nullptr) break;
    ++out.segments_scanned;
    const bool clean = RecoverSegment(f, out);
    std::fclose(f);
    if (!clean) {
      // Later segments hold events acked after the corruption; replaying
      // them would reorder the stream, so charge them to the truncation.
      out.clean = false;
      for (std::uint32_t later = seg + 1;; ++later) {
        std::FILE* g = std::fopen(SegmentPathFor(base_path, later).c_str(), "rb");
        if (g == nullptr) break;
        ++out.segments_scanned;
        out.truncated_bytes += FileSize(g);
        std::fclose(g);
      }
      break;
    }
  }
  return out;
}

MutationLog WalRecoverResult::BuildLog() const {
  MutationLog log;
  for (const Event& e : events) log.Append(e);
  if (num_nodes > log.NumNodes()) log.GrowTo(num_nodes);
  return log;
}

// ---------- Checkpoints ----------

namespace {

void EncodeCsr(ByteWriter& w, graph::NodeId n,
               const std::function<std::span<const graph::NodeId>(
                   graph::NodeId)>& row) {
  std::uint64_t total = 0;
  for (graph::NodeId u = 0; u < n; ++u) total += row(u).size();
  w.PutU64(total);
  for (graph::NodeId u = 0; u < n; ++u) {
    w.PutU32(static_cast<std::uint32_t>(row(u).size()));
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v : row(u)) w.PutU32(v);
  }
}

void DecodeCsr(ByteReader& r, graph::NodeId n,
               std::vector<std::size_t>& offsets,
               std::vector<graph::NodeId>& adj) {
  const std::uint64_t total = r.GetU64();
  offsets.assign(n + 1, 0);
  for (graph::NodeId u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + r.GetU32();
  }
  if (offsets[n] != total) {
    throw std::runtime_error("checkpoint: CSR degree sum mismatch");
  }
  adj.resize(total);
  for (std::uint64_t i = 0; i < total; ++i) adj[i] = r.GetU32();
}

}  // namespace

void SaveCheckpointFile(const std::string& path,
                        const graph::AugmentedGraph& g,
                        const ByteWriter* extra) {
  const graph::NodeId n = g.NumNodes();
  ByteWriter w;
  w.PutU32(n);
  EncodeCsr(w, n, [&](graph::NodeId u) { return g.Friendships().Neighbors(u); });
  EncodeCsr(w, n, [&](graph::NodeId u) { return g.Rejections().Rejectees(u); });
  EncodeCsr(w, n, [&](graph::NodeId u) { return g.Rejections().Rejectors(u); });
  w.PutU64(extra == nullptr ? 0 : extra->buf.size());
  if (extra != nullptr) w.PutBytes(extra->buf.data(), extra->buf.size());

  const std::string tmp = path + ".tmp";
  if (util::Failpoints::Instance().ShouldFail("checkpoint/write")) {
    throw std::runtime_error("checkpoint: injected write failure on " + tmp);
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + tmp);
  }
  bool ok = std::fwrite(kCkptMagic, 1, sizeof(kCkptMagic), f) ==
            sizeof(kCkptMagic);
  unsigned char len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = (static_cast<std::uint64_t>(w.buf.size()) >> (8 * i)) & 0xff;
  }
  ok = ok && std::fwrite(len_bytes, 1, 8, f) == 8;
  ok = ok && std::fwrite(w.buf.data(), 1, w.buf.size(), f) == w.buf.size();
  unsigned char crc_bytes[4];
  WriteU32Le(crc_bytes, util::Crc32c(w.buf.data(), w.buf.size()));
  ok = ok && std::fwrite(crc_bytes, 1, 4, f) == 4;
  if (ok) {
    try {
      FsyncFile(f, tmp, "wal/sync");
    } catch (...) {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: write failure on " + tmp);
  }
  // Atomic publish: a crash before the rename leaves the previous
  // checkpoint (if any) intact; a crash after leaves the new one.
  if (util::Failpoints::Instance().ShouldFail("checkpoint/rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot publish " + path);
  }
}

graph::AugmentedGraph LoadCheckpointFile(const std::string& path,
                                         std::vector<unsigned char>* extra) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  const std::uint64_t size = FileSize(f);
  unsigned char head[16];
  bool ok = std::fread(head, 1, sizeof(head), f) == sizeof(head) &&
            std::memcmp(head, kCkptMagic, sizeof(kCkptMagic)) == 0;
  std::uint64_t payload_len = 0;
  if (ok) {
    for (int i = 0; i < 8; ++i) {
      payload_len |= static_cast<std::uint64_t>(head[8 + i]) << (8 * i);
    }
    ok = size >= sizeof(head) + 4 && payload_len == size - sizeof(head) - 4;
  }
  std::vector<unsigned char> payload(payload_len);
  unsigned char crc_bytes[4];
  ok = ok && std::fread(payload.data(), 1, payload_len, f) == payload_len &&
       std::fread(crc_bytes, 1, 4, f) == 4;
  std::fclose(f);
  if (!ok || util::Crc32c(payload.data(), payload.size()) !=
                 ReadU32Le(crc_bytes)) {
    throw std::runtime_error("checkpoint: " + path +
                             " is truncated or corrupt");
  }

  ByteReader r(payload.data(), payload.size());
  const graph::NodeId n = r.GetU32();
  std::vector<std::size_t> fr_off, out_off, in_off;
  std::vector<graph::NodeId> fr_adj, out_adj, in_adj;
  DecodeCsr(r, n, fr_off, fr_adj);
  DecodeCsr(r, n, out_off, out_adj);
  DecodeCsr(r, n, in_off, in_adj);
  const std::uint64_t extra_len = r.GetU64();
  if (extra_len != r.Remaining()) {
    throw std::runtime_error("checkpoint: extra-section length mismatch");
  }
  if (extra != nullptr) {
    extra->resize(extra_len);
    r.GetBytes(extra->data(), extra_len);
  }
  return graph::AugmentedGraph(
      graph::SocialGraph::FromCsr(n, std::move(fr_off), std::move(fr_adj)),
      graph::RejectionGraph::FromCsr(n, std::move(out_off), std::move(out_adj),
                                     std::move(in_off), std::move(in_adj)));
}

void CheckpointDeltaGraph(DeltaGraph& d, const std::string& path) {
  d.Compact();
  SaveCheckpointFile(path, d.Graph());
}

DeltaGraph RestoreDeltaGraph(const std::string& path, DeltaConfig config) {
  return DeltaGraph(LoadCheckpointFile(path), config);
}

}  // namespace rejecto::stream
