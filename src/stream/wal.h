// Crash-safe binary write-ahead log and checkpoints for the streaming layer.
//
// The text MutationLog persistence (Save/Load) is a debugging format: a torn
// write corrupts it irrecoverably and nothing detects bit rot. The WAL is
// the durable form of the same event stream, built for operators that must
// survive crashes (paper §V's continuously-running deployment):
//
//   segment file := magic "RJWAL001" ++ record*
//   record       := len:u32le ++ crc:u32le ++ payload[len]
//   payload      := tag:u8 ++ u:u32le ++ v:u32le        (9 bytes)
//
// where tag 0–3 are the stream::EventType values and tag 4 is a grow-to
// marker carrying MutationLog::GrowTo's node count in `u`. `crc` is CRC32C
// of the payload. Appends go to numbered segments ("<base>.000001.wal",
// ...); a segment rotates once it reaches WalOptions::max_segment_bytes,
// and Sync() (or sync_every_n) fsyncs the live segment.
//
// Recovery invariants (pinned by the torn-write property test):
//   * RecoverWal NEVER throws on torn or corrupt data — a record whose
//     header is incomplete, whose length is insane, whose payload is short,
//     whose CRC mismatches, or whose decoded event is semantically invalid
//     ends recovery at the last valid record; everything after (including
//     later segments) is reported as truncated bytes.
//   * The recovered events are exactly a prefix of the acked appends, so
//     replaying them through DeltaGraph/MutationLog reproduces the
//     pre-crash graph bit-identically.
//
// Checkpoints bound replay: CheckpointDeltaGraph / EpochDetector::
// SaveCheckpoint write a CRC-guarded binary CSR snapshot (atomically, via
// tmp + rename), and recovery = restore checkpoint + replay the WAL tail
// beyond the checkpoint's event count. Corrupt checkpoints throw — the
// operator falls back to an older checkpoint or a full WAL replay.
//
// Failpoint sites (see util/failpoint.h): "wal/open", "wal/append_write"
// (tears the record mid-write then fails, simulating a crash),
// "wal/sync", "checkpoint/write", "checkpoint/rename".
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"

namespace rejecto::stream {

struct WalOptions {
  std::uint64_t max_segment_bytes = 64ull << 20;  // rotate past this size
  // fsync the live segment after every Nth acked record; 0 = only on
  // explicit Sync() / Close().
  std::uint64_t sync_every_n = 0;
};

// Appends events to the numbered segment after the highest existing one (a
// restarted writer never touches a possibly-torn tail; recovery handles
// that). Throws std::runtime_error on real or injected I/O failure; after a
// failed append the writer is broken and every later Append throws — the
// in-file state past the last ack is undefined, exactly what RecoverWal
// truncates.
class WalWriter {
 public:
  explicit WalWriter(std::string base_path, WalOptions options = {});
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void Append(const Event& e);
  // Records MutationLog::GrowTo so trailing isolated nodes survive replay.
  void AppendGrowTo(graph::NodeId num_nodes);

  void Sync();   // fsync the live segment
  void Close();  // sync + close; idempotent

  std::uint64_t NumAppended() const noexcept { return appended_; }
  std::uint32_t SegmentIndex() const noexcept { return segment_index_; }
  const std::string& SegmentPath() const noexcept { return segment_path_; }

 private:
  void OpenNextSegment();
  void AppendRecord(const unsigned char* payload, std::uint32_t len);

  std::string base_path_;
  WalOptions options_;
  std::FILE* file_ = nullptr;
  std::string segment_path_;
  std::uint32_t segment_index_ = 0;
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t unsynced_ = 0;
  bool broken_ = false;
};

struct WalRecoverResult {
  std::vector<Event> events;
  graph::NodeId num_nodes = 0;       // max grow-to / event-implied id + 1
  std::uint32_t segments_scanned = 0;
  std::uint64_t valid_records = 0;   // events + grow markers recovered
  std::uint64_t truncated_bytes = 0; // torn/corrupt bytes discarded
  bool clean = true;                 // false when anything was truncated

  // The recovered prefix as a replayable MutationLog.
  MutationLog BuildLog() const;
};

// Scans "<base>.000001.wal", ... in order. Missing base → empty clean
// result. Never throws on torn or corrupt contents (see header comment).
WalRecoverResult RecoverWal(const std::string& base_path);

// Recovers a single segment file (the property-test entry point).
WalRecoverResult RecoverWalSegment(const std::string& segment_path);

// Little-endian bounds-checked byte codec shared by the WAL record and
// checkpoint formats. EpochDetector serializes its warm-start state
// through it into the checkpoint's extra section.
struct ByteWriter {
  std::vector<unsigned char> buf;

  void PutU8(std::uint8_t v) { buf.push_back(v); }
  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.push_back((v >> (8 * i)) & 0xff);
  }
  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back((v >> (8 * i)) & 0xff);
  }
  void PutF64(double v);
  void PutBytes(const void* data, std::size_t len);
};

// Throws std::runtime_error on reads past the end (a truncated payload that
// slipped past the CRC can never read uninitialized memory).
class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t GetU8();
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  double GetF64();
  void GetBytes(void* out, std::size_t len);
  std::size_t Remaining() const noexcept { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Compacts the overlay and atomically writes the base CSR snapshot.
void CheckpointDeltaGraph(DeltaGraph& d, const std::string& path);

// Restores a checkpointed graph into a fresh DeltaGraph. Throws
// std::runtime_error on missing, truncated, or corrupt checkpoints.
DeltaGraph RestoreDeltaGraph(const std::string& path, DeltaConfig config = {});

// Raw checkpoint file codec (magic + length + CRC32C-guarded payload,
// written to a tmp file and renamed into place): the CSR snapshot plus an
// opaque extra section for the caller's own state.
void SaveCheckpointFile(const std::string& path,
                        const graph::AugmentedGraph& g,
                        const ByteWriter* extra = nullptr);
graph::AugmentedGraph LoadCheckpointFile(
    const std::string& path, std::vector<unsigned char>* extra = nullptr);

}  // namespace rejecto::stream
