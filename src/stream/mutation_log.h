// Append-only typed mutation stream for an evolving augmented social graph.
//
// Rejecto is meant to run continuously inside an OSN (paper §III, §V):
// friend requests, acceptances, rejections, and account removals arrive as
// a stream, and the operator periodically re-runs detection over the
// augmented graph. The MutationLog is the canonical serialization of that
// stream: an ordered sequence of typed events over a grow-only dense id
// space. It makes no attempt at deduplication — real request streams carry
// duplicate and out-of-order events, and the consumers (stream::DeltaGraph
// and the batch oracle BuildAugmentedGraph below) are required to agree on
// their semantics:
//
//   kAddFriend u v   — an undirected friendship u–v exists (backfill /
//                      out-of-band import). Idempotent.
//   kAccept    u v   — v accepted a friend request sent by u: the same
//                      friendship edge u–v, sourced from the request stream.
//   kReject    u v   — v rejected / ignored / reported a request sent by u:
//                      the rejection arc <v, u> (paper §III-A). Repeated
//                      rejections between the same ordered pair collapse to
//                      one arc, as in the batch GraphBuilder.
//   kRemoveNode u    — account u leaves the network (deleted or banned):
//                      every incident friendship and rejection arc (both
//                      directions) disappears. The id slot remains valid —
//                      ids are never compacted, so masks, seeds, and
//                      detection results stay stable across the stream —
//                      and later events may re-populate the node.
//
// An accept after a reject of the same pair yields BOTH the friendship and
// the rejection arc: the rejection happened and remains evidence (§III-A's
// arcs record history, not current sentiment). This matches exactly what
// batch construction over the final event-derived edge/arc sets produces —
// the property the differential harness pins.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::stream {

enum class EventType : std::uint8_t {
  kAddFriend,
  kAccept,
  kReject,
  kRemoveNode,
};

struct Event {
  EventType type = EventType::kAddFriend;
  // kAddFriend / kAccept: the endpoints (u sent the request, v accepted).
  // kReject: u sent the request, v rejected it (arc <v, u>).
  // kRemoveNode: u is the removed account; v is ignored.
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;

  friend bool operator==(const Event&, const Event&) = default;
};

class MutationLog {
 public:
  explicit MutationLog(graph::NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  // Grow-only id space: appending an event touching id x extends the node
  // range to x+1; GrowTo reserves trailing isolated nodes explicitly.
  graph::NodeId NumNodes() const noexcept { return num_nodes_; }
  void GrowTo(graph::NodeId num_nodes);

  // Validating appends (self-edges throw std::invalid_argument).
  void AddFriend(graph::NodeId u, graph::NodeId v);
  void Accept(graph::NodeId sender, graph::NodeId receiver);
  void Reject(graph::NodeId sender, graph::NodeId receiver);
  void RemoveNode(graph::NodeId u);
  void Append(const Event& e);

  std::span<const Event> Events() const noexcept { return events_; }
  std::size_t NumEvents() const noexcept { return events_.size(); }

  // The batch oracle: replays the whole log through a set-based reference
  // model (honoring removals and duplicates exactly as documented above)
  // and freezes the final friendship/arc sets with graph::GraphBuilder.
  // This is the specification the streamed DeltaGraph is differentially
  // tested against: replay-then-compact must be byte-identical to this.
  graph::AugmentedGraph BuildAugmentedGraph() const;

  // Text persistence, one event per line ("F u v" / "A u v" / "R u v" /
  // "D u") with a '#' header carrying the node count, mirroring
  // sim::RequestLog's format. Throws std::runtime_error on I/O or parse
  // errors.
  void Save(const std::string& path) const;
  static MutationLog Load(const std::string& path);

 private:
  graph::NodeId num_nodes_ = 0;
  std::vector<Event> events_;
};

}  // namespace rejecto::stream
