#include "stream/delta_graph.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "graph/builder.h"
#include "util/buffer.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace rejecto::stream {

namespace {

using graph::NodeId;

bool SortedContains(const std::vector<NodeId>& row, NodeId v) {
  return std::binary_search(row.begin(), row.end(), v);
}

// Returns false when v was already present.
bool SortedInsert(std::vector<NodeId>& row, NodeId v) {
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it != row.end() && *it == v) return false;
  row.insert(it, v);
  return true;
}

// Returns false when v was absent.
bool SortedErase(std::vector<NodeId>& row, NodeId v) {
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return false;
  row.erase(it);
  return true;
}

// Runs fn(i) for i in [0, n), on the pool when one is given (same pattern
// as graph::InducedSubgraph — disjoint writes per node, so any thread
// count produces identical output).
void ForEachNode(util::ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->size() > 1) {
    pool->ParallelFor(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void PrefixSum(util::AlignedVector<std::size_t>& offsets) {
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
}

// Merges (base_row \ removed) with added into out; all inputs sorted,
// removed ⊆ base_row, added ∩ base_row = ∅, so the merge is a plain
// two-pointer walk producing a sorted deduplicated row. Rows without
// overlay entries — the overwhelming majority at typical compaction
// thresholds — skip the element-wise walk and bulk-copy through the SIMD
// tier (identical bytes either way).
void MergeRow(std::span<const NodeId> base_row,
              const std::vector<NodeId>& removed,
              const std::vector<NodeId>& added, NodeId* out) {
  if (removed.empty()) {
    if (added.empty()) {
      util::simd::CopyU32(base_row.data(), base_row.size(), out);
      return;
    }
    if (base_row.empty()) {
      util::simd::CopyU32(added.data(), added.size(), out);
      return;
    }
  }
  std::size_t r = 0;
  std::size_t a = 0;
  for (NodeId v : base_row) {
    if (r < removed.size() && removed[r] == v) {
      ++r;
      continue;
    }
    while (a < added.size() && added[a] < v) *out++ = added[a++];
    *out++ = v;
  }
  while (a < added.size()) *out++ = added[a++];
}

}  // namespace

DeltaGraph::DeltaGraph(graph::AugmentedGraph base, DeltaConfig config)
    : base_(std::move(base)), config_(config) {
  num_nodes_ = base_.NumNodes();
  num_friendships_ = base_.Friendships().NumEdges();
  num_arcs_ = base_.Rejections().NumArcs();
  base_csr_entries_ = static_cast<std::size_t>(2 * num_friendships_) +
                      static_cast<std::size_t>(2 * num_arcs_);
  added_fr_.resize(num_nodes_);
  removed_fr_.resize(num_nodes_);
  added_out_.resize(num_nodes_);
  removed_out_.resize(num_nodes_);
  added_in_.resize(num_nodes_);
  removed_in_.resize(num_nodes_);
  touch_tag_.resize(num_nodes_, 0);
}

DeltaGraph::DeltaGraph(graph::NodeId num_nodes, DeltaConfig config)
    : DeltaGraph(graph::GraphBuilder(num_nodes).BuildAugmented(), config) {}

void DeltaGraph::EnsureNode(graph::NodeId u) {
  if (u < num_nodes_) return;
  num_nodes_ = u + 1;
  added_fr_.resize(num_nodes_);
  removed_fr_.resize(num_nodes_);
  added_out_.resize(num_nodes_);
  removed_out_.resize(num_nodes_);
  added_in_.resize(num_nodes_);
  removed_in_.resize(num_nodes_);
  touch_tag_.resize(num_nodes_, 0);
}

bool DeltaGraph::BaseHasFriendship(graph::NodeId u, graph::NodeId v) const {
  if (u >= base_.NumNodes() || v >= base_.NumNodes()) return false;
  const auto row = base_.Friendships().Neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

bool DeltaGraph::BaseHasArc(graph::NodeId from, graph::NodeId to) const {
  if (from >= base_.NumNodes() || to >= base_.NumNodes()) return false;
  const auto row = base_.Rejections().Rejectees(from);
  return std::binary_search(row.begin(), row.end(), to);
}

std::uint32_t DeltaGraph::FriendshipDegree(graph::NodeId u) const {
  const std::uint32_t base_deg =
      u < base_.NumNodes() ? base_.Friendships().Degree(u) : 0;
  return base_deg - static_cast<std::uint32_t>(removed_fr_[u].size()) +
         static_cast<std::uint32_t>(added_fr_[u].size());
}

std::uint32_t DeltaGraph::RejectionOutDegree(graph::NodeId u) const {
  const std::uint32_t base_deg =
      u < base_.NumNodes() ? base_.Rejections().OutDegree(u) : 0;
  return base_deg - static_cast<std::uint32_t>(removed_out_[u].size()) +
         static_cast<std::uint32_t>(added_out_[u].size());
}

std::uint32_t DeltaGraph::RejectionInDegree(graph::NodeId u) const {
  const std::uint32_t base_deg =
      u < base_.NumNodes() ? base_.Rejections().InDegree(u) : 0;
  return base_deg - static_cast<std::uint32_t>(removed_in_[u].size()) +
         static_cast<std::uint32_t>(added_in_[u].size());
}

bool DeltaGraph::HasFriendship(graph::NodeId u, graph::NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  if (BaseHasFriendship(u, v)) return !SortedContains(removed_fr_[u], v);
  return SortedContains(added_fr_[u], v);
}

bool DeltaGraph::HasArc(graph::NodeId from, graph::NodeId to) const {
  if (from >= num_nodes_ || to >= num_nodes_) return false;
  if (BaseHasArc(from, to)) return !SortedContains(removed_out_[from], to);
  return SortedContains(added_out_[from], to);
}

bool DeltaGraph::AddFriendship(graph::NodeId u, graph::NodeId v) {
  if (BaseHasFriendship(u, v)) {
    // Present in the base: either live (duplicate, no-op) or previously
    // removed (un-remove — cheaper than re-adding, and keeps added rows
    // disjoint from the base).
    if (!SortedErase(removed_fr_[u], v)) return false;
    SortedErase(removed_fr_[v], u);
    overlay_size_ -= 2;
    ++num_friendships_;
    Touch(u);
    Touch(v);
    return true;
  }
  if (!SortedInsert(added_fr_[u], v)) return false;
  SortedInsert(added_fr_[v], u);
  overlay_size_ += 2;
  ++num_friendships_;
  Touch(u);
  Touch(v);
  return true;
}

bool DeltaGraph::RemoveFriendship(graph::NodeId u, graph::NodeId v) {
  if (BaseHasFriendship(u, v)) {
    if (!SortedInsert(removed_fr_[u], v)) return false;  // already removed
    SortedInsert(removed_fr_[v], u);
    overlay_size_ += 2;
    --num_friendships_;
    Touch(u);
    Touch(v);
    return true;
  }
  if (!SortedErase(added_fr_[u], v)) return false;  // never existed
  SortedErase(added_fr_[v], u);
  overlay_size_ -= 2;
  --num_friendships_;
  Touch(u);
  Touch(v);
  return true;
}

bool DeltaGraph::AddArc(graph::NodeId from, graph::NodeId to) {
  if (BaseHasArc(from, to)) {
    if (!SortedErase(removed_out_[from], to)) return false;
    SortedErase(removed_in_[to], from);
    overlay_size_ -= 2;
    ++num_arcs_;
    Touch(from);
    Touch(to);
    return true;
  }
  if (!SortedInsert(added_out_[from], to)) return false;
  SortedInsert(added_in_[to], from);
  overlay_size_ += 2;
  ++num_arcs_;
  Touch(from);
  Touch(to);
  return true;
}

bool DeltaGraph::RemoveArc(graph::NodeId from, graph::NodeId to) {
  if (BaseHasArc(from, to)) {
    if (!SortedInsert(removed_out_[from], to)) return false;
    SortedInsert(removed_in_[to], from);
    overlay_size_ += 2;
    --num_arcs_;
    Touch(from);
    Touch(to);
    return true;
  }
  if (!SortedErase(added_out_[from], to)) return false;
  SortedErase(added_in_[to], from);
  overlay_size_ -= 2;
  --num_arcs_;
  Touch(from);
  Touch(to);
  return true;
}

bool DeltaGraph::RemoveNode(graph::NodeId u) {
  // Collect the effective incident rows first — the removal loops mutate
  // the overlay rows being read.
  std::vector<graph::NodeId> friends;
  std::vector<graph::NodeId> rejectees;
  std::vector<graph::NodeId> rejectors;
  if (u < base_.NumNodes()) {
    for (graph::NodeId v : base_.Friendships().Neighbors(u)) {
      if (!SortedContains(removed_fr_[u], v)) friends.push_back(v);
    }
    for (graph::NodeId v : base_.Rejections().Rejectees(u)) {
      if (!SortedContains(removed_out_[u], v)) rejectees.push_back(v);
    }
    for (graph::NodeId v : base_.Rejections().Rejectors(u)) {
      if (!SortedContains(removed_in_[u], v)) rejectors.push_back(v);
    }
  }
  friends.insert(friends.end(), added_fr_[u].begin(), added_fr_[u].end());
  rejectees.insert(rejectees.end(), added_out_[u].begin(),
                   added_out_[u].end());
  rejectors.insert(rejectors.end(), added_in_[u].begin(), added_in_[u].end());

  bool changed = false;
  for (graph::NodeId v : friends) changed |= RemoveFriendship(u, v);
  for (graph::NodeId v : rejectees) changed |= RemoveArc(u, v);
  for (graph::NodeId v : rejectors) changed |= RemoveArc(v, u);
  return changed;
}

bool DeltaGraph::Apply(const Event& e) {
  if (e.type != EventType::kRemoveNode && e.u == e.v) {
    throw std::invalid_argument("DeltaGraph::Apply: self-edge event");
  }
  EnsureNode(e.type == EventType::kRemoveNode ? e.u : std::max(e.u, e.v));
  bool changed = false;
  switch (e.type) {
    case EventType::kAddFriend:
    case EventType::kAccept:
      changed = AddFriendship(e.u, e.v);
      break;
    case EventType::kReject:
      changed = AddArc(e.v, e.u);  // v rejected u's request: arc <v, u>
      break;
    case EventType::kRemoveNode:
      changed = RemoveNode(e.u);
      break;
  }
  if (changed) {
    ++stats_.events_applied;
    MaybeAutoCompact();
  } else {
    ++stats_.events_noop;
  }
  return changed;
}

std::uint64_t DeltaGraph::ApplyAll(std::span<const Event> events) {
  std::uint64_t changed = 0;
  for (const Event& e : events) changed += Apply(e) ? 1 : 0;
  return changed;
}

void DeltaGraph::MaybeAutoCompact() {
  if (config_.compact_fraction <= 0.0) return;
  if (overlay_size_ < config_.min_compact_overlay) return;
  if (static_cast<double>(overlay_size_) <
      config_.compact_fraction * static_cast<double>(base_csr_entries_)) {
    return;
  }
  Compact();
}

void DeltaGraph::Compact() {
  const std::size_t n = num_nodes_;
  const graph::NodeId base_n = base_.NumNodes();
  const graph::SocialGraph& fr = base_.Friendships();
  const graph::RejectionGraph& rej = base_.Rejections();

  util::AlignedVector<std::size_t> fr_off(n + 1, 0);
  util::AlignedVector<std::size_t> out_off(n + 1, 0);
  util::AlignedVector<std::size_t> in_off(n + 1, 0);
  ForEachNode(pool_, n, [&](std::size_t u) {
    const auto id = static_cast<graph::NodeId>(u);
    const std::size_t fr_base = id < base_n ? fr.Degree(id) : 0;
    const std::size_t out_base = id < base_n ? rej.OutDegree(id) : 0;
    const std::size_t in_base = id < base_n ? rej.InDegree(id) : 0;
    fr_off[u + 1] = fr_base - removed_fr_[u].size() + added_fr_[u].size();
    out_off[u + 1] = out_base - removed_out_[u].size() + added_out_[u].size();
    in_off[u + 1] = in_base - removed_in_[u].size() + added_in_[u].size();
  });
  PrefixSum(fr_off);
  PrefixSum(out_off);
  PrefixSum(in_off);

  util::AlignedVector<graph::NodeId> fr_adj(fr_off[n]);
  util::AlignedVector<graph::NodeId> out_adj(out_off[n]);
  util::AlignedVector<graph::NodeId> in_adj(in_off[n]);
  const std::span<const graph::NodeId> empty;
  ForEachNode(pool_, n, [&](std::size_t u) {
    const auto id = static_cast<graph::NodeId>(u);
    MergeRow(id < base_n ? fr.Neighbors(id) : empty, removed_fr_[u],
             added_fr_[u], fr_adj.data() + fr_off[u]);
    MergeRow(id < base_n ? rej.Rejectees(id) : empty, removed_out_[u],
             added_out_[u], out_adj.data() + out_off[u]);
    MergeRow(id < base_n ? rej.Rejectors(id) : empty, removed_in_[u],
             added_in_[u], in_adj.data() + in_off[u]);
  });

  const auto num_new = static_cast<graph::NodeId>(n);
  base_ = graph::AugmentedGraph(
      graph::SocialGraph::FromCsr(num_new, std::move(fr_off),
                                  std::move(fr_adj)),
      graph::RejectionGraph::FromCsr(num_new, std::move(out_off),
                                     std::move(out_adj), std::move(in_off),
                                     std::move(in_adj)));

  for (std::size_t u = 0; u < n; ++u) {
    added_fr_[u].clear();
    removed_fr_[u].clear();
    added_out_[u].clear();
    removed_out_[u].clear();
    added_in_[u].clear();
    removed_in_[u].clear();
  }
  overlay_size_ = 0;
  ++overlay_gen_;  // O(1) reset of every touch tag
  base_csr_entries_ =
      static_cast<std::size_t>(2 * base_.Friendships().NumEdges()) +
      static_cast<std::size_t>(2 * base_.Rejections().NumArcs());
  ++stats_.compactions;
}

}  // namespace rejecto::stream
