#include "stream/mutation_log.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <set>
#include <stdexcept>
#include <string_view>

#include "graph/builder.h"
#include "util/parse.h"

namespace rejecto::stream {

void MutationLog::GrowTo(graph::NodeId num_nodes) {
  if (num_nodes < num_nodes_) {
    throw std::invalid_argument("MutationLog::GrowTo: cannot shrink");
  }
  num_nodes_ = num_nodes;
}

void MutationLog::Append(const Event& e) {
  if (e.u == graph::kInvalidNode) {
    throw std::invalid_argument("MutationLog::Append: invalid node id");
  }
  if (e.type != EventType::kRemoveNode) {
    if (e.v == graph::kInvalidNode) {
      throw std::invalid_argument("MutationLog::Append: invalid node id");
    }
    if (e.u == e.v) {
      throw std::invalid_argument("MutationLog::Append: self-edge event");
    }
    num_nodes_ = std::max(num_nodes_, e.v + 1);
  }
  num_nodes_ = std::max(num_nodes_, e.u + 1);
  events_.push_back(e);
}

void MutationLog::AddFriend(graph::NodeId u, graph::NodeId v) {
  Append({EventType::kAddFriend, u, v});
}

void MutationLog::Accept(graph::NodeId sender, graph::NodeId receiver) {
  Append({EventType::kAccept, sender, receiver});
}

void MutationLog::Reject(graph::NodeId sender, graph::NodeId receiver) {
  Append({EventType::kReject, sender, receiver});
}

void MutationLog::RemoveNode(graph::NodeId u) {
  Append({EventType::kRemoveNode, u, graph::kInvalidNode});
}

graph::AugmentedGraph MutationLog::BuildAugmentedGraph() const {
  // Reference model: per-node adjacency sets, mutated in event order. Kept
  // deliberately naive — this is the oracle the streamed DeltaGraph is
  // differentially verified against, so clarity beats speed.
  const std::size_t n = num_nodes_;
  std::vector<std::set<graph::NodeId>> friends(n);
  std::vector<std::set<graph::NodeId>> rejectees(n);  // u rejected -> those
  std::vector<std::set<graph::NodeId>> rejectors(n);  // those rejected u
  for (const Event& e : events_) {
    switch (e.type) {
      case EventType::kAddFriend:
      case EventType::kAccept:
        friends[e.u].insert(e.v);
        friends[e.v].insert(e.u);
        break;
      case EventType::kReject:
        // v rejected u's request: arc <v, u>.
        rejectees[e.v].insert(e.u);
        rejectors[e.u].insert(e.v);
        break;
      case EventType::kRemoveNode:
        for (graph::NodeId w : friends[e.u]) friends[w].erase(e.u);
        friends[e.u].clear();
        for (graph::NodeId w : rejectees[e.u]) rejectors[w].erase(e.u);
        rejectees[e.u].clear();
        for (graph::NodeId w : rejectors[e.u]) rejectees[w].erase(e.u);
        rejectors[e.u].clear();
        break;
    }
  }
  graph::GraphBuilder builder(num_nodes_);
  for (graph::NodeId u = 0; u < num_nodes_; ++u) {
    for (graph::NodeId v : friends[u]) {
      if (u < v) builder.AddFriendship(u, v);
    }
    for (graph::NodeId v : rejectees[u]) builder.AddRejection(u, v);
  }
  return builder.BuildAugmented();
}

void MutationLog::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MutationLog::Save: cannot open " + path);
  }
  out << "# rejecto mutation log: nodes=" << num_nodes_
      << " events=" << events_.size() << '\n';
  for (const Event& e : events_) {
    switch (e.type) {
      case EventType::kAddFriend:
        out << "F " << e.u << ' ' << e.v << '\n';
        break;
      case EventType::kAccept:
        out << "A " << e.u << ' ' << e.v << '\n';
        break;
      case EventType::kReject:
        out << "R " << e.u << ' ' << e.v << '\n';
        break;
      case EventType::kRemoveNode:
        out << "D " << e.u << '\n';
        break;
    }
  }
  if (!out) {
    throw std::runtime_error("MutationLog::Save: write failure on " + path);
  }
}

MutationLog MutationLog::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("MutationLog::Load: cannot open " + path);
  }
  MutationLog log;
  std::string line;
  std::size_t lineno = 0;
  std::optional<std::uint64_t> expected_events;
  // Extracts the full whitespace-delimited token following `key` (e.g.
  // "nodes=") — std::stoull on the raw substring would happily parse
  // "nodes=12garbage" or silently truncate a 2^40 count to NodeId.
  const auto header_token = [&line](std::string_view key) {
    const auto pos = line.find(key);
    if (pos == std::string::npos) return std::string_view{};
    const auto start = pos + key.size();
    auto end = line.find_first_of(" \t\r", start);
    if (end == std::string::npos) end = line.size();
    return std::string_view(line).substr(start, end - start);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    // Materialized only on the error/header paths; event lines are parsed
    // with a zero-allocation string_view scan.
    const auto make_context = [&] {
      return "MutationLog::Load: " + path + " line " + std::to_string(lineno);
    };
    if (line[0] == '#') {
      const std::string context = make_context();
      // The Save header carries both counts; a comment without "nodes=" is
      // skipped, but a header with either count malformed is rejected.
      if (line.find("nodes=") != std::string::npos) {
        log.GrowTo(static_cast<graph::NodeId>(
            util::ParseU64Checked(header_token("nodes="),
                                  context + " (nodes=)", graph::kInvalidNode)));
        const auto events_tok = header_token("events=");
        if (line.find("events=") == std::string::npos) {
          throw std::runtime_error(context +
                                   ": header is missing the events= count");
        }
        expected_events =
            util::ParseU64Checked(events_tok, context + " (events=)");
      }
      continue;
    }
    std::string_view rest(line);
    const std::string_view tag_tok = util::NextToken(rest);
    const std::string_view u_tok = util::NextToken(rest);
    const auto fail = [&] {
      throw std::runtime_error(make_context() + ": malformed event line");
    };
    // Fast id parse; any anomaly re-parses through the checked path so the
    // diagnostic (signed/garbage/out-of-range id, with context) is exactly
    // what the istringstream-based loader produced.
    const auto node_id = [&](std::string_view tok) -> graph::NodeId {
      std::uint64_t raw = 0;
      if (util::TryParseU64(tok, raw) && raw <= graph::kInvalidNode - 1) {
        return static_cast<graph::NodeId>(raw);
      }
      return util::ParseNodeIdChecked(tok, make_context());
    };
    if (tag_tok.size() != 1 || u_tok.empty()) fail();
    const graph::NodeId u = node_id(u_tok);
    switch (tag_tok[0]) {
      case 'F':
      case 'A':
      case 'R': {
        const std::string_view v_tok = util::NextToken(rest);
        if (v_tok.empty()) fail();
        const graph::NodeId v = node_id(v_tok);
        const char tag = tag_tok[0];
        const EventType t = tag == 'F'   ? EventType::kAddFriend
                            : tag == 'A' ? EventType::kAccept
                                         : EventType::kReject;
        log.Append({t, u, v});
        break;
      }
      case 'D':
        log.RemoveNode(u);
        break;
      default:
        fail();
    }
    if (!util::NextToken(rest).empty()) fail();  // trailing tokens hide truncated edits
  }
  if (expected_events && log.NumEvents() != *expected_events) {
    throw std::runtime_error(
        "MutationLog::Load: " + path + " header promises " +
        std::to_string(*expected_events) + " events but the file has " +
        std::to_string(log.NumEvents()) + " (truncated or corrupt log)");
  }
  return log;
}

}  // namespace rejecto::stream
