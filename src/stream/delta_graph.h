// Mutable overlay over an immutable CSR augmented graph.
//
// The streaming ingest path cannot afford a full CSR rebuild per event, and
// the detectors cannot run on a pointer-chasing dynamic graph. DeltaGraph
// splits the difference: an immutable base AugmentedGraph (the fast CSR
// substrate everything else in the repo consumes) plus per-node sorted
// overlay rows recording the edges/arcs added to and removed from the base.
// Events absorb in O(log deg) per endpoint; when the overlay grows past a
// configurable fraction of the base it is compacted into a fresh CSR by the
// same count/prefix-sum/fill machinery as graph::InducedSubgraph — sort-free
// (a sorted merge of the filtered base row and the sorted overlay row),
// block-parallel over nodes when a pool is attached, and deterministic at
// any thread count.
//
// Load-bearing invariant (the differential harness pins it): replaying any
// event log through Apply() — with compactions interleaved at ANY points —
// and compacting yields a graph byte-identical to batch-building the final
// edge set (MutationLog::BuildAugmentedGraph). Ids are never remapped:
// removed nodes become isolated id slots, so masks and seeds stay valid
// across the whole stream.
//
// Overlay row invariants, maintained by Apply:
//   removed rows ⊆ the matching base row; added rows are disjoint from the
//   base row; all rows sorted; friendship rows symmetric and rejection
//   added_in/removed_in exact mirrors of added_out/removed_out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"
#include "stream/mutation_log.h"

namespace rejecto::util {
class ThreadPool;
}  // namespace rejecto::util

namespace rejecto::stream {

struct DeltaConfig {
  // Auto-compact when the overlay holds at least compact_fraction × (base
  // CSR adjacency entries) deltas AND at least min_compact_overlay of them
  // (absolute floor so tiny graphs don't thrash). A non-positive fraction
  // disables auto-compaction; Compact() always works explicitly.
  double compact_fraction = 0.25;
  std::size_t min_compact_overlay = 1024;
};

struct DeltaStats {
  std::uint64_t events_applied = 0;  // events that changed the graph
  std::uint64_t events_noop = 0;     // duplicates / already-absent removals
  std::uint64_t compactions = 0;
};

class DeltaGraph {
 public:
  DeltaGraph() : DeltaGraph(graph::AugmentedGraph()) {}
  explicit DeltaGraph(graph::AugmentedGraph base, DeltaConfig config = {});
  // Empty base of `num_nodes` isolated nodes.
  explicit DeltaGraph(graph::NodeId num_nodes, DeltaConfig config = {});

  // Optional pool for the compaction sweeps (not owned; may be null).
  // Results are identical with or without it.
  void SetPool(util::ThreadPool* pool) noexcept { pool_ = pool; }

  graph::NodeId NumNodes() const noexcept { return num_nodes_; }
  graph::EdgeId NumFriendships() const noexcept { return num_friendships_; }
  graph::EdgeId NumArcs() const noexcept { return num_arcs_; }

  // Effective (base + overlay) accessors.
  std::uint32_t FriendshipDegree(graph::NodeId u) const;
  std::uint32_t RejectionOutDegree(graph::NodeId u) const;
  std::uint32_t RejectionInDegree(graph::NodeId u) const;
  bool HasFriendship(graph::NodeId u, graph::NodeId v) const;
  bool HasArc(graph::NodeId from, graph::NodeId to) const;

  // Absorbs one event (the id space grows to cover any new ids). Returns
  // true when the graph changed — duplicate adds, re-rejections, and
  // removals of absent state are recorded as no-ops. May trigger an
  // auto-compaction (see DeltaConfig).
  bool Apply(const Event& e);

  // Replays a whole span; returns the number of state-changing events.
  std::uint64_t ApplyAll(std::span<const Event> events);

  // Pending overlay entries (added + removed, counting both mirror sides).
  std::size_t OverlaySize() const noexcept { return overlay_size_; }

  // True when any event since the last compaction changed u's effective
  // rows (either direction of any edge/arc incident to u). When false, u's
  // effective rows are EXACTLY its base CSR rows — the incremental scorer's
  // fast path reads the CSR directly instead of running the three merge
  // walks. Conservative: an add later undone by a remove still reads as
  // touched until the next compaction.
  bool OverlayTouched(graph::NodeId u) const {
    if (u >= num_nodes_) {
      throw std::out_of_range("DeltaGraph: node id out of range");
    }
    return touch_tag_[u] == overlay_gen_;
  }

  // O(deg) effective-row visitors: each visits u's current neighbors (base
  // row minus removed overlay plus added overlay) in ascending id order,
  // exactly once per neighbor. This is the seam the sub-epoch incremental
  // score (detect/incremental.h) walks between epochs — a brand-new
  // sender's whole history may still live in the overlay, and forcing a
  // compaction per scored request would defeat the point of scoring
  // without an epoch.
  template <typename Fn>
  void ForEachFriend(graph::NodeId u, Fn&& fn) const {
    VisitRow(u, base_.Friendships().NumNodes(),
             [&] { return base_.Friendships().Neighbors(u); }, removed_fr_,
             added_fr_, fn);
  }
  // Users that rejected u's requests (arcs onto u).
  template <typename Fn>
  void ForEachRejector(graph::NodeId u, Fn&& fn) const {
    VisitRow(u, base_.Rejections().NumNodes(),
             [&] { return base_.Rejections().Rejectors(u); }, removed_in_,
             added_in_, fn);
  }
  // Users whose requests u rejected (arcs cast by u).
  template <typename Fn>
  void ForEachRejectee(graph::NodeId u, Fn&& fn) const {
    VisitRow(u, base_.Rejections().NumNodes(),
             [&] { return base_.Rejections().Rejectees(u); }, removed_out_,
             added_out_, fn);
  }

  // Folds the overlay into a fresh CSR base. Afterwards Graph() reflects
  // every absorbed event and the overlay is empty.
  void Compact();

  // The immutable CSR base. NOTE: excludes any un-compacted overlay — call
  // Compact() first when a full snapshot is needed (the epoch detector
  // does exactly that before every detection run).
  const graph::AugmentedGraph& Graph() const noexcept { return base_; }

  const DeltaStats& Stats() const noexcept { return stats_; }

 private:
  // Shared merge walk behind the ForEach* visitors: (base row \ removed) ∪
  // added, honoring the overlay invariants (removed ⊆ base row, added
  // disjoint from it, all sorted). BaseRow is deferred because nodes added
  // after the last compaction have no base row at all.
  template <typename BaseRow, typename Fn>
  void VisitRow(graph::NodeId u, graph::NodeId base_nodes, BaseRow&& base_row,
                const std::vector<std::vector<graph::NodeId>>& removed,
                const std::vector<std::vector<graph::NodeId>>& added,
                Fn&& fn) const {
    if (u >= num_nodes_) {
      throw std::out_of_range("DeltaGraph: node id out of range");
    }
    const std::span<const graph::NodeId> base =
        u < base_nodes ? base_row() : std::span<const graph::NodeId>{};
    const auto& rem = removed[u];
    const auto& add = added[u];
    std::size_t r = 0;
    std::size_t a = 0;
    for (graph::NodeId v : base) {
      if (r < rem.size() && rem[r] == v) {
        ++r;
        continue;
      }
      while (a < add.size() && add[a] < v) fn(add[a++]);
      fn(v);
    }
    while (a < add.size()) fn(add[a++]);
  }

  void EnsureNode(graph::NodeId u);
  void Touch(graph::NodeId u) noexcept { touch_tag_[u] = overlay_gen_; }
  bool BaseHasFriendship(graph::NodeId u, graph::NodeId v) const;
  bool BaseHasArc(graph::NodeId from, graph::NodeId to) const;
  bool AddFriendship(graph::NodeId u, graph::NodeId v);
  bool RemoveFriendship(graph::NodeId u, graph::NodeId v);
  bool AddArc(graph::NodeId from, graph::NodeId to);
  bool RemoveArc(graph::NodeId from, graph::NodeId to);
  bool RemoveNode(graph::NodeId u);
  void MaybeAutoCompact();

  graph::AugmentedGraph base_;
  DeltaConfig config_;
  util::ThreadPool* pool_ = nullptr;

  graph::NodeId num_nodes_ = 0;       // >= base_.NumNodes() (growth)
  graph::EdgeId num_friendships_ = 0;  // effective counts
  graph::EdgeId num_arcs_ = 0;
  std::size_t overlay_size_ = 0;
  std::size_t base_csr_entries_ = 0;  // 2E + 2A of the current base

  // Per-node sorted overlay rows (see header invariants).
  std::vector<std::vector<graph::NodeId>> added_fr_;
  std::vector<std::vector<graph::NodeId>> removed_fr_;
  std::vector<std::vector<graph::NodeId>> added_out_;
  std::vector<std::vector<graph::NodeId>> removed_out_;
  std::vector<std::vector<graph::NodeId>> added_in_;
  std::vector<std::vector<graph::NodeId>> removed_in_;

  // Overlay-touch tracking for OverlayTouched(): a node is touched when its
  // tag equals the current generation; Compact() bumps the generation, so
  // clearing every tag is O(1). (Generation 0 is never current, so
  // zero-initialised tags read untouched.)
  std::vector<std::uint64_t> touch_tag_;
  std::uint64_t overlay_gen_ = 1;

  DeltaStats stats_;
};

}  // namespace rejecto::stream
