// Forest-fire graph model (Leskovec, Kleinberg & Faloutsos, KDD 2005) in its
// undirected form, matching the "forest fire sampling" used for the paper's
// Facebook sample (§VI-A, [28]).
//
// Each arriving node picks a random ambassador, links to it, then "burns"
// outward: from every newly burned node it selects Geometric(1 - p) of its
// unburned neighbors, links to all of them, and recurses. Produces heavy
// community structure, high clustering, and densification — Facebook-like.
#pragma once

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::gen {

struct ForestFireParams {
  graph::NodeId num_nodes = 0;
  double burn_probability = 0.5;  // p in (0, 1); higher -> denser graph
  // Safety valve: cap on links a single arrival may create (keeps the rare
  // supercritical fire from going quadratic). 0 disables the cap.
  std::uint32_t max_burn_per_node = 0;
};

graph::SocialGraph ForestFire(const ForestFireParams& params, util::Rng& rng);

}  // namespace rejecto::gen
