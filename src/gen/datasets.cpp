#include "gen/datasets.h"

#include <stdexcept>

#include "gen/barabasi_albert.h"
#include "gen/forest_fire.h"
#include "gen/holme_kim.h"
#include "util/rng.h"

namespace rejecto::gen {

const std::vector<DatasetSpec>& TableOneDatasets() {
  // Calibration notes: edges_per_node targets the published edge count
  // (edges ≈ edges_per_node × nodes for the growth models);
  // triad_probability / burn_probability were tuned empirically (see
  // tests/gen_datasets_test.cpp tolerances) to land in the published
  // clustering regime.
  static const std::vector<DatasetSpec> kDatasets = {
      // The paper's Facebook graph is a forest-fire *sample of real
      // Facebook*; synthesizing with the forest-fire growth model cannot hit
      // 40K edges and C=0.23 simultaneously (its clustering saturates near
      // 0.4), so facebook is calibrated with Holme-Kim like the SNAP graphs.
      {.name = "facebook",
       .kind = GeneratorKind::kHolmeKim,
       .nodes = 10'000,
       .edges_per_node = 4.01,
       .triad_probability = 0.55,
       .paper_edges = 40'013,
       .paper_clustering = 0.2332,
       .paper_diameter = 17},
      {.name = "ca-HepTh",
       .kind = GeneratorKind::kHolmeKim,
       .nodes = 9'877,
       .edges_per_node = 2.64,
       .triad_probability = 0.44,
       .paper_edges = 25'985,
       .paper_clustering = 0.2734,
       .paper_diameter = 18},
      {.name = "ca-AstroPh",
       .kind = GeneratorKind::kHolmeKim,
       .nodes = 18'772,
       .edges_per_node = 10.56,
       // Saturated: HK tops out near C=0.26 at this density; the paper's
       // 0.3158 is unreachable, this is the closest achievable regime.
       .triad_probability = 1.0,
       .paper_edges = 198'080,
       .paper_clustering = 0.3158,
       .paper_diameter = 14},
      {.name = "email-Enron",
       .kind = GeneratorKind::kHolmeKim,
       .nodes = 33'696,
       .edges_per_node = 5.37,
       .triad_probability = 0.27,
       .paper_edges = 180'811,
       .paper_clustering = 0.0848,
       .paper_diameter = 13},
      {.name = "soc-Epinions",
       .kind = GeneratorKind::kHolmeKim,
       .nodes = 75'877,
       .edges_per_node = 5.35,
       .triad_probability = 0.21,
       .paper_edges = 405'739,
       .paper_clustering = 0.0655,
       .paper_diameter = 15},
      {.name = "soc-Slashdot",
       .kind = GeneratorKind::kHolmeKim,
       .nodes = 82'168,
       .edges_per_node = 6.14,
       .triad_probability = 0.088,
       .paper_edges = 504'230,
       .paper_clustering = 0.0240,
       .paper_diameter = 13},
      {.name = "synthetic",
       .kind = GeneratorKind::kBarabasiAlbert,
       .nodes = 10'000,
       .edges_per_node = 3.94,
       .paper_edges = 39'399,
       .paper_clustering = 0.0018,
       .paper_diameter = 7},
  };
  return kDatasets;
}

const DatasetSpec& DatasetByName(std::string_view name) {
  for (const DatasetSpec& d : TableOneDatasets()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("DatasetByName: unknown dataset '" +
                              std::string(name) + "'");
}

graph::SocialGraph MakeDataset(const DatasetSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (spec.kind) {
    case GeneratorKind::kForestFire:
      return ForestFire(
          {.num_nodes = spec.nodes,
           .burn_probability = spec.burn_probability,
           .max_burn_per_node = 300},
          rng);
    case GeneratorKind::kHolmeKim:
      return HolmeKim({.num_nodes = spec.nodes,
                       .edges_per_node = spec.edges_per_node,
                       .triad_probability = spec.triad_probability},
                      rng);
    case GeneratorKind::kBarabasiAlbert:
      return BarabasiAlbert(
          {.num_nodes = spec.nodes, .edges_per_node = spec.edges_per_node},
          rng);
  }
  throw std::logic_error("MakeDataset: unhandled generator kind");
}

graph::SocialGraph MakeDataset(std::string_view name, std::uint64_t seed) {
  return MakeDataset(DatasetByName(name), seed);
}

}  // namespace rejecto::gen
