#include "gen/barabasi_albert.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.h"

namespace rejecto::gen {

graph::SocialGraph BarabasiAlbert(const BarabasiAlbertParams& params,
                                  util::Rng& rng) {
  const graph::NodeId n = params.num_nodes;
  const double m = params.edges_per_node;
  if (m < 1.0) {
    throw std::invalid_argument("BarabasiAlbert: edges_per_node must be >= 1");
  }
  const auto m_hi = static_cast<std::uint32_t>(std::ceil(m));
  if (n < m_hi + 1) {
    throw std::invalid_argument("BarabasiAlbert: too few nodes for m");
  }
  const auto m_lo = static_cast<std::uint32_t>(std::floor(m));
  const double frac = m - static_cast<double>(m_lo);

  graph::GraphBuilder builder(n);
  // endpoints[i] appears once per incident edge -> uniform sampling from it
  // is degree-proportional.
  std::vector<graph::NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2.0 * m * n) + 16);

  // Seed clique over the first m_hi + 1 nodes so early arrivals have enough
  // distinct attachment targets.
  const graph::NodeId seed_n = m_hi + 1;
  for (graph::NodeId u = 0; u < seed_n; ++u) {
    for (graph::NodeId v = u + 1; v < seed_n; ++v) {
      builder.AddFriendship(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<graph::NodeId> targets;
  for (graph::NodeId u = seed_n; u < n; ++u) {
    const std::uint32_t mu =
        m_lo + ((frac > 0.0 && rng.NextBool(frac)) ? 1u : 0u);
    targets.clear();
    while (targets.size() < mu) {
      targets.insert(endpoints[rng.NextUInt(endpoints.size())]);
    }
    for (graph::NodeId v : targets) {
      builder.AddFriendship(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return builder.BuildSocial();
}

}  // namespace rejecto::gen
