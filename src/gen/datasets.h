// Table I dataset registry.
//
// The paper evaluates on a crawled Facebook sample, five SNAP graphs, and a
// BA synthetic graph (Table I). Those exact files are not redistributable /
// available offline, so each named dataset here is *synthesized* by a
// generator calibrated to the paper-reported node count, edge count, and
// clustering regime (see DESIGN.md substitution #1). `paper_*` fields carry
// the published values so the Table I bench can print paper-vs-measured
// side by side. Real SNAP edge lists can be swapped in through
// graph::LoadEdgeList.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/social_graph.h"

namespace rejecto::gen {

enum class GeneratorKind {
  kForestFire,
  kHolmeKim,
  kBarabasiAlbert,
};

struct DatasetSpec {
  std::string name;
  GeneratorKind kind = GeneratorKind::kBarabasiAlbert;
  graph::NodeId nodes = 0;

  // Generator calibration knobs (interpretation depends on `kind`).
  double edges_per_node = 2.0;     // HolmeKim / BarabasiAlbert
  double triad_probability = 0.0;  // HolmeKim
  double burn_probability = 0.5;   // ForestFire

  // Published Table I values, for side-by-side reporting.
  graph::EdgeId paper_edges = 0;
  double paper_clustering = 0.0;
  std::uint32_t paper_diameter = 0;
};

// All seven Table I graphs, in the paper's order: facebook, ca-HepTh,
// ca-AstroPh, email-Enron, soc-Epinions, soc-Slashdot, synthetic.
const std::vector<DatasetSpec>& TableOneDatasets();

// Throws std::invalid_argument for unknown names.
const DatasetSpec& DatasetByName(std::string_view name);

// Deterministically instantiates the dataset from `seed`.
graph::SocialGraph MakeDataset(const DatasetSpec& spec, std::uint64_t seed);
graph::SocialGraph MakeDataset(std::string_view name, std::uint64_t seed);

}  // namespace rejecto::gen
