#include "gen/forest_fire.h"

#include <deque>
#include <stdexcept>
#include <vector>

#include "graph/builder.h"

namespace rejecto::gen {

graph::SocialGraph ForestFire(const ForestFireParams& params, util::Rng& rng) {
  const graph::NodeId n = params.num_nodes;
  const double p = params.burn_probability;
  if (n == 0) throw std::invalid_argument("ForestFire: num_nodes must be > 0");
  if (!(p > 0.0) || p >= 1.0) {
    throw std::invalid_argument("ForestFire: burn_probability must be in (0,1)");
  }

  graph::GraphBuilder builder(n);
  std::vector<std::vector<graph::NodeId>> adj(n);
  // burned[v] == generation of the node whose fire last touched v; avoids a
  // per-arrival clear of an n-sized bitmap.
  std::vector<graph::NodeId> burned(n, graph::kInvalidNode);

  auto link = [&](graph::NodeId u, graph::NodeId v) {
    builder.AddFriendship(u, v);
    adj[u].push_back(v);
    adj[v].push_back(u);
  };

  std::deque<graph::NodeId> frontier;
  std::vector<graph::NodeId> picks;
  for (graph::NodeId u = 1; u < n; ++u) {
    const graph::NodeId ambassador = static_cast<graph::NodeId>(rng.NextUInt(u));
    burned[u] = u;  // never burn self
    burned[ambassador] = u;
    link(u, ambassador);
    std::uint32_t links_made = 1;
    frontier.clear();
    frontier.push_back(ambassador);
    while (!frontier.empty()) {
      const graph::NodeId w = frontier.front();
      frontier.pop_front();
      // Burn Geometric(1-p) (mean p/(1-p)) distinct unburned neighbors of w.
      std::uint64_t to_burn = rng.NextGeometric(1.0 - p);
      if (to_burn == 0) continue;
      picks.clear();
      for (graph::NodeId x : adj[w]) {
        if (burned[x] != u) picks.push_back(x);
      }
      rng.Shuffle(picks);
      if (picks.size() > to_burn) picks.resize(static_cast<std::size_t>(to_burn));
      for (graph::NodeId x : picks) {
        if (params.max_burn_per_node != 0 &&
            links_made >= params.max_burn_per_node) {
          frontier.clear();
          break;
        }
        burned[x] = u;
        link(u, x);
        ++links_made;
        frontier.push_back(x);
      }
    }
  }
  return builder.BuildSocial();
}

}  // namespace rejecto::gen
