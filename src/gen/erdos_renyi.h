// Erdős–Rényi G(n, m): exactly m distinct uniform random edges. Used for
// tests and null-model ablations.
#pragma once

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::gen {

struct ErdosRenyiParams {
  graph::NodeId num_nodes = 0;
  graph::EdgeId num_edges = 0;  // must be <= n*(n-1)/2
};

graph::SocialGraph ErdosRenyi(const ErdosRenyiParams& params, util::Rng& rng);

}  // namespace rejecto::gen
