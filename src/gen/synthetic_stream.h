// Streaming synthetic graph → RJSNAP02 writer (no in-RAM graph).
//
// The 100M-edge out-of-core benchmarks need a snapshot far larger than the
// harness is allowed to materialize, so this generator streams rows
// straight into graph::CompressedSnapshotWriter: friendships and rejections
// are forward "stubs" u → u + δ with δ ∈ [1, locality_window] drawn from a
// splitmix-style hash of (seed, u, stub) — fully deterministic, and the
// bounded forward distance both caps the generator's memory (a δ-sized
// ring of pending back-edges) and mimics the near-sequential neighbor ids
// a BFS relayout produces, which is exactly the regime the delta+varint
// blocks compress best in. Peak generator memory is O(locality_window ×
// stubs), independent of node count.
#pragma once

#include <cstdint>
#include <string>

#include "graph/types.h"

namespace rejecto::gen {

struct StreamSnapshotConfig {
  graph::NodeId num_nodes = 0;

  // Forward friendship stubs per node; each surviving stub is one
  // undirected edge, so the average friendship degree is ~2× this (tail
  // nodes and duplicate draws lose a few stubs).
  int friendship_stubs = 8;

  // Forward rejection stubs per node (directed u → u + δ arcs).
  int rejection_stubs = 2;

  // Maximum forward distance of a stub (δ ∈ [1, locality_window]).
  graph::NodeId locality_window = 64;

  std::uint64_t seed = 1;
  std::uint32_t block_rows = 128;  // RJSNAP02 block span, clamped [64, 256]
};

struct StreamSnapshotStats {
  std::uint64_t num_edges = 0;  // friendship edges written
  std::uint64_t num_arcs = 0;   // rejection arcs written
  std::uint64_t file_bytes = 0;
};

// Writes the deterministic synthetic graph for `config` to `path` as an
// RJSNAP02 snapshot, never holding more than the back-edge ring in memory.
// The same config always produces byte-identical files.
StreamSnapshotStats WriteSyntheticCompressedSnapshot(
    const std::string& path, const StreamSnapshotConfig& config);

}  // namespace rejecto::gen
