// Holme–Kim "powerlaw cluster" generator: Barabási–Albert growth with a
// triad-formation step, giving scale-free degree distributions with tunable
// clustering (Holme & Kim, Phys. Rev. E 65, 2002).
//
// After each preferential attachment to node w, with probability
// `triad_probability` the next edge instead connects to a random neighbor of
// w (closing a triangle); otherwise it is another preferential attachment.
// The dataset registry (Table I) uses this to match SNAP graphs' clustering
// coefficients.
#pragma once

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::gen {

struct HolmeKimParams {
  graph::NodeId num_nodes = 0;
  double edges_per_node = 2.0;   // may be fractional, must be >= 1
  double triad_probability = 0;  // in [0, 1]
};

graph::SocialGraph HolmeKim(const HolmeKimParams& params, util::Rng& rng);

}  // namespace rejecto::gen
