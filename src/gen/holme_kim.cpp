#include "gen/holme_kim.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"

namespace rejecto::gen {

graph::SocialGraph HolmeKim(const HolmeKimParams& params, util::Rng& rng) {
  const graph::NodeId n = params.num_nodes;
  const double m = params.edges_per_node;
  const double pt = params.triad_probability;
  if (m < 1.0) {
    throw std::invalid_argument("HolmeKim: edges_per_node must be >= 1");
  }
  if (pt < 0.0 || pt > 1.0) {
    throw std::invalid_argument("HolmeKim: triad_probability must be in [0,1]");
  }
  const auto m_hi = static_cast<std::uint32_t>(std::ceil(m));
  if (n < m_hi + 1) {
    throw std::invalid_argument("HolmeKim: too few nodes for m");
  }
  const auto m_lo = static_cast<std::uint32_t>(std::floor(m));
  const double frac = m - static_cast<double>(m_lo);

  graph::GraphBuilder builder(n);
  std::vector<graph::NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2.0 * m * n) + 16);
  // Growing adjacency kept locally for the triad step (builder is write-only).
  std::vector<std::vector<graph::NodeId>> adj(n);

  auto link = [&](graph::NodeId u, graph::NodeId v) {
    builder.AddFriendship(u, v);
    endpoints.push_back(u);
    endpoints.push_back(v);
    adj[u].push_back(v);
    adj[v].push_back(u);
  };

  const graph::NodeId seed_n = m_hi + 1;
  for (graph::NodeId u = 0; u < seed_n; ++u) {
    for (graph::NodeId v = u + 1; v < seed_n; ++v) link(u, v);
  }

  std::unordered_set<graph::NodeId> chosen;
  for (graph::NodeId u = seed_n; u < n; ++u) {
    const std::uint32_t mu =
        m_lo + ((frac > 0.0 && rng.NextBool(frac)) ? 1u : 0u);
    chosen.clear();
    graph::NodeId last_pa = graph::kInvalidNode;  // last preferential target
    while (chosen.size() < mu) {
      graph::NodeId v = graph::kInvalidNode;
      if (last_pa != graph::kInvalidNode && rng.NextBool(pt)) {
        // Triad formation: a random neighbor of the last PA target that is
        // not yet linked to u. Give up after a few tries and fall back to PA
        // (the Holme–Kim prescription).
        for (int attempt = 0; attempt < 4; ++attempt) {
          const auto& nb = adj[last_pa];
          const graph::NodeId cand = nb[rng.NextUInt(nb.size())];
          if (cand != u && !chosen.contains(cand)) {
            v = cand;
            break;
          }
        }
      }
      if (v == graph::kInvalidNode) {
        do {
          v = endpoints[rng.NextUInt(endpoints.size())];
        } while (v == u || chosen.contains(v));
        last_pa = v;
      }
      chosen.insert(v);
      link(u, v);
    }
  }
  return builder.BuildSocial();
}

}  // namespace rejecto::gen
