// Watts–Strogatz small-world generator: ring lattice with k neighbors per
// node, each lattice edge rewired with probability beta. High clustering at
// low beta with logarithmic path lengths — used for ablations and tests.
#pragma once

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::gen {

struct WattsStrogatzParams {
  graph::NodeId num_nodes = 0;
  std::uint32_t lattice_degree = 4;  // k, must be even and < num_nodes
  double rewire_probability = 0.1;   // beta in [0, 1]
};

graph::SocialGraph WattsStrogatz(const WattsStrogatzParams& params,
                                 util::Rng& rng);

}  // namespace rejecto::gen
