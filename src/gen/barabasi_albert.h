// Barabási–Albert preferential-attachment generator [14].
//
// Grows a graph one node at a time; each arrival attaches to `m` distinct
// existing nodes chosen proportionally to degree (implemented with the
// standard repeated-endpoint trick: sampling uniformly from the flattened
// edge-endpoint list is exactly degree-proportional). Supports fractional m
// (each node draws floor(m) or ceil(m) edges with the matching probability)
// so the dataset registry can hit Table I edge counts.
#pragma once

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::gen {

struct BarabasiAlbertParams {
  graph::NodeId num_nodes = 0;
  double edges_per_node = 2.0;  // m; may be fractional, must be >= 1
};

// Precondition: num_nodes >= ceil(edges_per_node) + 1, edges_per_node >= 1.
graph::SocialGraph BarabasiAlbert(const BarabasiAlbertParams& params,
                                  util::Rng& rng);

}  // namespace rejecto::gen
