#include "gen/erdos_renyi.h"

#include <stdexcept>
#include <unordered_set>

#include "graph/builder.h"

namespace rejecto::gen {

graph::SocialGraph ErdosRenyi(const ErdosRenyiParams& params, util::Rng& rng) {
  const graph::NodeId n = params.num_nodes;
  const graph::EdgeId m = params.num_edges;
  if (n < 2 && m > 0) {
    throw std::invalid_argument("ErdosRenyi: need >= 2 nodes for edges");
  }
  const auto max_edges =
      static_cast<graph::EdgeId>(n) * (n - 1) / 2;
  if (m > max_edges) {
    throw std::invalid_argument("ErdosRenyi: num_edges exceeds n*(n-1)/2");
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  graph::GraphBuilder builder(n);
  while (seen.size() < m) {
    auto u = static_cast<graph::NodeId>(rng.NextUInt(n));
    auto v = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t k = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(k).second) builder.AddFriendship(u, v);
  }
  return builder.BuildSocial();
}

}  // namespace rejecto::gen
