// Planted-partition (stochastic block) model: `num_communities` equal-size
// groups, intra-community edge probability p_in, inter-community p_out.
// Used for community-structure ablations and for seeding-strategy tests
// (§IV-F mentions community-based seed selection).
#pragma once

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::gen {

struct PlantedPartitionParams {
  graph::NodeId num_nodes = 0;
  std::uint32_t num_communities = 2;
  double p_in = 0.1;
  double p_out = 0.01;
};

struct PlantedPartitionResult {
  graph::SocialGraph graph;
  std::vector<std::uint32_t> community_of;  // per node
};

PlantedPartitionResult PlantedPartition(const PlantedPartitionParams& params,
                                        util::Rng& rng);

}  // namespace rejecto::gen
