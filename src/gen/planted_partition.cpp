#include "gen/planted_partition.h"

#include <cmath>
#include <stdexcept>

#include "graph/builder.h"

namespace rejecto::gen {
namespace {

// Visits each pair (i, j), i < j, that is selected by an independent
// Bernoulli(p) via geometric skipping — O(edges) instead of O(pairs).
template <typename Visit>
void SampleBernoulliPairs(std::uint64_t num_pairs, double p, util::Rng& rng,
                          const Visit& visit) {
  if (p <= 0.0 || num_pairs == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < num_pairs; ++i) visit(i);
    return;
  }
  std::uint64_t idx = rng.NextGeometric(p);
  while (idx < num_pairs) {
    visit(idx);
    idx += 1 + rng.NextGeometric(p);
  }
}

}  // namespace

PlantedPartitionResult PlantedPartition(const PlantedPartitionParams& params,
                                        util::Rng& rng) {
  const graph::NodeId n = params.num_nodes;
  const std::uint32_t c = params.num_communities;
  if (c == 0 || n < c) {
    throw std::invalid_argument("PlantedPartition: invalid community count");
  }
  if (params.p_in < 0 || params.p_in > 1 || params.p_out < 0 ||
      params.p_out > 1) {
    throw std::invalid_argument("PlantedPartition: probabilities in [0,1]");
  }

  PlantedPartitionResult out;
  out.community_of.resize(n);
  std::vector<std::vector<graph::NodeId>> members(c);
  for (graph::NodeId u = 0; u < n; ++u) {
    const std::uint32_t g = u % c;  // round-robin gives equal-size groups
    out.community_of[u] = g;
    members[g].push_back(u);
  }

  graph::GraphBuilder builder(n);
  // Intra-community pairs.
  for (const auto& grp : members) {
    const std::uint64_t sz = grp.size();
    if (sz < 2) continue;
    SampleBernoulliPairs(sz * (sz - 1) / 2, params.p_in, rng,
                         [&](std::uint64_t k) {
                           // Unrank pair index k -> (i, j), i < j.
                           const auto i = static_cast<std::uint64_t>(
                               (std::sqrt(8.0 * static_cast<double>(k) + 1) - 1) / 2);
                           std::uint64_t row = i;
                           // Guard against floating-point unranking drift.
                           while ((row + 1) * (row + 2) / 2 <= k) ++row;
                           while (row * (row + 1) / 2 > k) --row;
                           const std::uint64_t j = k - row * (row + 1) / 2;
                           builder.AddFriendship(grp[row + 1], grp[j]);
                         });
  }
  // Inter-community pairs, per community pair (a, b).
  for (std::uint32_t a = 0; a < c; ++a) {
    for (std::uint32_t b = a + 1; b < c; ++b) {
      const std::uint64_t na = members[a].size(), nb = members[b].size();
      SampleBernoulliPairs(na * nb, params.p_out, rng, [&](std::uint64_t k) {
        builder.AddFriendship(members[a][k / nb], members[b][k % nb]);
      });
    }
  }
  out.graph = builder.BuildSocial();
  return out;
}

}  // namespace rejecto::gen
