#include "gen/synthetic_stream.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "graph/snapshot_writer.h"

namespace rejecto::gen {
namespace {

using graph::NodeId;

// splitmix64 finalizer: one deterministic 64-bit draw per (seed, node,
// stream, stub) tuple, so every row is reproducible in isolation and the
// three writer passes can regenerate identical stubs independently.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Sorted duplicate-free forward targets of `u` (all > u, < n).
void ForwardTargets(const StreamSnapshotConfig& config, std::uint64_t stream,
                    int stubs, NodeId u, std::vector<NodeId>& out) {
  out.clear();
  for (int s = 0; s < stubs; ++s) {
    const std::uint64_t h =
        Mix(config.seed ^ (stream * 0xd1b54a32d192ed03ULL) ^
            (static_cast<std::uint64_t>(u) << 20) ^
            static_cast<std::uint64_t>(s));
    const NodeId delta =
        1 + static_cast<NodeId>(h % config.locality_window);
    if (static_cast<std::uint64_t>(u) + delta <
        static_cast<std::uint64_t>(config.num_nodes)) {
      out.push_back(u + delta);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

// One pass over a forward-stub stream, invoking `emit(u, row)` for every
// node in ascending order. Rows are back-edges (sources that targeted u,
// ascending, all < u) followed by forward targets (all > u) when
// `symmetric`, or just one of the halves for the directed rejection passes.
// The pending back-edges live in a (window+1)-slot ring — the only state
// whose size matters, and it is independent of num_nodes.
enum class RowKind { kSymmetric, kForwardOnly, kBackwardOnly };

template <typename Emit>
std::uint64_t StubPass(const StreamSnapshotConfig& config,
                       std::uint64_t stream, int stubs, RowKind kind,
                       Emit&& emit) {
  const std::size_t ring_size =
      static_cast<std::size_t>(config.locality_window) + 1;
  std::vector<std::vector<NodeId>> ring(ring_size);
  std::vector<NodeId> fwd;
  std::vector<NodeId> row;
  std::uint64_t stubs_kept = 0;
  for (NodeId u = 0; u < config.num_nodes; ++u) {
    ForwardTargets(config, stream, stubs, u, fwd);
    stubs_kept += fwd.size();
    if (kind != RowKind::kForwardOnly) {
      for (NodeId t : fwd) ring[t % ring_size].push_back(u);
    }
    std::vector<NodeId>& back = ring[u % ring_size];
    row.clear();
    if (kind != RowKind::kForwardOnly) {
      row.insert(row.end(), back.begin(), back.end());
      back.clear();
    }
    if (kind != RowKind::kBackwardOnly) {
      row.insert(row.end(), fwd.begin(), fwd.end());
    }
    emit(u, row);
  }
  return stubs_kept;
}

}  // namespace

StreamSnapshotStats WriteSyntheticCompressedSnapshot(
    const std::string& path, const StreamSnapshotConfig& config) {
  if (config.num_nodes == 0) {
    throw std::invalid_argument("WriteSyntheticCompressedSnapshot: empty graph");
  }
  if (config.locality_window == 0 ||
      config.locality_window >= config.num_nodes) {
    throw std::invalid_argument(
        "WriteSyntheticCompressedSnapshot: locality_window must be in "
        "[1, num_nodes)");
  }
  constexpr std::uint64_t kFriendStream = 1;
  constexpr std::uint64_t kRejectStream = 2;

  graph::CompressedSnapshotWriter::Options wopts;
  wopts.block_rows = config.block_rows;
  graph::CompressedSnapshotWriter writer(path, config.num_nodes, wopts);

  StreamSnapshotStats stats;
  stats.num_edges = StubPass(
      config, kFriendStream, config.friendship_stubs, RowKind::kSymmetric,
      [&](NodeId, const std::vector<NodeId>& row) {
        writer.AppendFriendRow(row);
      });
  stats.num_arcs = StubPass(
      config, kRejectStream, config.rejection_stubs, RowKind::kForwardOnly,
      [&](NodeId, const std::vector<NodeId>& row) {
        writer.AppendRejectionOutRow(row);
      });
  StubPass(config, kRejectStream, config.rejection_stubs,
           RowKind::kBackwardOnly,
           [&](NodeId, const std::vector<NodeId>& row) {
             writer.AppendRejectionInRow(row);
           });
  writer.Finish();
  stats.file_bytes = std::filesystem::file_size(path);
  return stats;
}

}  // namespace rejecto::gen
