#include "gen/watts_strogatz.h"

#include <stdexcept>
#include <unordered_set>

#include "graph/builder.h"

namespace rejecto::gen {

graph::SocialGraph WattsStrogatz(const WattsStrogatzParams& params,
                                 util::Rng& rng) {
  const graph::NodeId n = params.num_nodes;
  const std::uint32_t k = params.lattice_degree;
  const double beta = params.rewire_probability;
  if (k % 2 != 0) {
    throw std::invalid_argument("WattsStrogatz: lattice_degree must be even");
  }
  if (n <= k) {
    throw std::invalid_argument("WattsStrogatz: need num_nodes > lattice_degree");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("WattsStrogatz: rewire_probability in [0,1]");
  }

  // Edge set maintained as normalized 64-bit keys so rewiring can test
  // duplicates in O(1).
  auto key = [](graph::NodeId a, graph::NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(static_cast<std::size_t>(n) * k / 2 * 2);
  for (graph::NodeId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      edges.insert(key(u, (u + j) % n));
    }
  }

  // Rewire: for each original lattice edge (u, u+j), with prob beta replace
  // it by (u, random) avoiding self-loops and duplicates.
  for (graph::NodeId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      const graph::NodeId v = (u + j) % n;
      if (!rng.NextBool(beta)) continue;
      if (!edges.contains(key(u, v))) continue;  // already rewired away
      // Try a handful of random targets; give up (keep edge) if the node is
      // saturated.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const auto w = static_cast<graph::NodeId>(rng.NextUInt(n));
        if (w == u || edges.contains(key(u, w))) continue;
        edges.erase(key(u, v));
        edges.insert(key(u, w));
        break;
      }
    }
  }

  graph::GraphBuilder builder(n);
  for (std::uint64_t e : edges) {
    builder.AddFriendship(static_cast<graph::NodeId>(e >> 32),
                          static_cast<graph::NodeId>(e & 0xffffffffULL));
  }
  return builder.BuildSocial();
}

}  // namespace rejecto::gen
