// Iterative friend-spammer detection (paper §IV-E).
//
// A single MAAR cut misses disjoint fake-account groups and can be gamed by
// the self-rejection strategy (attackers craft an even-lower-ratio cut
// *inside* their own accounts to whitewash the rejecting half). Rejecto
// therefore repeats: solve MAAR on the residual graph, declare the U region
// suspicious, prune it with all its links and rejections, and continue. The
// crafted internal cuts surface first (they have the lowest ratio), so
// self-rejection only exposes the rejected accounts earlier; the
// whitewashed accounts are caught in a later round once their rejectors are
// gone. Rounds yield suspicious groups in non-decreasing aggregate
// acceptance rate, enabling threshold-based termination.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "detect/maar.h"
#include "detect/seeds.h"
#include "graph/augmented_graph.h"

namespace rejecto::detect {

struct IterativeConfig {
  // Per-round MAAR solver configuration. maar.num_threads also governs the
  // pipeline: the serial overload builds one ThreadPool up front and reuses
  // it for every round's parallel sweep.
  MaarConfig maar;

  // Stop once at least this many accounts are flagged (the paper uses the
  // OSN's estimate of the fake population). 0 disables the count condition.
  std::uint64_t target_detections = 0;

  // When the final round overshoots target_detections, keep only the most
  // suspicious nodes of that round (ranked by per-node incoming-rejection
  // ratio on the residual graph) so exactly `target_detections` accounts
  // are declared.
  bool trim_to_target = true;

  // Stop *before* flagging a cut whose aggregate acceptance rate exceeds
  // this (§IV-E "other termination conditions"). Negative disables.
  double acceptance_rate_threshold = -1.0;

  int max_rounds = 64;
};

struct RoundInfo {
  std::vector<graph::NodeId> detected;  // original-graph ids (pre-trim)
  graph::CutQuantities cut;
  double ratio = 0.0;
  double acceptance_rate = 0.0;
  double k = 0.0;

  // Per-round instrumentation, copied from the round's MaarCut.
  double solve_seconds = 0.0;           // the round's MAAR solve
  int kl_runs = 0;
  std::uint64_t switches = 0;
};

struct DetectionResult {
  std::vector<graph::NodeId> detected;  // all flagged accounts, original ids
  std::vector<RoundInfo> rounds;
  bool hit_target = false;

  // Pipeline instrumentation: totals include the final round whose cut was
  // invalid or rejected by the acceptance threshold (work still done).
  double total_seconds = 0.0;           // whole DetectFriendSpammers call
  std::uint64_t total_kl_runs = 0;
  std::uint64_t total_switches = 0;
  int threads_used = 1;                 // pool width of the MAAR sweeps
};

// Runs the full Rejecto pipeline on an augmented social graph.
DetectionResult DetectFriendSpammers(const graph::AugmentedGraph& g,
                                     const Seeds& seeds,
                                     const IterativeConfig& config);

// Pluggable-MAAR variant: `solve` is invoked once per round on the residual
// graph (the serial overload passes MaarSolver::Solve). The distributed
// engine injects engine::SolveMaarDistributed so the entire iterative
// pipeline — sweep, refinement, pruning rounds — runs against the cluster
// substrate with identical results. `pool`, when given, parallelizes the
// per-round residual compaction (graph::InducedSubgraph); it does not
// affect `solve`, which captures its own pool if it wants one. Results are
// identical with or without a pool.
using MaarRunner = std::function<MaarCut(
    const graph::AugmentedGraph& residual, const Seeds& seeds,
    const MaarConfig& config)>;
DetectionResult DetectFriendSpammers(const graph::AugmentedGraph& g,
                                     const Seeds& seeds,
                                     const IterativeConfig& config,
                                     const MaarRunner& solve,
                                     util::ThreadPool* pool = nullptr);

// Out-of-core pipeline over a compressed RJSNAP02 snapshot: round 0 — the
// only round that sees the full graph — solves MAAR straight off the mmap
// through per-thread decode cursors and compacts the residual by streaming
// the blocks, so the full CSR is never expanded in RAM; the residual (a
// small fraction of the graph once the first U region is pruned) then runs
// the ordinary in-RAM rounds. Produces bit-identical results to
// DetectFriendSpammers(LoadSnapshot(path).graph, ...) at any thread count.
// Reported ids live in the snapshot's stored id space (apply
// view.StoredLayout() to translate if the snapshot was saved with a layout
// policy). config.maar.layout must be kIdentity.
DetectionResult DetectFriendSpammersCompressed(
    const graph::CompressedGraphView& view, const Seeds& seeds,
    const IterativeConfig& config);

}  // namespace rejecto::detect
