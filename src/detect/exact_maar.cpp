#include "detect/exact_maar.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace rejecto::detect {
namespace {

struct SearchState {
  const graph::AugmentedGraph* g = nullptr;
  std::vector<graph::NodeId> order;       // decision order
  std::vector<std::uint8_t> decided;      // 0 = undecided, 1 = W, 2 = U
  std::uint64_t committed_f = 0;          // cross friendships, both decided
  std::uint64_t committed_r = 0;          // rejections Ū→U, both decided
  std::uint64_t open_r = 0;               // arcs with an undecided endpoint
  graph::NodeId size_u = 0;
  graph::NodeId min_region = 0;
  graph::NodeId max_u = 0;

  double best_ratio = std::numeric_limits<double>::infinity();
  std::vector<char> best_mask;
  std::uint64_t explored = 0;
};

void Search(SearchState& st, std::size_t depth) {
  ++st.explored;
  const graph::NodeId n = st.g->NumNodes();

  if (depth == st.order.size()) {
    const graph::NodeId size_w = n - st.size_u;
    if (st.size_u < st.min_region || size_w < st.min_region ||
        st.size_u > st.max_u || st.committed_r == 0) {
      return;
    }
    const double ratio = static_cast<double>(st.committed_f) /
                         static_cast<double>(st.committed_r);
    if (ratio < st.best_ratio) {
      st.best_ratio = ratio;
      st.best_mask.assign(n, 0);
      for (graph::NodeId v = 0; v < n; ++v) {
        st.best_mask[v] = st.decided[v] == 2 ? 1 : 0;
      }
    }
    return;
  }

  // Optimistic bound: F can only grow, R can gain at most every still-open
  // arc. Prune when even the rosiest completion cannot beat the incumbent.
  if (st.committed_r + st.open_r > 0) {
    const double bound = static_cast<double>(st.committed_f) /
                         static_cast<double>(st.committed_r + st.open_r);
    if (bound >= st.best_ratio) return;
  } else if (st.committed_f > 0) {
    return;  // no rejections can ever enter U on this branch
  }

  const graph::NodeId v = st.order[depth];
  const auto& fr = st.g->Friendships();
  const auto& rej = st.g->Rejections();

  for (std::uint8_t side : {std::uint8_t{1}, std::uint8_t{2}}) {  // W then U
    if (side == 2 && st.size_u + 1 > st.max_u) continue;
    st.decided[v] = side;
    if (side == 2) ++st.size_u;

    std::uint64_t df = 0, dr = 0, dopen = 0;
    for (graph::NodeId w : fr.Neighbors(v)) {
      if (st.decided[w] != 0 && st.decided[w] != side) ++df;
    }
    // Arcs x→v (x rejected v): count when x ∈ W and v ∈ U.
    for (graph::NodeId x : rej.Rejectors(v)) {
      if (st.decided[x] == 0) continue;
      ++dopen;  // arc becomes fully decided
      if (side == 2 && st.decided[x] == 1) ++dr;
    }
    // Arcs v→y (v rejected y): count when v ∈ W and y ∈ U.
    for (graph::NodeId y : rej.Rejectees(v)) {
      if (st.decided[y] == 0) continue;
      ++dopen;
      if (side == 1 && st.decided[y] == 2) ++dr;
    }

    st.committed_f += df;
    st.committed_r += dr;
    st.open_r -= dopen;

    Search(st, depth + 1);

    st.committed_f -= df;
    st.committed_r -= dr;
    st.open_r += dopen;
    if (side == 2) --st.size_u;
    st.decided[v] = 0;
  }
}

}  // namespace

ExactMaarCut SolveMaarExact(const graph::AugmentedGraph& g,
                            const ExactMaarConfig& config) {
  const graph::NodeId n = g.NumNodes();
  if (n > config.max_nodes) {
    throw std::invalid_argument(
        "SolveMaarExact: graph exceeds the exponential-search cap");
  }
  if (config.max_region_fraction <= 0.0 || config.max_region_fraction > 1.0) {
    throw std::invalid_argument("SolveMaarExact: max_region_fraction");
  }

  SearchState st;
  st.g = &g;
  st.decided.assign(n, 0);
  st.min_region = config.min_region_size;
  st.max_u = static_cast<graph::NodeId>(
      config.max_region_fraction * static_cast<double>(n));
  st.open_r = g.Rejections().NumArcs();

  // Decide high-rejection-traffic nodes first: their arcs commit early,
  // tightening the bound near the root.
  st.order.resize(n);
  std::iota(st.order.begin(), st.order.end(), 0);
  std::stable_sort(st.order.begin(), st.order.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     const auto ta = g.Rejections().InDegree(a) +
                                     g.Rejections().OutDegree(a);
                     const auto tb = g.Rejections().InDegree(b) +
                                     g.Rejections().OutDegree(b);
                     return ta > tb;
                   });

  Search(st, 0);

  ExactMaarCut out;
  out.nodes_explored = st.explored;
  if (st.best_mask.empty()) return out;
  out.valid = true;
  out.in_u = std::move(st.best_mask);
  out.cut = g.ComputeCut(out.in_u);
  out.ratio = st.best_ratio;
  return out;
}

}  // namespace rejecto::detect
