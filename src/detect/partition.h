// Incrementally-maintained bipartition state for the extended KL heuristic.
//
// Rejecto minimizes, for a fixed weight k > 0, the linear objective
//     W(U) = |F(Ū,U)| − k · |R⃗(Ū,U)|                     (paper §IV-D)
// where U is the suspicious region and R⃗(Ū,U) are rejections cast from
// outside U onto U. Partition tracks, per node v (packed in one 16-byte
// NodeAggregates record so a gain read touches a single cache line, the
// same line a neighbor update just wrote):
//     deg           — v's friendship degree (immutable per graph)
//     cross_friends — v's friends on the other side
//     in_from_w     — rejections v received from nodes currently in Ū
//     out_to_u      — rejections v cast onto nodes currently in U
// which make both the switch gain of any node and the global cut totals
// O(1) to read, and a node switch O(deg + rejdeg) to apply. The exact
// O(E+R) recomputation in AugmentedGraph::ComputeCut is the test oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/graph_source.h"
#include "graph/types.h"
#include "util/buffer.h"

namespace rejecto::detect {

class BucketList;

class Partition {
 public:
  // An empty shell; call Reset before use. Lets a KL scratch workspace keep
  // one Partition alive across passes and graphs.
  Partition() = default;

  // in_u[v] != 0 places v in the suspicious region U.
  // The source's backing (graph or cursor) must outlive the partition;
  // AugmentedGraph call sites convert implicitly.
  Partition(const graph::GraphSource& src, std::vector<char> in_u);

  // Re-seeds the partition for (a possibly different) source and mask,
  // reusing the aggregate arrays' capacity. Equivalent to constructing
  // Partition(src, in_u) but without fresh allocations once the workspace
  // has seen a graph at least as large.
  void Reset(const graph::GraphSource& src, const std::vector<char>& in_u);

  graph::NodeId NumNodes() const noexcept {
    return static_cast<graph::NodeId>(in_u_.size());
  }
  bool InU(graph::NodeId v) const { return in_u_[v] != 0; }
  graph::NodeId SizeU() const noexcept { return size_u_; }

  // Moves v to the other side, updating all aggregates.
  void Switch(graph::NodeId v);

  // Fused FM switch: one traversal of v's friends, rejectors and rejectees
  // applies the aggregate deltas AND maintains the gain buckets. Neighbor
  // ids are recorded into `touched` (cleared here; duplicates kept) during
  // the delta sweep; bucket moves are then applied in a deferred sweep via
  // BucketList::Adjust with the *final* aggregates, so a node reachable
  // through several of v's adjacency lists relinks exactly once, at its
  // first occurrence — the same intra-bucket LIFO order the unfused
  // Switch-then-refresh loop produces. Gains are recomputed from the
  // integer aggregates with the same expression as DeltaObjective, never
  // accumulated in floating point, keeping cuts bit-identical.
  //
  // `rank` (null for the unchanged fast path) is the layout-invariance
  // hook: an n-sized array mapping each node to its ORIGINAL id (see
  // graph/layout.h). When set, each of the three adjacency segments of
  // `touched` is re-sorted by rank before the deferred relink sweep, so the
  // relink sequence — and therefore every intra-bucket LIFO tie-break — is
  // the one the identity-layout run produces. Segment boundaries are kept
  // (a duplicate neighbor still relinks at its friends-segment occurrence),
  // matching the identity path's first-occurrence semantics exactly.
  void SwitchFused(graph::NodeId v, double k, BucketList& bl,
                   util::AlignedVector<graph::NodeId>& touched,
                   const graph::NodeId* rank = nullptr);

  // Change of W(U) if v switched now: ΔW(v) = ΔF(v) − k·ΔR(v) with
  //   ΔF(v) = deg(v) − 2·cross_friends(v)
  //   ΔR(v) = s(v)·(out_to_u(v) − in_from_w(v)),  s(v) = +1 if v∈U else −1.
  // The switch *gain* (reduction of W) is −DeltaObjective.
  double DeltaObjective(graph::NodeId v, double k) const {
    return static_cast<double>(DeltaFriends(v)) -
           k * static_cast<double>(DeltaRejections(v));
  }

  std::int64_t DeltaFriends(graph::NodeId v) const {
    return static_cast<std::int64_t>(agg_[v].deg & kDegMask) -
           2 * static_cast<std::int64_t>(agg_[v].cross_friends);
  }

  std::int64_t DeltaRejections(graph::NodeId v) const {
    const std::int64_t d = static_cast<std::int64_t>(agg_[v].out_to_u) -
                           static_cast<std::int64_t>(agg_[v].in_from_w);
    return (agg_[v].deg & kSideBit) ? d : -d;
  }

  // Current cut totals (kept in lockstep with switches).
  graph::CutQuantities Quantities() const noexcept;

  // W(U) under weight k.
  double Objective(double k) const noexcept {
    return static_cast<double>(cross_friendships_) -
           k * static_cast<double>(rejections_into_u_);
  }

  // Extracts the membership mask.
  const std::vector<char>& Mask() const noexcept { return in_u_; }

 private:
  // Per-node aggregates, packed so the switch traversal's write and the
  // subsequent gain recompute share a cache line. 16 bytes, 4 per line.
  // The top bit of `deg` caches the node's side (set ⇔ v ∈ U), so the hot
  // loops never take a second random access into in_u_ for a neighbor —
  // in_u_ stays authoritative and is kept in lockstep at each switch.
  static constexpr std::uint32_t kSideBit = 0x8000'0000u;
  static constexpr std::uint32_t kDegMask = ~kSideBit;
  struct NodeAggregates {
    std::uint32_t deg = 0;            // friendship degree | side bit
    std::uint32_t cross_friends = 0;  // friends on the other side
    std::uint32_t out_to_u = 0;       // rejections cast onto U
    std::uint32_t in_from_w = 0;      // rejections received from Ū
  };

  // Recomputes size_u_, the per-node aggregates and the cut totals from
  // src_ and in_u_ (which must already be set and size-consistent).
  void InitAggregates();

  graph::GraphSource src_;
  // Normalized to strict 0/1 bytes by InitAggregates, so side comparisons
  // and the SIMD zero-byte counts agree for any caller-supplied mask.
  std::vector<char> in_u_;
  graph::NodeId size_u_ = 0;

  util::AlignedVector<NodeAggregates> agg_;
  // Padded 0/1 copy of in_u_ for the gather-based InitAggregates path
  // (std::vector<char> has no overread slack); empty in scalar mode.
  util::AlignedVector<unsigned char> mask_scratch_;

  std::uint64_t cross_friendships_ = 0;  // |F(Ū,U)|
  std::uint64_t rejections_into_u_ = 0;  // |R⃗(Ū,U)|
};

}  // namespace rejecto::detect
