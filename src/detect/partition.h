// Incrementally-maintained bipartition state for the extended KL heuristic.
//
// Rejecto minimizes, for a fixed weight k > 0, the linear objective
//     W(U) = |F(Ū,U)| − k · |R⃗(Ū,U)|                     (paper §IV-D)
// where U is the suspicious region and R⃗(Ū,U) are rejections cast from
// outside U onto U. Partition tracks, per node v:
//     cross_friends_[v] — v's friends on the other side
//     in_from_w_[v]     — rejections v received from nodes currently in Ū
//     out_to_u_[v]      — rejections v cast onto nodes currently in U
// which make both the switch gain of any node and the global cut totals
// O(1) to read, and a node switch O(deg + rejdeg) to apply. The exact
// O(E+R) recomputation in AugmentedGraph::ComputeCut is the test oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::detect {

class Partition {
 public:
  // in_u[v] != 0 places v in the suspicious region U.
  // The graph must outlive the partition.
  Partition(const graph::AugmentedGraph& g, std::vector<char> in_u);

  graph::NodeId NumNodes() const noexcept {
    return static_cast<graph::NodeId>(in_u_.size());
  }
  bool InU(graph::NodeId v) const { return in_u_[v] != 0; }
  graph::NodeId SizeU() const noexcept { return size_u_; }

  // Moves v to the other side, updating all aggregates.
  void Switch(graph::NodeId v);

  // Change of W(U) if v switched now: ΔW(v) = ΔF(v) − k·ΔR(v) with
  //   ΔF(v) = deg(v) − 2·cross_friends(v)
  //   ΔR(v) = s(v)·(out_to_u(v) − in_from_w(v)),  s(v) = +1 if v∈U else −1.
  // The switch *gain* (reduction of W) is −DeltaObjective.
  double DeltaObjective(graph::NodeId v, double k) const {
    return static_cast<double>(DeltaFriends(v)) -
           k * static_cast<double>(DeltaRejections(v));
  }

  std::int64_t DeltaFriends(graph::NodeId v) const {
    return static_cast<std::int64_t>(g_->Friendships().Degree(v)) -
           2 * static_cast<std::int64_t>(cross_friends_[v]);
  }

  std::int64_t DeltaRejections(graph::NodeId v) const {
    const std::int64_t d = static_cast<std::int64_t>(out_to_u_[v]) -
                           static_cast<std::int64_t>(in_from_w_[v]);
    return InU(v) ? d : -d;
  }

  // Current cut totals (kept in lockstep with switches).
  graph::CutQuantities Quantities() const noexcept;

  // W(U) under weight k.
  double Objective(double k) const noexcept {
    return static_cast<double>(cross_friendships_) -
           k * static_cast<double>(rejections_into_u_);
  }

  // Extracts the membership mask.
  const std::vector<char>& Mask() const noexcept { return in_u_; }

 private:
  const graph::AugmentedGraph* g_;
  std::vector<char> in_u_;
  graph::NodeId size_u_ = 0;

  std::vector<std::uint32_t> cross_friends_;
  std::vector<std::uint32_t> in_from_w_;
  std::vector<std::uint32_t> out_to_u_;

  std::uint64_t cross_friendships_ = 0;  // |F(Ū,U)|
  std::uint64_t rejections_into_u_ = 0;  // |R⃗(Ū,U)|
};

}  // namespace rejecto::detect
