// Fiduccia–Mattheyses gain bucket list (paper §IV-C, [21]).
//
// An array of intrusive doubly-linked lists indexed by *quantized* switch
// gain, giving O(1) max-gain lookup, insert, delete, and update. Rejecto's
// gains are ΔF − k·ΔR with integer ΔF/ΔR but real k, so gains are mapped to
// buckets by round(gain × resolution) and clamped to the structure's range;
// exact gains live with the caller (quantization only perturbs pick order
// among near-equal gains, never the applied prefix accounting — see
// DESIGN.md). Within a bucket order is LIFO, the classic FM policy.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/buffer.h"

namespace rejecto::detect {

class BucketList {
 public:
  // An empty workspace with no node or bucket capacity; call Reset before
  // use. Lets callers keep one BucketList alive across many KL passes.
  BucketList() = default;

  // `num_nodes` bounds the node-id universe; `max_abs_gain` is the largest
  // |gain| that maps to a distinct bucket (larger gains clamp to the end
  // buckets); `resolution` is buckets per unit gain.
  BucketList(graph::NodeId num_nodes, double max_abs_gain, double resolution);

  // Re-targets the structure to a (possibly different) geometry, reusing
  // the existing arrays. When the list is empty — the normal case between
  // KL passes, since every pass drains it via PopMax — this is O(growth):
  // an emptied list already has every head at kNil and every bucket_of_ at
  // kAbsent, so only capacity growth needs initialization. A non-empty
  // list is wiped in O(capacity).
  void Reset(graph::NodeId num_nodes, double max_abs_gain, double resolution);

  bool Empty() const noexcept { return size_ == 0; }
  graph::NodeId Size() const noexcept { return size_; }
  bool Contains(graph::NodeId v) const { return links_[v].bucket != kAbsent; }

  // Hints the cache that v's link record is about to be touched. The fused
  // switch calls this while traversing adjacency, one sweep ahead of the
  // Adjust calls that will read links_[v].
  void PrefetchNode(graph::NodeId v) const noexcept {
    __builtin_prefetch(&links_[v]);
  }

  // Precondition for Insert: !Contains(v). For Remove/Update: Contains(v).
  void Insert(graph::NodeId v, double gain);
  void Remove(graph::NodeId v);
  void Update(graph::NodeId v, double new_gain);

  // Update for the fused-switch hot path: moves v to the bucket of
  // new_gain, a no-op when v is absent (locked or already switched) or when
  // the quantized bucket is unchanged. Identical relink position (bucket
  // head, LIFO) to Remove+Insert, without the presence-check branches.
  // Defined inline: this runs once per touched neighbor per switch, and the
  // call overhead of the out-of-line Update/Unlink/Insert trio is a
  // measurable fraction of the old kernel's cost.
  void Adjust(graph::NodeId v, double new_gain) noexcept {
    NodeLink& lv = links_[v];
    const std::int32_t cur = lv.bucket;
    if (cur == kAbsent) return;  // locked, or already switched this pass
    const std::int32_t b = QuantizeClamped(new_gain);
    if (b == cur) return;
    // Unlink from the current bucket; size_ is unchanged net of the relink.
    const std::size_t old_h = static_cast<std::size_t>(cur + max_bucket_);
    if (lv.prev != kNil) {
      links_[static_cast<std::size_t>(lv.prev)].next = lv.next;
    } else {
      heads_[old_h] = lv.next;
    }
    if (lv.next != kNil) links_[static_cast<std::size_t>(lv.next)].prev = lv.prev;
    // Relink at the head of bucket b — the exact position Insert would pick.
    lv.bucket = b;
    const std::size_t h = static_cast<std::size_t>(b + max_bucket_);
    lv.next = heads_[h];
    lv.prev = kNil;
    if (heads_[h] != kNil) {
      links_[static_cast<std::size_t>(heads_[h])].prev =
          static_cast<std::int32_t>(v);
    }
    heads_[h] = static_cast<std::int32_t>(v);
    if (b > cur_max_) cur_max_ = b;
  }

  // Returns a node with the maximal quantized gain without removing it, or
  // graph::kInvalidNode when empty.
  graph::NodeId MaxGainNode() const noexcept;

  // Removes and returns a max-gain node (kInvalidNode when empty).
  graph::NodeId PopMax();

  // Appends up to `k` currently-present nodes in descending bucket order
  // (LIFO within a bucket) — the prefetch candidates of the distributed
  // engine (§V): the nodes most likely to be switched soonest.
  void CollectTop(std::size_t k, std::vector<graph::NodeId>& out) const;

  // Introspection for tests and capacity-reuse assertions.
  std::int32_t Quantize(double gain) const noexcept;
  // Quantized bucket of v; only meaningful when Contains(v).
  std::int32_t BucketOf(graph::NodeId v) const { return links_[v].bucket; }
  std::size_t NodeCapacity() const noexcept { return links_.size(); }
  std::size_t BucketCapacity() const noexcept { return heads_.size(); }

 private:
  static constexpr std::int32_t kAbsent = INT32_MIN;
  static constexpr std::int32_t kNil = -1;

  // Per-node intrusive links and bucket index, packed so a relink touches
  // one cache line per involved node instead of three parallel arrays.
  struct NodeLink {
    std::int32_t next = kNil;
    std::int32_t prev = kNil;
    std::int32_t bucket = kAbsent;  // kAbsent when not in the structure
  };

  std::int32_t QuantizeClamped(double gain) const noexcept {
    const double scaled = gain * resolution_;
    if (scaled >= static_cast<double>(max_bucket_)) return max_bucket_;
    if (scaled <= static_cast<double>(-max_bucket_)) return -max_bucket_;
    return static_cast<std::int32_t>(std::llround(scaled));
  }
  void Unlink(graph::NodeId v);

  double resolution_ = 1.0;
  std::int32_t max_bucket_ = 0;           // buckets span [-max_bucket_, +max_bucket_]
  // Both stores live on the aligned memory tier: the 12-byte NodeLink
  // records are the per-switch random-access hot set.
  util::AlignedVector<std::int32_t> heads_;  // per-bucket head (kNil if empty)
  util::AlignedVector<NodeLink> links_;      // kNil-terminated intrusive lists
  std::int32_t cur_max_ = 0;              // highest possibly-non-empty bucket
  graph::NodeId size_ = 0;
};

}  // namespace rejecto::detect
