// Fiduccia–Mattheyses gain bucket list (paper §IV-C, [21]).
//
// An array of intrusive doubly-linked lists indexed by *quantized* switch
// gain, giving O(1) max-gain lookup, insert, delete, and update. Rejecto's
// gains are ΔF − k·ΔR with integer ΔF/ΔR but real k, so gains are mapped to
// buckets by round(gain × resolution) and clamped to the structure's range;
// exact gains live with the caller (quantization only perturbs pick order
// among near-equal gains, never the applied prefix accounting — see
// DESIGN.md). Within a bucket order is LIFO, the classic FM policy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace rejecto::detect {

class BucketList {
 public:
  // `num_nodes` bounds the node-id universe; `max_abs_gain` is the largest
  // |gain| that maps to a distinct bucket (larger gains clamp to the end
  // buckets); `resolution` is buckets per unit gain.
  BucketList(graph::NodeId num_nodes, double max_abs_gain, double resolution);

  bool Empty() const noexcept { return size_ == 0; }
  graph::NodeId Size() const noexcept { return size_; }
  bool Contains(graph::NodeId v) const { return bucket_of_[v] != kAbsent; }

  // Precondition for Insert: !Contains(v). For Remove/Update: Contains(v).
  void Insert(graph::NodeId v, double gain);
  void Remove(graph::NodeId v);
  void Update(graph::NodeId v, double new_gain);

  // Returns a node with the maximal quantized gain without removing it, or
  // graph::kInvalidNode when empty.
  graph::NodeId MaxGainNode() const noexcept;

  // Removes and returns a max-gain node (kInvalidNode when empty).
  graph::NodeId PopMax();

  // Appends up to `k` currently-present nodes in descending bucket order
  // (LIFO within a bucket) — the prefetch candidates of the distributed
  // engine (§V): the nodes most likely to be switched soonest.
  void CollectTop(std::size_t k, std::vector<graph::NodeId>& out) const;

 private:
  static constexpr std::int32_t kAbsent = INT32_MIN;
  static constexpr std::int32_t kNil = -1;

  std::int32_t QuantizeClamped(double gain) const noexcept;
  void Unlink(graph::NodeId v);

  double resolution_;
  std::int32_t max_bucket_;               // buckets span [-max_bucket_, +max_bucket_]
  std::vector<std::int32_t> heads_;       // per-bucket head node (kNil if empty)
  std::vector<std::int32_t> next_;        // intrusive links (kNil terminated)
  std::vector<std::int32_t> prev_;
  std::vector<std::int32_t> bucket_of_;   // kAbsent when not in the structure
  std::int32_t cur_max_;                  // highest possibly-non-empty bucket
  graph::NodeId size_ = 0;
};

}  // namespace rejecto::detect
