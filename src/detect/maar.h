// Minimum aggregate acceptance rate (MAAR) cut solver (paper §IV-B, §IV-D).
//
// Finding the cut minimizing the friends-to-rejections ratio
// |F(Ū,U)| / |R⃗(Ū,U)| is NP-hard (2-approximation-preserving reduction
// from MIN-RATIO-CUT). Per Theorem 1, the optimum for ratio k* is also the
// optimum of the linear problem min |F| − k*·|R⃗|, so the solver:
//   1. sweeps k over a geometric sequence, running ExtendedKl for each k
//      from multiple initial partitions (a rejection-degree heuristic plus
//      randomized inits),
//   2. refines the best candidate with Dinkelbach-style iterations: set
//      k ← ratio(best cut) and re-solve until a fixpoint,
//   3. returns the valid cut with the lowest ratio (ties: more explaining
//      rejections).
// A cut is valid when both regions meet the minimum size and U receives at
// least one rejection.
//
// Parallel sweep (the paper's Spark prototype parallelizes exactly this
// grid, §V/Table II): every (k, init) cell of the sweep is an independent
// KL run, so Solve() fans the grid out over a util::ThreadPool and then
// reduces the per-cell results serially in fixed sweep order — the winner,
// tie-breaking included, is a pure function of the cell results, so any
// thread count produces bit-identical cuts. Warm starts (the incumbent
// best mask injected as one extra init at the next k) and the Dinkelbach
// rounds are inherently sequential and run as a short serial tail on top
// of the reduced grid, preserving that guarantee.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "detect/extended_kl.h"
#include "detect/seeds.h"
#include "graph/augmented_graph.h"
#include "graph/compressed_view.h"
#include "graph/layout.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rejecto::detect {

// Resolves a num_threads config value: 0 → util::HardwareThreads(),
// anything below 1 clamps to 1.
int EffectiveThreads(int num_threads);

struct MaarConfig {
  // Geometric k sweep: k_min, k_min*k_scale, ... up to k_max (inclusive-ish).
  double k_min = 1.0 / 16.0;
  double k_max = 16.0;
  double k_scale = 2.0;

  int dinkelbach_rounds = 3;

  // Initial partitions per k: the rejection heuristic plus this many random
  // masks (each node in U independently with random_init_fraction).
  int num_random_inits = 1;
  double random_init_fraction = 0.25;

  // Validity constraints on the reported cut. The fraction cap rejects the
  // degenerate "complement" cut (U = everyone except a handful of heavy
  // rejectors, whose ratio is spuriously tiny): friend spammers are a
  // minority of the OSN, which the provider knows from population
  // estimates (§III-B). 0.6 keeps every paper scenario valid (fakes top
  // out at 50% of nodes on the facebook graph).
  graph::NodeId min_region_size = 4;
  double max_region_fraction = 0.6;

  KlConfig kl;  // kl.k is overwritten by the sweep

  // Optional extra initial partition appended (after the heuristic and the
  // random inits) to every k cell of the sweep — the streaming engine's
  // warm start injects the previous epoch's cut mask here. Must be empty or
  // sized to the graph's node count; seed placement is forced onto it like
  // any other init. Appending at a fixed position keeps the reduction order
  // deterministic, so thread count still cannot change the winner.
  std::vector<char> extra_init;

  std::uint64_t seed = 1;

  // Memory-layout policy (graph/layout.h). Non-identity makes Solve() remap
  // the graph through ComputeLayout/ApplyLayout before solving and map the
  // returned mask back, with `rank` set internally so the cut is
  // bit-identical to the identity run — callers see original ids and
  // identical results, only the cache behavior changes. DetectFriendSpammers
  // applies the same wrap once for its whole pipeline. The default KL runner
  // honors it; the distributed engine's custom runners solve whatever graph
  // they are handed and run identity layouts.
  graph::LayoutPolicy layout = graph::LayoutPolicy::kIdentity;

  // Layout-invariance rank (see graph/layout.h): empty, or an n-sized
  // permutation mapping each node of the (laid-out) graph to its ORIGINAL
  // id. When set, random inits are drawn indexed by original id and every
  // KL tie-break is keyed on it, so results equal the identity-layout run.
  // Callers running an already-laid-out graph set this to
  // Layout::old_of_new; Solve()'s own layout wrap sets it automatically.
  std::vector<graph::NodeId> rank;

  // Worker threads for the (k × init) grid: 0 = util::HardwareThreads(),
  // values < 0 clamp to 1. Any setting yields bit-identical cuts (see the
  // header comment); threads only change wall-clock time.
  int num_threads = 0;

  // After the grid cells at k_i are reduced, re-run KL once at k_{i+1}
  // seeded with the incumbent best mask. Adds candidates only, so it can
  // never worsen the returned cut.
  bool warm_start = true;
};

struct MaarCut {
  bool valid = false;
  std::vector<char> in_u;       // suspicious region
  graph::CutQuantities cut;
  double ratio = 0.0;           // |F(Ū,U)| / |R⃗(Ū,U)|
  double k = 0.0;               // weight that produced the cut

  // Instrumentation (benchmarks report speedup from these).
  int kl_runs = 0;              // total ExtendedKl invocations
  int warm_start_runs = 0;      // subset of kl_runs from the warm tail
  std::uint64_t switches = 0;   // KL switches applied, summed over runs
  int threads_used = 1;         // pool width the grid actually ran on
  double sweep_seconds = 0.0;   // parallel grid + reduction + warm tail
  double refine_seconds = 0.0;  // Dinkelbach rounds
  double total_seconds = 0.0;   // whole Solve() call
};

class MaarSolver {
 public:
  // Pluggable inner solver: the serial detect::ExtendedKl by default; the
  // distributed engine injects engine::DistributedKl (same signature, same
  // bit-exact results) so the whole k-sweep runs on the cluster substrate.
  // The KlScratch* is a per-thread reusable workspace owned by the solver
  // (one per pool block, so no locking); runners that keep their own state
  // may ignore it. It may be null.
  using KlRunner = std::function<KlResult(
      const graph::AugmentedGraph&, const std::vector<char>& init_in_u,
      const std::vector<char>& locked, const KlConfig&, KlScratch* scratch)>;

  // The graph must outlive the solver. Seeds are validated on construction.
  MaarSolver(const graph::AugmentedGraph& g, Seeds seeds, MaarConfig config);
  MaarSolver(const graph::AugmentedGraph& g, Seeds seeds, MaarConfig config,
             KlRunner kl_runner);

  // Out-of-core mode: solves directly over a compressed snapshot view —
  // every grid cell runs ExtendedKl through a per-thread DecodeCursor, so
  // peak RSS is per-cursor cache × threads rather than the full CSR
  // expansion. Bit-identical to solving over view.Materialize().graph:
  // both paths serve the same adjacency bytes and the reduction is the
  // same pure function of the cell results. config.layout must be
  // kIdentity (remapping requires the in-RAM graph; save the snapshot
  // with a layout policy instead) and custom KL runners are not supported
  // here. The view must outlive the solver.
  MaarSolver(const graph::CompressedGraphView& view, Seeds seeds,
             MaarConfig config);

  // Creates a private pool when config.num_threads resolves to > 1.
  MaarCut Solve();
  // Runs the grid on `pool` (callers amortize pool construction across many
  // solves, e.g. DetectFriendSpammers across rounds); nullptr behaves like
  // Solve(). When the grid runs on a pool the kl_runner must be safe to
  // invoke concurrently (the default ExtendedKl runner is pure).
  MaarCut Solve(util::ThreadPool* pool);

 private:
  std::vector<std::vector<char>> InitialPartitions(util::Rng& rng) const;
  std::vector<double> SweepKs() const;
  bool IsValid(const std::vector<char>& in_u,
               const graph::CutQuantities& cut) const;
  graph::NodeId NumNodes() const {
    return g_ != nullptr ? g_->NumNodes() : view_->NumNodes();
  }
  void ValidateConfig();

  // Exactly one of g_/view_ is set (RAM vs out-of-core mode).
  const graph::AugmentedGraph* g_ = nullptr;
  const graph::CompressedGraphView* view_ = nullptr;
  Seeds seeds_;
  MaarConfig config_;
  KlRunner kl_runner_;
  std::vector<char> locked_;
  // Inverse of config_.rank (original id -> node id), empty when rank is:
  // random init draws walk it so the i-th rng draw always lands on the node
  // whose ORIGINAL id is i, whatever the layout.
  std::vector<graph::NodeId> rank_order_;
};

}  // namespace rejecto::detect
