// Minimum aggregate acceptance rate (MAAR) cut solver (paper §IV-B, §IV-D).
//
// Finding the cut minimizing the friends-to-rejections ratio
// |F(Ū,U)| / |R⃗(Ū,U)| is NP-hard (2-approximation-preserving reduction
// from MIN-RATIO-CUT). Per Theorem 1, the optimum for ratio k* is also the
// optimum of the linear problem min |F| − k*·|R⃗|, so the solver:
//   1. sweeps k over a geometric sequence, running ExtendedKl for each k
//      from multiple initial partitions (a rejection-degree heuristic plus
//      randomized inits),
//   2. refines the best candidate with Dinkelbach-style iterations: set
//      k ← ratio(best cut) and re-solve until a fixpoint,
//   3. returns the valid cut with the lowest ratio (ties: more explaining
//      rejections).
// A cut is valid when both regions meet the minimum size and U receives at
// least one rejection.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "detect/extended_kl.h"
#include "detect/seeds.h"
#include "graph/augmented_graph.h"
#include "util/rng.h"

namespace rejecto::detect {

struct MaarConfig {
  // Geometric k sweep: k_min, k_min*k_scale, ... up to k_max (inclusive-ish).
  double k_min = 1.0 / 16.0;
  double k_max = 16.0;
  double k_scale = 2.0;

  int dinkelbach_rounds = 3;

  // Initial partitions per k: the rejection heuristic plus this many random
  // masks (each node in U independently with random_init_fraction).
  int num_random_inits = 1;
  double random_init_fraction = 0.25;

  // Validity constraints on the reported cut. The fraction cap rejects the
  // degenerate "complement" cut (U = everyone except a handful of heavy
  // rejectors, whose ratio is spuriously tiny): friend spammers are a
  // minority of the OSN, which the provider knows from population
  // estimates (§III-B). 0.6 keeps every paper scenario valid (fakes top
  // out at 50% of nodes on the facebook graph).
  graph::NodeId min_region_size = 4;
  double max_region_fraction = 0.6;

  KlConfig kl;  // kl.k is overwritten by the sweep

  std::uint64_t seed = 1;
};

struct MaarCut {
  bool valid = false;
  std::vector<char> in_u;       // suspicious region
  graph::CutQuantities cut;
  double ratio = 0.0;           // |F(Ū,U)| / |R⃗(Ū,U)|
  double k = 0.0;               // weight that produced the cut
  int kl_runs = 0;              // total ExtendedKl invocations
};

class MaarSolver {
 public:
  // Pluggable inner solver: the serial detect::ExtendedKl by default; the
  // distributed engine injects engine::DistributedKl (same signature, same
  // bit-exact results) so the whole k-sweep runs on the cluster substrate.
  using KlRunner = std::function<KlResult(
      const graph::AugmentedGraph&, std::vector<char> init_in_u,
      const std::vector<char>& locked, const KlConfig&)>;

  // The graph must outlive the solver. Seeds are validated on construction.
  MaarSolver(const graph::AugmentedGraph& g, Seeds seeds, MaarConfig config);
  MaarSolver(const graph::AugmentedGraph& g, Seeds seeds, MaarConfig config,
             KlRunner kl_runner);

  MaarCut Solve();

 private:
  std::vector<std::vector<char>> InitialPartitions(util::Rng& rng) const;
  bool IsValid(const std::vector<char>& in_u,
               const graph::CutQuantities& cut) const;

  const graph::AugmentedGraph& g_;
  Seeds seeds_;
  MaarConfig config_;
  KlRunner kl_runner_;
  std::vector<char> locked_;
};

}  // namespace rejecto::detect
