#include "detect/extended_kl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rejecto::detect {
namespace {

constexpr double kGainEps = 1e-7;

// Largest possible |gain| of any single switch: every friend edge and every
// rejection arc incident to the node can contribute at most 1 and k, so
// max_F + k·max_R over the graph's cached degree maxima dominates
// max_v (deg(v) + k·rejdeg(v)). O(1) per call — the MAAR sweep invokes KL
// dozens of times per solve, and the maxima are precomputed when the
// (possibly compacted) AugmentedGraph is built. The looser bound never
// changes results: no actual gain reaches either bound, so bucket indices
// (round(gain × resolution), clamp untriggered) are identical.
double GainBound(const graph::GraphSource& src, double k) {
  const double b = static_cast<double>(src.MaxFriendshipDegree()) +
                   k * static_cast<double>(src.MaxRejectionDegree());
  return std::max(1.0, b);
}

}  // namespace

KlResult ExtendedKl(const graph::GraphSource& src,
                    const std::vector<char>& init_in_u,
                    const std::vector<char>& locked, const KlConfig& config,
                    KlScratch* scratch) {
  const graph::NodeId n = src.NumNodes();
  if (config.k <= 0.0) {
    throw std::invalid_argument("ExtendedKl: k must be positive");
  }
  if (!locked.empty() && locked.size() != n) {
    throw std::invalid_argument("ExtendedKl: locked mask size mismatch");
  }
  auto is_locked = [&](graph::NodeId v) {
    return !locked.empty() && locked[v] != 0;
  };
  const graph::NodeId* rank =
      config.rank != nullptr && !config.rank->empty() ? config.rank->data()
                                                      : nullptr;
  if (rank != nullptr && config.rank->size() != n) {
    throw std::invalid_argument("ExtendedKl: rank size mismatch");
  }

  KlScratch local;
  KlScratch& ws = scratch != nullptr ? *scratch : local;
  ws.partition.Reset(src, init_in_u);
  Partition& p = ws.partition;

  // Rank mode: insert nodes in ascending ORIGINAL id so every intra-bucket
  // LIFO tie-break matches the identity-layout run (where layout id =
  // original id and the plain 0..n-1 loop is already rank order).
  if (rank != nullptr) {
    ws.order.assign(n, 0);
    for (graph::NodeId v = 0; v < n; ++v) {
      const graph::NodeId r = (*config.rank)[v];
      if (r >= n) throw std::invalid_argument("ExtendedKl: rank not a permutation");
      ws.order[r] = v;
    }
  }

  const double k = config.k;
  const double gain_bound = GainBound(src, k);

  KlStats stats;
  ws.seq.reserve(n);
  // One switch touches at most deg(v) + rejdeg(v) neighbors; reserving once
  // here keeps SwitchFused's push_backs allocation-free for the whole call.
  ws.touched.reserve(static_cast<std::size_t>(src.MaxFriendshipDegree() +
                                              src.MaxRejectionDegree()));

  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++stats.passes;
    ws.bucket.Reset(n, gain_bound, config.gain_resolution);
    BucketList& bl = ws.bucket;
    if (rank != nullptr) {
      for (graph::NodeId v : ws.order) {
        if (!is_locked(v)) bl.Insert(v, -p.DeltaObjective(v, k));
      }
    } else {
      for (graph::NodeId v = 0; v < n; ++v) {
        if (!is_locked(v)) bl.Insert(v, -p.DeltaObjective(v, k));
      }
    }

    ws.seq.clear();
    double cum = 0.0;
    double best_cum = 0.0;
    std::size_t best_prefix = 0;  // number of leading switches to keep

    while (!bl.Empty()) {
      const graph::NodeId v = bl.PopMax();
      const double gain = -p.DeltaObjective(v, k);
      p.SwitchFused(v, k, bl, ws.touched, rank);
      ws.seq.push_back(v);
      cum += gain;
      if (cum > best_cum + kGainEps) {
        best_cum = cum;
        best_prefix = ws.seq.size();
      }
    }

    // Roll back everything after the best prefix (or everything, if no
    // positive prefix exists). The bucket list is drained, so the plain
    // (bucket-free) Switch suffices. Reverse order is not required for
    // correctness — switches commute on the membership mask — but keeps the
    // incremental aggregates exercised symmetrically.
    for (std::size_t i = ws.seq.size(); i > best_prefix; --i) {
      p.Switch(ws.seq[i - 1]);
    }
    stats.switches_applied += best_prefix;
    if (best_prefix == 0) break;  // converged: no improving prefix
  }

  KlResult result;
  result.cut = p.Quantities();
  stats.final_objective = p.Objective(k);
  result.stats = stats;
  result.in_u = p.Mask();
  return result;
}

}  // namespace rejecto::detect
