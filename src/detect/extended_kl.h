// Extended Kernighan–Lin for rejection-augmented social graphs
// (paper §IV-D, Algorithm 1).
//
// For a fixed k > 0, minimizes W(U) = |F(Ū,U)| − k·|R⃗(Ū,U)| by FM-style
// single-node switching (no balance constraint — region sizes are unknown a
// priori): each pass greedily pops the max-gain node from a bucket list,
// tentatively switches it (even at negative gain, to climb out of local
// minima), then applies the switch-sequence prefix with the largest positive
// cumulative gain. Passes repeat until no improving prefix exists. Locked
// nodes (seeds, §IV-F) never enter the bucket list.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/augmented_graph.h"

namespace rejecto::detect {

struct KlConfig {
  double k = 1.0;                 // rejection weight (> 0)
  int max_passes = 16;            // safety bound; convergence is typical in <6
  double gain_resolution = 64.0;  // bucket quantization (buckets per unit)
};

struct KlStats {
  int passes = 0;
  std::uint64_t switches_applied = 0;  // sum of applied prefix lengths
  double final_objective = 0.0;        // W(U) at termination
};

struct KlResult {
  std::vector<char> in_u;
  graph::CutQuantities cut;
  KlStats stats;
};

// `locked` may be empty (nothing pinned); otherwise size must equal
// g.NumNodes(). init_in_u must already respect the lock placement.
KlResult ExtendedKl(const graph::AugmentedGraph& g,
                    std::vector<char> init_in_u,
                    const std::vector<char>& locked, const KlConfig& config);

}  // namespace rejecto::detect
