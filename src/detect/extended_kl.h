// Extended Kernighan–Lin for rejection-augmented social graphs
// (paper §IV-D, Algorithm 1).
//
// For a fixed k > 0, minimizes W(U) = |F(Ū,U)| − k·|R⃗(Ū,U)| by FM-style
// single-node switching (no balance constraint — region sizes are unknown a
// priori): each pass greedily pops the max-gain node from a bucket list,
// tentatively switches it (even at negative gain, to climb out of local
// minima), then applies the switch-sequence prefix with the largest positive
// cumulative gain. Passes repeat until no improving prefix exists. Locked
// nodes (seeds, §IV-F) never enter the bucket list.
//
// The inner loop is the classic FM delta-gain kernel: a switch makes ONE
// traversal of the node's friends/rejectors/rejectees
// (Partition::SwitchFused), fusing the aggregate updates with bucket
// maintenance, and a node only relinks when its quantized bucket actually
// changes (BucketList::Adjust). All working state lives in a KlScratch that
// callers may reuse across invocations; the steady-state pass loop then
// performs no heap allocation at all (the only allocation per call is the
// result mask copy).
#pragma once

#include <cstdint>
#include <vector>

#include "detect/bucket_list.h"
#include "detect/partition.h"
#include "graph/augmented_graph.h"
#include "graph/graph_source.h"
#include "util/buffer.h"

namespace rejecto::detect {

struct KlConfig {
  double k = 1.0;                 // rejection weight (> 0)
  int max_passes = 16;            // safety bound; convergence is typical in <6
  double gain_resolution = 64.0;  // bucket quantization (buckets per unit)

  // Layout-invariance hook (see graph/layout.h): when non-null, an n-sized
  // array mapping each node of the (laid-out) graph to its ORIGINAL id.
  // Every order-sensitive step — the pass's bucket insertion order and the
  // deferred relink order inside SwitchFused — is then keyed on original
  // ids, so the result is bit-identical to running on the identity layout.
  // Null (the default) keeps the unchanged fast path; an explicit identity
  // rank produces the same result as null. The pointee must outlive the
  // call (MaarSolver points it at its config's rank array).
  const std::vector<graph::NodeId>* rank = nullptr;
};

struct KlStats {
  int passes = 0;
  std::uint64_t switches_applied = 0;  // sum of applied prefix lengths
  double final_objective = 0.0;        // W(U) at termination
};

struct KlResult {
  std::vector<char> in_u;
  graph::CutQuantities cut;
  KlStats stats;
};

// Reusable workspace for ExtendedKl. Default-constructed empty; every
// ExtendedKl call Reset()s it for the given graph, growing capacity only
// when the graph is larger than any seen before. Not thread-safe — use one
// scratch per thread (MaarSolver keeps one per pool block).
struct KlScratch {
  Partition partition;
  BucketList bucket;
  util::AlignedVector<graph::NodeId> seq;   // this pass's switch sequence
  util::AlignedVector<graph::NodeId> touched;  // neighbors hit per switch
  util::AlignedVector<graph::NodeId> order;  // rank mode: by ascending rank
};

// `locked` may be empty (nothing pinned); otherwise size must equal
// src.NumNodes(). init_in_u must already respect the lock placement. When
// `scratch` is null a call-local workspace is used; results are identical
// either way, and identical whatever graph the scratch last served.
//
// `src` is either an in-RAM AugmentedGraph (implicit conversion keeps the
// historical call sites compiling unchanged) or a cursor over a compressed
// snapshot; both backends serve identical adjacency bytes, so the returned
// cut is bit-identical regardless of which one a caller picks.
KlResult ExtendedKl(const graph::GraphSource& src,
                    const std::vector<char>& init_in_u,
                    const std::vector<char>& locked, const KlConfig& config,
                    KlScratch* scratch = nullptr);

}  // namespace rejecto::detect
