#include "detect/incremental.h"

#include <stdexcept>

namespace rejecto::detect {

IncrementalScore ScoreSenderIncremental(const graph::AugmentedGraph& g,
                                        const std::vector<char>& in_u,
                                        double k, graph::NodeId s) {
  if (in_u.size() != g.NumNodes()) {
    throw std::invalid_argument(
        "ScoreSenderIncremental: mask size does not match graph");
  }
  if (s >= g.NumNodes()) {
    throw std::out_of_range("ScoreSenderIncremental: sender out of range");
  }
  if (!(k > 0.0)) {
    throw std::invalid_argument("ScoreSenderIncremental: k must be > 0");
  }
  if (in_u[s] != 0) {
    return {0.0, true};
  }

  // ΔF: edges s–f flip cross↔internal depending on f's side.
  std::int64_t delta_friend = 0;
  for (graph::NodeId f : g.Friendships().Neighbors(s)) {
    delta_friend += in_u[f] != 0 ? -1 : +1;
  }
  // ΔR⃗: arcs onto s from outside U start counting; arcs s casts onto U
  // members stop (their source moves inside).
  std::int64_t delta_rej = 0;
  for (graph::NodeId r : g.Rejections().Rejectors(s)) {
    if (in_u[r] == 0) ++delta_rej;
  }
  for (graph::NodeId t : g.Rejections().Rejectees(s)) {
    if (in_u[t] != 0) --delta_rej;
  }

  const double gain = static_cast<double>(delta_friend) -
                      k * static_cast<double>(delta_rej);
  return {gain, gain < 0.0};
}

}  // namespace rejecto::detect
