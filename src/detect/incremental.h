// Sub-epoch O(deg) incremental MAAR score (ROADMAP "online admission").
//
// Between epochs the detector holds the previous epoch's round-0 cut mask U
// and the weight k that produced it. For a sender s outside U, moving s into
// U changes the linear objective W(U) = |F(Ū,U)| − k·|R⃗(Ū,U)| by
//
//   ΔW(s) = (friends of s outside U − friends of s inside U)
//           − k·(rejectors of s outside U − rejectees of s inside U)
//
// computable in one O(deg(s)) pass over s's adjacency — no sweep, no KL.
// A negative ΔW means the incumbent cut strictly improves by absorbing s:
// the new sender's local evidence (rejections from the legitimate region
// outweighing accepted edges at the incumbent exchange rate k) puts it in
// the rejected partition. This is exactly the first switch ExtendedKl would
// consider for s, so it agrees with full re-detection whenever one more
// sender does not move the global cut — the property test pins ≥95%
// agreement on sampled senders. Serving layers use it as the cheap
// admission tier (§VI-D defense in depth): classify a brand-new requester
// immediately, let the next epoch confirm.
#pragma once

#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::detect {

struct IncrementalScore {
  // ΔW(s) of switching s into the suspicious region (0 when s already
  // belongs to it). Lower = more suspicious.
  double gain = 0.0;
  // True when s lands in the rejected partition: already in the mask, or
  // ΔW(s) < 0.
  bool suspicious = false;
};

// Scores s against the incumbent mask in O(deg(s)). Preconditions:
// in_u.size() == g.NumNodes(), k > 0, s < g.NumNodes().
IncrementalScore ScoreSenderIncremental(const graph::AugmentedGraph& g,
                                        const std::vector<char>& in_u,
                                        double k, graph::NodeId s);

}  // namespace rejecto::detect
