// Exact MAAR solver for small graphs, by branch-and-bound enumeration.
//
// MAAR is NP-hard (§IV-B), so this is exponential by nature — usable to
// ~30 nodes — and exists to (a) validate the extended-KL heuristic's
// quality in tests and the ablation bench, and (b) make the hardness
// discussion concrete. The search enumerates suspicious sets U by deciding
// node membership in a DFS, pruning with an optimistic bound: fixing the
// remaining nodes can never decrease |R⃗(Ū,U)| below the rejections already
// committed into U, nor remove committed cross friendships whose both
// endpoints are decided.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/augmented_graph.h"

namespace rejecto::detect {

struct ExactMaarConfig {
  graph::NodeId min_region_size = 1;
  double max_region_fraction = 1.0;
  // Hard safety cap; Solve throws std::invalid_argument beyond it.
  graph::NodeId max_nodes = 30;
};

struct ExactMaarCut {
  bool valid = false;
  std::vector<char> in_u;
  graph::CutQuantities cut;
  double ratio = 0.0;
  std::uint64_t nodes_explored = 0;  // search-tree accounting
};

// Finds the exact minimum friends-to-rejections ratio cut subject to the
// config's validity constraints (same semantics as MaarSolver's).
ExactMaarCut SolveMaarExact(const graph::AugmentedGraph& g,
                            const ExactMaarConfig& config);

}  // namespace rejecto::detect
