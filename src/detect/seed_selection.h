// Community-based seed candidate selection (paper §IV-F, following
// SybilRank [15]).
//
// Random seeds can leave whole regions of the graph unpinned, letting the
// KL search carve spurious cuts inside an uncovered legitimate community.
// The SybilRank-style remedy: detect communities, then nominate inspection
// candidates spread across them (largest communities first, proportionally
// to size). The OSN manually verifies the candidates and feeds the
// confirmed labels back as detect::Seeds.
#pragma once

#include <vector>

#include "graph/communities.h"
#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::detect {

struct SeedSelectionConfig {
  graph::NodeId total_candidates = 100;
  // At most this fraction of any single community is nominated (prevents a
  // tiny community from being fully consumed).
  double max_community_fraction = 0.5;
  std::uint64_t seed = 1;
};

struct SeedCandidates {
  std::vector<graph::NodeId> nodes;       // inspection candidates
  std::uint32_t communities_covered = 0;  // distinct communities hit
  std::uint32_t num_communities = 0;      // total detected communities
};

// Runs label propagation on `g` and spreads candidates across the detected
// communities proportionally to community size (every community with
// >= 1/num_communities share of nodes gets at least one candidate while
// budget remains).
SeedCandidates SelectSeedCandidates(const graph::SocialGraph& g,
                                    const SeedSelectionConfig& config);

}  // namespace rejecto::detect
