#include "detect/iterative.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "graph/subgraph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rejecto::detect {
namespace {

// Per-node suspicion on the residual graph: the fraction of a node's
// incoming requests that were rejections. Used only to trim the final
// round's overshoot to the detection target.
double Suspicion(const graph::AugmentedGraph& g, graph::NodeId v) {
  const double rej = g.Rejections().InDegree(v);
  const double fr = g.Friendships().Degree(v);
  return (rej + fr) == 0 ? 0.0 : rej / (rej + fr);
}

}  // namespace

DetectionResult DetectFriendSpammers(const graph::AugmentedGraph& g,
                                     const Seeds& seeds,
                                     const IterativeConfig& config) {
  // One pool for the whole pipeline: rounds reuse it instead of paying
  // thread construction per residual solve.
  const int threads = EffectiveThreads(config.maar.num_threads);
  std::shared_ptr<util::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_shared<util::ThreadPool>(
        static_cast<std::size_t>(threads));
  }
  return DetectFriendSpammers(
      g, seeds, config,
      [pool](const graph::AugmentedGraph& residual, const Seeds& s,
             const MaarConfig& maar) {
        MaarSolver solver(residual, s, maar);
        return solver.Solve(pool.get());
      },
      pool.get());
}

DetectionResult DetectFriendSpammers(const graph::AugmentedGraph& g,
                                     const Seeds& seeds,
                                     const IterativeConfig& config,
                                     const MaarRunner& solve,
                                     util::ThreadPool* pool) {
  seeds.Validate(g.NumNodes());
  util::WallTimer total_timer;
  DetectionResult result;

  // Round 0 solves on g directly; only the compacted rounds materialize a
  // residual graph of their own (skipping the up-front full graph copy).
  const graph::AugmentedGraph* residual = &g;
  graph::AugmentedGraph residual_storage;
  std::vector<graph::NodeId> to_original(g.NumNodes());
  std::iota(to_original.begin(), to_original.end(), 0);
  Seeds cur_seeds = seeds;

  for (int round = 0; round < config.max_rounds; ++round) {
    if (config.target_detections != 0 &&
        result.detected.size() >= config.target_detections) {
      result.hit_target = true;
      break;
    }
    // Mirror MaarSolver's clamp of the minimum region size.
    const graph::NodeId min_region = std::max<graph::NodeId>(
        1, std::min<graph::NodeId>(config.maar.min_region_size,
                                   residual->NumNodes() / 2));
    if (residual->NumNodes() < 2 * min_region) break;

    MaarConfig maar = config.maar;
    maar.seed = config.maar.seed + static_cast<std::uint64_t>(round) * 0x9e37ULL;
    util::WallTimer round_timer;
    const MaarCut cut = solve(*residual, cur_seeds, maar);
    const double round_seconds = round_timer.Seconds();
    result.total_kl_runs += static_cast<std::uint64_t>(cut.kl_runs);
    result.total_switches += cut.switches;
    result.threads_used = std::max(result.threads_used, cut.threads_used);
    if (!cut.valid) break;

    const double acceptance = cut.cut.AcceptanceRate();
    if (config.acceptance_rate_threshold >= 0.0 &&
        acceptance > config.acceptance_rate_threshold) {
      break;  // remaining cuts no longer look like friend spam
    }

    RoundInfo info;
    info.cut = cut.cut;
    info.ratio = cut.ratio;
    info.acceptance_rate = acceptance;
    info.k = cut.k;
    info.solve_seconds = round_seconds;
    info.kl_runs = cut.kl_runs;
    info.switches = cut.switches;

    // Collect this round's suspicious nodes (residual ids).
    std::vector<graph::NodeId> flagged;
    for (graph::NodeId v = 0; v < residual->NumNodes(); ++v) {
      if (cut.in_u[v]) flagged.push_back(v);
    }

    // Trim a final-round overshoot to the exact target, most suspicious
    // first, so precision@target is well defined. Suspicion is computed
    // once per candidate, not once per comparison; the stable index sort
    // keeps ties in flagged (= node id) order, exactly as sorting the node
    // list directly did.
    const bool overshoots =
        config.target_detections != 0 && config.trim_to_target &&
        result.detected.size() + flagged.size() > config.target_detections;
    if (overshoots) {
      const std::size_t room =
          static_cast<std::size_t>(config.target_detections) -
          result.detected.size();
      std::vector<double> susp(flagged.size());
      for (std::size_t i = 0; i < flagged.size(); ++i) {
        susp[i] = Suspicion(*residual, flagged[i]);
      }
      std::vector<std::size_t> order(flagged.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return susp[a] > susp[b];
                       });
      std::vector<graph::NodeId> trimmed(room);
      for (std::size_t i = 0; i < room; ++i) trimmed[i] = flagged[order[i]];
      flagged = std::move(trimmed);
    }

    info.detected.reserve(flagged.size());
    for (graph::NodeId v : flagged) {
      info.detected.push_back(to_original[v]);
      result.detected.push_back(to_original[v]);
    }
    result.rounds.push_back(std::move(info));

    // Prune the *entire* U region (not the trimmed set) with its links and
    // rejections, then remap the surviving seeds.
    std::vector<char> keep(residual->NumNodes(), 1);
    for (graph::NodeId v = 0; v < residual->NumNodes(); ++v) {
      if (cut.in_u[v]) keep[v] = 0;
    }
    graph::CompactedGraph compacted =
        graph::InducedSubgraph(*residual, keep, pool);

    std::vector<graph::NodeId> new_id(residual->NumNodes(),
                                      graph::kInvalidNode);
    for (graph::NodeId nid = 0;
         nid < static_cast<graph::NodeId>(compacted.parent_id.size()); ++nid) {
      new_id[compacted.parent_id[nid]] = nid;
    }
    Seeds next_seeds;
    for (graph::NodeId v : cur_seeds.legit) {
      if (new_id[v] != graph::kInvalidNode) next_seeds.legit.push_back(new_id[v]);
    }
    for (graph::NodeId v : cur_seeds.spammer) {
      if (new_id[v] != graph::kInvalidNode) {
        next_seeds.spammer.push_back(new_id[v]);
      }
    }
    std::vector<graph::NodeId> next_to_original(compacted.parent_id.size());
    for (graph::NodeId nid = 0;
         nid < static_cast<graph::NodeId>(compacted.parent_id.size()); ++nid) {
      next_to_original[nid] = to_original[compacted.parent_id[nid]];
    }
    residual_storage = std::move(compacted.graph);
    residual = &residual_storage;
    to_original = std::move(next_to_original);
    cur_seeds = std::move(next_seeds);
  }

  if (config.target_detections != 0 &&
      result.detected.size() >= config.target_detections) {
    result.hit_target = true;
  }
  result.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace rejecto::detect
