#include "detect/iterative.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "graph/compressed_view.h"
#include "graph/layout.h"
#include "graph/subgraph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rejecto::detect {
namespace {

// Per-node suspicion on the residual graph: the fraction of a node's
// incoming requests that were rejections. Used only to trim the final
// round's overshoot to the detection target.
double Suspicion(const graph::AugmentedGraph& g, graph::NodeId v) {
  const double rej = g.Rejections().InDegree(v);
  const double fr = g.Friendships().Degree(v);
  return (rej + fr) == 0 ? 0.0 : rej / (rej + fr);
}

// Same ratio read through a decode cursor — identical degrees, identical
// value (the compressed round-0 trim must break ties exactly like RAM).
double Suspicion(graph::DecodeCursor& cursor, graph::NodeId v) {
  const double rej = cursor.InDegree(v);
  const double fr = cursor.FriendDegree(v);
  return (rej + fr) == 0 ? 0.0 : rej / (rej + fr);
}

}  // namespace

DetectionResult DetectFriendSpammers(const graph::AugmentedGraph& g,
                                     const Seeds& seeds,
                                     const IterativeConfig& config) {
  // One pool for the whole pipeline: rounds reuse it instead of paying
  // thread construction per residual solve.
  const int threads = EffectiveThreads(config.maar.num_threads);
  std::shared_ptr<util::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_shared<util::ThreadPool>(
        static_cast<std::size_t>(threads));
  }
  return DetectFriendSpammers(
      g, seeds, config,
      [pool](const graph::AugmentedGraph& residual, const Seeds& s,
             const MaarConfig& maar) {
        MaarSolver solver(residual, s, maar);
        return solver.Solve(pool.get());
      },
      pool.get());
}

DetectionResult DetectFriendSpammers(const graph::AugmentedGraph& g,
                                     const Seeds& seeds,
                                     const IterativeConfig& config,
                                     const MaarRunner& solve,
                                     util::ThreadPool* pool) {
  seeds.Validate(g.NumNodes());

  // Non-identity layout: remap ONCE for the whole pipeline (each round's
  // residual inherits the locality through compaction), run the core with
  // the invariance rank engaged, and translate every reported id back.
  // Result — detected set, order, ratios, per-round cuts — is bit-identical
  // to the identity run (see graph/layout.h).
  if (config.maar.layout != graph::LayoutPolicy::kIdentity) {
    util::WallTimer total_timer;
    const graph::Layout layout =
        graph::ComputeLayout(g, config.maar.layout, pool);
    const graph::AugmentedGraph laid = graph::ApplyLayout(g, layout, pool);
    Seeds laid_seeds = seeds;
    laid_seeds.legit = graph::IdsToLayout(layout, seeds.legit);
    laid_seeds.spammer = graph::IdsToLayout(layout, seeds.spammer);
    IterativeConfig inner = config;
    inner.maar.layout = graph::LayoutPolicy::kIdentity;
    inner.maar.rank = layout.old_of_new;
    if (!inner.maar.extra_init.empty()) {
      inner.maar.extra_init =
          graph::MaskToLayout(layout, inner.maar.extra_init);
    }
    DetectionResult result =
        DetectFriendSpammers(laid, laid_seeds, inner, solve, pool);
    for (graph::NodeId& id : result.detected) id = layout.old_of_new[id];
    for (RoundInfo& round : result.rounds) {
      for (graph::NodeId& id : round.detected) id = layout.old_of_new[id];
    }
    result.total_seconds = total_timer.Seconds();
    return result;
  }

  util::WallTimer total_timer;
  DetectionResult result;

  // Round 0 solves on g directly; only the compacted rounds materialize a
  // residual graph of their own (skipping the up-front full graph copy).
  const graph::AugmentedGraph* residual = &g;
  graph::AugmentedGraph residual_storage;
  std::vector<graph::NodeId> to_original(g.NumNodes());
  std::iota(to_original.begin(), to_original.end(), 0);
  Seeds cur_seeds = seeds;
  // Layout-invariance rank for the current residual (empty = identity
  // semantics): re-compressed to a dense permutation after each pruning
  // round so relative original-id order survives compaction.
  std::vector<graph::NodeId> cur_rank = config.maar.rank;

  for (int round = 0; round < config.max_rounds; ++round) {
    if (config.target_detections != 0 &&
        result.detected.size() >= config.target_detections) {
      result.hit_target = true;
      break;
    }
    // Mirror MaarSolver's clamp of the minimum region size.
    const graph::NodeId min_region = std::max<graph::NodeId>(
        1, std::min<graph::NodeId>(config.maar.min_region_size,
                                   residual->NumNodes() / 2));
    if (residual->NumNodes() < 2 * min_region) break;

    MaarConfig maar = config.maar;
    maar.rank = cur_rank;
    maar.seed = config.maar.seed + static_cast<std::uint64_t>(round) * 0x9e37ULL;
    util::WallTimer round_timer;
    const MaarCut cut = solve(*residual, cur_seeds, maar);
    const double round_seconds = round_timer.Seconds();
    result.total_kl_runs += static_cast<std::uint64_t>(cut.kl_runs);
    result.total_switches += cut.switches;
    result.threads_used = std::max(result.threads_used, cut.threads_used);
    if (!cut.valid) break;

    const double acceptance = cut.cut.AcceptanceRate();
    if (config.acceptance_rate_threshold >= 0.0 &&
        acceptance > config.acceptance_rate_threshold) {
      break;  // remaining cuts no longer look like friend spam
    }

    RoundInfo info;
    info.cut = cut.cut;
    info.ratio = cut.ratio;
    info.acceptance_rate = acceptance;
    info.k = cut.k;
    info.solve_seconds = round_seconds;
    info.kl_runs = cut.kl_runs;
    info.switches = cut.switches;

    // Collect this round's suspicious nodes (residual ids). With a rank
    // engaged, reorder by ascending original id — the identity run's
    // natural collection order (its residual ids are monotone in the
    // original ids) — so the reported sequence and the trim sort's stable
    // tie-breaks match the identity run node for node.
    std::vector<graph::NodeId> flagged;
    for (graph::NodeId v = 0; v < residual->NumNodes(); ++v) {
      if (cut.in_u[v]) flagged.push_back(v);
    }
    if (!cur_rank.empty()) {
      std::sort(flagged.begin(), flagged.end(),
                [&](graph::NodeId a, graph::NodeId b) {
                  return cur_rank[a] < cur_rank[b];
                });
    }

    // Trim a final-round overshoot to the exact target, most suspicious
    // first, so precision@target is well defined. Suspicion is computed
    // once per candidate, not once per comparison; the stable index sort
    // keeps ties in flagged (= node id) order, exactly as sorting the node
    // list directly did.
    const bool overshoots =
        config.target_detections != 0 && config.trim_to_target &&
        result.detected.size() + flagged.size() > config.target_detections;
    if (overshoots) {
      const std::size_t room =
          static_cast<std::size_t>(config.target_detections) -
          result.detected.size();
      std::vector<double> susp(flagged.size());
      for (std::size_t i = 0; i < flagged.size(); ++i) {
        susp[i] = Suspicion(*residual, flagged[i]);
      }
      std::vector<std::size_t> order(flagged.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return susp[a] > susp[b];
                       });
      std::vector<graph::NodeId> trimmed(room);
      for (std::size_t i = 0; i < room; ++i) trimmed[i] = flagged[order[i]];
      flagged = std::move(trimmed);
    }

    info.detected.reserve(flagged.size());
    for (graph::NodeId v : flagged) {
      info.detected.push_back(to_original[v]);
      result.detected.push_back(to_original[v]);
    }
    result.rounds.push_back(std::move(info));

    // Prune the *entire* U region (not the trimmed set) with its links and
    // rejections, then remap the surviving seeds.
    std::vector<char> keep(residual->NumNodes(), 1);
    for (graph::NodeId v = 0; v < residual->NumNodes(); ++v) {
      if (cut.in_u[v]) keep[v] = 0;
    }
    graph::CompactedGraph compacted =
        graph::InducedSubgraph(*residual, keep, pool);

    std::vector<graph::NodeId> new_id(residual->NumNodes(),
                                      graph::kInvalidNode);
    for (graph::NodeId nid = 0;
         nid < static_cast<graph::NodeId>(compacted.parent_id.size()); ++nid) {
      new_id[compacted.parent_id[nid]] = nid;
    }
    Seeds next_seeds;
    for (graph::NodeId v : cur_seeds.legit) {
      if (new_id[v] != graph::kInvalidNode) next_seeds.legit.push_back(new_id[v]);
    }
    for (graph::NodeId v : cur_seeds.spammer) {
      if (new_id[v] != graph::kInvalidNode) {
        next_seeds.spammer.push_back(new_id[v]);
      }
    }
    std::vector<graph::NodeId> next_to_original(compacted.parent_id.size());
    for (graph::NodeId nid = 0;
         nid < static_cast<graph::NodeId>(compacted.parent_id.size()); ++nid) {
      next_to_original[nid] = to_original[compacted.parent_id[nid]];
    }
    // Re-rank the survivors: compress their original-id order to a dense
    // permutation of [0, m). Relative order is all the tie-breaks consume,
    // and it is exactly the order the identity run's monotone residual ids
    // encode, so invariance carries into every later round.
    if (!cur_rank.empty()) {
      const std::size_t m = compacted.parent_id.size();
      std::vector<graph::NodeId> by_rank(m);
      std::iota(by_rank.begin(), by_rank.end(), 0);
      std::sort(by_rank.begin(), by_rank.end(),
                [&](graph::NodeId a, graph::NodeId b) {
                  return cur_rank[compacted.parent_id[a]] <
                         cur_rank[compacted.parent_id[b]];
                });
      std::vector<graph::NodeId> next_rank(m);
      for (std::size_t i = 0; i < m; ++i) {
        next_rank[by_rank[i]] = static_cast<graph::NodeId>(i);
      }
      cur_rank = std::move(next_rank);
    }

    residual_storage = std::move(compacted.graph);
    residual = &residual_storage;
    to_original = std::move(next_to_original);
    cur_seeds = std::move(next_seeds);
  }

  if (config.target_detections != 0 &&
      result.detected.size() >= config.target_detections) {
    result.hit_target = true;
  }
  result.total_seconds = total_timer.Seconds();
  return result;
}

DetectionResult DetectFriendSpammersCompressed(
    const graph::CompressedGraphView& view, const Seeds& seeds,
    const IterativeConfig& config) {
  const graph::NodeId n = view.NumNodes();
  seeds.Validate(n);
  if (config.maar.layout != graph::LayoutPolicy::kIdentity) {
    throw std::invalid_argument(
        "DetectFriendSpammersCompressed: layout policies require the in-RAM "
        "pipeline; bake the layout into the snapshot with "
        "SaveSnapshotWithPolicy instead");
  }

  util::WallTimer total_timer;
  DetectionResult result;

  const int threads = EffectiveThreads(config.maar.num_threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (threads > 1) {
    owned_pool =
        std::make_unique<util::ThreadPool>(static_cast<std::size_t>(threads));
  }
  util::ThreadPool* pool = owned_pool.get();

  // Round 0, mirroring the in-RAM loop statement for statement (same
  // clamps, same seed schedule, same collection/trim order) with the graph
  // reads going through the view. Everything downstream of the first prune
  // fits in RAM by construction, so later rounds delegate to the in-RAM
  // pipeline on the compacted residual.
  const graph::NodeId min_region = std::max<graph::NodeId>(
      1, std::min<graph::NodeId>(config.maar.min_region_size, n / 2));
  if (config.max_rounds <= 0 || n < 2 * min_region) {
    result.total_seconds = total_timer.Seconds();
    return result;
  }

  MaarConfig maar = config.maar;
  util::WallTimer round_timer;
  MaarSolver solver(view, seeds, maar);
  const MaarCut cut = solver.Solve(pool);
  const double round_seconds = round_timer.Seconds();
  result.total_kl_runs += static_cast<std::uint64_t>(cut.kl_runs);
  result.total_switches += cut.switches;
  result.threads_used = std::max(result.threads_used, cut.threads_used);

  const double acceptance = cut.valid ? cut.cut.AcceptanceRate() : 0.0;
  if (!cut.valid ||
      (config.acceptance_rate_threshold >= 0.0 &&
       acceptance > config.acceptance_rate_threshold)) {
    result.total_seconds = total_timer.Seconds();
    return result;
  }

  RoundInfo info;
  info.cut = cut.cut;
  info.ratio = cut.ratio;
  info.acceptance_rate = acceptance;
  info.k = cut.k;
  info.solve_seconds = round_seconds;
  info.kl_runs = cut.kl_runs;
  info.switches = cut.switches;

  const std::vector<graph::NodeId>& rank = config.maar.rank;
  std::vector<graph::NodeId> flagged;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (cut.in_u[v]) flagged.push_back(v);
  }
  if (!rank.empty()) {
    std::sort(flagged.begin(), flagged.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                return rank[a] < rank[b];
              });
  }

  const bool overshoots = config.target_detections != 0 &&
                          config.trim_to_target &&
                          flagged.size() > config.target_detections;
  if (overshoots) {
    const std::size_t room =
        static_cast<std::size_t>(config.target_detections);
    graph::DecodeCursor cursor(view);
    std::vector<double> susp(flagged.size());
    for (std::size_t i = 0; i < flagged.size(); ++i) {
      susp[i] = Suspicion(cursor, flagged[i]);
    }
    std::vector<std::size_t> order(flagged.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return susp[a] > susp[b];
                     });
    std::vector<graph::NodeId> trimmed(room);
    for (std::size_t i = 0; i < room; ++i) trimmed[i] = flagged[order[i]];
    flagged = std::move(trimmed);
  }

  info.detected = flagged;
  result.detected = flagged;
  result.rounds.push_back(std::move(info));

  const bool target_hit = config.target_detections != 0 &&
                          result.detected.size() >= config.target_detections;
  if (config.max_rounds > 1 && !target_hit) {
    // Prune the entire U region (not the trimmed set), streaming the blocks.
    std::vector<char> keep(n, 1);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (cut.in_u[v]) keep[v] = 0;
    }
    graph::CompactedGraph compacted = graph::InducedSubgraph(view, keep, pool);

    std::vector<graph::NodeId> new_id(n, graph::kInvalidNode);
    for (graph::NodeId nid = 0;
         nid < static_cast<graph::NodeId>(compacted.parent_id.size()); ++nid) {
      new_id[compacted.parent_id[nid]] = nid;
    }
    Seeds next_seeds;
    for (graph::NodeId v : seeds.legit) {
      if (new_id[v] != graph::kInvalidNode) {
        next_seeds.legit.push_back(new_id[v]);
      }
    }
    for (graph::NodeId v : seeds.spammer) {
      if (new_id[v] != graph::kInvalidNode) {
        next_seeds.spammer.push_back(new_id[v]);
      }
    }

    IterativeConfig inner = config;
    inner.max_rounds = config.max_rounds - 1;
    // Shift the seed schedule so the delegate's round r draws the exact
    // seed the monolithic loop uses for round r + 1.
    inner.maar.seed = config.maar.seed + 0x9e37ULL;
    if (config.target_detections != 0) {
      inner.target_detections =
          config.target_detections - result.detected.size();
    }
    // Re-rank the survivors exactly like the monolithic loop: compress
    // their original-id order to a dense permutation of [0, m).
    if (!rank.empty()) {
      const std::size_t m = compacted.parent_id.size();
      std::vector<graph::NodeId> by_rank(m);
      std::iota(by_rank.begin(), by_rank.end(), 0);
      std::sort(by_rank.begin(), by_rank.end(),
                [&](graph::NodeId a, graph::NodeId b) {
                  return rank[compacted.parent_id[a]] <
                         rank[compacted.parent_id[b]];
                });
      std::vector<graph::NodeId> next_rank(m);
      for (std::size_t i = 0; i < m; ++i) {
        next_rank[by_rank[i]] = static_cast<graph::NodeId>(i);
      }
      inner.maar.rank = std::move(next_rank);
    }

    DetectionResult rest = DetectFriendSpammers(
        compacted.graph, next_seeds, inner,
        [pool](const graph::AugmentedGraph& residual, const Seeds& s,
               const MaarConfig& m) {
          MaarSolver inner_solver(residual, s, m);
          return inner_solver.Solve(pool);
        },
        pool);
    for (graph::NodeId id : rest.detected) {
      result.detected.push_back(compacted.parent_id[id]);
    }
    for (RoundInfo& round : rest.rounds) {
      for (graph::NodeId& id : round.detected) id = compacted.parent_id[id];
      result.rounds.push_back(std::move(round));
    }
    result.total_kl_runs += rest.total_kl_runs;
    result.total_switches += rest.total_switches;
    result.threads_used = std::max(result.threads_used, rest.threads_used);
  }

  result.hit_target = config.target_detections != 0 &&
                      result.detected.size() >= config.target_detections;
  result.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace rejecto::detect
