#include "detect/classic_kl.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rejecto::detect {
namespace {

// D(v) = external cost − internal cost = cross-part neighbors − same-part
// neighbors of v.
std::int64_t ComputeD(const graph::SocialGraph& g,
                      const std::vector<char>& in_u, graph::NodeId v) {
  std::int64_t d = 0;
  for (graph::NodeId w : g.Neighbors(v)) {
    d += (in_u[w] != in_u[v]) ? 1 : -1;
  }
  return d;
}

}  // namespace

ClassicKlResult ClassicKl(const graph::SocialGraph& g,
                          const ClassicKlConfig& config) {
  const graph::NodeId n = g.NumNodes();
  if (!(config.balance > 0.0) || !(config.balance < 1.0)) {
    throw std::invalid_argument("ClassicKl: balance must be in (0, 1)");
  }
  const auto target_u = static_cast<graph::NodeId>(
      std::max<double>(1.0, std::min<double>(n - 1.0,
                                             config.balance * n + 0.5)));

  // Random balanced initial partition.
  util::Rng rng(config.seed);
  std::vector<graph::NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  std::vector<char> in_u(n, 0);
  for (graph::NodeId i = 0; i < target_u; ++i) in_u[perm[i]] = 1;

  std::vector<std::int64_t> d(n);
  std::vector<char> locked(n);
  ClassicKlResult result;

  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++result.passes;
    for (graph::NodeId v = 0; v < n; ++v) d[v] = ComputeD(g, in_u, v);
    std::fill(locked.begin(), locked.end(), 0);

    // Candidate pools sorted by D descending; the classic pruning: the swap
    // gain D(a)+D(b)-2w(a,b) is bounded by D(a)+D(b), so scanning sorted
    // pools can stop early.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> swaps;
    std::vector<std::int64_t> gains;
    const graph::NodeId steps = std::min(target_u, n - target_u);

    for (graph::NodeId step = 0; step < steps; ++step) {
      std::vector<graph::NodeId> side_u, side_w;
      for (graph::NodeId v = 0; v < n; ++v) {
        if (locked[v]) continue;
        (in_u[v] ? side_u : side_w).push_back(v);
      }
      auto by_d_desc = [&](graph::NodeId a, graph::NodeId b) {
        return d[a] > d[b];
      };
      std::sort(side_u.begin(), side_u.end(), by_d_desc);
      std::sort(side_w.begin(), side_w.end(), by_d_desc);

      std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
      graph::NodeId best_a = graph::kInvalidNode;
      graph::NodeId best_b = graph::kInvalidNode;
      for (graph::NodeId a : side_u) {
        if (best_gain != std::numeric_limits<std::int64_t>::min() &&
            d[a] + d[side_w.front()] <= best_gain) {
          break;  // no remaining pair can beat the incumbent
        }
        for (graph::NodeId b : side_w) {
          const std::int64_t upper = d[a] + d[b];
          if (upper <= best_gain) break;
          const std::int64_t gain = upper - (g.HasEdge(a, b) ? 2 : 0);
          if (gain > best_gain) {
            best_gain = gain;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (best_a == graph::kInvalidNode) break;

      // Tentative swap (even at negative gain), lock, update D values.
      in_u[best_a] = 0;
      in_u[best_b] = 1;
      locked[best_a] = locked[best_b] = 1;
      swaps.emplace_back(best_a, best_b);
      gains.push_back(best_gain);
      for (graph::NodeId x : g.Neighbors(best_a)) {
        if (!locked[x]) d[x] = ComputeD(g, in_u, x);
      }
      for (graph::NodeId x : g.Neighbors(best_b)) {
        if (!locked[x]) d[x] = ComputeD(g, in_u, x);
      }
      // The swapped pair's own D values changed too (they are locked, so
      // only relevant through neighbors — already handled above).
      d[best_a] = ComputeD(g, in_u, best_a);
      d[best_b] = ComputeD(g, in_u, best_b);
    }

    // Best positive prefix.
    std::int64_t cum = 0, best_cum = 0;
    std::size_t best_prefix = 0;
    for (std::size_t i = 0; i < gains.size(); ++i) {
      cum += gains[i];
      if (cum > best_cum) {
        best_cum = cum;
        best_prefix = i + 1;
      }
    }
    // Undo swaps beyond the prefix.
    for (std::size_t i = swaps.size(); i > best_prefix; --i) {
      in_u[swaps[i - 1].first] = 1;
      in_u[swaps[i - 1].second] = 0;
    }
    if (best_prefix == 0) break;
  }

  std::uint64_t cross = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!in_u[v]) continue;
    for (graph::NodeId w : g.Neighbors(v)) cross += !in_u[w];
  }
  result.cross_edges = cross;
  result.in_u = std::move(in_u);
  return result;
}

}  // namespace rejecto::detect
