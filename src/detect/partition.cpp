#include "detect/partition.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "detect/bucket_list.h"
#include "util/dcheck.h"
#include "util/simd.h"

namespace rejecto::detect {

namespace {

// The fused-switch delta kernel treats the NodeAggregates array as a flat
// u32 array: word 4w is agg_[w].deg, word 4w+1 is agg_[w].cross_friends.
//
// Branch-free scalar form of the cross-friends update: sides differ exactly
// when the top bit of deg ^ v_side is set, and the count moves by +1 (differ)
// or -1 (match) — (deg ^ v_side) >> 31 is 1 or 0, so 2x-1 is the delta in
// unsigned arithmetic.
inline void CrossFriendDeltasScalar(std::uint32_t* agg_words,
                                    const graph::NodeId* row, std::size_t n,
                                    std::uint32_t v_side) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t base = static_cast<std::size_t>(row[i]) << 2;
    const std::uint32_t differs = (agg_words[base] ^ v_side) >> 31;
    agg_words[base + 1] += 2 * differs - 1;
  }
}

#if defined(__x86_64__) || defined(__i386__)
// AVX2 form: gathers 8 deg words at once so the random-access cache misses
// overlap, then applies the computed ±1 deltas scalar (the target lines are
// warm after the gather). Same integer arithmetic as the scalar form —
// bit-identical. Requires node ids < 2^29 (word index shifted left by 2
// must stay a positive s32 for the gather).
__attribute__((target("avx2"))) void CrossFriendDeltasAvx2(
    std::uint32_t* agg_words, const graph::NodeId* row, std::size_t n,
    std::uint32_t v_side) {
  const __m256i side = _mm256_set1_epi32(static_cast<int>(v_side));
  const __m256i one = _mm256_set1_epi32(1);
  alignas(32) std::uint32_t delta[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i words = _mm256_slli_epi32(vidx, 2);
    const __m256i degs = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(agg_words), words, 4);
    const __m256i differs =
        _mm256_srli_epi32(_mm256_xor_si256(degs, side), 31);
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(delta),
        _mm256_sub_epi32(_mm256_add_epi32(differs, differs), one));
    for (int j = 0; j < 8; ++j) {
      agg_words[(static_cast<std::size_t>(row[i + j]) << 2) + 1] += delta[j];
    }
  }
  CrossFriendDeltasScalar(agg_words, row + i, n - i, v_side);
}
#endif  // x86

inline void CrossFriendDeltas(std::uint32_t* agg_words,
                              const graph::NodeId* row, std::size_t n,
                              std::uint32_t v_side, bool use_avx2) {
#if defined(__x86_64__) || defined(__i386__)
  if (use_avx2 && n >= 16) {
    CrossFriendDeltasAvx2(agg_words, row, n, v_side);
    return;
  }
#else
  (void)use_avx2;
#endif
  CrossFriendDeltasScalar(agg_words, row, n, v_side);
}

}  // namespace

Partition::Partition(const graph::GraphSource& src, std::vector<char> in_u)
    : src_(src), in_u_(std::move(in_u)) {
  if (in_u_.size() != src_.NumNodes()) {
    throw std::invalid_argument("Partition: mask size mismatch");
  }
  InitAggregates();
}

void Partition::Reset(const graph::GraphSource& src,
                      const std::vector<char>& in_u) {
  if (in_u.size() != src.NumNodes()) {
    throw std::invalid_argument("Partition: mask size mismatch");
  }
  src_ = src;
  in_u_ = in_u;  // copy-assign reuses the existing capacity
  InitAggregates();
}

void Partition::InitAggregates() {
  const graph::NodeId n = static_cast<graph::NodeId>(in_u_.size());
  size_u_ = 0;
  cross_friendships_ = 0;
  rejections_into_u_ = 0;
  agg_.assign(n, NodeAggregates{});

  // Normalize the mask to strict 0/1: callers promise "non-zero means in U",
  // and normalizing makes the side comparisons below, the side bit, and the
  // SIMD zero-byte counts all agree on the same membership.
  for (graph::NodeId v = 0; v < n; ++v) in_u_[v] = in_u_[v] != 0 ? 1 : 0;

  if (util::simd::ActiveMode() == util::simd::SimdMode::kAvx2 && n > 0) {
    // Gather path: every per-node aggregate is an exact zero-byte count over
    // the normalized mask (cross = neighbors on the other side, in_from_w =
    // rejectors outside U, out_to_u = rejectees inside U), so the results
    // match the scalar loops bit for bit.
    mask_scratch_.resize(n);
    std::memcpy(mask_scratch_.data(), in_u_.data(), n);
    const unsigned char* mask = mask_scratch_.data();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (in_u_[v]) ++size_u_;
      NodeAggregates& a = agg_[v];
      a.deg = src_.FriendDegree(v) | (in_u_[v] ? kSideBit : 0u);
      const auto friends = src_.Friends(v);
      const auto rejectors = src_.Rejectors(v);
      const auto rejectees = src_.Rejectees(v);
      const std::size_t friends_out =
          util::simd::CountZeroAt(mask, friends.data(), friends.size());
      a.cross_friends = static_cast<std::uint32_t>(
          in_u_[v] ? friends_out : friends.size() - friends_out);
      a.in_from_w = static_cast<std::uint32_t>(
          util::simd::CountZeroAt(mask, rejectors.data(), rejectors.size()));
      a.out_to_u = static_cast<std::uint32_t>(
          rejectees.size() -
          util::simd::CountZeroAt(mask, rejectees.data(), rejectees.size()));
    }
  } else {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (in_u_[v]) ++size_u_;
      NodeAggregates& a = agg_[v];
      a.deg = src_.FriendDegree(v) | (in_u_[v] ? kSideBit : 0u);
      for (graph::NodeId w : src_.Friends(v)) {
        if (in_u_[v] != in_u_[w]) ++a.cross_friends;
      }
      for (graph::NodeId x : src_.Rejectors(v)) {
        if (!in_u_[x]) ++a.in_from_w;
      }
      for (graph::NodeId y : src_.Rejectees(v)) {
        if (in_u_[y]) ++a.out_to_u;
      }
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (in_u_[v]) {
      cross_friendships_ += agg_[v].cross_friends;
      rejections_into_u_ += agg_[v].in_from_w;
    }
  }
}

void Partition::Switch(graph::NodeId v) {
  if (v >= NumNodes()) throw std::out_of_range("Partition::Switch: node id");
  // Update the global totals with the pre-switch deltas.
  cross_friendships_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(cross_friendships_) + DeltaFriends(v));
  rejections_into_u_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(rejections_into_u_) + DeltaRejections(v));

  const bool was_in_u = InU(v);
  in_u_[v] = was_in_u ? 0 : 1;
  size_u_ += was_in_u ? -1 : 1;
  agg_[v].deg ^= kSideBit;

  // v's own cross-friend count flips; partners' counts shift by one.
  agg_[v].cross_friends = (agg_[v].deg & kDegMask) - agg_[v].cross_friends;
  const std::uint32_t v_side = agg_[v].deg & kSideBit;
  for (graph::NodeId w : src_.Friends(v)) {
    if (v_side != (agg_[w].deg & kSideBit)) {
      ++agg_[w].cross_friends;
    } else {
      --agg_[w].cross_friends;
    }
  }
  // v entering U (resp. leaving) makes each rejector x of v gain (lose) an
  // out-arc into U; each rejectee y of v gains (loses) an in-arc from Ū when
  // v leaves U (resp. enters).
  const std::int32_t into_u = was_in_u ? -1 : 1;
  for (graph::NodeId x : src_.Rejectors(v)) {
    agg_[x].out_to_u = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[x].out_to_u) + into_u);
  }
  for (graph::NodeId y : src_.Rejectees(v)) {
    agg_[y].in_from_w = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[y].in_from_w) - into_u);
  }
}

void Partition::SwitchFused(graph::NodeId v, double k, BucketList& bl,
                            util::AlignedVector<graph::NodeId>& touched,
                            const graph::NodeId* rank) {
  REJECTO_DCHECK(v < NumNodes(), "Partition::SwitchFused: node id");
  touched.clear();

  cross_friendships_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(cross_friendships_) + DeltaFriends(v));
  rejections_into_u_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(rejections_into_u_) + DeltaRejections(v));

  const bool was_in_u = InU(v);
  in_u_[v] = was_in_u ? 0 : 1;
  size_u_ += was_in_u ? -1 : 1;
  agg_[v].deg ^= kSideBit;

  const auto friends = src_.Friends(v);
  const auto rejectors = src_.Rejectors(v);
  const auto rejectees = src_.Rejectees(v);

  // The touched buffer is the three adjacency rows back to back — one bulk
  // memcpy per row instead of a push_back per neighbor. Duplicates (a node
  // that is both friend and rejector/rejectee of v) stay in the buffer; the
  // deferred sweep makes them no-ops.
  touched.Append(friends.data(), friends.size());
  touched.Append(rejectors.data(), rejectors.size());
  touched.Append(rejectees.data(), rejectees.size());

  // Aggregate deltas, branch-free (AVX2-gathered on long rows): identical
  // integer arithmetic to Switch.
  agg_[v].cross_friends = (agg_[v].deg & kDegMask) - agg_[v].cross_friends;
  const std::uint32_t v_side = agg_[v].deg & kSideBit;
  const bool use_avx2 =
      util::simd::ActiveMode() == util::simd::SimdMode::kAvx2 &&
      NumNodes() < (1u << 29);
  static_assert(sizeof(NodeAggregates) == 4 * sizeof(std::uint32_t));
  CrossFriendDeltas(reinterpret_cast<std::uint32_t*>(agg_.data()),
                    friends.data(), friends.size(), v_side, use_avx2);
  const std::size_t friends_end = friends.size();
  const std::int32_t into_u = was_in_u ? -1 : 1;
  for (graph::NodeId x : rejectors) {
    agg_[x].out_to_u = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[x].out_to_u) + into_u);
  }
  const std::size_t rejectors_end = friends_end + rejectors.size();
  for (graph::NodeId y : rejectees) {
    agg_[y].in_from_w = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[y].in_from_w) - into_u);
  }

  // Layout invariance (rank != null): each adjacency segment holds a
  // duplicate-free node set ordered by CURRENT (layout) id; re-sorting it
  // by original id reproduces the identity layout's segment order, and
  // keeping the segment boundaries preserves which occurrence of a
  // cross-segment duplicate relinks first. The identity run's relink
  // sequence is thus replayed node-for-node under any layout.
  if (rank != nullptr) {
    auto by_rank = [rank](graph::NodeId a, graph::NodeId b) {
      return rank[a] < rank[b];
    };
    auto begin = touched.begin();
    std::sort(begin, begin + static_cast<std::ptrdiff_t>(friends_end),
              by_rank);
    std::sort(begin + static_cast<std::ptrdiff_t>(friends_end),
              begin + static_cast<std::ptrdiff_t>(rejectors_end), by_rank);
    std::sort(begin + static_cast<std::ptrdiff_t>(rejectors_end),
              touched.end(), by_rank);
  }

  // Deferred bucket maintenance with the final aggregates: the first
  // occurrence of each neighbor relinks it (head of its new bucket), later
  // occurrences and unchanged buckets are no-ops inside Adjust — the exact
  // relink sequence of the unfused refresh loop. The gain is recomputed
  // from the integer aggregates (never accumulated in floating point), so
  // quantization and pick order match the unfused path bit for bit. The
  // Contains guard skips the gain recompute for nodes already popped or
  // locked — Adjust would ignore them anyway. The link records are
  // prefetched a fixed lookahead ahead of the sweep (the old code issued
  // the prefetches during the delta traversal, which on long rows evicted
  // the early lines before the sweep reached them).
  const std::size_t count = touched.size();
  constexpr std::size_t kLookahead = 8;
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) bl.PrefetchNode(touched[i + kLookahead]);
    const graph::NodeId w = touched[i];
    if (bl.Contains(w)) bl.Adjust(w, -DeltaObjective(w, k));
  }
}

graph::CutQuantities Partition::Quantities() const noexcept {
  graph::CutQuantities q;
  q.cross_friendships = cross_friendships_;
  q.rejections_into_u = rejections_into_u_;
  // rejections_from_u is not part of the objective, so it is not tracked
  // incrementally; derive it: for v ∈ Ū, arcs into v from U equal
  // InDegree(v) − in_from_w(v).
  std::uint64_t from_u = 0;
  for (graph::NodeId v = 0; v < NumNodes(); ++v) {
    if (!in_u_[v]) {
      from_u += src_.RejInDegree(v) - agg_[v].in_from_w;
    }
  }
  q.rejections_from_u = from_u;
  return q;
}

}  // namespace rejecto::detect
