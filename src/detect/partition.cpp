#include "detect/partition.h"

#include <stdexcept>

namespace rejecto::detect {

Partition::Partition(const graph::AugmentedGraph& g, std::vector<char> in_u)
    : g_(&g), in_u_(std::move(in_u)) {
  const graph::NodeId n = g.NumNodes();
  if (in_u_.size() != n) {
    throw std::invalid_argument("Partition: mask size mismatch");
  }
  cross_friends_.assign(n, 0);
  in_from_w_.assign(n, 0);
  out_to_u_.assign(n, 0);

  const auto& fr = g.Friendships();
  const auto& rej = g.Rejections();
  for (graph::NodeId v = 0; v < n; ++v) {
    if (in_u_[v]) ++size_u_;
    for (graph::NodeId w : fr.Neighbors(v)) {
      if (in_u_[v] != in_u_[w]) ++cross_friends_[v];
    }
    for (graph::NodeId x : rej.Rejectors(v)) {
      if (!in_u_[x]) ++in_from_w_[v];
    }
    for (graph::NodeId y : rej.Rejectees(v)) {
      if (in_u_[y]) ++out_to_u_[v];
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (in_u_[v]) {
      cross_friendships_ += cross_friends_[v];
      rejections_into_u_ += in_from_w_[v];
    }
  }
}

void Partition::Switch(graph::NodeId v) {
  if (v >= NumNodes()) throw std::out_of_range("Partition::Switch: node id");
  // Update the global totals with the pre-switch deltas.
  cross_friendships_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(cross_friendships_) + DeltaFriends(v));
  rejections_into_u_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(rejections_into_u_) + DeltaRejections(v));

  const bool was_in_u = InU(v);
  in_u_[v] = was_in_u ? 0 : 1;
  size_u_ += was_in_u ? -1 : 1;

  const auto& fr = g_->Friendships();
  const auto& rej = g_->Rejections();

  // v's own cross-friend count flips; partners' counts shift by one.
  cross_friends_[v] = fr.Degree(v) - cross_friends_[v];
  for (graph::NodeId w : fr.Neighbors(v)) {
    if (in_u_[v] != in_u_[w]) {
      ++cross_friends_[w];
    } else {
      --cross_friends_[w];
    }
  }
  // v entering U (resp. leaving) makes each rejector x of v gain (lose) an
  // out-arc into U; each rejectee y of v gains (loses) an in-arc from Ū when
  // v leaves U (resp. enters).
  const std::int32_t into_u = was_in_u ? -1 : 1;
  for (graph::NodeId x : rej.Rejectors(v)) {
    out_to_u_[x] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(out_to_u_[x]) + into_u);
  }
  for (graph::NodeId y : rej.Rejectees(v)) {
    in_from_w_[y] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(in_from_w_[y]) - into_u);
  }
}

graph::CutQuantities Partition::Quantities() const noexcept {
  graph::CutQuantities q;
  q.cross_friendships = cross_friendships_;
  q.rejections_into_u = rejections_into_u_;
  // rejections_from_u is not part of the objective, so it is not tracked
  // incrementally; derive it: for v ∈ Ū, arcs into v from U equal
  // InDegree(v) − in_from_w(v).
  std::uint64_t from_u = 0;
  for (graph::NodeId v = 0; v < NumNodes(); ++v) {
    if (!in_u_[v]) {
      from_u += g_->Rejections().InDegree(v) - in_from_w_[v];
    }
  }
  q.rejections_from_u = from_u;
  return q;
}

}  // namespace rejecto::detect
