#include "detect/partition.h"

#include <algorithm>
#include <stdexcept>

#include "detect/bucket_list.h"
#include "util/dcheck.h"

namespace rejecto::detect {

Partition::Partition(const graph::AugmentedGraph& g, std::vector<char> in_u)
    : g_(&g), in_u_(std::move(in_u)) {
  if (in_u_.size() != g.NumNodes()) {
    throw std::invalid_argument("Partition: mask size mismatch");
  }
  InitAggregates();
}

void Partition::Reset(const graph::AugmentedGraph& g,
                      const std::vector<char>& in_u) {
  if (in_u.size() != g.NumNodes()) {
    throw std::invalid_argument("Partition: mask size mismatch");
  }
  g_ = &g;
  in_u_ = in_u;  // copy-assign reuses the existing capacity
  InitAggregates();
}

void Partition::InitAggregates() {
  const graph::NodeId n = static_cast<graph::NodeId>(in_u_.size());
  size_u_ = 0;
  cross_friendships_ = 0;
  rejections_into_u_ = 0;
  agg_.assign(n, NodeAggregates{});

  const auto& fr = g_->Friendships();
  const auto& rej = g_->Rejections();
  for (graph::NodeId v = 0; v < n; ++v) {
    if (in_u_[v]) ++size_u_;
    NodeAggregates& a = agg_[v];
    a.deg = fr.Degree(v) | (in_u_[v] ? kSideBit : 0u);
    for (graph::NodeId w : fr.Neighbors(v)) {
      if (in_u_[v] != in_u_[w]) ++a.cross_friends;
    }
    for (graph::NodeId x : rej.Rejectors(v)) {
      if (!in_u_[x]) ++a.in_from_w;
    }
    for (graph::NodeId y : rej.Rejectees(v)) {
      if (in_u_[y]) ++a.out_to_u;
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (in_u_[v]) {
      cross_friendships_ += agg_[v].cross_friends;
      rejections_into_u_ += agg_[v].in_from_w;
    }
  }
}

void Partition::Switch(graph::NodeId v) {
  if (v >= NumNodes()) throw std::out_of_range("Partition::Switch: node id");
  // Update the global totals with the pre-switch deltas.
  cross_friendships_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(cross_friendships_) + DeltaFriends(v));
  rejections_into_u_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(rejections_into_u_) + DeltaRejections(v));

  const bool was_in_u = InU(v);
  in_u_[v] = was_in_u ? 0 : 1;
  size_u_ += was_in_u ? -1 : 1;
  agg_[v].deg ^= kSideBit;

  const auto& fr = g_->Friendships();
  const auto& rej = g_->Rejections();

  // v's own cross-friend count flips; partners' counts shift by one.
  agg_[v].cross_friends = (agg_[v].deg & kDegMask) - agg_[v].cross_friends;
  const std::uint32_t v_side = agg_[v].deg & kSideBit;
  for (graph::NodeId w : fr.Neighbors(v)) {
    if (v_side != (agg_[w].deg & kSideBit)) {
      ++agg_[w].cross_friends;
    } else {
      --agg_[w].cross_friends;
    }
  }
  // v entering U (resp. leaving) makes each rejector x of v gain (lose) an
  // out-arc into U; each rejectee y of v gains (loses) an in-arc from Ū when
  // v leaves U (resp. enters).
  const std::int32_t into_u = was_in_u ? -1 : 1;
  for (graph::NodeId x : rej.Rejectors(v)) {
    agg_[x].out_to_u = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[x].out_to_u) + into_u);
  }
  for (graph::NodeId y : rej.Rejectees(v)) {
    agg_[y].in_from_w = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[y].in_from_w) - into_u);
  }
}

void Partition::SwitchFused(graph::NodeId v, double k, BucketList& bl,
                            std::vector<graph::NodeId>& touched,
                            const graph::NodeId* rank) {
  REJECTO_DCHECK(v < NumNodes(), "Partition::SwitchFused: node id");
  touched.clear();

  cross_friendships_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(cross_friendships_) + DeltaFriends(v));
  rejections_into_u_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(rejections_into_u_) + DeltaRejections(v));

  const bool was_in_u = InU(v);
  in_u_[v] = was_in_u ? 0 : 1;
  size_u_ += was_in_u ? -1 : 1;
  agg_[v].deg ^= kSideBit;

  const auto& fr = g_->Friendships();
  const auto& rej = g_->Rejections();

  // Single traversal: apply the aggregate deltas (as in Switch) and record
  // each touched neighbor. Duplicates (a node that is both friend and
  // rejector/rejectee of v) stay in the buffer; the deferred sweep makes
  // them no-ops.
  agg_[v].cross_friends = (agg_[v].deg & kDegMask) - agg_[v].cross_friends;
  const std::uint32_t v_side = agg_[v].deg & kSideBit;
  for (graph::NodeId w : fr.Neighbors(v)) {
    NodeAggregates& aw = agg_[w];
    if (v_side != (aw.deg & kSideBit)) {
      ++aw.cross_friends;
    } else {
      --aw.cross_friends;
    }
    bl.PrefetchNode(w);
    touched.push_back(w);
  }
  const std::size_t friends_end = touched.size();
  const std::int32_t into_u = was_in_u ? -1 : 1;
  for (graph::NodeId x : rej.Rejectors(v)) {
    agg_[x].out_to_u = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[x].out_to_u) + into_u);
    bl.PrefetchNode(x);
    touched.push_back(x);
  }
  const std::size_t rejectors_end = touched.size();
  for (graph::NodeId y : rej.Rejectees(v)) {
    agg_[y].in_from_w = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(agg_[y].in_from_w) - into_u);
    bl.PrefetchNode(y);
    touched.push_back(y);
  }

  // Layout invariance (rank != null): each adjacency segment holds a
  // duplicate-free node set ordered by CURRENT (layout) id; re-sorting it
  // by original id reproduces the identity layout's segment order, and
  // keeping the segment boundaries preserves which occurrence of a
  // cross-segment duplicate relinks first. The identity run's relink
  // sequence is thus replayed node-for-node under any layout.
  if (rank != nullptr) {
    auto by_rank = [rank](graph::NodeId a, graph::NodeId b) {
      return rank[a] < rank[b];
    };
    auto begin = touched.begin();
    std::sort(begin, begin + static_cast<std::ptrdiff_t>(friends_end),
              by_rank);
    std::sort(begin + static_cast<std::ptrdiff_t>(friends_end),
              begin + static_cast<std::ptrdiff_t>(rejectors_end), by_rank);
    std::sort(begin + static_cast<std::ptrdiff_t>(rejectors_end),
              touched.end(), by_rank);
  }

  // Deferred bucket maintenance with the final aggregates: the first
  // occurrence of each neighbor relinks it (head of its new bucket), later
  // occurrences and unchanged buckets are no-ops inside Adjust — the exact
  // relink sequence of the unfused refresh loop. The gain is recomputed
  // from the integer aggregates (never accumulated in floating point), so
  // quantization and pick order match the unfused path bit for bit. The
  // Contains guard skips the gain recompute for nodes already popped or
  // locked — Adjust would ignore them anyway.
  for (graph::NodeId w : touched) {
    if (bl.Contains(w)) bl.Adjust(w, -DeltaObjective(w, k));
  }
}

graph::CutQuantities Partition::Quantities() const noexcept {
  graph::CutQuantities q;
  q.cross_friendships = cross_friendships_;
  q.rejections_into_u = rejections_into_u_;
  // rejections_from_u is not part of the objective, so it is not tracked
  // incrementally; derive it: for v ∈ Ū, arcs into v from U equal
  // InDegree(v) − in_from_w(v).
  std::uint64_t from_u = 0;
  for (graph::NodeId v = 0; v < NumNodes(); ++v) {
    if (!in_u_[v]) {
      from_u += g_->Rejections().InDegree(v) - agg_[v].in_from_w;
    }
  }
  q.rejections_from_u = from_u;
  return q;
}

}  // namespace rejecto::detect
