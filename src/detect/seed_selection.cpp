#include "detect/seed_selection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rejecto::detect {

SeedCandidates SelectSeedCandidates(const graph::SocialGraph& g,
                                    const SeedSelectionConfig& config) {
  if (config.total_candidates == 0) {
    throw std::invalid_argument("SelectSeedCandidates: zero budget");
  }
  if (config.max_community_fraction <= 0.0 ||
      config.max_community_fraction > 1.0) {
    throw std::invalid_argument(
        "SelectSeedCandidates: max_community_fraction in (0, 1]");
  }
  util::Rng rng(config.seed);
  const auto communities = graph::LabelPropagation(g, rng);
  auto members = communities.Members();

  // Largest communities first; they anchor the legitimate region.
  std::sort(members.begin(), members.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });

  SeedCandidates out;
  out.num_communities = communities.num_communities;
  const double total_nodes = static_cast<double>(g.NumNodes());
  graph::NodeId budget = std::min<graph::NodeId>(
      config.total_candidates, g.NumNodes());

  // Proportional allocation with a per-community cap, in rounds so budget
  // left by capped communities flows to the next ones.
  for (const auto& community : members) {
    if (budget == 0) break;
    if (community.empty()) continue;
    const double share =
        static_cast<double>(community.size()) / total_nodes;
    auto want = static_cast<graph::NodeId>(std::llround(
        std::ceil(share * static_cast<double>(config.total_candidates))));
    const auto cap = static_cast<graph::NodeId>(std::max<double>(
        1.0, config.max_community_fraction *
                 static_cast<double>(community.size())));
    want = std::min({want, cap, budget});
    if (want == 0) continue;
    for (std::uint64_t idx :
         rng.SampleWithoutReplacement(community.size(), want)) {
      out.nodes.push_back(community[static_cast<std::size_t>(idx)]);
    }
    budget -= want;
    ++out.communities_covered;
  }
  return out;
}

}  // namespace rejecto::detect
