#include "detect/bucket_list.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rejecto::detect {

BucketList::BucketList(graph::NodeId num_nodes, double max_abs_gain,
                       double resolution) {
  Reset(num_nodes, max_abs_gain, resolution);
}

void BucketList::Reset(graph::NodeId num_nodes, double max_abs_gain,
                       double resolution) {
  if (resolution <= 0.0 || !std::isfinite(max_abs_gain) || max_abs_gain < 0) {
    throw std::invalid_argument("BucketList: bad resolution or gain bound");
  }
  resolution_ = resolution;
  max_bucket_ = static_cast<std::int32_t>(
      std::llround(std::ceil(max_abs_gain * resolution))) + 1;
  const std::size_t num_buckets =
      static_cast<std::size_t>(2 * max_bucket_) + 1;
  const std::size_t nodes = static_cast<std::size_t>(num_nodes);
  if (size_ != 0) {
    // Dirty workspace (a pass was abandoned mid-way): wipe everything.
    heads_.assign(std::max(num_buckets, heads_.size()), kNil);
    links_.assign(std::max(nodes, links_.size()), NodeLink{});
    size_ = 0;
  } else {
    // Empty invariant: Unlink leaves every head at kNil and every bucket
    // index at kAbsent, so existing capacity needs no touch-up and a
    // steady-state Reset allocates nothing.
    if (heads_.size() < num_buckets) heads_.resize(num_buckets, kNil);
    if (links_.size() < nodes) links_.resize(nodes, NodeLink{});
  }
  cur_max_ = -max_bucket_;
}

std::int32_t BucketList::Quantize(double gain) const noexcept {
  return QuantizeClamped(gain);
}

void BucketList::Insert(graph::NodeId v, double gain) {
  NodeLink& lv = links_[v];
  if (lv.bucket != kAbsent) {
    throw std::invalid_argument("BucketList::Insert: node already present");
  }
  const std::int32_t b = QuantizeClamped(gain);
  lv.bucket = b;
  const std::size_t h = static_cast<std::size_t>(b + max_bucket_);
  lv.next = heads_[h];
  lv.prev = kNil;
  if (heads_[h] != kNil) {
    links_[static_cast<std::size_t>(heads_[h])].prev =
        static_cast<std::int32_t>(v);
  }
  heads_[h] = static_cast<std::int32_t>(v);
  if (b > cur_max_) cur_max_ = b;
  ++size_;
}

void BucketList::Unlink(graph::NodeId v) {
  NodeLink& lv = links_[v];
  const std::size_t h = static_cast<std::size_t>(lv.bucket + max_bucket_);
  if (lv.prev != kNil) {
    links_[static_cast<std::size_t>(lv.prev)].next = lv.next;
  } else {
    heads_[h] = lv.next;
  }
  if (lv.next != kNil) links_[static_cast<std::size_t>(lv.next)].prev = lv.prev;
  lv.bucket = kAbsent;
  --size_;
}

void BucketList::Remove(graph::NodeId v) {
  if (links_[v].bucket == kAbsent) {
    throw std::invalid_argument("BucketList::Remove: node not present");
  }
  Unlink(v);
}

void BucketList::Update(graph::NodeId v, double new_gain) {
  if (links_[v].bucket == kAbsent) {
    throw std::invalid_argument("BucketList::Update: node not present");
  }
  const std::int32_t b = QuantizeClamped(new_gain);
  if (b == links_[v].bucket) return;
  Unlink(v);
  Insert(v, new_gain);
}

graph::NodeId BucketList::MaxGainNode() const noexcept {
  if (size_ == 0) return graph::kInvalidNode;
  std::int32_t b = cur_max_;
  while (heads_[static_cast<std::size_t>(b + max_bucket_)] == kNil) --b;
  return static_cast<graph::NodeId>(
      heads_[static_cast<std::size_t>(b + max_bucket_)]);
}

void BucketList::CollectTop(std::size_t k,
                            std::vector<graph::NodeId>& out) const {
  if (size_ == 0 || k == 0) return;
  std::size_t collected = 0;
  for (std::int32_t b = cur_max_; b >= -max_bucket_ && collected < k; --b) {
    for (std::int32_t v = heads_[static_cast<std::size_t>(b + max_bucket_)];
         v != kNil && collected < k;
         v = links_[static_cast<std::size_t>(v)].next) {
      out.push_back(static_cast<graph::NodeId>(v));
      ++collected;
    }
  }
}

graph::NodeId BucketList::PopMax() {
  if (size_ == 0) return graph::kInvalidNode;
  while (heads_[static_cast<std::size_t>(cur_max_ + max_bucket_)] == kNil) {
    --cur_max_;  // lazily descend; raised again on Insert
  }
  const auto v = static_cast<graph::NodeId>(
      heads_[static_cast<std::size_t>(cur_max_ + max_bucket_)]);
  Unlink(v);
  return v;
}

}  // namespace rejecto::detect
