#include "detect/bucket_list.h"

#include <cmath>
#include <stdexcept>

namespace rejecto::detect {

BucketList::BucketList(graph::NodeId num_nodes, double max_abs_gain,
                       double resolution)
    : resolution_(resolution) {
  if (resolution <= 0.0 || !std::isfinite(max_abs_gain) || max_abs_gain < 0) {
    throw std::invalid_argument("BucketList: bad resolution or gain bound");
  }
  max_bucket_ = static_cast<std::int32_t>(
      std::llround(std::ceil(max_abs_gain * resolution))) + 1;
  heads_.assign(static_cast<std::size_t>(2 * max_bucket_) + 1, kNil);
  next_.assign(num_nodes, kNil);
  prev_.assign(num_nodes, kNil);
  bucket_of_.assign(num_nodes, kAbsent);
  cur_max_ = -max_bucket_;
}

std::int32_t BucketList::QuantizeClamped(double gain) const noexcept {
  const double scaled = gain * resolution_;
  if (scaled >= static_cast<double>(max_bucket_)) return max_bucket_;
  if (scaled <= static_cast<double>(-max_bucket_)) return -max_bucket_;
  return static_cast<std::int32_t>(std::llround(scaled));
}

void BucketList::Insert(graph::NodeId v, double gain) {
  if (bucket_of_[v] != kAbsent) {
    throw std::invalid_argument("BucketList::Insert: node already present");
  }
  const std::int32_t b = QuantizeClamped(gain);
  bucket_of_[v] = b;
  const std::size_t h = static_cast<std::size_t>(b + max_bucket_);
  next_[v] = heads_[h];
  prev_[v] = kNil;
  if (heads_[h] != kNil) prev_[static_cast<std::size_t>(heads_[h])] = static_cast<std::int32_t>(v);
  heads_[h] = static_cast<std::int32_t>(v);
  if (b > cur_max_) cur_max_ = b;
  ++size_;
}

void BucketList::Unlink(graph::NodeId v) {
  const std::size_t h = static_cast<std::size_t>(bucket_of_[v] + max_bucket_);
  if (prev_[v] != kNil) {
    next_[static_cast<std::size_t>(prev_[v])] = next_[v];
  } else {
    heads_[h] = next_[v];
  }
  if (next_[v] != kNil) prev_[static_cast<std::size_t>(next_[v])] = prev_[v];
  bucket_of_[v] = kAbsent;
  --size_;
}

void BucketList::Remove(graph::NodeId v) {
  if (bucket_of_[v] == kAbsent) {
    throw std::invalid_argument("BucketList::Remove: node not present");
  }
  Unlink(v);
}

void BucketList::Update(graph::NodeId v, double new_gain) {
  if (bucket_of_[v] == kAbsent) {
    throw std::invalid_argument("BucketList::Update: node not present");
  }
  const std::int32_t b = QuantizeClamped(new_gain);
  if (b == bucket_of_[v]) return;
  Unlink(v);
  Insert(v, new_gain);
}

graph::NodeId BucketList::MaxGainNode() const noexcept {
  if (size_ == 0) return graph::kInvalidNode;
  std::int32_t b = cur_max_;
  while (heads_[static_cast<std::size_t>(b + max_bucket_)] == kNil) --b;
  return static_cast<graph::NodeId>(
      heads_[static_cast<std::size_t>(b + max_bucket_)]);
}

void BucketList::CollectTop(std::size_t k,
                            std::vector<graph::NodeId>& out) const {
  if (size_ == 0 || k == 0) return;
  std::size_t collected = 0;
  for (std::int32_t b = cur_max_; b >= -max_bucket_ && collected < k; --b) {
    for (std::int32_t v = heads_[static_cast<std::size_t>(b + max_bucket_)];
         v != kNil && collected < k;
         v = next_[static_cast<std::size_t>(v)]) {
      out.push_back(static_cast<graph::NodeId>(v));
      ++collected;
    }
  }
}

graph::NodeId BucketList::PopMax() {
  if (size_ == 0) return graph::kInvalidNode;
  while (heads_[static_cast<std::size_t>(cur_max_ + max_bucket_)] == kNil) {
    --cur_max_;  // lazily descend; raised again on Insert
  }
  const auto v = static_cast<graph::NodeId>(
      heads_[static_cast<std::size_t>(cur_max_ + max_bucket_)]);
  Unlink(v);
  return v;
}

}  // namespace rejecto::detect
