// Classic Kernighan–Lin graph bisection (paper §IV-C, [25]).
//
// The textbook algorithm Rejecto extends: bipartition an *undirected*
// graph into parts of fixed sizes (|U|/|V| ≈ r) minimizing cross-part
// edges, by repeated passes of greedy node-PAIR interchanges — each pass
// builds a sequence of best-gain swaps (executed tentatively even at
// negative gain to climb out of local minima) and commits the prefix with
// the largest cumulative reduction.
//
// Included for completeness and for the ablation that motivates §IV-D's
// extension: pair interchange preserves part sizes, but the
// spammer/legitimate split has *unknown* region sizes and two edge types
// with opposite weights — which is why Rejecto replaces pair swaps with
// single-node switching over the weighted augmented graph (ExtendedKl).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::detect {

struct ClassicKlConfig {
  double balance = 0.5;  // target |U| / |V|, in (0, 1)
  int max_passes = 16;
  std::uint64_t seed = 1;  // initial random balanced partition
};

struct ClassicKlResult {
  std::vector<char> in_u;
  std::uint64_t cross_edges = 0;
  int passes = 0;
};

// Bisects g per the config. The returned |U| is round(balance * n) exactly
// (pair interchange preserves it).
ClassicKlResult ClassicKl(const graph::SocialGraph& g,
                          const ClassicKlConfig& config);

}  // namespace rejecto::detect
