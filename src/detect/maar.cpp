#include "detect/maar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rejecto::detect {

MaarSolver::MaarSolver(const graph::AugmentedGraph& g, Seeds seeds,
                       MaarConfig config)
    : MaarSolver(g, std::move(seeds), config,
                 [](const graph::AugmentedGraph& graph,
                    std::vector<char> init, const std::vector<char>& locked,
                    const KlConfig& kl) {
                   return ExtendedKl(graph, std::move(init), locked, kl);
                 }) {}

MaarSolver::MaarSolver(const graph::AugmentedGraph& g, Seeds seeds,
                       MaarConfig config, KlRunner kl_runner)
    : g_(g),
      seeds_(std::move(seeds)),
      config_(config),
      kl_runner_(std::move(kl_runner)) {
  seeds_.Validate(g.NumNodes());
  if (config_.k_min <= 0 || config_.k_max < config_.k_min ||
      config_.k_scale <= 1.0) {
    throw std::invalid_argument("MaarSolver: invalid k sweep");
  }
  if (!kl_runner_) {
    throw std::invalid_argument("MaarSolver: null KL runner");
  }
  locked_ = BuildLockedMask(g.NumNodes(), seeds_);
}

std::vector<std::vector<char>> MaarSolver::InitialPartitions(
    util::Rng& rng) const {
  const graph::NodeId n = g_.NumNodes();
  std::vector<std::vector<char>> inits;

  // Rejection heuristic: any node that ever got rejected starts in U. The
  // sweep's KL runs pull sporadically-rejected legitimate users back out.
  std::vector<char> heur(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g_.Rejections().InDegree(v) > 0) heur[v] = 1;
  }
  ApplySeedPlacement(heur, seeds_);
  inits.push_back(std::move(heur));

  for (int i = 0; i < config_.num_random_inits; ++i) {
    std::vector<char> mask(n, 0);
    for (graph::NodeId v = 0; v < n; ++v) {
      mask[v] = rng.NextBool(config_.random_init_fraction) ? 1 : 0;
    }
    ApplySeedPlacement(mask, seeds_);
    inits.push_back(std::move(mask));
  }
  return inits;
}

bool MaarSolver::IsValid(const std::vector<char>& in_u,
                         const graph::CutQuantities& cut) const {
  graph::NodeId size_u = 0;
  for (char c : in_u) size_u += (c != 0);
  const graph::NodeId size_w = g_.NumNodes() - size_u;
  // Clamp the minimum region size only when infeasible: no cut of an
  // n-node graph can put min_region_size nodes on both sides once
  // n < 2*min_region_size, so cap it at n/2 (small graphs and late residual
  // graphs stay solvable); the configured value is honored otherwise.
  const graph::NodeId min_region = std::max<graph::NodeId>(
      1, std::min<graph::NodeId>(config_.min_region_size,
                                 g_.NumNodes() / 2));
  return size_u >= min_region && size_w >= min_region &&
         static_cast<double>(size_u) <=
             config_.max_region_fraction *
                 static_cast<double>(g_.NumNodes()) &&
         cut.rejections_into_u > 0;
}

MaarCut MaarSolver::Solve() {
  util::Rng rng(config_.seed);
  const auto inits = InitialPartitions(rng);

  MaarCut best;
  best.ratio = std::numeric_limits<double>::infinity();
  int kl_runs = 0;

  auto consider = [&](KlResult&& r, double k) {
    ++kl_runs;
    if (!IsValid(r.in_u, r.cut)) return false;
    const double ratio = r.cut.FriendsToRejectionsRatio();
    const bool better =
        ratio < best.ratio - 1e-12 ||
        (std::abs(ratio - best.ratio) <= 1e-12 &&
         r.cut.rejections_into_u > best.cut.rejections_into_u);
    if (better) {
      best.valid = true;
      best.in_u = std::move(r.in_u);
      best.cut = r.cut;
      best.ratio = ratio;
      best.k = k;
      return true;
    }
    return false;
  };

  KlConfig kl = config_.kl;
  for (double k = config_.k_min; k <= config_.k_max * (1.0 + 1e-9);
       k *= config_.k_scale) {
    kl.k = k;
    for (const auto& init : inits) {
      consider(kl_runner_(g_, init, locked_, kl), k);
    }
  }

  // Dinkelbach refinement: with k set to the best cut's own ratio, the cut's
  // objective is exactly 0, so any strictly-negative-objective cut found by
  // KL has a strictly smaller ratio.
  for (int round = 0; round < config_.dinkelbach_rounds && best.valid;
       ++round) {
    const double k = best.ratio;
    if (!(k > 0) || !std::isfinite(k)) break;  // perfect cut; cannot improve
    kl.k = k;
    if (!consider(kl_runner_(g_, best.in_u, locked_, kl), k)) break;
  }

  best.kl_runs = kl_runs;
  return best;
}

}  // namespace rejecto::detect
