#include "detect/maar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "util/timer.h"

namespace rejecto::detect {

int EffectiveThreads(int num_threads) {
  if (num_threads == 0) {
    return static_cast<int>(util::HardwareThreads());
  }
  return std::max(1, num_threads);
}

MaarSolver::MaarSolver(const graph::AugmentedGraph& g, Seeds seeds,
                       MaarConfig config)
    : MaarSolver(g, std::move(seeds), config,
                 [](const graph::AugmentedGraph& graph,
                    const std::vector<char>& init,
                    const std::vector<char>& locked, const KlConfig& kl,
                    KlScratch* scratch) {
                   return ExtendedKl(graph, init, locked, kl, scratch);
                 }) {}

MaarSolver::MaarSolver(const graph::AugmentedGraph& g, Seeds seeds,
                       MaarConfig config, KlRunner kl_runner)
    : g_(&g),
      seeds_(std::move(seeds)),
      config_(std::move(config)),
      kl_runner_(std::move(kl_runner)) {
  if (!kl_runner_) {
    throw std::invalid_argument("MaarSolver: null KL runner");
  }
  ValidateConfig();
}

MaarSolver::MaarSolver(const graph::CompressedGraphView& view, Seeds seeds,
                       MaarConfig config)
    : view_(&view), seeds_(std::move(seeds)), config_(std::move(config)) {
  if (config_.layout != graph::LayoutPolicy::kIdentity) {
    throw std::invalid_argument(
        "MaarSolver: layout policies require the in-RAM graph; save the "
        "snapshot with SaveSnapshotWithPolicy instead");
  }
  ValidateConfig();
}

void MaarSolver::ValidateConfig() {
  const graph::NodeId n = NumNodes();
  seeds_.Validate(n);
  if (config_.k_min <= 0 || config_.k_max < config_.k_min ||
      config_.k_scale <= 1.0) {
    throw std::invalid_argument("MaarSolver: invalid k sweep");
  }
  if (!config_.extra_init.empty() && config_.extra_init.size() != n) {
    throw std::invalid_argument("MaarSolver: extra_init size mismatch");
  }
  if (!config_.rank.empty()) {
    if (config_.rank.size() != n) {
      throw std::invalid_argument("MaarSolver: rank size mismatch");
    }
    rank_order_.assign(n, graph::kInvalidNode);
    for (graph::NodeId v = 0; v < n; ++v) {
      const graph::NodeId r = config_.rank[v];
      if (r >= n || rank_order_[r] != graph::kInvalidNode) {
        throw std::invalid_argument("MaarSolver: rank is not a permutation");
      }
      rank_order_[r] = v;
    }
  }
  // Point the per-cell KL configs at OUR copy of the rank array; a stale
  // pointer copied in from the caller's config must never survive.
  config_.kl.rank = config_.rank.empty() ? nullptr : &config_.rank;
  locked_ = BuildLockedMask(n, seeds_);
}

std::vector<std::vector<char>> MaarSolver::InitialPartitions(
    util::Rng& rng) const {
  const graph::NodeId n = NumNodes();
  std::vector<std::vector<char>> inits;

  // Rejection heuristic: any node that ever got rejected starts in U. The
  // sweep's KL runs pull sporadically-rejected legitimate users back out.
  // Out-of-core mode scans the rejection-in degrees through a throwaway
  // cursor — a sequential pass, so each block decodes exactly once.
  std::vector<char> heur(n, 0);
  if (g_ != nullptr) {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g_->Rejections().InDegree(v) > 0) heur[v] = 1;
    }
  } else {
    graph::DecodeCursor cursor(*view_);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (cursor.InDegree(v) > 0) heur[v] = 1;
    }
  }
  ApplySeedPlacement(heur, seeds_);
  inits.push_back(std::move(heur));

  for (int i = 0; i < config_.num_random_inits; ++i) {
    std::vector<char> mask(n, 0);
    if (rank_order_.empty()) {
      for (graph::NodeId v = 0; v < n; ++v) {
        mask[v] = rng.NextBool(config_.random_init_fraction) ? 1 : 0;
      }
    } else {
      // Draw indexed by ORIGINAL id so the same rng stream marks the same
      // logical nodes under any layout (identity rank degenerates to the
      // loop above).
      for (graph::NodeId orig = 0; orig < n; ++orig) {
        mask[rank_order_[orig]] =
            rng.NextBool(config_.random_init_fraction) ? 1 : 0;
      }
    }
    ApplySeedPlacement(mask, seeds_);
    inits.push_back(std::move(mask));
  }

  // Caller-provided warm mask (e.g. the previous epoch's cut), appended
  // last so the sweep's deterministic reduction order is unchanged.
  if (!config_.extra_init.empty()) {
    std::vector<char> warm = config_.extra_init;
    ApplySeedPlacement(warm, seeds_);
    inits.push_back(std::move(warm));
  }
  return inits;
}

bool MaarSolver::IsValid(const std::vector<char>& in_u,
                         const graph::CutQuantities& cut) const {
  graph::NodeId size_u = 0;
  for (char c : in_u) size_u += (c != 0);
  const graph::NodeId n = NumNodes();
  const graph::NodeId size_w = n - size_u;
  // Clamp the minimum region size only when infeasible: no cut of an
  // n-node graph can put min_region_size nodes on both sides once
  // n < 2*min_region_size, so cap it at n/2 (small graphs and late residual
  // graphs stay solvable); the configured value is honored otherwise.
  const graph::NodeId min_region = std::max<graph::NodeId>(
      1, std::min<graph::NodeId>(config_.min_region_size, n / 2));
  return size_u >= min_region && size_w >= min_region &&
         static_cast<double>(size_u) <=
             config_.max_region_fraction * static_cast<double>(n) &&
         cut.rejections_into_u > 0;
}

std::vector<double> MaarSolver::SweepKs() const {
  std::vector<double> ks;
  for (double k = config_.k_min; k <= config_.k_max * (1.0 + 1e-9);
       k *= config_.k_scale) {
    ks.push_back(k);
  }
  return ks;
}

MaarCut MaarSolver::Solve() { return Solve(nullptr); }

MaarCut MaarSolver::Solve(util::ThreadPool* pool) {
  // Non-identity layout: remap once, solve with the rank hook engaged, and
  // translate the mask back — callers always see original ids, and the cut
  // is bit-identical to the identity-layout solve (see graph/layout.h).
  if (config_.layout != graph::LayoutPolicy::kIdentity) {
    util::WallTimer total_timer;
    const graph::Layout layout =
        graph::ComputeLayout(*g_, config_.layout, pool);
    const graph::AugmentedGraph laid = graph::ApplyLayout(*g_, layout, pool);
    MaarConfig inner = config_;
    inner.layout = graph::LayoutPolicy::kIdentity;
    inner.rank = layout.old_of_new;
    if (!inner.extra_init.empty()) {
      inner.extra_init = graph::MaskToLayout(layout, inner.extra_init);
    }
    Seeds laid_seeds = seeds_;
    laid_seeds.legit = graph::IdsToLayout(layout, seeds_.legit);
    laid_seeds.spammer = graph::IdsToLayout(layout, seeds_.spammer);
    MaarSolver solver(laid, std::move(laid_seeds), std::move(inner),
                      kl_runner_);
    MaarCut cut = solver.Solve(pool);
    if (!cut.in_u.empty()) cut.in_u = graph::MaskFromLayout(layout, cut.in_u);
    cut.total_seconds = total_timer.Seconds();
    return cut;
  }

  util::WallTimer total_timer;
  util::Rng rng(config_.seed);
  const auto inits = InitialPartitions(rng);
  const auto ks = SweepKs();
  const std::size_t cells = ks.size() * inits.size();

  MaarCut best;
  best.ratio = std::numeric_limits<double>::infinity();

  auto consider = [&](KlResult&& r, double k) {
    ++best.kl_runs;
    best.switches += r.stats.switches_applied;
    if (!IsValid(r.in_u, r.cut)) return false;
    const double ratio = r.cut.FriendsToRejectionsRatio();
    const bool better =
        ratio < best.ratio - 1e-12 ||
        (std::abs(ratio - best.ratio) <= 1e-12 &&
         r.cut.rejections_into_u > best.cut.rejections_into_u);
    if (better) {
      best.valid = true;
      best.in_u = std::move(r.in_u);
      best.cut = r.cut;
      best.ratio = ratio;
      best.k = k;
      return true;
    }
    return false;
  };

  // Phase 1 — the (k × init) grid. Every cell is an independent KL run;
  // grid[c] is written by exactly one task, so the only coordination is the
  // ParallelFor barrier.
  util::WallTimer sweep_timer;
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (pool == nullptr && cells > 1 &&
      EffectiveThreads(config_.num_threads) > 1) {
    owned_pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(EffectiveThreads(config_.num_threads)));
    pool = owned_pool.get();
  }
  best.threads_used = pool == nullptr ? 1 : static_cast<int>(pool->size());

  // One reusable KL workspace per pool block: a block runs as exactly one
  // task, so its scratch is never shared, and every KL run inside the block
  // reuses the same buffers instead of reallocating per cell. Out-of-core
  // mode pairs each scratch with its own DecodeCursor (the cursor's block
  // cache is mutable per-thread state, exactly like the scratch).
  std::vector<KlScratch> scratches(pool != nullptr ? pool->size() : 1);
  std::vector<std::unique_ptr<graph::DecodeCursor>> cursors;
  if (view_ != nullptr) {
    cursors.reserve(scratches.size());
    for (std::size_t i = 0; i < scratches.size(); ++i) {
      cursors.push_back(std::make_unique<graph::DecodeCursor>(*view_));
    }
  }
  auto run_kl = [&](std::size_t block, const std::vector<char>& init,
                    const KlConfig& cell_kl) {
    if (view_ != nullptr) {
      return ExtendedKl(graph::GraphSource(cursors[block].get()), init,
                        locked_, cell_kl, &scratches[block]);
    }
    return kl_runner_(*g_, init, locked_, cell_kl, &scratches[block]);
  };
  std::vector<KlResult> grid(cells);
  auto run_cell = [&](std::size_t block, std::size_t c) {
    KlConfig cell_kl = config_.kl;
    cell_kl.k = ks[c / inits.size()];
    grid[c] = run_kl(block, inits[c % inits.size()], cell_kl);
  };
  if (pool != nullptr && cells > 1) {
    pool->ParallelFor(cells, run_cell);
  } else {
    for (std::size_t c = 0; c < cells; ++c) run_cell(0, c);
  }

  // Phase 2 — deterministic reduction in sweep order (k outer, init inner),
  // interleaved with the serial warm-start tail: once every cell at k_i has
  // been reduced, the incumbent mask seeds one extra KL run at k_{i+1}.
  // Everything here depends only on the cell results, never on the order
  // the pool produced them, so thread count cannot change the winner.
  KlConfig kl = config_.kl;
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    for (std::size_t ii = 0; ii < inits.size(); ++ii) {
      consider(std::move(grid[ki * inits.size() + ii]), ks[ki]);
    }
    if (config_.warm_start && best.valid && ki + 1 < ks.size()) {
      kl.k = ks[ki + 1];
      ++best.warm_start_runs;
      consider(run_kl(0, best.in_u, kl), ks[ki + 1]);
    }
  }
  best.sweep_seconds = sweep_timer.Seconds();

  // Phase 3 — Dinkelbach refinement: with k set to the best cut's own
  // ratio, the cut's objective is exactly 0, so any strictly-negative-
  // objective cut found by KL has a strictly smaller ratio.
  util::WallTimer refine_timer;
  for (int round = 0; round < config_.dinkelbach_rounds && best.valid;
       ++round) {
    const double k = best.ratio;
    if (!(k > 0) || !std::isfinite(k)) break;  // perfect cut; cannot improve
    kl.k = k;
    if (!consider(run_kl(0, best.in_u, kl), k)) {
      break;
    }
  }
  best.refine_seconds = refine_timer.Seconds();

  best.total_seconds = total_timer.Seconds();
  return best;
}

}  // namespace rejecto::detect
