// Known legitimate / spammer seeds (paper §III-B, §IV-F).
//
// OSN providers manually verify a small random set of users; Rejecto pins
// each seed into its region (legit seeds in Ū, spammer seeds in U) and never
// switches it during the KL search, ruling out spurious small-ratio cuts
// inside the legitimate region.
#pragma once

#include <stdexcept>
#include <vector>

#include "graph/types.h"

namespace rejecto::detect {

struct Seeds {
  std::vector<graph::NodeId> legit;
  std::vector<graph::NodeId> spammer;

  // Throws std::invalid_argument on out-of-range ids or overlap between the
  // two sets.
  void Validate(graph::NodeId num_nodes) const {
    std::vector<char> mark(num_nodes, 0);
    for (graph::NodeId v : legit) {
      if (v >= num_nodes) throw std::invalid_argument("Seeds: legit id range");
      mark[v] = 1;
    }
    for (graph::NodeId v : spammer) {
      if (v >= num_nodes) {
        throw std::invalid_argument("Seeds: spammer id range");
      }
      if (mark[v]) {
        throw std::invalid_argument("Seeds: a node is both legit and spammer");
      }
    }
  }
};

// Mask of nodes the KL search must never switch.
inline std::vector<char> BuildLockedMask(graph::NodeId num_nodes,
                                         const Seeds& seeds) {
  std::vector<char> locked(num_nodes, 0);
  for (graph::NodeId v : seeds.legit) locked[v] = 1;
  for (graph::NodeId v : seeds.spammer) locked[v] = 1;
  return locked;
}

// Forces seed membership onto an initial partition mask.
inline void ApplySeedPlacement(std::vector<char>& in_u, const Seeds& seeds) {
  for (graph::NodeId v : seeds.legit) in_u[v] = 0;
  for (graph::NodeId v : seeds.spammer) in_u[v] = 1;
}

}  // namespace rejecto::detect
