// SybilRank (Cao et al., NSDI 2012 [15]; paper §VI-D).
//
// The social-graph-based Sybil detector Rejecto composes with for defense
// in depth: O(log n) power iterations spread trust from verified seeds over
// the undirected social graph, then ranks users by degree-normalized trust.
// Sybil regions, being connected to the honest region through few attack
// edges, receive little trust and sink to the bottom of the ranking —
// *unless* friend spam has manufactured many attack edges, which is exactly
// the gap Rejecto closes (Fig 16).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "graph/types.h"

namespace rejecto::baseline {

struct SybilRankConfig {
  // 0 => ceil(log2(n)) iterations, the paper's early termination.
  int num_iterations = 0;
  double total_trust = 1000.0;
  std::vector<graph::NodeId> trust_seeds;  // must be non-empty
};

// Returns the degree-normalized trust per node (higher = more trustworthy).
// Isolated nodes score 0.
std::vector<double> RunSybilRank(const graph::SocialGraph& g,
                                 const SybilRankConfig& config);

}  // namespace rejecto::baseline
