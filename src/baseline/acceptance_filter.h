// Naive per-user acceptance-rate filter — the strawman individual-feature
// classifier of §II-B / [16], [36].
//
// Scores each user by the acceptance rate of the requests they sent
// (users who sent none get a neutral 1.0). Simple, and exactly what the
// collusion strategy defeats: fakes accepting each other's requests lift
// every individual's acceptance rate without touching the *aggregate* rate
// toward legitimate users that Rejecto cuts on.
#pragma once

#include <vector>

#include "sim/request_log.h"

namespace rejecto::baseline {

struct AcceptanceFilterConfig {
  double neutral_score = 1.0;  // users with no sent requests
};

std::vector<double> AcceptanceRateScores(const sim::RequestLog& log,
                                         const AcceptanceFilterConfig& config);

}  // namespace rejecto::baseline
