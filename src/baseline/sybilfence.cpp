#include "baseline/sybilfence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rejecto::baseline {

std::vector<double> RunSybilFence(const graph::AugmentedGraph& g,
                                  const SybilFenceConfig& config) {
  const graph::NodeId n = g.NumNodes();
  if (config.trust_seeds.empty()) {
    throw std::invalid_argument("RunSybilFence: trust seeds required");
  }
  for (graph::NodeId s : config.trust_seeds) {
    if (s >= n) {
      throw std::invalid_argument("RunSybilFence: seed out of range");
    }
  }
  if (config.discount_per_rejection < 0.0 || config.min_edge_weight <= 0.0 ||
      config.min_edge_weight > 1.0) {
    throw std::invalid_argument("RunSybilFence: bad discount parameters");
  }

  // Per-node penalty multiplier from received rejections; an edge carries
  // the product of its endpoints' multipliers.
  const auto& fr = g.Friendships();
  const auto& rej = g.Rejections();
  std::vector<double> penalty(n, 1.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    penalty[v] = std::max(
        config.min_edge_weight,
        1.0 - config.discount_per_rejection *
                  static_cast<double>(rej.InDegree(v)));
  }
  std::vector<double> weighted_degree(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    for (graph::NodeId w : fr.Neighbors(v)) {
      weighted_degree[v] += penalty[v] * penalty[w];
    }
  }

  int iterations = config.num_iterations;
  if (iterations <= 0) {
    iterations = std::max(
        1, static_cast<int>(std::ceil(std::log2(std::max<double>(2.0, n)))));
  }

  std::vector<double> trust(n, 0.0), next(n, 0.0);
  const double seed_share =
      config.total_trust / static_cast<double>(config.trust_seeds.size());
  for (graph::NodeId s : config.trust_seeds) trust[s] += seed_share;

  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (graph::NodeId u = 0; u < n; ++u) {
      if (weighted_degree[u] <= 0.0) continue;
      const double unit = trust[u] / weighted_degree[u];
      for (graph::NodeId v : fr.Neighbors(u)) {
        next[v] += unit * penalty[u] * penalty[v];
      }
    }
    trust.swap(next);
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    trust[v] = weighted_degree[v] <= 0.0 ? 0.0 : trust[v] / weighted_degree[v];
  }
  return trust;
}

}  // namespace rejecto::baseline
