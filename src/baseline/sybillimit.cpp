#include "baseline/sybillimit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace rejecto::baseline {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Format-preserving pseudo-random permutation over [0, domain) via a
// 4-round Feistel network with cycle walking — evaluates a single image of
// the per-(instance, node) routing permutation in O(1) expected time
// without materializing it.
std::uint32_t PermuteIndex(std::uint64_t key, std::uint32_t domain,
                           std::uint32_t j) {
  if (domain <= 1) return 0;
  // Balanced 4-round Feistel over the smallest even bit-width covering the
  // domain, with cycle walking back into [0, domain).
  std::uint32_t bits = 2;
  while ((1u << bits) < domain) bits += 2;
  const std::uint32_t half = bits / 2;
  const std::uint32_t mask = (1u << half) - 1;
  std::uint32_t x = j;
  do {
    std::uint32_t l = x >> half;
    std::uint32_t r = x & mask;
    for (std::uint32_t round = 0; round < 4; ++round) {
      const std::uint32_t f =
          static_cast<std::uint32_t>(
              Mix(key ^ (static_cast<std::uint64_t>(round) << 40) ^ r)) &
          mask;
      const std::uint32_t next_r = l ^ f;
      l = r;
      r = next_r;
    }
    x = (l << half) | r;
  } while (x >= domain);
  return x;
}

// Directed-edge key for tail sets.
std::uint64_t EdgeKey(graph::NodeId from, graph::NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

SybilLimitResult RunSybilLimit(const graph::SocialGraph& g,
                               const std::vector<graph::NodeId>& verifiers,
                               const SybilLimitConfig& config) {
  const graph::NodeId n = g.NumNodes();
  if (verifiers.empty()) {
    throw std::invalid_argument("RunSybilLimit: verifiers required");
  }
  for (graph::NodeId v : verifiers) {
    if (v >= n) throw std::invalid_argument("RunSybilLimit: verifier range");
  }

  SybilLimitResult result;
  result.route_length =
      config.route_length != 0
          ? config.route_length
          : static_cast<std::uint32_t>(
                std::ceil(std::log2(std::max<double>(2.0, n))));
  result.num_routes =
      config.num_routes != 0
          ? config.num_routes
          : static_cast<std::uint32_t>(std::ceil(
                4.0 * std::sqrt(static_cast<double>(g.NumEdges()))));

  // One route per instance per node; tail = the route's final directed
  // edge. Routes follow per-(instance, node) routing permutations keyed by
  // the entering-edge index, so two routes that merge stay merged — the
  // convergence property the protocol's intersection argument needs.
  const std::uint32_t w = result.route_length;
  const std::uint32_t r = result.num_routes;
  std::vector<std::vector<std::uint64_t>> tails(n);

  for (graph::NodeId v = 0; v < n; ++v) {
    const auto deg_v = g.Degree(v);
    if (deg_v == 0) continue;
    tails[v].reserve(r);
    for (std::uint32_t inst = 0; inst < r; ++inst) {
      const std::uint64_t inst_key = Mix(config.seed ^ (0x51b1ull << 32) ^
                                         inst);
      // First hop: a pseudo-random incident edge of v for this instance.
      graph::NodeId prev = v;
      graph::NodeId cur = g.Neighbors(
          v)[static_cast<std::size_t>(Mix(inst_key ^ v) % deg_v)];
      for (std::uint32_t step = 1; step < w; ++step) {
        const auto nbrs = g.Neighbors(cur);
        // Entering index of prev in cur's sorted adjacency.
        const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), prev);
        const auto in_idx =
            static_cast<std::uint32_t>(std::distance(nbrs.begin(), it));
        const std::uint32_t out_idx = PermuteIndex(
            Mix(inst_key ^ (static_cast<std::uint64_t>(cur) << 1)),
            static_cast<std::uint32_t>(nbrs.size()), in_idx);
        prev = cur;
        cur = nbrs[out_idx];
      }
      tails[v].push_back(EdgeKey(prev, cur));
    }
  }

  // Verification: suspect accepted by verifier V iff tail sets intersect,
  // subject to the balance cap on how many suspects one verifier tail may
  // vouch for.
  result.accept_fraction.assign(n, 0.0);
  for (graph::NodeId ver : verifiers) {
    std::unordered_map<std::uint64_t, std::uint32_t> tail_load;
    tail_load.reserve(tails[ver].size() * 2);
    for (std::uint64_t t : tails[ver]) tail_load.emplace(t, 0);
    std::uint64_t accepted = 0;
    std::uint64_t processed = 0;
    for (graph::NodeId s = 0; s < n; ++s) {
      ++processed;
      const double cap =
          config.balance_factor *
          (static_cast<double>(accepted) /
               std::max<double>(1.0, static_cast<double>(tails[ver].size())) +
           1.0);
      bool ok = false;
      for (std::uint64_t t : tails[s]) {
        const auto it = tail_load.find(t);
        if (it != tail_load.end() &&
            static_cast<double>(it->second) < cap) {
          ++it->second;
          ok = true;
          break;
        }
      }
      if (ok) {
        ++accepted;
        result.accept_fraction[s] += 1.0;
      }
    }
  }
  const double num_verifiers = static_cast<double>(verifiers.size());
  for (double& f : result.accept_fraction) f /= num_verifiers;
  return result;
}

}  // namespace rejecto::baseline
