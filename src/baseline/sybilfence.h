// SybilFence (Cao & Yang, Duke TR 2012 [16]): improving social-graph-based
// Sybil defenses with user negative feedback.
//
// The paper's related-work predecessor to Rejecto: instead of cutting on
// the aggregate acceptance rate, SybilFence discounts the trust capacity
// of the social edges incident to users who accumulated negative feedback
// (rejections/reports), then runs a SybilRank-style seeded power iteration
// over the *weighted* graph. Rejecto's §VIII critique — which this
// implementation lets the benches demonstrate — is that per-user discounts
// are still an individual signal: collusion edges among fakes carry full
// weight and keep feeding trust into the Sybil region.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/augmented_graph.h"

namespace rejecto::baseline {

struct SybilFenceConfig {
  // 0 => ceil(log2(n)) iterations, as in SybilRank.
  int num_iterations = 0;
  double total_trust = 1000.0;
  // Per received rejection, a node's incident-edge weight multiplier drops
  // by this much, floored at min_edge_weight.
  double discount_per_rejection = 0.2;
  double min_edge_weight = 0.05;
  std::vector<graph::NodeId> trust_seeds;  // must be non-empty
};

// Returns weighted-degree-normalized trust (higher = more trustworthy).
std::vector<double> RunSybilFence(const graph::AugmentedGraph& g,
                                  const SybilFenceConfig& config);

}  // namespace rejecto::baseline
