// Per-user feature classifier (paper §II-B's "machine-learning classifiers
// are insufficient" argument, after [36]).
//
// A logistic-regression classifier over individual request-behaviour
// features — requests sent, per-user acceptance rate, rejections received,
// friend count, requests received, acceptance rate granted — trained on
// the OSN's labeled seeds. This is the calibrated-classifier approach of
// Yang et al. [36]; Rejecto's §II-B critique is that every feature is
// *individual*, so the collusion strategy (accepted intra-fake requests)
// poisons the acceptance-rate features and the classifier degrades while
// the aggregate cut does not — quantified in bench_ext_ml_classifier.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "detect/seeds.h"
#include "sim/request_log.h"

namespace rejecto::baseline {

inline constexpr std::size_t kNumUserFeatures = 6;

// Raw (unstandardized) per-user behaviour features.
using UserFeatures = std::array<double, kNumUserFeatures>;

// Extracts features for every user from the request log:
//   [0] requests sent, [1] acceptance rate of sent requests (neutral 1 if
//   none), [2] rejections received as a sender, [3] friendship degree,
//   [4] requests received, [5] acceptance rate granted as a receiver
//   (neutral 1 if none received).
std::vector<UserFeatures> ExtractUserFeatures(const sim::RequestLog& log);

struct FeatureClassifierConfig {
  int iterations = 300;
  double learning_rate = 0.1;
  double l2 = 1e-3;
};

class FeatureClassifier {
 public:
  // Trains on the labeled seeds (legit = 0, spammer = 1) with full-batch
  // gradient descent over standardized features. Throws
  // std::invalid_argument when either seed class is empty.
  FeatureClassifier(const std::vector<UserFeatures>& features,
                    const detect::Seeds& seeds,
                    const FeatureClassifierConfig& config);

  // P(fake) per user, in [0, 1]. Higher = more suspicious. (Note the
  // inverted polarity vs the trust scores elsewhere; use SuspicionScores
  // with metrics::LowestScored via the negation below.)
  std::vector<double> Predict(
      const std::vector<UserFeatures>& features) const;

  // Convenience: −P(fake), so metrics::LowestScored declares the most
  // suspicious first like the other baselines.
  std::vector<double> TrustScores(
      const std::vector<UserFeatures>& features) const;

  const std::array<double, kNumUserFeatures>& weights() const noexcept {
    return weights_;
  }

 private:
  double Logit(const UserFeatures& x) const;

  std::array<double, kNumUserFeatures> weights_{};
  double bias_ = 0.0;
  std::array<double, kNumUserFeatures> mean_{};
  std::array<double, kNumUserFeatures> stdev_{};
};

}  // namespace rejecto::baseline
