#include "baseline/sybilrank.h"

#include <cmath>
#include <stdexcept>

namespace rejecto::baseline {

std::vector<double> RunSybilRank(const graph::SocialGraph& g,
                                 const SybilRankConfig& config) {
  const graph::NodeId n = g.NumNodes();
  if (config.trust_seeds.empty()) {
    throw std::invalid_argument("RunSybilRank: trust seeds required");
  }
  for (graph::NodeId s : config.trust_seeds) {
    if (s >= n) {
      throw std::invalid_argument("RunSybilRank: seed out of range");
    }
  }
  int iterations = config.num_iterations;
  if (iterations <= 0) {
    iterations = std::max(
        1, static_cast<int>(std::ceil(std::log2(std::max<double>(2.0, n)))));
  }

  std::vector<double> trust(n, 0.0), next(n, 0.0);
  const double seed_share =
      config.total_trust / static_cast<double>(config.trust_seeds.size());
  for (graph::NodeId s : config.trust_seeds) trust[s] += seed_share;

  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (graph::NodeId u = 0; u < n; ++u) {
      const auto deg = g.Degree(u);
      if (deg == 0) continue;  // isolated nodes keep (and leak) no trust
      const double share = trust[u] / static_cast<double>(deg);
      for (graph::NodeId v : g.Neighbors(u)) next[v] += share;
    }
    trust.swap(next);
  }

  // Degree normalization removes the bias toward high-degree honest hubs.
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto deg = g.Degree(u);
    trust[u] = deg == 0 ? 0.0 : trust[u] / static_cast<double>(deg);
  }
  return trust;
}

}  // namespace rejecto::baseline
