#include "baseline/votetrust.h"

#include <algorithm>
#include <stdexcept>

namespace rejecto::baseline {

VoteTrustResult RunVoteTrust(const sim::RequestLog& log,
                             const VoteTrustConfig& config) {
  const graph::NodeId n = log.NumNodes();
  if (config.trust_seeds.empty()) {
    throw std::invalid_argument("RunVoteTrust: trust seeds required");
  }
  for (graph::NodeId s : config.trust_seeds) {
    if (s >= n) throw std::invalid_argument("RunVoteTrust: seed out of range");
  }

  // Flatten the request log into per-sender CSR once; both steps scan it.
  std::vector<std::uint32_t> out_deg(n, 0);
  for (const sim::FriendRequest& r : log.Requests()) ++out_deg[r.sender];
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + out_deg[v];
  }
  struct Target {
    graph::NodeId receiver;
    bool accepted;
  };
  std::vector<Target> targets(log.NumRequests());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const sim::FriendRequest& r : log.Requests()) {
      targets[cursor[r.sender]++] = {r.receiver,
                                     r.response == sim::Response::kAccepted};
    }
  }

  VoteTrustResult result;

  // --- Step 1: vote assignment (personalized PageRank on request arcs) ---
  const double d = config.damping;
  std::vector<double> votes(n, 0.0), next(n, 0.0);
  const double seed_share =
      1.0 / static_cast<double>(config.trust_seeds.size());
  for (graph::NodeId s : config.trust_seeds) votes[s] += seed_share;
  for (int it = 0; it < config.vote_iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (graph::NodeId u = 0; u < n; ++u) {
      if (out_deg[u] == 0) {
        dangling += votes[u];
        continue;
      }
      const double share = votes[u] / static_cast<double>(out_deg[u]);
      for (std::size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
        next[targets[i].receiver] += share;
      }
    }
    // Teleport (and dangling mass) back to the trust seeds.
    for (graph::NodeId v = 0; v < n; ++v) next[v] *= d;
    const double teleport = (1.0 - d) + d * dangling;
    for (graph::NodeId s : config.trust_seeds) {
      next[s] += teleport * seed_share;
    }
    votes.swap(next);
  }
  result.votes = votes;

  // --- Step 2: iterative vote aggregation ---
  std::vector<double> rating(n, config.neutral_rating), next_rating(n, 0.0);
  for (int it = 0; it < config.rating_iterations; ++it) {
    for (graph::NodeId u = 0; u < n; ++u) {
      if (out_deg[u] == 0) {
        next_rating[u] = config.neutral_rating;
        continue;
      }
      double weighted_sum = 0.0, weight_total = 0.0;
      for (std::size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
        const Target& t = targets[i];
        const double w = votes[t.receiver] * rating[t.receiver];
        weight_total += w;
        if (t.accepted) weighted_sum += w;
      }
      next_rating[u] = weight_total == 0.0 ? config.neutral_rating
                                           : weighted_sum / weight_total;
    }
    rating.swap(next_rating);
  }
  result.ratings = std::move(rating);
  return result;
}

}  // namespace rejecto::baseline
