#include "baseline/feature_classifier.h"

#include <cmath>
#include <stdexcept>

namespace rejecto::baseline {

std::vector<UserFeatures> ExtractUserFeatures(const sim::RequestLog& log) {
  const graph::NodeId n = log.NumNodes();
  std::vector<std::uint64_t> sent(n, 0), sent_accepted(n, 0), received(n, 0),
      granted(n, 0), degree(n, 0);
  for (const sim::FriendRequest& r : log.Requests()) {
    ++sent[r.sender];
    ++received[r.receiver];
    if (r.response == sim::Response::kAccepted) {
      ++sent_accepted[r.sender];
      ++granted[r.receiver];
      ++degree[r.sender];
      ++degree[r.receiver];
    }
  }
  std::vector<UserFeatures> features(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    const double s = static_cast<double>(sent[u]);
    const double rcv = static_cast<double>(received[u]);
    features[u] = {
        s,
        sent[u] == 0 ? 1.0
                     : static_cast<double>(sent_accepted[u]) / s,
        static_cast<double>(sent[u] - sent_accepted[u]),
        static_cast<double>(degree[u]),
        rcv,
        received[u] == 0 ? 1.0
                         : static_cast<double>(granted[u]) / rcv,
    };
  }
  return features;
}

FeatureClassifier::FeatureClassifier(
    const std::vector<UserFeatures>& features, const detect::Seeds& seeds,
    const FeatureClassifierConfig& config) {
  if (seeds.legit.empty() || seeds.spammer.empty()) {
    throw std::invalid_argument(
        "FeatureClassifier: both seed classes required for training");
  }
  seeds.Validate(static_cast<graph::NodeId>(features.size()));

  // Standardize over the training set.
  std::vector<std::pair<graph::NodeId, double>> train;
  for (graph::NodeId v : seeds.legit) train.emplace_back(v, 0.0);
  for (graph::NodeId v : seeds.spammer) train.emplace_back(v, 1.0);
  const double m = static_cast<double>(train.size());
  for (std::size_t f = 0; f < kNumUserFeatures; ++f) {
    double mu = 0;
    for (const auto& [v, y] : train) mu += features[v][f];
    mu /= m;
    double var = 0;
    for (const auto& [v, y] : train) {
      const double d = features[v][f] - mu;
      var += d * d;
    }
    mean_[f] = mu;
    stdev_[f] = std::sqrt(var / m);
    if (stdev_[f] < 1e-9) stdev_[f] = 1.0;  // constant feature
  }

  // Full-batch gradient descent on regularized logistic loss.
  for (int it = 0; it < config.iterations; ++it) {
    std::array<double, kNumUserFeatures> grad{};
    double grad_bias = 0.0;
    for (const auto& [v, y] : train) {
      double z = bias_;
      for (std::size_t f = 0; f < kNumUserFeatures; ++f) {
        z += weights_[f] * (features[v][f] - mean_[f]) / stdev_[f];
      }
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err = p - y;
      grad_bias += err;
      for (std::size_t f = 0; f < kNumUserFeatures; ++f) {
        grad[f] += err * (features[v][f] - mean_[f]) / stdev_[f];
      }
    }
    bias_ -= config.learning_rate * grad_bias / m;
    for (std::size_t f = 0; f < kNumUserFeatures; ++f) {
      weights_[f] -= config.learning_rate *
                     (grad[f] / m + config.l2 * weights_[f]);
    }
  }
}

double FeatureClassifier::Logit(const UserFeatures& x) const {
  double z = bias_;
  for (std::size_t f = 0; f < kNumUserFeatures; ++f) {
    z += weights_[f] * (x[f] - mean_[f]) / stdev_[f];
  }
  return z;
}

std::vector<double> FeatureClassifier::Predict(
    const std::vector<UserFeatures>& features) const {
  std::vector<double> p;
  p.reserve(features.size());
  for (const UserFeatures& x : features) {
    p.push_back(1.0 / (1.0 + std::exp(-Logit(x))));
  }
  return p;
}

std::vector<double> FeatureClassifier::TrustScores(
    const std::vector<UserFeatures>& features) const {
  auto p = Predict(features);
  for (double& x : p) x = -x;
  return p;
}

}  // namespace rejecto::baseline
