#include "baseline/acceptance_filter.h"

namespace rejecto::baseline {

std::vector<double> AcceptanceRateScores(
    const sim::RequestLog& log, const AcceptanceFilterConfig& config) {
  const graph::NodeId n = log.NumNodes();
  std::vector<std::uint64_t> sent(n, 0), accepted(n, 0);
  for (const sim::FriendRequest& r : log.Requests()) {
    ++sent[r.sender];
    if (r.response == sim::Response::kAccepted) ++accepted[r.sender];
  }
  std::vector<double> scores(n, config.neutral_score);
  for (graph::NodeId u = 0; u < n; ++u) {
    if (sent[u] > 0) {
      scores[u] = static_cast<double>(accepted[u]) /
                  static_cast<double>(sent[u]);
    }
  }
  return scores;
}

}  // namespace rejecto::baseline
