// VoteTrust baseline (Xue et al., INFOCOM 2013 [35]; paper §VI).
//
// The comparison scheme the paper evaluates against. Two cascaded steps on
// the directed friend-request graph:
//   1. *Vote assignment*: a trust-seeded PageRank over request arcs
//      (sender→receiver) assigns each user a vote capacity.
//   2. *Vote aggregation*: each user's rating is the weighted average of
//      the responses to their requests — 1 for accepted, 0 for rejected —
//      where a response's weight is the responder's votes times the
//      responder's current rating; ratings are iterated to a fixpoint.
// Users are ranked by rating; the lowest-rated are declared suspicious.
//
// Reproduced weaknesses (paper §VI): the per-user acceptance rate is
// manipulable by collusion (Fig 13), non-spamming fakes keep the neutral
// prior rating and are missed (Fig 10), and self-rejection *helps*
// VoteTrust because extra rejections only hurt individual ratings (Fig 14).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sim/request_log.h"

namespace rejecto::baseline {

struct VoteTrustConfig {
  double damping = 0.85;       // PageRank damping for vote assignment
  int vote_iterations = 30;
  int rating_iterations = 10;  // vote-aggregation fixpoint iterations
  double neutral_rating = 1.0; // prior for users who sent no requests
  // Trusted users the vote power iteration teleports to. Must be non-empty.
  std::vector<graph::NodeId> trust_seeds;
};

struct VoteTrustResult {
  std::vector<double> votes;    // per node, sums to ~1
  std::vector<double> ratings;  // per node, in [0, 1]
};

// Throws std::invalid_argument on empty seeds or out-of-range seed ids.
VoteTrustResult RunVoteTrust(const sim::RequestLog& log,
                             const VoteTrustConfig& config);

}  // namespace rejecto::baseline
