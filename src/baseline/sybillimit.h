// SybilLimit (Yu, Gibbons, Kaminsky, Xiao, IEEE S&P 2008 [37]), simplified
// simulation variant.
//
// The near-optimal random-route social Sybil defense the paper cites as a
// beneficiary of Rejecto's graph sterilization: each node performs r
// random routes of length w over the social graph using per-node routing
// permutations (a route entering node x through neighbor i leaves through
// π_x(i), making routes back-traceable and convergent); a verifier accepts
// a suspect iff one of the suspect's route *tails* (last directed edge)
// intersects the verifier's tail set, subject to a per-tail balance cap.
// Honest routes mix through the honest region and intersect w.h.p.; Sybil
// routes are confined behind the attack edges, so each attack edge lets
// only O(log n) Sybils be accepted.
//
// Simplifications vs the full protocol (documented deviations):
//   * a single simulation-global routing table per node (the protocol's
//     per-instance independence is approximated by r distinct start edges);
//   * the benchmark condition is applied per (verifier, suspect) pair
//     directly rather than via the distributed secure-random-route
//     verification exchange.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace rejecto::baseline {

struct SybilLimitConfig {
  // 0 => w = ceil(log2(n)) route length (the protocol's mixing-time
  // surrogate) and r = ceil(4 * sqrt(m)) routes.
  std::uint32_t route_length = 0;
  std::uint32_t num_routes = 0;
  // Balance cap multiplier: a verifier tail may vouch for at most
  // b_factor * (accepted_so_far / tails + 1) suspects (the paper's
  // h-balance condition, simplified).
  double balance_factor = 4.0;
  std::uint64_t seed = 1;
};

struct SybilLimitResult {
  // accept[v]: the fraction of verifiers that accepted v (1.0 = all).
  // Usable directly as a trust score for metrics::AreaUnderRoc.
  std::vector<double> accept_fraction;
  std::uint32_t route_length = 0;
  std::uint32_t num_routes = 0;
};

// Runs the protocol with every node in `verifiers` acting as a verifier
// over every node of the graph. Throws on empty verifier set.
SybilLimitResult RunSybilLimit(const graph::SocialGraph& g,
                               const std::vector<graph::NodeId>& verifiers,
                               const SybilLimitConfig& config);

}  // namespace rejecto::baseline
