#include "engine/dist_kl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "detect/bucket_list.h"
#include "engine/prefetch.h"

namespace rejecto::engine {
namespace {

constexpr double kGainEps = 1e-7;  // matches detect::ExtendedKl

// Master-resident node status: the "20 bytes per node on the master" of
// §V, here as parallel arrays.
struct MasterState {
  std::vector<char> in_u;
  std::vector<std::uint32_t> deg;
  std::vector<std::uint32_t> rej_in;
  std::vector<std::uint32_t> rej_out;
  std::vector<std::uint32_t> cross_friends;
  std::vector<std::uint32_t> in_from_w;
  std::vector<std::uint32_t> out_to_u;
  std::uint64_t cross_total = 0;
  std::uint64_t rin_total = 0;

  std::int64_t DeltaFriends(graph::NodeId v) const {
    return static_cast<std::int64_t>(deg[v]) -
           2 * static_cast<std::int64_t>(cross_friends[v]);
  }
  std::int64_t DeltaRejections(graph::NodeId v) const {
    const std::int64_t d = static_cast<std::int64_t>(out_to_u[v]) -
                           static_cast<std::int64_t>(in_from_w[v]);
    return in_u[v] ? d : -d;
  }
  // Same arithmetic as detect::Partition::DeltaObjective negated, so the
  // distributed run is bit-identical to the single-machine one.
  double Gain(graph::NodeId v, double k) const {
    return -(static_cast<double>(DeltaFriends(v)) -
             k * static_cast<double>(DeltaRejections(v)));
  }

  void Switch(graph::NodeId v, const NodeAdjacency& adj) {
    cross_total = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(cross_total) + DeltaFriends(v));
    rin_total = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rin_total) + DeltaRejections(v));
    const bool was_in_u = in_u[v] != 0;
    in_u[v] = was_in_u ? 0 : 1;
    cross_friends[v] = deg[v] - cross_friends[v];
    for (graph::NodeId w : adj.friends) {
      if (in_u[v] != in_u[w]) {
        ++cross_friends[w];
      } else {
        --cross_friends[w];
      }
    }
    const std::int32_t into_u = was_in_u ? -1 : 1;
    for (graph::NodeId x : adj.rejectors) {
      out_to_u[x] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(out_to_u[x]) + into_u);
    }
    for (graph::NodeId y : adj.rejectees) {
      in_from_w[y] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(in_from_w[y]) - into_u);
    }
  }
};

}  // namespace

DistKlResult DistributedKl(const ShardedGraphStore& store,
                           std::vector<char> init_in_u,
                           const std::vector<char>& locked,
                           const detect::KlConfig& kl_config,
                           Cluster& cluster) {
  const graph::NodeId n = store.NumNodes();
  if (kl_config.k <= 0.0) {
    throw std::invalid_argument("DistributedKl: k must be positive");
  }
  if (init_in_u.size() != n) {
    throw std::invalid_argument("DistributedKl: mask size mismatch");
  }
  if (!locked.empty() && locked.size() != n) {
    throw std::invalid_argument("DistributedKl: locked mask size mismatch");
  }
  const double k = kl_config.k;
  auto is_locked = [&](graph::NodeId v) {
    return !locked.empty() && locked[v] != 0;
  };

  MasterState st;
  st.in_u = std::move(init_in_u);
  st.deg.assign(n, 0);
  st.rej_in.assign(n, 0);
  st.rej_out.assign(n, 0);
  st.cross_friends.assign(n, 0);
  st.in_from_w.assign(n, 0);
  st.out_to_u.assign(n, 0);

  // Shard-parallel aggregate initialization (each worker scans only its own
  // partition; writes are to disjoint node ids, so no synchronization).
  {
    // Adjacency reads during init happen on the workers themselves (free,
    // shard-local), as in the prototype's RDD initialization.
    store.ForEachShard([&](std::uint32_t s) {
      for (graph::NodeId v = s; v < n; v += store.NumShards()) {
        const NodeAdjacency& a = store.Local(v);
        st.deg[v] = static_cast<std::uint32_t>(a.friends.size());
        st.rej_in[v] = static_cast<std::uint32_t>(a.rejectors.size());
        st.rej_out[v] = static_cast<std::uint32_t>(a.rejectees.size());
        for (graph::NodeId w : a.friends) {
          if (st.in_u[v] != st.in_u[w]) ++st.cross_friends[v];
        }
        for (graph::NodeId x : a.rejectors) {
          if (!st.in_u[x]) ++st.in_from_w[v];
        }
        for (graph::NodeId y : a.rejectees) {
          if (st.in_u[y]) ++st.out_to_u[v];
        }
      }
    });
    for (graph::NodeId v = 0; v < n; ++v) {
      if (st.in_u[v]) {
        st.cross_total += st.cross_friends[v];
        st.rin_total += st.in_from_w[v];
      }
    }
  }

  // Gain bound identical to detect::ExtendedKl's.
  double gain_bound = 1.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    gain_bound = std::max(
        gain_bound, static_cast<double>(st.deg[v]) +
                        k * static_cast<double>(st.rej_in[v] + st.rej_out[v]));
  }

  PrefetchBuffer buffer(store, cluster.Config().buffer_capacity,
                        cluster.Config().prefetch_batch);

  DistKlResult result;
  detect::KlStats& stats = result.kl.stats;
  std::vector<graph::NodeId> seq;
  seq.reserve(n);

  for (int pass = 0; pass < kl_config.max_passes; ++pass) {
    ++stats.passes;
    detect::BucketList bl(n, gain_bound, kl_config.gain_resolution);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!is_locked(v)) bl.Insert(v, st.Gain(v, k));
    }

    seq.clear();
    double cum = 0.0;
    double best_cum = 0.0;
    std::size_t best_prefix = 0;

    // Adjust is the branch-light Contains+Update: absent nodes (locked or
    // already switched) no-op, and a node only relinks when its quantized
    // bucket actually changes.
    auto refresh = [&](graph::NodeId w) { bl.Adjust(w, st.Gain(w, k)); };
    auto supplier = [&](std::size_t want, std::vector<graph::NodeId>& out) {
      bl.CollectTop(want, out);
    };

    while (!bl.Empty()) {
      const graph::NodeId v = bl.PopMax();
      const double gain = st.Gain(v, k);
      const NodeAdjacency& adj = buffer.Get(v, supplier);
      st.Switch(v, adj);
      seq.push_back(v);
      cum += gain;
      if (cum > best_cum + kGainEps) {
        best_cum = cum;
        best_prefix = seq.size();
      }
      for (graph::NodeId w : adj.friends) refresh(w);
      for (graph::NodeId w : adj.rejectors) refresh(w);
      for (graph::NodeId w : adj.rejectees) refresh(w);
    }

    for (std::size_t i = seq.size(); i > best_prefix; --i) {
      const graph::NodeId v = seq[i - 1];
      st.Switch(v, buffer.Get(v));
    }
    stats.switches_applied += best_prefix;
    if (best_prefix == 0) break;
  }

  result.kl.cut.cross_friendships = st.cross_total;
  result.kl.cut.rejections_into_u = st.rin_total;
  std::uint64_t from_u = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!st.in_u[v]) from_u += st.rej_in[v] - st.in_from_w[v];
  }
  result.kl.cut.rejections_from_u = from_u;
  stats.final_objective = static_cast<double>(st.cross_total) -
                          k * static_cast<double>(st.rin_total);
  result.kl.in_u = std::move(st.in_u);
  result.io = buffer.Stats();
  result.num_shards = store.NumShards();
  return result;
}

}  // namespace rejecto::engine
