// Message-body codecs for the distributed engine's wire protocol.
//
// net/frame.h owns the byte-level frame (magic, length, CRC, request id);
// this header owns what the engine actually says inside those frames —
// batched adjacency fetches, shard partition pushes, and their responses —
// in the same little-endian bounds-checked style as the WAL/checkpoint
// codecs. Every Decode* throws std::runtime_error on malformed bodies
// (short reads can never touch uninitialized memory), which the transport
// layer treats as a corrupt frame: discard, retry, and if the peer keeps
// talking garbage, fail the shard over.
//
//   fetch_request  := store_id:u64 ++ count:u32 ++ id:u32[count]
//   fetch_response := store_id:u64 ++ count:u32 ++ row[count]
//   row            := nf:u32 ++ nri:u32 ++ nro:u32
//                     ++ friends:u32[nf] ++ rejectors:u32[nri]
//                     ++ rejectees:u32[nro]
//   build_shard    := store_id:u64 ++ shard:u32 ++ num_shards:u32
//                     ++ num_nodes:u32 ++ row_count:u32 ++ row[row_count]
//                     (rows in local order: global id = shard + i*num_shards)
//   build_ack      := store_id:u64 ++ shard:u32 ++ row_count:u32
//   error          := code:u32 ++ message:string
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/shard_store.h"
#include "net/frame.h"

namespace rejecto::engine::wire {

inline constexpr std::uint32_t kProtocolVersion = 1;

// ---- fetch ----

struct FetchRequest {
  std::uint64_t store_id = 0;
  std::vector<graph::NodeId> ids;
};

void EncodeFetchRequest(std::uint64_t store_id,
                        std::span<const graph::NodeId> ids,
                        std::vector<unsigned char>& body);
FetchRequest DecodeFetchRequest(std::span<const unsigned char> body);

struct FetchResponse {
  std::uint64_t store_id = 0;
  std::vector<NodeAdjacency> rows;  // aligned with the request's ids
};

void EncodeFetchResponse(std::uint64_t store_id,
                         std::span<const NodeAdjacency* const> rows,
                         std::vector<unsigned char>& body);
FetchResponse DecodeFetchResponse(std::span<const unsigned char> body);

// ---- shard push (the "update" message of the batched fetch/update
// protocol: the master distributes a rebuilt store's partitions) ----

struct BuildShard {
  std::uint64_t store_id = 0;
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 0;
  graph::NodeId num_nodes = 0;  // global node count of the store
  std::vector<NodeAdjacency> rows;  // local order
};

void EncodeBuildShard(const BuildShard& b, std::vector<unsigned char>& body);
BuildShard DecodeBuildShard(std::span<const unsigned char> body);

struct BuildAck {
  std::uint64_t store_id = 0;
  std::uint32_t shard = 0;
  std::uint32_t row_count = 0;
};

void EncodeBuildAck(const BuildAck& a, std::vector<unsigned char>& body);
BuildAck DecodeBuildAck(std::span<const unsigned char> body);

// ---- error ----

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,    // undecodable or semantically invalid body
  kUnknownStore = 2,  // fetch names a store_id the worker never received
};

void EncodeError(ErrorCode code, const std::string& message,
                 std::vector<unsigned char>& body);
std::pair<ErrorCode, std::string> DecodeError(
    std::span<const unsigned char> body);

}  // namespace rejecto::engine::wire
