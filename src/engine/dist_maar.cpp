#include "engine/dist_maar.h"

#include "engine/dist_kl.h"

namespace rejecto::engine {

DistMaarResult SolveMaarDistributed(const graph::AugmentedGraph& g,
                                    const ShardedGraphStore& store,
                                    Cluster& cluster,
                                    const detect::Seeds& seeds,
                                    const detect::MaarConfig& config) {
  DistMaarResult result;
  auto runner = [&](const graph::AugmentedGraph& /*graph*/,
                    std::vector<char> init, const std::vector<char>& locked,
                    const detect::KlConfig& kl) {
    DistKlResult r =
        DistributedKl(store, std::move(init), locked, kl, cluster);
    result.io.fetch_requests += r.io.fetch_requests;
    result.io.nodes_fetched += r.io.nodes_fetched;
    result.io.bytes_transferred += r.io.bytes_transferred;
    result.io.cache_hits += r.io.cache_hits;
    result.io.cache_misses += r.io.cache_misses;
    result.io.simulated_network_us += r.io.simulated_network_us;
    return std::move(r.kl);
  };
  detect::MaarSolver solver(g, seeds, config, runner);
  result.cut = solver.Solve();
  return result;
}

}  // namespace rejecto::engine
