#include "engine/dist_maar.h"

#include "engine/dist_kl.h"

namespace rejecto::engine {

DistMaarResult SolveMaarDistributed(const graph::AugmentedGraph& g,
                                    const ShardedGraphStore& store,
                                    Cluster& cluster,
                                    const detect::Seeds& seeds,
                                    const detect::MaarConfig& config) {
  DistMaarResult result;
  auto runner = [&](const graph::AugmentedGraph& /*graph*/,
                    const std::vector<char>& init,
                    const std::vector<char>& locked,
                    const detect::KlConfig& kl,
                    detect::KlScratch* /*scratch*/) {
    DistKlResult r = DistributedKl(store, init, locked, kl, cluster);
    result.io.Accumulate(r.io);
    return std::move(r.kl);
  };
  // The sweep must stay serial here: DistributedKl drives the cluster's
  // shared prefetch buffer and the runner above accumulates IoStats without
  // locking. Determinism of the sweep makes the cut identical either way —
  // on this substrate the parallelism is the simulated workers'.
  detect::MaarConfig serial_config = config;
  serial_config.num_threads = 1;
  detect::MaarSolver solver(g, seeds, serial_config, runner);
  result.cut = solver.Solve();
  return result;
}

}  // namespace rejecto::engine
