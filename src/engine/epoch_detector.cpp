#include "engine/epoch_detector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "detect/maar.h"
#include "graph/builder.h"
#include "graph/layout.h"
#include "graph/snapshot.h"
#include "stream/wal.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rejecto::engine {

EpochDetector::EpochDetector(graph::AugmentedGraph base, detect::Seeds seeds,
                             EpochConfig config)
    : delta_(std::move(base), config.delta),
      seeds_(std::move(seeds)),
      config_(std::move(config)) {
  seeds_.Validate(delta_.NumNodes());
  const int threads = detect::EffectiveThreads(config_.detect.maar.num_threads);
  if (threads > 1) {
    pool_ = std::make_shared<util::ThreadPool>(
        static_cast<std::size_t>(threads));
  }
  delta_.SetPool(pool_.get());
}

EpochDetector::EpochDetector(graph::NodeId num_nodes, detect::Seeds seeds,
                             EpochConfig config)
    : EpochDetector(graph::GraphBuilder(num_nodes).BuildAugmented(),
                    std::move(seeds), std::move(config)) {}

EpochDetector::~EpochDetector() = default;

const EpochStats* EpochDetector::Ingest(const stream::Event& e) {
  util::WallTimer timer;
  delta_.Apply(e);
  pending_ingest_seconds_ += timer.Seconds();
  ++pending_events_;
  ++total_events_ingested_;
  if (config_.events_per_epoch > 0 &&
      pending_events_ >= config_.events_per_epoch) {
    return &RunEpoch();
  }
  return nullptr;
}

std::size_t EpochDetector::IngestAll(std::span<const stream::Event> events) {
  std::size_t epochs = 0;
  for (const stream::Event& e : events) {
    if (Ingest(e) != nullptr) ++epochs;
  }
  return epochs;
}

EpochDetectionOutput RunEpochDetection(const graph::AugmentedGraph& g,
                                       const detect::Seeds& seeds,
                                       const EpochConfig& config,
                                       const EpochWarmState& warm_in,
                                       util::ThreadPool* pool) {
  EpochDetectionOutput out;
  const bool warm = config.warm_start && warm_in.valid && warm_in.k > 0.0 &&
                    std::isfinite(warm_in.k);
  out.warm_started = warm;

  // One runner for every round; warm narrowing applies to round 0 only (the
  // later rounds run on pruned residual graphs the previous epoch never
  // saw). With warm off this runner is exactly the batch pipeline's.
  int round = 0;
  std::vector<char> warm_mask;
  if (warm) {
    warm_mask = warm_in.mask;
    warm_mask.resize(g.NumNodes(), 0);  // nodes that joined since last epoch
  }
  const auto runner = [&](const graph::AugmentedGraph& residual,
                          const detect::Seeds& s,
                          const detect::MaarConfig& maar) {
    detect::MaarConfig cell = maar;
    if (round++ == 0 && warm) {
      cell.extra_init = warm_mask;
      cell.num_random_inits = config.warm_random_inits;
      double lo = warm_in.k;
      double hi = warm_in.k;
      for (int i = 0; i < config.warm_k_halo; ++i) {
        lo /= maar.k_scale;
        hi *= maar.k_scale;
      }
      cell.k_min = std::max(maar.k_min, lo);
      cell.k_max = std::min(maar.k_max, hi);
      if (cell.k_min > cell.k_max) {  // prev k drifted outside the grid
        cell.k_min = maar.k_min;
        cell.k_max = maar.k_max;
      }
    }
    detect::MaarSolver solver(residual, s, cell);
    return solver.Solve(pool);
  };

  out.result =
      detect::DetectFriendSpammers(g, seeds, config.detect, runner, pool);

  if (!out.result.rounds.empty()) {
    // Round 0 runs on the full graph, so its pre-trim detected ids are
    // graph ids — the next epoch's warm mask.
    out.next_warm.valid = true;
    out.next_warm.mask.assign(g.NumNodes(), 0);
    for (graph::NodeId v : out.result.rounds.front().detected) {
      out.next_warm.mask[v] = 1;
    }
    out.next_warm.k = out.result.rounds.front().k;
  }
  return out;
}

const EpochStats& EpochDetector::RunEpoch() {
  EpochStats stats;
  stats.epoch = static_cast<int>(epoch_base_ + history_.size());
  stats.events_absorbed = pending_events_;
  stats.ingest_seconds = pending_ingest_seconds_;
  stats.events_noop = delta_.Stats().events_noop - noop_at_last_epoch_;

  // Detection consumes the immutable CSR base, so fold the overlay first.
  util::WallTimer compact_timer;
  delta_.Compact();
  stats.compact_seconds = compact_timer.Seconds();
  stats.compactions = delta_.Stats().compactions - compactions_at_last_epoch_;

  const graph::AugmentedGraph& g = delta_.Graph();
  EpochWarmState warm_in;
  warm_in.valid = has_prev_;
  warm_in.mask = prev_mask_;
  warm_in.k = prev_k_;

  util::WallTimer detect_timer;
  EpochDetectionOutput out =
      RunEpochDetection(g, seeds_, config_, warm_in, pool_.get());
  stats.detect_seconds = detect_timer.Seconds();
  stats.warm_started = out.warm_started;

  detect::DetectionResult& result = out.result;
  stats.num_detected = result.detected.size();
  stats.rounds = static_cast<int>(result.rounds.size());
  stats.total_kl_runs = result.total_kl_runs;
  stats.total_switches = result.total_switches;
  for (const detect::RoundInfo& r : result.rounds) {
    stats.round_ratios.push_back(r.ratio);
  }
  if (!result.rounds.empty()) {
    stats.first_round_ratio = result.rounds.front().ratio;
    stats.first_round_acceptance = result.rounds.front().acceptance_rate;
  }
  if (out.next_warm.valid) {
    prev_mask_ = std::move(out.next_warm.mask);
    prev_k_ = out.next_warm.k;
    has_prev_ = true;
  }

  last_ = std::move(result);
  pending_events_ = 0;
  pending_ingest_seconds_ = 0.0;
  noop_at_last_epoch_ = delta_.Stats().events_noop;
  compactions_at_last_epoch_ = delta_.Stats().compactions;
  history_.push_back(std::move(stats));
  return history_.back();
}

detect::IncrementalScore EpochDetector::ScoreSenderIncremental(
    graph::NodeId s) const {
  if (!HasIncrementalBaseline()) {
    throw std::logic_error(
        "EpochDetector::ScoreSenderIncremental: no completed epoch with a "
        "valid round-0 cut to score against");
  }
  if (s >= delta_.NumNodes()) {
    throw std::out_of_range(
        "EpochDetector::ScoreSenderIncremental: sender out of range");
  }
  // Mask membership for ids past the baseline mask (nodes that joined since
  // the last epoch) is 0 — the same extension RunEpoch applies to the warm
  // mask. The walk mirrors detect::ScoreSenderIncremental but reads the
  // DeltaGraph's effective rows, so un-compacted overlay events count.
  const auto side = [&](graph::NodeId v) -> bool {
    return v < prev_mask_.size() && prev_mask_[v] != 0;
  };
  if (side(s)) {
    return {0.0, true};
  }
  std::int64_t delta_friend = 0;
  std::int64_t delta_rej = 0;
  const graph::AugmentedGraph& base = delta_.Graph();
  if (s < base.NumNodes() && !delta_.OverlayTouched(s)) {
    // Fast path: no event since the last compaction touched s, so its
    // effective rows ARE its base CSR rows — walk them directly and skip
    // the three overlay merge walks (same side() arithmetic, bit-identical
    // result; the epoch-tag check is O(1)).
    for (graph::NodeId f : base.Friendships().Neighbors(s)) {
      delta_friend += side(f) ? -1 : +1;
    }
    for (graph::NodeId r : base.Rejections().Rejectors(s)) {
      if (!side(r)) ++delta_rej;
    }
    for (graph::NodeId t : base.Rejections().Rejectees(s)) {
      if (side(t)) --delta_rej;
    }
    const double gain = static_cast<double>(delta_friend) -
                        prev_k_ * static_cast<double>(delta_rej);
    return {gain, gain < 0.0};
  }
  delta_.ForEachFriend(s, [&](graph::NodeId f) {
    delta_friend += side(f) ? -1 : +1;
  });
  delta_.ForEachRejector(s, [&](graph::NodeId r) {
    if (!side(r)) ++delta_rej;
  });
  delta_.ForEachRejectee(s, [&](graph::NodeId t) {
    if (side(t)) --delta_rej;
  });
  const double gain = static_cast<double>(delta_friend) -
                      prev_k_ * static_cast<double>(delta_rej);
  return {gain, gain < 0.0};
}

namespace {
// Version tag for the detector's extra-state section inside the checkpoint
// payload (the file-level format is versioned separately by its magic).
constexpr std::uint32_t kEpochStateVersion = 1;
}  // namespace

void EpochDetector::SaveCheckpoint(const std::string& path) {
  // The checkpoint stores the compacted CSR; folding the overlay here keeps
  // the snapshot identical to what the next epoch would detect on.
  delta_.Compact();
  const graph::AugmentedGraph& g = delta_.Graph();

  stream::ByteWriter extra;
  extra.PutU32(kEpochStateVersion);
  extra.PutU64(total_events_ingested_);
  extra.PutU64(epoch_base_ + history_.size());
  extra.PutU8(has_prev_ ? 1 : 0);
  if (has_prev_) {
    extra.PutF64(prev_k_);
    // The mask is indexed by graph id; size it to the snapshot so restore
    // never has to guess (ids never remap across the stream).
    std::vector<char> mask = prev_mask_;
    mask.resize(g.NumNodes(), 0);
    extra.PutU64(mask.size());
    extra.PutBytes(mask.data(), mask.size());
  }
  stream::SaveCheckpointFile(path, g, &extra);
}

std::unique_ptr<EpochDetector> EpochDetector::RestoreCheckpoint(
    const std::string& path, detect::Seeds seeds, EpochConfig config) {
  std::vector<unsigned char> raw;
  graph::AugmentedGraph g = stream::LoadCheckpointFile(path, &raw);

  stream::ByteReader extra(raw.data(), raw.size());
  const std::uint32_t version = extra.GetU32();
  if (version != kEpochStateVersion) {
    throw std::runtime_error("checkpoint " + path +
                             ": unsupported epoch-state version " +
                             std::to_string(version));
  }
  const std::uint64_t events = extra.GetU64();
  const std::uint64_t epochs = extra.GetU64();
  const bool has_prev = extra.GetU8() != 0;
  double prev_k = 0.0;
  std::vector<char> mask;
  if (has_prev) {
    prev_k = extra.GetF64();
    const std::uint64_t mask_len = extra.GetU64();
    if (mask_len != g.NumNodes()) {
      throw std::runtime_error("checkpoint " + path +
                               ": warm-start mask length " +
                               std::to_string(mask_len) +
                               " does not match graph nodes " +
                               std::to_string(g.NumNodes()));
    }
    mask.resize(mask_len);
    extra.GetBytes(mask.data(), mask.size());
  }
  if (extra.Remaining() != 0) {
    throw std::runtime_error("checkpoint " + path +
                             ": trailing bytes in epoch state");
  }

  auto detector = std::unique_ptr<EpochDetector>(new EpochDetector(
      std::move(g), std::move(seeds), std::move(config)));
  detector->total_events_ingested_ = events;
  detector->epoch_base_ = epochs;
  detector->has_prev_ = has_prev;
  detector->prev_k_ = prev_k;
  detector->prev_mask_ = std::move(mask);
  return detector;
}

std::unique_ptr<EpochDetector> EpochDetector::FromSnapshot(
    const std::string& path, detect::Seeds seeds, EpochConfig config) {
  graph::Snapshot snap = graph::LoadSnapshot(path);
  // Stream ids never remap, so a snapshot saved in a non-identity layout
  // must be mapped back to the original id space before seeds and events
  // reference it.
  graph::AugmentedGraph g =
      snap.layout.IsIdentity()
          ? std::move(snap.graph)
          : graph::ApplyLayout(snap.graph, graph::InvertLayout(snap.layout));
  return std::make_unique<EpochDetector>(std::move(g), std::move(seeds),
                                         std::move(config));
}

}  // namespace rejecto::engine
