#include "engine/dist_detector.h"

#include "engine/dist_maar.h"

namespace rejecto::engine {

DistDetectionResult DetectFriendSpammersDistributed(
    const graph::AugmentedGraph& g, const detect::Seeds& seeds,
    const detect::IterativeConfig& config, Cluster& cluster) {
  DistDetectionResult result;
  auto runner = [&](const graph::AugmentedGraph& residual,
                    const detect::Seeds& round_seeds,
                    const detect::MaarConfig& maar) {
    // Re-shard the residual graph — the prototype's per-round RDD rebuild.
    // The cluster-aware store carries the fetch retry/failover policy and
    // rebuilds dead workers' partitions as replicas up front.
    const ShardedGraphStore store(residual, cluster);
    ++result.stores_built;
    IoStats round_io;
    round_io.Accumulate(store.PublishIo());  // wire backends: partition push
    round_io.shard_failovers += store.Failovers();
    DistMaarResult r =
        SolveMaarDistributed(residual, store, cluster, round_seeds, maar);
    round_io.Accumulate(r.io);
    result.io.Accumulate(round_io);
    result.per_round.push_back(round_io);
    return r.cut;
  };
  result.detection = detect::DetectFriendSpammers(g, seeds, config, runner);
  return result;
}

}  // namespace rejecto::engine
