#include "engine/dist_detector.h"

#include "engine/dist_maar.h"

namespace rejecto::engine {

DistDetectionResult DetectFriendSpammersDistributed(
    const graph::AugmentedGraph& g, const detect::Seeds& seeds,
    const detect::IterativeConfig& config, Cluster& cluster) {
  DistDetectionResult result;
  const std::uint32_t shards =
      static_cast<std::uint32_t>(cluster.Pool().size());
  auto runner = [&](const graph::AugmentedGraph& residual,
                    const detect::Seeds& round_seeds,
                    const detect::MaarConfig& maar) {
    // Re-shard the residual graph — the prototype's per-round RDD rebuild.
    const ShardedGraphStore store(residual, shards, cluster.Pool());
    ++result.stores_built;
    DistMaarResult r =
        SolveMaarDistributed(residual, store, cluster, round_seeds, maar);
    result.io.fetch_requests += r.io.fetch_requests;
    result.io.nodes_fetched += r.io.nodes_fetched;
    result.io.bytes_transferred += r.io.bytes_transferred;
    result.io.cache_hits += r.io.cache_hits;
    result.io.cache_misses += r.io.cache_misses;
    result.io.simulated_network_us += r.io.simulated_network_us;
    return r.cut;
  };
  result.detection = detect::DetectFriendSpammers(g, seeds, config, runner);
  return result;
}

}  // namespace rejecto::engine
