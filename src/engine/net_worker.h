// Worker-side shard service for the distributed engine.
//
// ShardWorker is the state machine behind a worker's wire endpoint: it
// accepts kBuildShard pushes (the master distributing a store's
// partitions, one generation per detection round) and answers
// kFetchRequest with the rows of the newest matching store. It is
// transport-agnostic — the same Serve() is installed as a SimNetwork
// handler (in-process deterministic tests) and behind a net::FrameServer
// in a real worker process (RunShardWorker) — which is precisely why the
// socket and simulated paths are bit-identical: both ends run this exact
// code against byte-identical frames.
//
// Serve never throws: malformed bodies, unknown stores, and out-of-range
// ids come back as kError messages the master's retry/failover machinery
// handles like any other wire fault.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "engine/wire.h"
#include "net/worker.h"

namespace rejecto::engine {

class ShardWorker {
 public:
  // Serves one request message; always returns a response with the
  // request's id echoed.
  net::Message Serve(const net::Message& request);

  std::size_t NumStores() const noexcept { return stores_.size(); }
  std::uint64_t FramesServed() const noexcept { return served_; }

 private:
  struct StoreShard {
    std::uint32_t shard = 0;
    std::uint32_t num_shards = 0;
    graph::NodeId num_nodes = 0;
    std::vector<NodeAdjacency> rows;  // local order
  };

  net::Message ServeFetch(const net::Message& request);
  net::Message ServeBuild(const net::Message& request);

  // Keyed by store generation; the master builds stores serially, so on a
  // new push every older generation is dropped (the per-round RDD
  // unpersist of the prototype).
  std::unordered_map<std::uint64_t, StoreShard> stores_;
  std::uint64_t served_ = 0;
};

// Runs a worker process: binds `endpoint`, serves ShardWorker frames until
// the master's kShutdown arrives, and returns a process exit code. The
// entry point behind `dist_detect --worker`.
int RunShardWorker(const std::string& endpoint,
                   const net::WorkerOptions& options = {});

}  // namespace rejecto::engine
