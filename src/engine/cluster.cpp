#include "engine/cluster.h"

#include <stdexcept>
#include <string>

#include "engine/net_worker.h"

namespace rejecto::engine {
namespace {

// "cluster.cpp:42: ..." — so a bad config thrown five layers deep in a
// bench harness still points at the check that rejected it.
std::string At(int line) {
  return std::string("cluster.cpp:") + std::to_string(line) + ": ";
}

// Runs before the thread pool spins up: a zero-worker pool must never be
// constructed, so validation cannot live in the constructor body.
ClusterConfig Validated(ClusterConfig config) {
  if (config.num_workers == 0) {
    throw std::invalid_argument(
        At(__LINE__) + "ClusterConfig::num_workers must be >= 1");
  }
  if (config.prefetch_batch == 0 ||
      config.prefetch_batch > config.buffer_capacity) {
    throw std::invalid_argument(
        At(__LINE__) +
        "ClusterConfig::prefetch_batch must be in [1, buffer_capacity]; got " +
        std::to_string(config.prefetch_batch) + " with buffer_capacity " +
        std::to_string(config.buffer_capacity));
  }
  config.fetch.Validate("ClusterConfig::fetch");
  switch (config.transport) {
    case net::TransportKind::kLoopback:
      break;
    case net::TransportKind::kSimNet:
      if (config.sim.num_peers == 0) {
        config.sim.num_peers = config.num_workers;
      } else if (config.sim.num_peers != config.num_workers) {
        throw std::invalid_argument(
            At(__LINE__) + "ClusterConfig::sim.num_peers (" +
            std::to_string(config.sim.num_peers) +
            ") must be 0 or equal num_workers (" +
            std::to_string(config.num_workers) + ")");
      }
      for (const auto& [peer, faults] : config.sim.link_overrides) {
        if (peer >= config.num_workers) {
          throw std::invalid_argument(
              At(__LINE__) + "ClusterConfig::sim.link_overrides names peer " +
              std::to_string(peer) + " but the cluster has " +
              std::to_string(config.num_workers) + " workers");
        }
        (void)faults;
      }
      break;
    case net::TransportKind::kSocket:
      if (config.socket.endpoints.size() != config.num_workers) {
        throw std::invalid_argument(
            At(__LINE__) + "ClusterConfig::socket.endpoints has " +
            std::to_string(config.socket.endpoints.size()) +
            " entries for " + std::to_string(config.num_workers) +
            " workers");
      }
      // Parse now so a typo'd endpoint dies here, not mid-connect.
      for (const std::string& e : config.socket.endpoints) {
        net::ParseEndpoint(e);
      }
      if (config.socket.connect_attempts == 0) {
        throw std::invalid_argument(
            At(__LINE__) + "ClusterConfig::socket.connect_attempts must be "
            ">= 1");
      }
      break;
  }
  return config;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(Validated(config)),
      pool_(config_.num_workers),
      dead_(config_.num_workers, 0) {
  switch (config_.transport) {
    case net::TransportKind::kLoopback:
      break;
    case net::TransportKind::kSimNet: {
      auto sim = std::make_unique<net::SimNetwork>(config_.sim);
      sim_workers_.reserve(config_.num_workers);
      for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
        sim_workers_.push_back(std::make_unique<ShardWorker>());
        ShardWorker* worker = sim_workers_.back().get();
        sim->SetHandler(
            w, [worker](const net::Message& m) { return worker->Serve(m); });
      }
      transport_ = std::move(sim);
      break;
    }
    case net::TransportKind::kSocket:
      transport_ = std::make_unique<net::SocketTransport>(config_.socket);
      break;
  }
}

Cluster::~Cluster() { ShutdownTransport(); }

const net::TransportStats* Cluster::WireStats() const noexcept {
  return transport_ == nullptr ? nullptr : &transport_->Stats();
}

void Cluster::ShutdownTransport() {
  if (config_.transport == net::TransportKind::kSocket &&
      transport_ != nullptr) {
    static_cast<net::SocketTransport*>(transport_.get())->ShutdownPeers();
  }
}

void Cluster::KillWorker(std::uint32_t worker) {
  if (worker >= dead_.size()) {
    throw std::out_of_range("Cluster::KillWorker: worker index");
  }
  dead_[worker] = 1;
  // An in-process sim worker "dies" by losing its frame handler: every
  // frame to it from now on vanishes like frames to a crashed process.
  if (transport_ != nullptr &&
      config_.transport == net::TransportKind::kSimNet) {
    transport_->SetHandler(worker, nullptr);
  }
}

void Cluster::ReviveWorker(std::uint32_t worker) {
  if (worker >= dead_.size()) {
    throw std::out_of_range("Cluster::ReviveWorker: worker index");
  }
  dead_[worker] = 0;
  if (transport_ != nullptr &&
      config_.transport == net::TransportKind::kSimNet) {
    // The revived worker restarts empty — its partitions were lost; the
    // next store push repopulates it.
    sim_workers_[worker] = std::make_unique<ShardWorker>();
    ShardWorker* w = sim_workers_[worker].get();
    transport_->SetHandler(
        worker, [w](const net::Message& m) { return w->Serve(m); });
  }
}

std::uint32_t Cluster::NumDeadWorkers() const noexcept {
  std::uint32_t n = 0;
  for (char d : dead_) n += d != 0;
  return n;
}

const ShardWorker* Cluster::SimWorker(std::uint32_t worker) const noexcept {
  if (config_.transport != net::TransportKind::kSimNet ||
      worker >= sim_workers_.size()) {
    return nullptr;
  }
  return sim_workers_[worker].get();
}

}  // namespace rejecto::engine
