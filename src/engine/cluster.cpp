#include "engine/cluster.h"

#include <stdexcept>

namespace rejecto::engine {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), pool_(config.num_workers) {
  if (config.prefetch_batch == 0 ||
      config.prefetch_batch > config.buffer_capacity) {
    throw std::invalid_argument(
        "Cluster: prefetch_batch must be in [1, buffer_capacity]");
  }
}

}  // namespace rejecto::engine
