#include "engine/cluster.h"

#include <stdexcept>

namespace rejecto::engine {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      pool_(config.num_workers),
      dead_(config.num_workers, 0) {
  if (config.prefetch_batch == 0 ||
      config.prefetch_batch > config.buffer_capacity) {
    throw std::invalid_argument(
        "Cluster: prefetch_batch must be in [1, buffer_capacity]");
  }
  if (config.fetch.max_attempts == 0) {
    throw std::invalid_argument("Cluster: fetch.max_attempts must be >= 1");
  }
  if (config.fetch.backoff_us < 0.0 || config.fetch.attempt_timeout_us < 0.0) {
    throw std::invalid_argument(
        "Cluster: fetch backoff/timeout must be non-negative");
  }
  if (config.fetch.backoff_multiplier < 1.0) {
    throw std::invalid_argument(
        "Cluster: fetch.backoff_multiplier must be >= 1");
  }
}

void Cluster::KillWorker(std::uint32_t worker) {
  if (worker >= dead_.size()) {
    throw std::out_of_range("Cluster::KillWorker: worker index");
  }
  dead_[worker] = 1;
}

void Cluster::ReviveWorker(std::uint32_t worker) {
  if (worker >= dead_.size()) {
    throw std::out_of_range("Cluster::ReviveWorker: worker index");
  }
  dead_[worker] = 0;
}

std::uint32_t Cluster::NumDeadWorkers() const noexcept {
  std::uint32_t n = 0;
  for (char d : dead_) n += d != 0;
  return n;
}

}  // namespace rejecto::engine
