// Fully-distributed Rejecto pipeline (paper §V end-to-end).
//
// detect::DetectFriendSpammers with every per-round MAAR solve executed on
// the cluster substrate: each residual graph is re-sharded across the
// workers (the prototype rebuilds its RDDs after pruning, caching them in
// memory) and solved via engine::SolveMaarDistributed. Results are
// identical to the serial pipeline; I/O statistics accumulate across all
// rounds and sweeps.
#pragma once

#include <vector>

#include "detect/iterative.h"
#include "engine/cluster.h"
#include "engine/shard_store.h"

namespace rejecto::engine {

struct DistDetectionResult {
  detect::DetectionResult detection;
  IoStats io;              // summed over every KL run of every round
  int stores_built = 0;    // residual re-shardings (one per round)
  // One entry per round: that round's store publish + KL sweep traffic,
  // including wire counters (io is the field-wise sum of these).
  std::vector<IoStats> per_round;
};

DistDetectionResult DetectFriendSpammersDistributed(
    const graph::AugmentedGraph& g, const detect::Seeds& seeds,
    const detect::IterativeConfig& config, Cluster& cluster);

}  // namespace rejecto::engine
