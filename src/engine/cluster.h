// Cluster model (paper §V).
//
// Wraps a worker thread pool plus the knobs of the prototype's deployment:
// worker count, prefetch batch size, master-side buffer capacity, and the
// transport the master speaks to its workers:
//
//   loopback  no transport object at all — the "network" is the metered
//             FetchBatch path of ShardedGraphStore (the original simulated
//             cluster; default, and byte-identical to what it always did).
//   simnet    a net::SimNetwork carrying RJNET001 frames between the master
//             and in-process ShardWorkers over deterministic faulty links.
//   socket    a net::SocketTransport speaking the same frames to real
//             worker processes (one endpoint per worker).
//
// Config validation happens in the constructor and throws
// std::invalid_argument with a file:line prefix — a bad deployment dies
// loudly at construction, never as a hung fetch loop later.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/shard_store.h"
#include "net/sim_net.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "util/thread_pool.h"

namespace rejecto::engine {

class ShardWorker;

struct ClusterConfig {
  std::uint32_t num_workers = 4;
  std::size_t prefetch_batch = 64;      // nodes pulled per cache miss
  std::size_t buffer_capacity = 4096;   // adjacencies cached on the master
  // Retry/backoff/failover knobs for shard fetches (docs/ROBUSTNESS.md);
  // copied into every ShardedGraphStore the cluster builds.
  FetchPolicy fetch;
  // Transport backend; fields below only matter for their backend.
  net::TransportKind transport = net::TransportKind::kLoopback;
  // simnet: num_peers may stay 0 (auto-filled with num_workers); if set it
  // must match num_workers.
  net::SimNetConfig sim;
  // socket: endpoints.size() must equal num_workers, each a worker process
  // already listening (or about to be; the transport retries connects).
  net::SocketConfig socket;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& Config() const noexcept { return config_; }
  util::ThreadPool& Pool() noexcept { return pool_; }

  // Null on the loopback backend.
  net::Transport* Transport() noexcept { return transport_.get(); }
  net::TransportKind TransportKind() const noexcept {
    return config_.transport;
  }

  // Store generations on the wire. Monotonic per cluster so a worker can
  // tell a re-pushed partition from a new round's store.
  std::uint64_t NextStoreId() noexcept { return ++store_ids_; }

  // Cumulative wire traffic since construction (null for loopback).
  const net::TransportStats* WireStats() const noexcept;

  // Sends kShutdown to every live worker process (socket backend only;
  // no-op otherwise). The destructor calls this too, so an explicit call is
  // only needed to shut workers down early.
  void ShutdownTransport();

  // Worker-death bookkeeping. A dead worker's partitions are rebuilt as
  // replicas by every store built afterwards (and by a mid-sweep failover
  // in stores already live). Master-thread only, like FetchBatch.
  void KillWorker(std::uint32_t worker);
  void ReviveWorker(std::uint32_t worker);
  bool WorkerDead(std::uint32_t worker) const noexcept {
    return worker < dead_.size() && dead_[worker] != 0;
  }
  std::uint32_t NumDeadWorkers() const noexcept;

  // The in-process ShardWorker behind simnet peer `worker` (null on other
  // backends) — test hook for asserting what the wire actually delivered.
  const ShardWorker* SimWorker(std::uint32_t worker) const noexcept;

 private:
  ClusterConfig config_;
  util::ThreadPool pool_;
  std::vector<char> dead_;
  std::unique_ptr<net::Transport> transport_;
  // simnet backend: the per-peer frame handlers' state. Owned here so every
  // store the cluster builds talks to the same workers, like a real
  // deployment.
  std::vector<std::unique_ptr<ShardWorker>> sim_workers_;
  std::uint64_t store_ids_ = 0;
};

}  // namespace rejecto::engine
