// In-process cluster model (paper §V).
//
// Wraps a worker thread pool plus the knobs of the prototype's deployment:
// worker count, prefetch batch size, and master-side buffer capacity. The
// "network" between master and workers is the metered FetchBatch path of
// ShardedGraphStore.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/shard_store.h"
#include "util/thread_pool.h"

namespace rejecto::engine {

struct ClusterConfig {
  std::uint32_t num_workers = 4;
  std::size_t prefetch_batch = 64;      // nodes pulled per cache miss
  std::size_t buffer_capacity = 4096;   // adjacencies cached on the master
  // Retry/backoff/failover knobs for shard fetches (docs/ROBUSTNESS.md);
  // copied into every ShardedGraphStore the cluster builds.
  FetchPolicy fetch;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& Config() const noexcept { return config_; }
  util::ThreadPool& Pool() noexcept { return pool_; }

  // Worker-death bookkeeping. A dead worker's partitions are rebuilt as
  // replicas by every store built afterwards (and by a mid-sweep failover
  // in stores already live). Master-thread only, like FetchBatch.
  void KillWorker(std::uint32_t worker);
  void ReviveWorker(std::uint32_t worker);
  bool WorkerDead(std::uint32_t worker) const noexcept {
    return worker < dead_.size() && dead_[worker] != 0;
  }
  std::uint32_t NumDeadWorkers() const noexcept;

 private:
  ClusterConfig config_;
  util::ThreadPool pool_;
  std::vector<char> dead_;
};

}  // namespace rejecto::engine
