// In-process cluster model (paper §V).
//
// Wraps a worker thread pool plus the knobs of the prototype's deployment:
// worker count, prefetch batch size, and master-side buffer capacity. The
// "network" between master and workers is the metered FetchBatch path of
// ShardedGraphStore.
#pragma once

#include <cstdint>
#include <memory>

#include "util/thread_pool.h"

namespace rejecto::engine {

struct ClusterConfig {
  std::uint32_t num_workers = 4;
  std::size_t prefetch_batch = 64;      // nodes pulled per cache miss
  std::size_t buffer_capacity = 4096;   // adjacencies cached on the master
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& Config() const noexcept { return config_; }
  util::ThreadPool& Pool() noexcept { return pool_; }

 private:
  ClusterConfig config_;
  util::ThreadPool pool_;
};

}  // namespace rejecto::engine
