// Periodic re-detection over a streaming augmented graph.
//
// The paper's deployment model (§V, §VII) has the OSN re-run Rejecto
// periodically as requests, acceptances, and rejections accumulate.
// EpochDetector packages that loop: events feed a stream::DeltaGraph; every
// `events_per_epoch` events (or on demand) the overlay is compacted into a
// fresh CSR and the full iterative pipeline (detect::DetectFriendSpammers)
// re-runs on it, reusing one ThreadPool across ingest compactions and every
// epoch's MAAR sweeps.
//
// Warm starts: with `warm_start` on, round 0 of each epoch seeds its MAAR
// sweep with the previous epoch's round-0 cut mask (MaarConfig::extra_init)
// and narrows the k sweep to a halo around the previous best k — in steady
// state the cut moves little between epochs, so this cuts the dominant
// round-0 grid from dozens of KL runs to a handful. Warm epochs are still
// deterministic and bit-identical at any thread count (the extra init is
// one more fixed cell in the deterministic reduction), but they see
// information a cold solve does not, so their cuts may differ from a cold
// batch run. With `warm_start` off an epoch is EXACTLY a batch
// DetectFriendSpammers on the compacted graph — the differential harness
// pins streamed cuts bit-identical to batch cuts at 1/2/8 threads.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "detect/incremental.h"
#include "detect/iterative.h"
#include "detect/seeds.h"
#include "graph/augmented_graph.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"

namespace rejecto::util {
class ThreadPool;
}  // namespace rejecto::util

namespace rejecto::engine {

struct EpochConfig {
  // Per-epoch detection pipeline; detect.maar.num_threads also sizes the
  // detector's shared pool (ingest compactions + MAAR sweeps).
  detect::IterativeConfig detect;

  // Run an epoch automatically once this many events were ingested since
  // the previous epoch. 0 disables auto-epochs (RunEpoch() only).
  std::uint64_t events_per_epoch = 10'000;

  // Overlay compaction policy between epochs (see stream::DeltaConfig).
  stream::DeltaConfig delta;

  // Warm-start policy (see header comment).
  bool warm_start = true;
  int warm_k_halo = 1;        // sweep steps kept on each side of the prev k
  int warm_random_inits = 0;  // random inits in a warm round-0 sweep
};

// The warm-start baton passed from one epoch's detection to the next: the
// round-0 pre-trim cut mask (graph ids) and the ratio weight k that
// produced it. This is also the serving layer's incremental-scoring
// baseline (detect/incremental.h).
struct EpochWarmState {
  bool valid = false;       // a usable round-0 cut exists
  std::vector<char> mask;   // indexed by graph id
  double k = 0.0;
};

struct EpochDetectionOutput {
  detect::DetectionResult result;
  // The state the NEXT epoch warm-starts from (valid iff this run produced
  // rounds); mask is sized to the detected graph's node count.
  EpochWarmState next_warm;
  bool warm_started = false;
};

// The detection core of one epoch, shared by EpochDetector::RunEpoch and
// the concurrent serving layer (serve::AdmissionService runs it on a
// background worker against an immutable snapshot while ingest continues):
// the full iterative pipeline on the compacted graph g, with round 0
// warm-started from `warm` when config.warm_start allows (mask seeded as
// MaarConfig::extra_init, k sweep narrowed to config.warm_k_halo around
// warm.k). With warm off or invalid this is EXACTLY a batch
// DetectFriendSpammers. Pure: touches nothing but its arguments.
EpochDetectionOutput RunEpochDetection(const graph::AugmentedGraph& g,
                                       const detect::Seeds& seeds,
                                       const EpochConfig& config,
                                       const EpochWarmState& warm,
                                       util::ThreadPool* pool);

struct EpochStats {
  int epoch = 0;
  bool warm_started = false;

  // Ingest since the previous epoch.
  std::uint64_t events_absorbed = 0;  // events ingested (applied + no-op)
  std::uint64_t events_noop = 0;      // duplicates / already-absent removals
  std::uint64_t compactions = 0;      // auto + the forced pre-detect compact
  double ingest_seconds = 0.0;
  double compact_seconds = 0.0;       // the forced pre-detect compaction

  // This epoch's detection run.
  double detect_seconds = 0.0;
  std::size_t num_detected = 0;
  int rounds = 0;
  std::vector<double> round_ratios;  // cut trajectory, one ratio per round
  double first_round_ratio = std::numeric_limits<double>::quiet_NaN();
  double first_round_acceptance = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t total_kl_runs = 0;
  std::uint64_t total_switches = 0;
};

class EpochDetector {
 public:
  // Starts from an existing CSR snapshot (or an empty graph of `num_nodes`
  // isolated accounts). Seeds are graph ids; ids never remap across the
  // stream, so they stay valid for the detector's whole lifetime.
  EpochDetector(graph::AugmentedGraph base, detect::Seeds seeds,
                EpochConfig config);
  EpochDetector(graph::NodeId num_nodes, detect::Seeds seeds,
                EpochConfig config);
  ~EpochDetector();

  EpochDetector(const EpochDetector&) = delete;
  EpochDetector& operator=(const EpochDetector&) = delete;

  // Absorbs one event. Returns a pointer to the epoch's stats when this
  // event triggered an auto-epoch, nullptr otherwise (pointer into
  // History(); stable until the detector is destroyed).
  const EpochStats* Ingest(const stream::Event& e);

  // Convenience: absorbs a whole span, returning how many epochs fired.
  std::size_t IngestAll(std::span<const stream::Event> events);

  // Forces an epoch now: compacts the overlay and re-runs detection.
  const EpochStats& RunEpoch();

  // Durability (docs/ROBUSTNESS.md): compacts the overlay and atomically
  // writes a CRC-guarded snapshot — the CSR graph plus warm-start state,
  // the epoch counter, and the total event count. Crash recovery is
  // RestoreCheckpoint + replaying the WAL tail past EventsIngested():
  // bit-identical to a detector that never crashed.
  void SaveCheckpoint(const std::string& path);
  static std::unique_ptr<EpochDetector> RestoreCheckpoint(
      const std::string& path, detect::Seeds seeds, EpochConfig config);

  // Cold-boots a detector from a graph/snapshot.h binary snapshot (either
  // RJSNAP01 or compressed RJSNAP02 — LoadSnapshot dispatches on the magic
  // and expands v2 block-by-block) — the fast-start counterpart of parsing
  // text edge lists into the base-graph constructor. A snapshot saved in a non-identity layout is mapped back
  // to ORIGINAL ids here, because stream ids never remap: seeds and every
  // future Ingest() event keep the id space the snapshot's source graph
  // had. (Unlike RestoreCheckpoint, this carries no warm-start state or
  // event cursor — it is a fresh detector on a prebuilt graph.)
  static std::unique_ptr<EpochDetector> FromSnapshot(const std::string& path,
                                                     detect::Seeds seeds,
                                                     EpochConfig config);

  // Events absorbed over the detector's whole lifetime (survives
  // checkpoint/restore) — the WAL replay cursor.
  std::uint64_t EventsIngested() const noexcept {
    return total_events_ingested_;
  }

  // --- sub-epoch incremental scoring (detect/incremental.h) ---
  //
  // Between epochs the detector can classify a sender in O(deg) against the
  // previous epoch's round-0 cut: ΔW(s) of switching s into the incumbent
  // suspicious region, walking the DeltaGraph's effective rows so events
  // still sitting in the overlay count. Requires at least one completed
  // epoch whose round-0 cut was valid (HasIncrementalBaseline()); scoring
  // without a baseline throws std::logic_error. Nodes that joined the
  // stream after the baseline epoch score against mask-membership 0, which
  // is exactly what the next epoch's warm mask assumes about them.
  bool HasIncrementalBaseline() const noexcept {
    return has_prev_ && prev_k_ > 0.0;
  }
  detect::IncrementalScore ScoreSenderIncremental(graph::NodeId s) const;

  // The baseline the incremental score runs against: the previous epoch's
  // round-0 pre-trim mask (indexed by graph id) and its ratio weight k.
  const std::vector<char>& IncrementalMask() const noexcept {
    return prev_mask_;
  }
  double IncrementalK() const noexcept { return prev_k_; }

  const stream::DeltaGraph& Graph() const noexcept { return delta_; }
  const detect::DetectionResult& LastResult() const noexcept { return last_; }
  const std::vector<EpochStats>& History() const noexcept { return history_; }

 private:
  stream::DeltaGraph delta_;
  detect::Seeds seeds_;
  EpochConfig config_;
  std::shared_ptr<util::ThreadPool> pool_;

  // Warm-start state from the previous epoch's round 0.
  std::vector<char> prev_mask_;
  double prev_k_ = 0.0;
  bool has_prev_ = false;

  // Ingest accumulators since the last epoch.
  std::uint64_t pending_events_ = 0;
  double pending_ingest_seconds_ = 0.0;
  std::uint64_t noop_at_last_epoch_ = 0;
  std::uint64_t compactions_at_last_epoch_ = 0;

  // Durability state: lifetime event counter and the epoch number offset of
  // a restored detector (History() only holds post-restore epochs).
  std::uint64_t total_events_ingested_ = 0;
  std::uint64_t epoch_base_ = 0;

  detect::DetectionResult last_;
  std::vector<EpochStats> history_;
};

}  // namespace rejecto::engine
