#include "engine/prefetch.h"

#include <stdexcept>

namespace rejecto::engine {

PrefetchBuffer::PrefetchBuffer(const ShardedGraphStore& store,
                               std::size_t capacity, std::size_t batch_size)
    : store_(&store), capacity_(capacity), batch_size_(batch_size) {
  if (capacity == 0 || batch_size == 0) {
    throw std::invalid_argument("PrefetchBuffer: capacity and batch > 0");
  }
  if (batch_size > capacity) {
    throw std::invalid_argument("PrefetchBuffer: batch exceeds capacity");
  }
  cache_.reserve(capacity * 2);
}

void PrefetchBuffer::InsertEvicting(graph::NodeId v, NodeAdjacency adj) {
  if (auto it = cache_.find(v); it != cache_.end()) {
    lru_.erase(it->second);
    cache_.erase(it);
  }
  while (cache_.size() >= capacity_) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(v, std::move(adj));
  cache_.emplace(v, lru_.begin());
}

const NodeAdjacency& PrefetchBuffer::Get(graph::NodeId v,
                                         const CandidateSupplier& candidates) {
  if (auto it = cache_.find(v); it != cache_.end()) {
    ++stats_.cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return it->second->second;
  }
  ++stats_.cache_misses;

  scratch_.clear();
  scratch_.push_back(v);
  if (candidates && batch_size_ > 1) {
    candidates(batch_size_ - 1, scratch_);
    // Drop duplicates and already-cached ids (beyond the leading v).
    std::size_t kept = 1;
    for (std::size_t i = 1;
         i < scratch_.size() && kept < batch_size_; ++i) {
      const graph::NodeId c = scratch_[i];
      if (c == v || cache_.contains(c)) continue;
      bool dup = false;
      for (std::size_t j = 1; j < kept; ++j) {
        if (scratch_[j] == c) {
          dup = true;
          break;
        }
      }
      if (!dup) scratch_[kept++] = c;
    }
    scratch_.resize(kept);
  }

  auto fetched = store_->FetchBatch(scratch_, stats_);
  // Insert prefetched candidates first so v ends up most recent.
  for (std::size_t i = scratch_.size(); i > 0; --i) {
    InsertEvicting(scratch_[i - 1], std::move(fetched[i - 1]));
  }
  return cache_.find(v)->second->second;
}

const NodeAdjacency& PrefetchBuffer::Get(graph::NodeId v) {
  return Get(v, CandidateSupplier{});
}

}  // namespace rejecto::engine
