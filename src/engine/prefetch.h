// Master-side prefetch buffer with LRU replacement (paper §V).
//
// Fetching one node's adjacency per switch would cost a master<->worker
// round trip per step; the prototype instead prefetches the nodes most
// likely to be switched next — those with the highest potential gains in
// the bucket list — in batches, and evicts with LRU. The candidate supplier
// is injected so DistributedKl can hand in "current top-gain nodes".
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "engine/shard_store.h"
#include "graph/types.h"

namespace rejecto::engine {

class PrefetchBuffer {
 public:
  // capacity: max cached adjacencies; batch_size: nodes pulled per miss
  // (the missed node plus up to batch_size-1 candidates).
  PrefetchBuffer(const ShardedGraphStore& store, std::size_t capacity,
                 std::size_t batch_size);

  // Returns v's adjacency, fetching a batch on miss. `candidates` supplies
  // ids worth prefetching alongside v (may repeat v or cached ids — both
  // are skipped). The reference stays valid until the next Get.
  using CandidateSupplier =
      std::function<void(std::size_t want, std::vector<graph::NodeId>& out)>;
  const NodeAdjacency& Get(graph::NodeId v,
                           const CandidateSupplier& candidates);

  // Get without prefetching beyond v itself.
  const NodeAdjacency& Get(graph::NodeId v);

  const IoStats& Stats() const noexcept { return stats_; }
  std::size_t CachedNodes() const noexcept { return cache_.size(); }

 private:
  void InsertEvicting(graph::NodeId v, NodeAdjacency adj);

  const ShardedGraphStore* store_;
  std::size_t capacity_;
  std::size_t batch_size_;
  IoStats stats_;

  // LRU: most-recent at front.
  std::list<std::pair<graph::NodeId, NodeAdjacency>> lru_;
  std::unordered_map<graph::NodeId, decltype(lru_)::iterator> cache_;
  std::vector<graph::NodeId> scratch_;
};

}  // namespace rejecto::engine
