// Distributed MAAR solve: detect::MaarSolver's k-sweep + Dinkelbach driver
// with engine::DistributedKl as the inner partitioner, so the full Rejecto
// cut search runs against the cluster substrate (sharded adjacency, master
// bucket list, prefetch). Produces the exact cut the serial solver would
// (DistributedKl is bit-identical to ExtendedKl) plus accumulated I/O
// statistics for every KL invocation of the sweep — this is what Table II
// times.
#pragma once

#include "detect/maar.h"
#include "engine/cluster.h"
#include "engine/shard_store.h"

namespace rejecto::engine {

struct DistMaarResult {
  detect::MaarCut cut;
  IoStats io;  // summed over all KL runs of the sweep
};

// `store` must hold the same augmented graph `g`. The cluster provides the
// worker pool and prefetch configuration.
DistMaarResult SolveMaarDistributed(const graph::AugmentedGraph& g,
                                    const ShardedGraphStore& store,
                                    Cluster& cluster,
                                    const detect::Seeds& seeds,
                                    const detect::MaarConfig& config);

}  // namespace rejecto::engine
