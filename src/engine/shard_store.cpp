#include "engine/shard_store.h"

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "engine/cluster.h"
#include "engine/wire.h"
#include "util/failpoint.h"

namespace rejecto::engine {
namespace {

std::string At(int line) {
  return std::string("shard_store.cpp:") + std::to_string(line) + ": ";
}

// Wire counters are cumulative on the transport; per-operation IoStats get
// the snapshot difference.
net::TransportStats Delta(const net::TransportStats& now,
                          const net::TransportStats& then) {
  net::TransportStats d;
  d.frames_sent = now.frames_sent - then.frames_sent;
  d.frames_received = now.frames_received - then.frames_received;
  d.bytes_sent = now.bytes_sent - then.bytes_sent;
  d.bytes_received = now.bytes_received - then.bytes_received;
  d.timeouts = now.timeouts - then.timeouts;
  d.reconnects = now.reconnects - then.reconnects;
  d.corrupt_frames = now.corrupt_frames - then.corrupt_frames;
  d.dropped_frames = now.dropped_frames - then.dropped_frames;
  d.busy_us = now.busy_us - then.busy_us;
  return d;
}

// Real backoff for the real backend; simulated backends only meter it.
// Capped so a test with an aggressive multiplier can't stall for seconds.
void SleepBackoff(double backoff_us) {
  constexpr double kMaxSleepUs = 50'000.0;
  const auto us = static_cast<std::int64_t>(
      backoff_us < kMaxSleepUs ? backoff_us : kMaxSleepUs);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

void FetchPolicy::Validate(const std::string& who) const {
  if (max_attempts == 0) {
    throw std::invalid_argument(At(__LINE__) + who +
                                ".max_attempts must be >= 1");
  }
  if (backoff_us < 0.0) {
    throw std::invalid_argument(At(__LINE__) + who +
                                ".backoff_us must be non-negative");
  }
  if (backoff_multiplier < 1.0) {
    throw std::invalid_argument(At(__LINE__) + who +
                                ".backoff_multiplier must be >= 1");
  }
  if (attempt_timeout_us < 0.0) {
    throw std::invalid_argument(At(__LINE__) + who +
                                ".attempt_timeout_us must be non-negative");
  }
  if (publish_timeout_us < 0.0) {
    throw std::invalid_argument(At(__LINE__) + who +
                                ".publish_timeout_us must be non-negative");
  }
}

ShardedGraphStore::ShardedGraphStore(const graph::AugmentedGraph& g,
                                     std::uint32_t num_shards,
                                     util::ThreadPool& pool,
                                     const NetworkModel& network,
                                     const FetchPolicy& policy)
    : num_nodes_(g.NumNodes()),
      source_(&g),
      pool_(&pool),
      network_(network),
      policy_(policy) {
  if (num_shards == 0) {
    throw std::invalid_argument(
        At(__LINE__) + "ShardedGraphStore: num_shards must be > 0");
  }
  policy_.Validate("ShardedGraphStore policy");
  shards_.resize(num_shards);
  replica_.assign(num_shards, 0);
  // Shard loading is embarrassingly parallel across shards.
  pool_->ParallelFor(num_shards,
                     [&](std::size_t s) { BuildShard(static_cast<std::uint32_t>(s)); });
}

ShardedGraphStore::ShardedGraphStore(const graph::AugmentedGraph& g,
                                     Cluster& cluster,
                                     const NetworkModel& network)
    : ShardedGraphStore(g, static_cast<std::uint32_t>(cluster.Pool().size()),
                        cluster.Pool(), network, cluster.Config().fetch) {
  cluster_ = &cluster;
  // Partitions of already-dead workers start life as failover replicas: the
  // data was just rebuilt from lineage (the constructor above), which is
  // exactly the degraded-mode path — but constructing a store for a dead
  // worker without degraded mode is an operator error.
  for (std::uint32_t s = 0; s < NumShards(); ++s) {
    if (cluster.WorkerDead(s)) {
      if (!policy_.degraded_mode) {
        throw std::runtime_error(
            "ShardedGraphStore: worker " + std::to_string(s) +
            " is dead and degraded mode is off");
      }
      replica_[s] = 1;
      ++failovers_;
    }
  }
  if (cluster.Transport() != nullptr) {
    transport_ = cluster.Transport();
    transport_kind_ = cluster.TransportKind();
    store_id_ = cluster.NextStoreId();
    // Distribute the partitions: every live shard is pushed to its worker
    // as a kBuildShard frame, in shard order on the master thread so the
    // wire schedule is deterministic.
    for (std::uint32_t s = 0; s < NumShards(); ++s) {
      if (replica_[s] == 0) PublishShard(s);
    }
  }
}

ShardedGraphStore::~ShardedGraphStore() = default;

void ShardedGraphStore::BuildShard(std::uint32_t s) const {
  const std::uint32_t num_shards = NumShards();
  Shard& shard = shards_[s];
  shard.nodes.assign((num_nodes_ + num_shards - 1 - s) / num_shards,
                     NodeAdjacency{});
  const graph::AugmentedGraph& g = *source_;
  for (graph::NodeId v = static_cast<graph::NodeId>(s); v < num_nodes_;
       v += num_shards) {
    NodeAdjacency& a = shard.nodes[v / num_shards];
    const auto fr = g.Friendships().Neighbors(v);
    const auto rin = g.Rejections().Rejectors(v);
    const auto rout = g.Rejections().Rejectees(v);
    a.friends.assign(fr.begin(), fr.end());
    a.rejectors.assign(rin.begin(), rin.end());
    a.rejectees.assign(rout.begin(), rout.end());
  }
}

void ShardedGraphStore::FailoverShard(std::uint32_t s, IoStats& stats) const {
  if (!policy_.degraded_mode) {
    throw std::runtime_error(
        "ShardedGraphStore: shard " + std::to_string(s) +
        " unavailable after " + std::to_string(policy_.max_attempts) +
        " attempts and degraded mode is off");
  }
  // Lineage recompute: the replacement worker rebuilds the partition from
  // the source graph, so the replica is bit-identical to what was lost.
  BuildShard(s);
  replica_[s] = 1;
  ++stats.shard_failovers;
}

bool ShardedGraphStore::PublishShard(std::uint32_t s) {
  util::Failpoints& fp = util::Failpoints::Instance();
  const net::TransportStats before = transport_->Stats();
  net::Message req;
  req.type = net::MsgType::kBuildShard;
  {
    wire::BuildShard b;
    b.store_id = store_id_;
    b.shard = s;
    b.num_shards = NumShards();
    b.num_nodes = num_nodes_;
    // The local partition stays put (lineage source + worker-local
    // compute); the worker gets a copy.
    b.rows = shards_[s].nodes;
    wire::EncodeBuildShard(b, req.body);
  }

  bool acked = false;
  double backoff = policy_.backoff_us;
  for (std::uint32_t attempt = 1;; ++attempt) {
    if (fp.ShouldFail("engine/worker_crash")) {
      if (cluster_ != nullptr) cluster_->KillWorker(s);
      break;
    }
    // Straggler-proof: a fresh id per attempt, so an ack limping in after
    // its attempt timed out is discarded by the transport, not us.
    req.request_id = transport_->NextRequestId();
    net::Message resp;
    double elapsed = 0.0;
    const net::CallStatus st = transport_->Call(
        s, req, &resp, policy_.publish_timeout_us, &elapsed);
    if (transport_kind_ == net::TransportKind::kSimNet) {
      publish_io_.simulated_network_us += elapsed;
    }
    if (st == net::CallStatus::kOk &&
        resp.type == net::MsgType::kBuildAck) {
      try {
        const wire::BuildAck ack = wire::DecodeBuildAck(resp.body);
        if (ack.store_id == store_id_ && ack.shard == s &&
            ack.row_count == shards_[s].nodes.size()) {
          acked = true;
          break;
        }
      } catch (const std::exception&) {
        // Undecodable ack body: treat like any failed attempt.
      }
    }
    if (st == net::CallStatus::kPeerDead) {
      if (cluster_ != nullptr) cluster_->KillWorker(s);
      break;
    }
    if (attempt >= policy_.max_attempts) break;
    ++publish_io_.fetch_retries;
    publish_io_.simulated_backoff_us += backoff;
    if (transport_kind_ == net::TransportKind::kSocket) SleepBackoff(backoff);
    backoff *= policy_.backoff_multiplier;
  }
  publish_io_.wire.Accumulate(Delta(transport_->Stats(), before));
  if (acked) {
    publish_io_.bytes_transferred += req.body.size();
    return true;
  }
  // The push never landed: the shard serves master-locally from here on
  // (or the whole construction aborts without degraded mode). Counted in
  // publish_io_.shard_failovers, not Failovers(), so aggregating both never
  // double-counts.
  FailoverShard(s, publish_io_);
  return false;
}

void ShardedGraphStore::ResolveShardFetch(std::uint32_t s,
                                          IoStats& stats) const {
  util::Failpoints& fp = util::Failpoints::Instance();
  double backoff = policy_.backoff_us;
  for (std::uint32_t attempt = 1;; ++attempt) {
    if (fp.ShouldFail("engine/worker_crash")) {
      // The worker died; its in-memory partition is gone. Every store this
      // cluster builds from now on sees the death.
      if (cluster_ != nullptr) cluster_->KillWorker(s);
      shards_[s].nodes.clear();
      FailoverShard(s, stats);
      return;
    }
    if (!fp.ShouldFail("engine/fetch_shard")) return;  // attempt succeeded
    // The master burns the attempt's timeout discovering the failure.
    stats.simulated_network_us += policy_.attempt_timeout_us;
    if (attempt >= policy_.max_attempts) {
      shards_[s].nodes.clear();
      FailoverShard(s, stats);
      return;
    }
    ++stats.fetch_retries;
    stats.simulated_backoff_us += backoff;
    backoff *= policy_.backoff_multiplier;
  }
}

void ShardedGraphStore::ServeLocally(
    std::uint32_t s, std::span<const graph::NodeId> nodes,
    const std::vector<std::size_t>& positions,
    std::vector<NodeAdjacency>& out) const {
  for (std::size_t i : positions) {
    out[i] = shards_[s].nodes[nodes[i] / NumShards()];
  }
}

void ShardedGraphStore::ResolveWireFetch(
    std::uint32_t s, std::span<const graph::NodeId> nodes,
    const std::vector<std::size_t>& positions, std::vector<NodeAdjacency>& out,
    IoStats& stats) const {
  util::Failpoints& fp = util::Failpoints::Instance();
  std::vector<graph::NodeId> ids;
  ids.reserve(positions.size());
  for (std::size_t i : positions) ids.push_back(nodes[i]);

  const net::TransportStats before = transport_->Stats();
  bool served = false;
  double backoff = policy_.backoff_us;
  for (std::uint32_t attempt = 1;; ++attempt) {
    // The legacy failpoint sites fire on wire backends too, so the same
    // crash/flaky scenarios drive every backend.
    if (fp.ShouldFail("engine/worker_crash")) {
      if (cluster_ != nullptr) cluster_->KillWorker(s);
      shards_[s].nodes.clear();
      FailoverShard(s, stats);
      break;
    }
    bool injected = false;
    bool failed = false;
    if (fp.ShouldFail("engine/fetch_shard")) {
      injected = true;
      failed = true;
      stats.simulated_network_us += policy_.attempt_timeout_us;
    } else {
      net::Message req;
      req.type = net::MsgType::kFetchRequest;
      req.request_id = transport_->NextRequestId();
      wire::EncodeFetchRequest(store_id_, ids, req.body);
      net::Message resp;
      double elapsed = 0.0;
      const net::CallStatus st = transport_->Call(
          s, req, &resp, policy_.attempt_timeout_us, &elapsed);
      if (transport_kind_ == net::TransportKind::kSimNet) {
        stats.simulated_network_us += elapsed;
      }
      if (st == net::CallStatus::kOk &&
          resp.type == net::MsgType::kFetchResponse) {
        try {
          wire::FetchResponse fr = wire::DecodeFetchResponse(resp.body);
          if (fr.store_id == store_id_ && fr.rows.size() == ids.size()) {
            std::uint64_t bytes = 0;
            for (std::size_t k = 0; k < positions.size(); ++k) {
              bytes += fr.rows[k].WireBytes();
              out[positions[k]] = std::move(fr.rows[k]);
            }
            ++stats.fetch_requests;
            stats.bytes_transferred += bytes;
            served = true;
            break;
          }
          failed = true;  // stale generation or truncated row set
        } catch (const std::exception&) {
          failed = true;  // body passed CRC but didn't decode: retry
        }
      } else if (st == net::CallStatus::kOk &&
                 resp.type == net::MsgType::kError) {
        bool lost_partition = false;
        try {
          lost_partition = wire::DecodeError(resp.body).first ==
                           wire::ErrorCode::kUnknownStore;
        } catch (const std::exception&) {
        }
        if (lost_partition) {
          // The worker process restarted and lost this store's partition —
          // for this store that's a crash, even though the peer is alive.
          FailoverShard(s, stats);
          break;
        }
        failed = true;
      } else if (st == net::CallStatus::kPeerDead) {
        if (cluster_ != nullptr) cluster_->KillWorker(s);
        FailoverShard(s, stats);
        break;
      } else {
        failed = true;  // kTimeout, kError, or an unexpected response type
      }
    }
    if (!failed) break;
    if (attempt >= policy_.max_attempts) {
      FailoverShard(s, stats);
      break;
    }
    ++stats.fetch_retries;
    stats.simulated_backoff_us += backoff;
    if (!injected && transport_kind_ == net::TransportKind::kSocket) {
      SleepBackoff(backoff);
    }
    backoff *= policy_.backoff_multiplier;
  }
  stats.wire.Accumulate(Delta(transport_->Stats(), before));
  // Anything not answered over the wire is served from the (possibly just
  // rebuilt) local replica — bit-identical data, by lineage determinism.
  if (!served) ServeLocally(s, nodes, positions, out);
}

std::vector<NodeAdjacency> ShardedGraphStore::FetchBatch(
    std::span<const graph::NodeId> nodes, IoStats& stats) const {
  const std::uint32_t num_shards = NumShards();
  std::vector<std::vector<std::size_t>> by_shard(num_shards);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes_) {
      throw std::out_of_range("ShardedGraphStore::FetchBatch: node id");
    }
    by_shard[ShardOf(nodes[i])].push_back(i);
  }

  if (transport_ != nullptr) {
    // Wire path: one kFetchRequest frame per touched shard, issued on the
    // master thread in increasing shard order — the same deterministic
    // order the loopback path resolves faults in, which is why the pool
    // size cannot perturb the wire schedule.
    std::vector<NodeAdjacency> out(nodes.size());
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (by_shard[s].empty()) continue;
      if (replica_[s] != 0) {
        ServeLocally(s, nodes, by_shard[s], out);
      } else {
        ResolveWireFetch(s, nodes, by_shard[s], out, stats);
      }
    }
    stats.nodes_fetched += nodes.size();
    return out;
  }

  // Phase 1 (master thread, increasing shard order — deterministic fault
  // injection): settle each touched shard's fate. A shard that returns from
  // here is reachable, possibly via a freshly rebuilt replica.
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (!by_shard[s].empty()) ResolveShardFetch(s, stats);
  }

  // Phase 2: the surviving per-shard lookups fly in parallel on the pool.
  std::vector<NodeAdjacency> out(nodes.size());
  std::vector<std::future<std::uint64_t>> futs;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (by_shard[s].empty()) continue;
    futs.push_back(pool_->Submit([this, s, &by_shard, &nodes, &out]() {
      std::uint64_t bytes = 0;
      for (std::size_t i : by_shard[s]) {
        out[i] = shards_[s].nodes[nodes[i] / NumShards()];
        bytes += out[i].WireBytes();
      }
      return bytes;
    }));
  }
  std::uint64_t batch_bytes = 0;
  std::uint64_t batch_rpcs = 0;
  for (auto& f : futs) {
    batch_bytes += f.get();
    ++batch_rpcs;
  }
  stats.bytes_transferred += batch_bytes;
  stats.fetch_requests += batch_rpcs;
  stats.nodes_fetched += nodes.size();
  // Shard RPCs of one batch fly in parallel: the batch pays one latency
  // plus the full payload over the shared master link.
  if (batch_rpcs > 0) {
    stats.simulated_network_us +=
        network_.MicrosFor(1, batch_bytes);
  }
  return out;
}

void ShardedGraphStore::ForEachShard(
    const std::function<void(std::uint32_t)>& fn) const {
  pool_->ParallelFor(NumShards(),
                     [&](std::size_t s) { fn(static_cast<std::uint32_t>(s)); });
}

}  // namespace rejecto::engine
