#include "engine/shard_store.h"

#include <stdexcept>
#include <string>

#include "engine/cluster.h"
#include "util/failpoint.h"

namespace rejecto::engine {

ShardedGraphStore::ShardedGraphStore(const graph::AugmentedGraph& g,
                                     std::uint32_t num_shards,
                                     util::ThreadPool& pool,
                                     const NetworkModel& network,
                                     const FetchPolicy& policy)
    : num_nodes_(g.NumNodes()),
      source_(&g),
      pool_(&pool),
      network_(network),
      policy_(policy) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedGraphStore: num_shards must be > 0");
  }
  shards_.resize(num_shards);
  replica_.assign(num_shards, 0);
  // Shard loading is embarrassingly parallel across shards.
  pool_->ParallelFor(num_shards,
                     [&](std::size_t s) { BuildShard(static_cast<std::uint32_t>(s)); });
}

ShardedGraphStore::ShardedGraphStore(const graph::AugmentedGraph& g,
                                     Cluster& cluster,
                                     const NetworkModel& network)
    : ShardedGraphStore(g, static_cast<std::uint32_t>(cluster.Pool().size()),
                        cluster.Pool(), network, cluster.Config().fetch) {
  cluster_ = &cluster;
  // Partitions of already-dead workers start life as failover replicas: the
  // data was just rebuilt from lineage (the constructor above), which is
  // exactly the degraded-mode path — but constructing a store for a dead
  // worker without degraded mode is an operator error.
  for (std::uint32_t s = 0; s < NumShards(); ++s) {
    if (cluster.WorkerDead(s)) {
      if (!policy_.degraded_mode) {
        throw std::runtime_error(
            "ShardedGraphStore: worker " + std::to_string(s) +
            " is dead and degraded mode is off");
      }
      replica_[s] = 1;
      ++failovers_;
    }
  }
}

void ShardedGraphStore::BuildShard(std::uint32_t s) const {
  const std::uint32_t num_shards = NumShards();
  Shard& shard = shards_[s];
  shard.nodes.assign((num_nodes_ + num_shards - 1 - s) / num_shards,
                     NodeAdjacency{});
  const graph::AugmentedGraph& g = *source_;
  for (graph::NodeId v = static_cast<graph::NodeId>(s); v < num_nodes_;
       v += num_shards) {
    NodeAdjacency& a = shard.nodes[v / num_shards];
    const auto fr = g.Friendships().Neighbors(v);
    const auto rin = g.Rejections().Rejectors(v);
    const auto rout = g.Rejections().Rejectees(v);
    a.friends.assign(fr.begin(), fr.end());
    a.rejectors.assign(rin.begin(), rin.end());
    a.rejectees.assign(rout.begin(), rout.end());
  }
}

void ShardedGraphStore::FailoverShard(std::uint32_t s, IoStats& stats) const {
  if (!policy_.degraded_mode) {
    throw std::runtime_error(
        "ShardedGraphStore: shard " + std::to_string(s) +
        " unavailable after " + std::to_string(policy_.max_attempts) +
        " attempts and degraded mode is off");
  }
  // Lineage recompute: the replacement worker rebuilds the partition from
  // the source graph, so the replica is bit-identical to what was lost.
  BuildShard(s);
  replica_[s] = 1;
  ++stats.shard_failovers;
}

void ShardedGraphStore::ResolveShardFetch(std::uint32_t s,
                                          IoStats& stats) const {
  util::Failpoints& fp = util::Failpoints::Instance();
  double backoff = policy_.backoff_us;
  for (std::uint32_t attempt = 1;; ++attempt) {
    if (fp.ShouldFail("engine/worker_crash")) {
      // The worker died; its in-memory partition is gone. Every store this
      // cluster builds from now on sees the death.
      if (cluster_ != nullptr) cluster_->KillWorker(s);
      shards_[s].nodes.clear();
      FailoverShard(s, stats);
      return;
    }
    if (!fp.ShouldFail("engine/fetch_shard")) return;  // attempt succeeded
    // The master burns the attempt's timeout discovering the failure.
    stats.simulated_network_us += policy_.attempt_timeout_us;
    if (attempt >= policy_.max_attempts) {
      shards_[s].nodes.clear();
      FailoverShard(s, stats);
      return;
    }
    ++stats.fetch_retries;
    stats.simulated_backoff_us += backoff;
    backoff *= policy_.backoff_multiplier;
  }
}

std::vector<NodeAdjacency> ShardedGraphStore::FetchBatch(
    std::span<const graph::NodeId> nodes, IoStats& stats) const {
  const std::uint32_t num_shards = NumShards();
  std::vector<std::vector<std::size_t>> by_shard(num_shards);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes_) {
      throw std::out_of_range("ShardedGraphStore::FetchBatch: node id");
    }
    by_shard[ShardOf(nodes[i])].push_back(i);
  }

  // Phase 1 (master thread, increasing shard order — deterministic fault
  // injection): settle each touched shard's fate. A shard that returns from
  // here is reachable, possibly via a freshly rebuilt replica.
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (!by_shard[s].empty()) ResolveShardFetch(s, stats);
  }

  // Phase 2: the surviving per-shard lookups fly in parallel on the pool.
  std::vector<NodeAdjacency> out(nodes.size());
  std::vector<std::future<std::uint64_t>> futs;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (by_shard[s].empty()) continue;
    futs.push_back(pool_->Submit([this, s, &by_shard, &nodes, &out]() {
      std::uint64_t bytes = 0;
      for (std::size_t i : by_shard[s]) {
        out[i] = shards_[s].nodes[nodes[i] / NumShards()];
        bytes += out[i].WireBytes();
      }
      return bytes;
    }));
  }
  std::uint64_t batch_bytes = 0;
  std::uint64_t batch_rpcs = 0;
  for (auto& f : futs) {
    batch_bytes += f.get();
    ++batch_rpcs;
  }
  stats.bytes_transferred += batch_bytes;
  stats.fetch_requests += batch_rpcs;
  stats.nodes_fetched += nodes.size();
  // Shard RPCs of one batch fly in parallel: the batch pays one latency
  // plus the full payload over the shared master link.
  if (batch_rpcs > 0) {
    stats.simulated_network_us +=
        network_.MicrosFor(1, batch_bytes);
  }
  return out;
}

void ShardedGraphStore::ForEachShard(
    const std::function<void(std::uint32_t)>& fn) const {
  pool_->ParallelFor(NumShards(),
                     [&](std::size_t s) { fn(static_cast<std::uint32_t>(s)); });
}

}  // namespace rejecto::engine
