#include "engine/shard_store.h"

#include <stdexcept>

namespace rejecto::engine {

ShardedGraphStore::ShardedGraphStore(const graph::AugmentedGraph& g,
                                     std::uint32_t num_shards,
                                     util::ThreadPool& pool,
                                     const NetworkModel& network)
    : num_nodes_(g.NumNodes()), pool_(&pool), network_(network) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedGraphStore: num_shards must be > 0");
  }
  shards_.resize(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shards_[s].nodes.resize((num_nodes_ + num_shards - 1 - s) / num_shards);
  }
  // Shard loading is embarrassingly parallel across shards.
  pool_->ParallelFor(num_shards, [&](std::size_t s) {
    Shard& shard = shards_[s];
    for (graph::NodeId v = static_cast<graph::NodeId>(s); v < num_nodes_;
         v += num_shards) {
      NodeAdjacency& a = shard.nodes[v / num_shards];
      const auto fr = g.Friendships().Neighbors(v);
      const auto rin = g.Rejections().Rejectors(v);
      const auto rout = g.Rejections().Rejectees(v);
      a.friends.assign(fr.begin(), fr.end());
      a.rejectors.assign(rin.begin(), rin.end());
      a.rejectees.assign(rout.begin(), rout.end());
    }
  });
}

std::vector<NodeAdjacency> ShardedGraphStore::FetchBatch(
    std::span<const graph::NodeId> nodes, IoStats& stats) const {
  const std::uint32_t num_shards = NumShards();
  std::vector<std::vector<std::size_t>> by_shard(num_shards);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes_) {
      throw std::out_of_range("ShardedGraphStore::FetchBatch: node id");
    }
    by_shard[ShardOf(nodes[i])].push_back(i);
  }

  std::vector<NodeAdjacency> out(nodes.size());
  std::vector<std::future<std::uint64_t>> futs;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (by_shard[s].empty()) continue;
    futs.push_back(pool_->Submit([this, s, &by_shard, &nodes, &out]() {
      std::uint64_t bytes = 0;
      for (std::size_t i : by_shard[s]) {
        out[i] = shards_[s].nodes[nodes[i] / NumShards()];
        bytes += out[i].WireBytes();
      }
      return bytes;
    }));
  }
  std::uint64_t batch_bytes = 0;
  std::uint64_t batch_rpcs = 0;
  for (auto& f : futs) {
    batch_bytes += f.get();
    ++batch_rpcs;
  }
  stats.bytes_transferred += batch_bytes;
  stats.fetch_requests += batch_rpcs;
  stats.nodes_fetched += nodes.size();
  // Shard RPCs of one batch fly in parallel: the batch pays one latency
  // plus the full payload over the shared master link.
  if (batch_rpcs > 0) {
    stats.simulated_network_us +=
        network_.MicrosFor(1, batch_bytes);
  }
  return out;
}

void ShardedGraphStore::ForEachShard(
    const std::function<void(std::uint32_t)>& fn) const {
  pool_->ParallelFor(NumShards(),
                     [&](std::size_t s) { fn(static_cast<std::uint32_t>(s)); });
}

}  // namespace rejecto::engine
