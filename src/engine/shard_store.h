// Worker-resident sharded graph storage (paper §V).
//
// The Rejecto prototype keeps the (huge) social graph distributed across
// Spark workers as RDD partitions while the master holds only per-node
// algorithm state. This substrate reproduces that data layout in-process:
// the augmented graph's adjacency is hash-sharded across `num_shards`
// workers; the master pulls per-node adjacency through FetchBatch, which
// executes on the worker's thread and is metered as simulated network I/O
// (one request per batch, payload = the serialized adjacency size). Tests
// assert the distributed KL is bit-identical to the single-machine one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"
#include "util/thread_pool.h"

namespace rejecto::engine {

// A node's complete neighborhood in the augmented graph.
struct NodeAdjacency {
  std::vector<graph::NodeId> friends;
  std::vector<graph::NodeId> rejectors;  // cast rejections onto this node
  std::vector<graph::NodeId> rejectees;  // rejected by this node

  // Simulated wire size: 4 bytes per id plus a fixed header.
  std::uint64_t WireBytes() const noexcept {
    return 16 + 4 * (friends.size() + rejectors.size() + rejectees.size());
  }
};

// Master<->worker link model for simulated network time: every batched
// RPC pays a fixed round-trip latency plus its payload over the link
// bandwidth. Defaults approximate a 10 GbE datacenter link.
struct NetworkModel {
  double rpc_latency_us = 150.0;
  double bandwidth_gbps = 10.0;

  double MicrosFor(std::uint64_t rpcs, std::uint64_t bytes) const noexcept {
    return static_cast<double>(rpcs) * rpc_latency_us +
           static_cast<double>(bytes) * 8.0 / (bandwidth_gbps * 1e3);
  }
};

// Cumulative master<->worker traffic accounting.
struct IoStats {
  std::uint64_t fetch_requests = 0;  // batched RPCs issued
  std::uint64_t nodes_fetched = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t cache_hits = 0;      // served from the prefetch buffer
  std::uint64_t cache_misses = 0;
  double simulated_network_us = 0.0;  // per the store's NetworkModel

  double HitRate() const noexcept {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

class ShardedGraphStore {
 public:
  // Shards g's adjacency round-robin (node id mod num_shards). The pool
  // models the cluster's workers; it must outlive the store.
  ShardedGraphStore(const graph::AugmentedGraph& g, std::uint32_t num_shards,
                    util::ThreadPool& pool,
                    const NetworkModel& network = {});

  graph::NodeId NumNodes() const noexcept { return num_nodes_; }
  std::uint32_t NumShards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  std::uint32_t ShardOf(graph::NodeId v) const noexcept {
    return v % NumShards();
  }

  // Pulls the adjacency of each requested node, grouping the request by
  // shard and executing the per-shard lookups on the worker pool. `stats`
  // is charged one fetch_request per *shard* touched (a batched RPC), plus
  // the payload bytes.
  std::vector<NodeAdjacency> FetchBatch(std::span<const graph::NodeId> nodes,
                                        IoStats& stats) const;

  // Runs fn(shard_index) for every shard on the worker pool and waits —
  // the analogue of a Spark transformation over all partitions.
  void ForEachShard(const std::function<void(std::uint32_t)>& fn) const;

  // Worker-local access to a node's adjacency — no simulated network I/O.
  // Only call for nodes of the shard the caller is processing (inside a
  // ForEachShard body); cross-shard reads must go through FetchBatch.
  const NodeAdjacency& Local(graph::NodeId v) const {
    return shards_[ShardOf(v)].nodes[v / NumShards()];
  }

 private:
  struct Shard {
    // Dense local storage: local index = global id / num_shards.
    std::vector<NodeAdjacency> nodes;
  };

  graph::NodeId num_nodes_ = 0;
  std::vector<Shard> shards_;
  util::ThreadPool* pool_;
  NetworkModel network_;
};

}  // namespace rejecto::engine
