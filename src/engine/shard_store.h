// Worker-resident sharded graph storage (paper §V).
//
// The Rejecto prototype keeps the (huge) social graph distributed across
// Spark workers as RDD partitions while the master holds only per-node
// algorithm state. This substrate reproduces that data layout: the
// augmented graph's adjacency is hash-sharded across `num_shards` workers
// and the master pulls per-node adjacency through FetchBatch. Where the
// shard data lives and what carries the request depends on the cluster's
// transport backend (net/transport.h):
//
//   loopback  (default) in-process arrays; the per-shard lookups execute
//             on the worker pool and are metered as simulated network I/O
//             via NetworkModel — the original simulated-cluster path.
//   simnet    the store pushes each partition to a per-worker
//             engine::ShardWorker through RJNET001 kBuildShard frames over
//             net::SimNetwork, and FetchBatch issues kFetchRequest frames
//             over the same deterministic faulty links.
//   socket    identical protocol, but the ShardWorkers are real processes
//             behind net::SocketTransport.
//
// Failure tolerance (docs/ROBUSTNESS.md): FetchBatch consults two failpoint
// sites before touching a shard — "engine/fetch_shard" (a transient fetch
// failure/timeout; the master retries with exponential backoff up to
// FetchPolicy::max_attempts) and "engine/worker_crash" (the worker dies and
// its partition is lost). On the wire backends the same retry loop also
// absorbs *transport* faults: timeouts from dropped/partitioned links,
// CRC-rejected corrupt frames, and dead peers. When retries are exhausted
// or a worker crashes, degraded mode fails the shard over: its partition is
// rebuilt from the source graph — the lineage recompute of the prototype's
// RDDs — and served master-locally, so detection continues bit-identical to
// a failure-free run. With degraded mode off the same condition throws.
// Failure resolution runs on the master thread in increasing shard order,
// so injected faults are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/augmented_graph.h"
#include "graph/types.h"
#include "net/transport.h"
#include "util/thread_pool.h"

namespace rejecto::engine {

// A node's complete neighborhood in the augmented graph.
struct NodeAdjacency {
  std::vector<graph::NodeId> friends;
  std::vector<graph::NodeId> rejectors;  // cast rejections onto this node
  std::vector<graph::NodeId> rejectees;  // rejected by this node

  // Simulated wire size: 4 bytes per id plus a fixed header.
  std::uint64_t WireBytes() const noexcept {
    return 16 + 4 * (friends.size() + rejectors.size() + rejectees.size());
  }
};

// Master<->worker link model for simulated network time: every batched
// RPC pays a fixed round-trip latency plus its payload over the link
// bandwidth. Defaults approximate a 10 GbE datacenter link. (The simnet
// backend meters with its own per-link delay matrix instead; the socket
// backend pays real time.)
struct NetworkModel {
  double rpc_latency_us = 150.0;
  double bandwidth_gbps = 10.0;

  double MicrosFor(std::uint64_t rpcs, std::uint64_t bytes) const noexcept {
    return static_cast<double>(rpcs) * rpc_latency_us +
           static_cast<double>(bytes) * 8.0 / (bandwidth_gbps * 1e3);
  }
};

// Master-side retry/failover policy for shard RPCs. Lives on ClusterConfig
// (the deployment's knobs) and is copied into every store the cluster
// builds. On wire backends attempt_timeout_us doubles as the per-request
// transport deadline and publish_timeout_us bounds a shard partition push.
struct FetchPolicy {
  std::uint32_t max_attempts = 3;        // tries per shard RPC before failover
  double backoff_us = 1000.0;            // wait before retry #1
  double backoff_multiplier = 2.0;       // exponential backoff growth
  double attempt_timeout_us = 5000.0;    // per-attempt request deadline
  double publish_timeout_us = 250'000.0; // per-attempt shard-push deadline
  // Fail a dead/unreachable shard over to a replica rebuilt from the source
  // graph instead of aborting the sweep.
  bool degraded_mode = true;

  // Rejects zero attempts, negative backoff/timeouts, and a shrinking
  // backoff with a file:line-prefixed std::invalid_argument naming `who`
  // (e.g. "ClusterConfig.fetch").
  void Validate(const std::string& who) const;
};

// Cumulative master<->worker traffic accounting.
struct IoStats {
  std::uint64_t fetch_requests = 0;  // batched RPCs issued
  std::uint64_t nodes_fetched = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t cache_hits = 0;      // served from the prefetch buffer
  std::uint64_t cache_misses = 0;
  std::uint64_t fetch_retries = 0;   // shard RPC attempts repeated
  std::uint64_t shard_failovers = 0; // partitions rebuilt from lineage
  double simulated_network_us = 0.0;  // NetworkModel / simnet virtual time
  double simulated_backoff_us = 0.0;  // retry backoff waits (simulated)
  // Wire-level counters (frames, bytes on the wire, timeouts, reconnects,
  // corrupt/dropped frames) — all zero on the loopback backend, which
  // never encodes a frame.
  net::TransportStats wire;

  double HitRate() const noexcept {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  // Field-wise sum, so aggregation sites can't silently drop a counter.
  void Accumulate(const IoStats& o) noexcept {
    fetch_requests += o.fetch_requests;
    nodes_fetched += o.nodes_fetched;
    bytes_transferred += o.bytes_transferred;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    fetch_retries += o.fetch_retries;
    shard_failovers += o.shard_failovers;
    simulated_network_us += o.simulated_network_us;
    simulated_backoff_us += o.simulated_backoff_us;
    wire.Accumulate(o.wire);
  }
};

class Cluster;

class ShardedGraphStore {
 public:
  // Shards g's adjacency round-robin (node id mod num_shards). The pool
  // models the cluster's workers; it must outlive the store. `g` must also
  // outlive the store — it is the lineage source for shard failover. This
  // form always uses the loopback path (no transport).
  ShardedGraphStore(const graph::AugmentedGraph& g, std::uint32_t num_shards,
                    util::ThreadPool& pool,
                    const NetworkModel& network = {},
                    const FetchPolicy& policy = {});

  // Cluster-aware form: one shard per worker, FetchPolicy from the cluster
  // config, and worker-death tracking shared with `cluster` — a shard whose
  // worker is already dead is built as a failover replica up front (counted
  // in Failovers()), and a crash injected mid-sweep marks the worker dead
  // for every later store the cluster builds. When the cluster runs a wire
  // transport (simnet/socket), construction also *publishes* every live
  // shard's partition to its worker as kBuildShard frames; a push that
  // cannot be delivered within the fetch policy fails the shard over at
  // build time (degraded mode) or throws.
  ShardedGraphStore(const graph::AugmentedGraph& g, Cluster& cluster,
                    const NetworkModel& network = {});

  ~ShardedGraphStore();

  graph::NodeId NumNodes() const noexcept { return num_nodes_; }
  std::uint32_t NumShards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  std::uint32_t ShardOf(graph::NodeId v) const noexcept {
    return v % NumShards();
  }

  // Pulls the adjacency of each requested node, grouping the request by
  // shard. Loopback: the per-shard lookups execute on the worker pool and
  // `stats` is charged one fetch_request per shard touched plus the
  // payload bytes. Wire backends: one kFetchRequest frame per shard
  // touched, retried/failed-over per FetchPolicy, with wire counters
  // accumulated into stats.wire. Master-thread only.
  std::vector<NodeAdjacency> FetchBatch(std::span<const graph::NodeId> nodes,
                                        IoStats& stats) const;

  // Runs fn(shard_index) for every shard on the worker pool and waits —
  // the analogue of a Spark transformation over all partitions. (On wire
  // backends this worker-local compute still executes in-process; only the
  // fetch/update RPC boundary crosses the transport. See DESIGN.md.)
  void ForEachShard(const std::function<void(std::uint32_t)>& fn) const;

  // Worker-local access to a node's adjacency — no simulated network I/O.
  // Only call for nodes of the shard the caller is processing (inside a
  // ForEachShard body); cross-shard reads must go through FetchBatch.
  const NodeAdjacency& Local(graph::NodeId v) const {
    return shards_[ShardOf(v)].nodes[v / NumShards()];
  }

  // Shards built as failover replicas because their worker was already
  // dead at construction. Publish-time failovers are metered into
  // PublishIo().shard_failovers and FetchBatch-time failovers into the
  // caller's IoStats, so summing all three never double-counts.
  std::uint64_t Failovers() const noexcept { return failovers_; }

  // True if shard s currently serves from a rebuilt replica.
  bool IsReplica(std::uint32_t s) const { return replica_[s] != 0; }

  // Wire traffic of the construction-time shard publish (zero for
  // loopback stores).
  const IoStats& PublishIo() const noexcept { return publish_io_; }

  // Store generation on the wire (0 for loopback stores).
  std::uint64_t StoreId() const noexcept { return store_id_; }

 private:
  struct Shard {
    // Dense local storage: local index = global id / num_shards.
    std::vector<NodeAdjacency> nodes;
  };

  // Rebuilds shard s's partition from the source graph (deterministic, so
  // a replica is bit-identical to the partition it replaces).
  void BuildShard(std::uint32_t s) const;
  // Degraded-mode failover of an unreachable shard; throws when degraded
  // mode is off.
  void FailoverShard(std::uint32_t s, IoStats& stats) const;
  // Loopback phase 1: decide a shard RPC's fate on the master thread —
  // success, retries with backoff, or crash/exhaustion failover.
  void ResolveShardFetch(std::uint32_t s, IoStats& stats) const;
  // Wire-path per-shard fetch: the full retry/backoff/failover loop around
  // transport Calls; fills `out` at `positions` either from the response
  // or from the local replica after failover.
  void ResolveWireFetch(std::uint32_t s,
                        std::span<const graph::NodeId> nodes,
                        const std::vector<std::size_t>& positions,
                        std::vector<NodeAdjacency>& out,
                        IoStats& stats) const;
  void ServeLocally(std::uint32_t s, std::span<const graph::NodeId> nodes,
                    const std::vector<std::size_t>& positions,
                    std::vector<NodeAdjacency>& out) const;
  // Pushes shard s to its worker (wire backends); returns false when the
  // shard had to fail over (or throws without degraded mode).
  bool PublishShard(std::uint32_t s);

  graph::NodeId num_nodes_ = 0;
  const graph::AugmentedGraph* source_;  // lineage for failover rebuilds
  // Failure handling mutates shard state from const FetchBatch; all of it
  // runs on the master thread (FetchBatch is not itself thread-safe).
  mutable std::vector<Shard> shards_;
  mutable std::vector<char> replica_;
  mutable std::uint64_t failovers_ = 0;
  util::ThreadPool* pool_;
  Cluster* cluster_ = nullptr;  // worker-death tracking; may be null
  net::Transport* transport_ = nullptr;  // null = loopback
  net::TransportKind transport_kind_ = net::TransportKind::kLoopback;
  std::uint64_t store_id_ = 0;
  IoStats publish_io_;
  NetworkModel network_;
  FetchPolicy policy_;
};

}  // namespace rejecto::engine
