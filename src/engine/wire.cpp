#include "engine/wire.h"

#include <stdexcept>

namespace rejecto::engine::wire {
namespace {

void PutIds(net::WireWriter& w, const std::vector<graph::NodeId>& ids) {
  for (graph::NodeId id : ids) w.PutU32(id);
}

void PutRow(net::WireWriter& w, const NodeAdjacency& row) {
  w.PutU32(static_cast<std::uint32_t>(row.friends.size()));
  w.PutU32(static_cast<std::uint32_t>(row.rejectors.size()));
  w.PutU32(static_cast<std::uint32_t>(row.rejectees.size()));
  PutIds(w, row.friends);
  PutIds(w, row.rejectors);
  PutIds(w, row.rejectees);
}

void GetIds(net::WireReader& r, std::uint32_t count,
            std::vector<graph::NodeId>& out) {
  // A corrupt count would otherwise reserve gigabytes before the reader
  // notices the body is short; each id is 4 bytes, so bound by Remaining.
  if (r.Remaining() < 4ull * count) {
    throw std::runtime_error("engine::wire: id list past end of body");
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(r.GetU32());
}

NodeAdjacency GetRow(net::WireReader& r) {
  const std::uint32_t nf = r.GetU32();
  const std::uint32_t nri = r.GetU32();
  const std::uint32_t nro = r.GetU32();
  NodeAdjacency row;
  GetIds(r, nf, row.friends);
  GetIds(r, nri, row.rejectors);
  GetIds(r, nro, row.rejectees);
  return row;
}

void ExpectDrained(const net::WireReader& r, const char* what) {
  if (r.Remaining() != 0) {
    throw std::runtime_error(std::string("engine::wire: trailing garbage ") +
                             "after " + what + " body");
  }
}

}  // namespace

void EncodeFetchRequest(std::uint64_t store_id,
                        std::span<const graph::NodeId> ids,
                        std::vector<unsigned char>& body) {
  net::WireWriter w;
  w.buf.swap(body);
  w.buf.clear();
  w.PutU64(store_id);
  w.PutU32(static_cast<std::uint32_t>(ids.size()));
  for (graph::NodeId id : ids) w.PutU32(id);
  body.swap(w.buf);
}

FetchRequest DecodeFetchRequest(std::span<const unsigned char> body) {
  net::WireReader r(body);
  FetchRequest req;
  req.store_id = r.GetU64();
  const std::uint32_t count = r.GetU32();
  GetIds(r, count, req.ids);
  ExpectDrained(r, "fetch_request");
  return req;
}

void EncodeFetchResponse(std::uint64_t store_id,
                         std::span<const NodeAdjacency* const> rows,
                         std::vector<unsigned char>& body) {
  net::WireWriter w;
  w.buf.swap(body);
  w.buf.clear();
  w.PutU64(store_id);
  w.PutU32(static_cast<std::uint32_t>(rows.size()));
  for (const NodeAdjacency* row : rows) PutRow(w, *row);
  body.swap(w.buf);
}

FetchResponse DecodeFetchResponse(std::span<const unsigned char> body) {
  net::WireReader r(body);
  FetchResponse resp;
  resp.store_id = r.GetU64();
  const std::uint32_t count = r.GetU32();
  resp.rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) resp.rows.push_back(GetRow(r));
  ExpectDrained(r, "fetch_response");
  return resp;
}

void EncodeBuildShard(const BuildShard& b, std::vector<unsigned char>& body) {
  net::WireWriter w;
  w.buf.swap(body);
  w.buf.clear();
  w.PutU64(b.store_id);
  w.PutU32(b.shard);
  w.PutU32(b.num_shards);
  w.PutU32(b.num_nodes);
  w.PutU32(static_cast<std::uint32_t>(b.rows.size()));
  for (const NodeAdjacency& row : b.rows) PutRow(w, row);
  body.swap(w.buf);
}

BuildShard DecodeBuildShard(std::span<const unsigned char> body) {
  net::WireReader r(body);
  BuildShard b;
  b.store_id = r.GetU64();
  b.shard = r.GetU32();
  b.num_shards = r.GetU32();
  b.num_nodes = r.GetU32();
  if (b.num_shards == 0 || b.shard >= b.num_shards) {
    throw std::runtime_error(
        "engine::wire: build_shard with shard " + std::to_string(b.shard) +
        " of " + std::to_string(b.num_shards));
  }
  const std::uint32_t count = r.GetU32();
  b.rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) b.rows.push_back(GetRow(r));
  ExpectDrained(r, "build_shard");
  return b;
}

void EncodeBuildAck(const BuildAck& a, std::vector<unsigned char>& body) {
  net::WireWriter w;
  w.buf.swap(body);
  w.buf.clear();
  w.PutU64(a.store_id);
  w.PutU32(a.shard);
  w.PutU32(a.row_count);
  body.swap(w.buf);
}

BuildAck DecodeBuildAck(std::span<const unsigned char> body) {
  net::WireReader r(body);
  BuildAck a;
  a.store_id = r.GetU64();
  a.shard = r.GetU32();
  a.row_count = r.GetU32();
  ExpectDrained(r, "build_ack");
  return a;
}

void EncodeError(ErrorCode code, const std::string& message,
                 std::vector<unsigned char>& body) {
  net::WireWriter w;
  w.buf.swap(body);
  w.buf.clear();
  w.PutU32(static_cast<std::uint32_t>(code));
  w.PutString(message);
  body.swap(w.buf);
}

std::pair<ErrorCode, std::string> DecodeError(
    std::span<const unsigned char> body) {
  net::WireReader r(body);
  const auto code = static_cast<ErrorCode>(r.GetU32());
  std::string message = r.GetString();
  ExpectDrained(r, "error");
  return {code, std::move(message)};
}

}  // namespace rejecto::engine::wire
