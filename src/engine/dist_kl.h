// Distributed extended Kernighan–Lin (paper §V).
//
// The same algorithm as detect::ExtendedKl with the prototype's Spark data
// layout: node status (side, cross-friend / rejection aggregates, switch
// gains, bucket list) lives on the master; adjacency lives on the workers
// in a ShardedGraphStore and is pulled on demand through a PrefetchBuffer
// whose prefetch candidates are the bucket list's current top-gain nodes.
// Aggregate initialization runs shard-parallel, like the prototype's RDD
// transformations. The result is bit-identical to detect::ExtendedKl (an
// equivalence the tests assert); what differs is the metered I/O.
#pragma once

#include "detect/extended_kl.h"
#include "engine/cluster.h"
#include "engine/shard_store.h"
#include "graph/augmented_graph.h"

namespace rejecto::engine {

struct DistKlResult {
  detect::KlResult kl;
  IoStats io;
  std::uint32_t num_shards = 0;
};

// The store must be built over the same graph `g` (g is only used for the
// node count and final cut audit; adjacency flows through the store).
DistKlResult DistributedKl(const ShardedGraphStore& store,
                           std::vector<char> init_in_u,
                           const std::vector<char>& locked,
                           const detect::KlConfig& kl_config,
                           Cluster& cluster);

}  // namespace rejecto::engine
