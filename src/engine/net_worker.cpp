#include "engine/net_worker.h"

#include <exception>
#include <utility>

namespace rejecto::engine {
namespace {

net::Message ErrorReply(const net::Message& request, wire::ErrorCode code,
                        const std::string& message) {
  net::Message reply;
  reply.type = net::MsgType::kError;
  reply.request_id = request.request_id;
  wire::EncodeError(code, message, reply.body);
  return reply;
}

}  // namespace

net::Message ShardWorker::ServeBuild(const net::Message& request) {
  wire::BuildShard b;
  try {
    b = wire::DecodeBuildShard(request.body);
  } catch (const std::exception& e) {
    return ErrorReply(request, wire::ErrorCode::kBadRequest, e.what());
  }
  // A re-pushed generation (the master retried an unacked build) simply
  // overwrites — the push is idempotent. A *new* generation supersedes
  // every older one.
  StoreShard shard;
  shard.shard = b.shard;
  shard.num_shards = b.num_shards;
  shard.num_nodes = b.num_nodes;
  shard.rows = std::move(b.rows);
  const std::uint32_t row_count =
      static_cast<std::uint32_t>(shard.rows.size());
  if (stores_.find(b.store_id) == stores_.end()) stores_.clear();
  stores_[b.store_id] = std::move(shard);

  net::Message reply;
  reply.type = net::MsgType::kBuildAck;
  reply.request_id = request.request_id;
  wire::EncodeBuildAck({b.store_id, b.shard, row_count}, reply.body);
  return reply;
}

net::Message ShardWorker::ServeFetch(const net::Message& request) {
  wire::FetchRequest req;
  try {
    req = wire::DecodeFetchRequest(request.body);
  } catch (const std::exception& e) {
    return ErrorReply(request, wire::ErrorCode::kBadRequest, e.what());
  }
  const auto it = stores_.find(req.store_id);
  if (it == stores_.end()) {
    return ErrorReply(request, wire::ErrorCode::kUnknownStore,
                      "fetch for unknown store " +
                          std::to_string(req.store_id));
  }
  const StoreShard& shard = it->second;
  std::vector<const NodeAdjacency*> rows;
  rows.reserve(req.ids.size());
  for (graph::NodeId id : req.ids) {
    if (id >= shard.num_nodes || id % shard.num_shards != shard.shard) {
      return ErrorReply(request, wire::ErrorCode::kBadRequest,
                        "fetch for node " + std::to_string(id) +
                            " not on shard " + std::to_string(shard.shard));
    }
    rows.push_back(&shard.rows[id / shard.num_shards]);
  }
  net::Message reply;
  reply.type = net::MsgType::kFetchResponse;
  reply.request_id = request.request_id;
  wire::EncodeFetchResponse(req.store_id, rows, reply.body);
  return reply;
}

net::Message ShardWorker::Serve(const net::Message& request) {
  ++served_;
  switch (request.type) {
    case net::MsgType::kFetchRequest:
      return ServeFetch(request);
    case net::MsgType::kBuildShard:
      return ServeBuild(request);
    case net::MsgType::kHello: {
      net::Message reply;
      reply.type = net::MsgType::kHello;
      reply.request_id = request.request_id;
      net::WireWriter w;
      w.PutU32(wire::kProtocolVersion);
      reply.body = std::move(w.buf);
      return reply;
    }
    default:
      return ErrorReply(request, wire::ErrorCode::kBadRequest,
                        std::string("unexpected message type ") +
                            net::MsgTypeName(request.type));
  }
}

int RunShardWorker(const std::string& endpoint,
                   const net::WorkerOptions& options) {
  ShardWorker worker;
  net::FrameServer server(
      endpoint,
      [&worker](const net::Message& m) { return worker.Serve(m); }, options);
  return server.Run();
}

}  // namespace rejecto::engine
