#include "metrics/classification.h"

#include <stdexcept>

namespace rejecto::metrics {

ConfusionCounts EvaluateDetection(const std::vector<char>& is_fake,
                                  std::span<const graph::NodeId> declared) {
  std::vector<char> flagged(is_fake.size(), 0);
  for (graph::NodeId v : declared) {
    if (v >= is_fake.size()) {
      throw std::out_of_range("EvaluateDetection: declared id out of range");
    }
    flagged[v] = 1;
  }
  ConfusionCounts c;
  for (std::size_t v = 0; v < is_fake.size(); ++v) {
    if (flagged[v]) {
      if (is_fake[v]) {
        ++c.true_positives;
      } else {
        ++c.false_positives;
      }
    } else {
      if (is_fake[v]) {
        ++c.false_negatives;
      } else {
        ++c.true_negatives;
      }
    }
  }
  return c;
}

}  // namespace rejecto::metrics
