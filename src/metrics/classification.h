// Detection-quality metrics (paper §VI-A).
//
// The paper's headline metric: both schemes declare exactly as many
// suspicious accounts as fakes were injected, making precision == recall
// ("precision/recall" on every figure's y-axis).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace rejecto::metrics {

struct ConfusionCounts {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t true_negatives = 0;
  std::uint64_t false_negatives = 0;

  double Precision() const noexcept {
    const auto declared = true_positives + false_positives;
    return declared == 0 ? 0.0
                         : static_cast<double>(true_positives) /
                               static_cast<double>(declared);
  }
  double Recall() const noexcept {
    const auto actual = true_positives + false_negatives;
    return actual == 0 ? 0.0
                       : static_cast<double>(true_positives) /
                             static_cast<double>(actual);
  }
  double F1() const noexcept {
    const double p = Precision(), r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double Accuracy() const noexcept {
    const auto total = true_positives + false_positives + true_negatives +
                       false_negatives;
    return total == 0 ? 0.0
                      : static_cast<double>(true_positives + true_negatives) /
                            static_cast<double>(total);
  }
};

// Scores `declared` against ground truth is_fake (one flag per node).
// Duplicate ids in `declared` are counted once. Throws on out-of-range ids.
ConfusionCounts EvaluateDetection(const std::vector<char>& is_fake,
                                  std::span<const graph::NodeId> declared);

}  // namespace rejecto::metrics
