#include "metrics/ranking.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rejecto::metrics {

double AreaUnderRoc(std::span<const double> scores,
                    const std::vector<char>& is_fake,
                    const std::vector<char>& mask) {
  if (scores.size() != is_fake.size()) {
    throw std::invalid_argument("AreaUnderRoc: size mismatch");
  }
  if (!mask.empty() && mask.size() != scores.size()) {
    throw std::invalid_argument("AreaUnderRoc: mask size mismatch");
  }
  std::vector<std::size_t> idx;
  idx.reserve(scores.size());
  for (std::size_t v = 0; v < scores.size(); ++v) {
    if (mask.empty() || mask[v]) idx.push_back(v);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Rank-sum with average ranks over tie groups.
  std::uint64_t num_fake = 0, num_legit = 0;
  double fake_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j < idx.size() && scores[idx[j]] == scores[idx[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j) +
                             1.0) / 2.0;  // 1-based average rank of the group
    for (std::size_t t = i; t < j; ++t) {
      if (is_fake[idx[t]]) {
        fake_rank_sum += avg_rank;
        ++num_fake;
      } else {
        ++num_legit;
      }
    }
    i = j;
  }
  if (num_fake == 0 || num_legit == 0) return 1.0;  // degenerate: undefined
  const double u = fake_rank_sum - static_cast<double>(num_fake) *
                                       (static_cast<double>(num_fake) + 1.0) /
                                       2.0;
  // u counts legit nodes ranked below fakes (ties half); AUC of "fakes at
  // the bottom" is the complement.
  return 1.0 - u / (static_cast<double>(num_fake) *
                    static_cast<double>(num_legit));
}

std::vector<RocPoint> RocCurve(std::span<const double> scores,
                               const std::vector<char>& is_fake) {
  if (scores.size() != is_fake.size()) {
    throw std::invalid_argument("RocCurve: size mismatch");
  }
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::uint64_t total_fake = 0, total_legit = 0;
  for (std::size_t v = 0; v < is_fake.size(); ++v) {
    if (is_fake[v]) {
      ++total_fake;
    } else {
      ++total_legit;
    }
  }
  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0});
  std::uint64_t fake_seen = 0, legit_seen = 0;
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j < idx.size() && scores[idx[j]] == scores[idx[i]]) ++j;
    for (std::size_t t = i; t < j; ++t) {
      if (is_fake[idx[t]]) {
        ++fake_seen;
      } else {
        ++legit_seen;
      }
    }
    curve.push_back(
        {total_legit == 0 ? 1.0
                          : static_cast<double>(legit_seen) /
                                static_cast<double>(total_legit),
         total_fake == 0 ? 1.0
                         : static_cast<double>(fake_seen) /
                               static_cast<double>(total_fake)});
    i = j;
  }
  return curve;
}

std::vector<graph::NodeId> LowestScored(std::span<const double> scores,
                                        std::size_t k) {
  std::vector<graph::NodeId> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](graph::NodeId a, graph::NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] < scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace rejecto::metrics
