// Ranking metrics: ROC / AUC for trust rankings (paper Fig 16 measures
// SybilRank's ranking quality as area under the ROC curve), plus helpers to
// turn a score vector into a declared-suspicious set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace rejecto::metrics {

// Area under the ROC curve of a *trust* ranking: the probability that a
// uniformly random fake scores strictly below a uniformly random legitimate
// node, counting ties as 1/2 (the Mann–Whitney U statistic). 1.0 means all
// fakes rank at the bottom; 0.5 is random. Nodes with mask[v] == 0 are
// excluded entirely (used to score only the residual graph in Fig 16);
// pass an empty mask to include everyone.
// Precondition: scores.size() == is_fake.size().
double AreaUnderRoc(std::span<const double> scores,
                    const std::vector<char>& is_fake,
                    const std::vector<char>& mask = {});

struct RocPoint {
  double false_positive_rate = 0.0;
  double true_positive_rate = 0.0;
};

// ROC curve of the "low score => declared fake" classifier swept over all
// thresholds. Points are ordered by increasing FPR, starting at (0,0) and
// ending at (1,1).
std::vector<RocPoint> RocCurve(std::span<const double> scores,
                               const std::vector<char>& is_fake);

// Ids of the k lowest-scored nodes (ties broken by id for determinism).
std::vector<graph::NodeId> LowestScored(std::span<const double> scores,
                                        std::size_t k);

}  // namespace rejecto::metrics
