#include "serve/policy.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rejecto::serve {

namespace {

constexpr double kTokenScale = 65536.0;  // 16.16 fixed point

std::uint64_t PackState(std::uint32_t last_tick, double tokens) {
  const auto fp = static_cast<std::uint32_t>(tokens * kTokenScale);
  return (static_cast<std::uint64_t>(last_tick) << 32) | fp;
}

}  // namespace

TokenBucketPolicy::TokenBucketPolicy(const TokenBucketConfig& config)
    : config_(config), state_(config.num_senders) {
  if (!(config_.capacity >= 1.0) || config_.capacity > 65535.0) {
    throw std::invalid_argument(
        "TokenBucketPolicy: capacity must be in [1, 65535]");
  }
  if (!(config_.refill_per_tick >= 0.0)) {
    throw std::invalid_argument(
        "TokenBucketPolicy: refill_per_tick must be >= 0");
  }
  const std::uint64_t full = PackState(0, config_.capacity);
  for (auto& s : state_) s.store(full, std::memory_order_relaxed);
}

Verdict TokenBucketPolicy::Evaluate(const PolicyInput& in, Verdict incoming) {
  if (in.sender >= state_.size()) return incoming;
  std::atomic<std::uint64_t>& slot = state_[in.sender];
  const auto now = static_cast<std::uint32_t>(in.logical_time);
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  bool limited;
  for (;;) {
    const auto last = static_cast<std::uint32_t>(cur >> 32);
    const double tokens =
        static_cast<double>(cur & 0xffffffffULL) / kTokenScale;
    // Wrapping u32 delta; a nominally-negative delta (out-of-order logical
    // times) shows up as a huge wrapped value — treat it as 0 elapsed and
    // keep the newer `last`, so replays with per-sender monotone times are
    // exact and disorder only under-refills.
    std::uint32_t elapsed = now - last;
    std::uint32_t next_last = now;
    if (elapsed > 0x7fffffffU) {
      elapsed = 0;
      next_last = last;
    }
    double refilled = std::min(
        config_.capacity,
        tokens + static_cast<double>(elapsed) * config_.refill_per_tick);
    limited = refilled < 1.0;
    if (!limited) refilled -= 1.0;
    if (slot.compare_exchange_weak(cur, PackState(next_last, refilled),
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      break;
    }
  }
  return limited ? std::max(incoming, config_.on_limit) : incoming;
}

double TokenBucketPolicy::Tokens(graph::NodeId sender) const {
  if (sender >= state_.size()) return config_.capacity;
  const std::uint64_t cur = state_[sender].load(std::memory_order_relaxed);
  return static_cast<double>(cur & 0xffffffffULL) / kTokenScale;
}

StaticListPolicy::StaticListPolicy(std::vector<char> flagged, Verdict verdict)
    : flagged_(std::move(flagged)), verdict_(verdict) {}

Verdict StaticListPolicy::Evaluate(const PolicyInput& in, Verdict incoming) {
  if (in.sender < flagged_.size() && flagged_[in.sender] != 0) {
    return std::max(incoming, verdict_);
  }
  return incoming;
}

}  // namespace rejecto::serve
