// The immutable unit of publication from the detection pipeline to the
// serving read path.
//
// Every epoch the admission service re-runs detection on a compacted CSR
// snapshot and publishes the outcome as one refcounted, never-mutated
// PublishedEpoch: the graph the epoch was detected on, the round-0 cut mask
// and weight k that the O(deg) incremental score runs against
// (detect/incremental.h), and the epoch's final flagged set. Readers resolve
// the current epoch through serve::RcuPtr and score against it without
// locks; because the struct is immutable, a decision is a pure function of
// (epoch_id, sender) — the property the concurrent-vs-serial differential
// test pins, and the reason decisions carry the epoch id they were scored
// against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/incremental.h"
#include "graph/augmented_graph.h"
#include "graph/types.h"

namespace rejecto::serve {

// Ordered by severity; policy chains may only escalate (max-combine), so
// the order is load-bearing.
enum class Verdict : std::uint8_t { kAdmit = 0, kGrey = 1, kReject = 2 };

inline const char* VerdictName(Verdict v) noexcept {
  switch (v) {
    case Verdict::kAdmit: return "admit";
    case Verdict::kGrey: return "grey";
    case Verdict::kReject: return "reject";
  }
  return "?";
}

struct PublishedEpoch {
  // 0 is the bootstrap epoch published at service construction (no
  // detection has run; every sender admits with zero evidence). Detection
  // epochs count from 1 in publication order.
  std::uint64_t epoch_id = 0;
  // Events folded into `graph` (the snapshot boundary).
  std::uint64_t events_ingested = 0;

  // The compacted CSR the epoch was detected on. Never null.
  std::shared_ptr<const graph::AugmentedGraph> graph;

  // Incremental-scoring baseline: the epoch's round-0 pre-trim cut mask
  // (indexed by graph id, sized to graph->NumNodes()) and its ratio weight
  // k. has_baseline is false when the epoch produced no usable round-0 cut
  // (or for the bootstrap epoch); decisions then admit with score 0.
  bool has_baseline = false;
  std::vector<char> mask;
  double k = 0.0;

  // The epoch's final flagged accounts (post-trim), for operators; the
  // decision path uses `mask` (the scoring baseline), not this.
  std::vector<graph::NodeId> detected;

  double detect_seconds = 0.0;
};

struct Decision {
  Verdict verdict = Verdict::kAdmit;
  // ΔW(sender) against the epoch's incumbent cut; lower = more suspicious.
  // 0 when the epoch has no baseline or the sender has no evidence.
  double score = 0.0;
  // The epoch the decision was scored against.
  std::uint64_t epoch_id = 0;
  // True when the policy chain escalated the score verdict (rate limiting
  // or any other pluggable policy).
  bool escalated = false;
};

// The score half of a decision: a pure function of (epoch, sender), shared
// by the reader hot path and the differential test's oracle. Senders the
// epoch graph has never seen (ids past NumNodes(), created by events after
// the snapshot) score 0 with mask-membership 0 — exactly what the next
// epoch's warm mask assumes about them. A score below zero rejects; a
// non-negative score below grey_margin greys; anything else admits.
inline Decision DecideAgainst(const PublishedEpoch& epoch,
                              graph::NodeId sender, double grey_margin) {
  Decision d;
  d.epoch_id = epoch.epoch_id;
  if (!epoch.has_baseline) {
    return d;  // no evidence: admit, score 0
  }
  double gain = 0.0;
  bool suspicious = false;
  if (sender < epoch.graph->NumNodes()) {
    const detect::IncrementalScore s =
        detect::ScoreSenderIncremental(*epoch.graph, epoch.mask, epoch.k,
                                       sender);
    gain = s.gain;
    suspicious = s.suspicious;
  }
  d.score = gain;
  if (suspicious) {
    d.verdict = Verdict::kReject;
  } else if (gain < grey_margin) {
    d.verdict = Verdict::kGrey;
  }
  return d;
}

}  // namespace rejecto::serve
