// RCU-style single-writer snapshot publication with lock-free readers.
//
// The admission service publishes one immutable PublishedEpoch at a time;
// reader threads must resolve "the current epoch" on every decision without
// taking a lock, while the writer must eventually reclaim superseded epochs
// that no reader still holds. RcuPtr packages both halves behind one knob
// (ReclaimMode), because the right scheme is workload-dependent and the
// bench measures them against each other:
//
//   kHazard — the read path is two relaxed/acquire loads plus one seq_cst
//     store into the reader's own hazard slot (the classic hazard-pointer
//     protocol: store the candidate, re-check the cell, retry on a lost
//     race with a concurrent publish). Reclamation is writer-side: every
//     publish retires the previous epoch into a keepalive list and frees
//     any retired epoch no slot still points at. Readers never touch a
//     shared reference count, so the read path scales with zero write
//     sharing beyond the slot itself.
//
//   kSharedPtr — a refcounted shared_ptr pin: acquire = copy the current
//     shared_ptr (one refcount bump) under a one-word spinlock. This is
//     the std::atomic<std::shared_ptr> scheme written out by hand:
//     libstdc++ implements those atomics with an embedded lock bit anyway,
//     but its load() path clears the lock with a relaxed store, which TSan
//     rightly refuses to treat as a release edge — spelling the spinlock
//     out with proper acquire/release keeps the mode sanitizer-clean.
//     Readers serialize briefly on the pin/unpin pair; simpler, immune to
//     slot exhaustion, and the fallback when a workload has more reader
//     threads than hazard slots.
//
// Both modes give the same guarantees, pinned by the race tests: a Pin
// keeps its epoch alive and bit-stable for the Pin's whole lifetime, no
// matter how many publishes happen meanwhile, and a published epoch is
// reclaimed only after every slot that could reference it has moved on.
//
// Single writer (Publish/~RcuPtr), many readers. Readers must release
// their Pins and Slots before the RcuPtr is destroyed.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/dcheck.h"

namespace rejecto::serve {

enum class ReclaimMode { kHazard, kSharedPtr };

inline const char* ReclaimModeName(ReclaimMode m) noexcept {
  return m == ReclaimMode::kHazard ? "hazard" : "shared_ptr";
}

template <typename T>
class RcuPtr {
 public:
  // One per reader thread, claimed from a fixed pool so the writer's
  // reclamation scan is a bounded array walk.
  struct Slot {
    std::atomic<const T*> hazard{nullptr};
    std::atomic<bool> in_use{false};
  };

  // An RAII pin on one published value: dereferenceable and immutable for
  // the Pin's lifetime. Movable, not copyable.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept
        : raw_(o.raw_), slot_(o.slot_), keep_(std::move(o.keep_)) {
      o.raw_ = nullptr;
      o.slot_ = nullptr;
    }
    Pin& operator=(Pin&& o) noexcept {
      if (this != &o) {
        Release();
        raw_ = o.raw_;
        slot_ = o.slot_;
        keep_ = std::move(o.keep_);
        o.raw_ = nullptr;
        o.slot_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    const T* get() const noexcept { return raw_; }
    const T& operator*() const noexcept { return *raw_; }
    const T* operator->() const noexcept { return raw_; }
    explicit operator bool() const noexcept { return raw_ != nullptr; }

   private:
    friend class RcuPtr;
    void Release() noexcept {
      if (slot_ != nullptr) {
        slot_->hazard.store(nullptr, std::memory_order_release);
        slot_ = nullptr;
      }
      keep_.reset();
      raw_ = nullptr;
    }

    const T* raw_ = nullptr;
    Slot* slot_ = nullptr;                // hazard mode
    std::shared_ptr<const T> keep_;       // shared_ptr mode
  };

  explicit RcuPtr(ReclaimMode mode, std::size_t max_slots = 64)
      : mode_(mode), slots_(max_slots) {}

  ~RcuPtr() {
    // Readers must be gone: a live Pin or Slot past this point is a
    // use-after-free in the caller.
    for (const Slot& s : slots_) {
      (void)s;  // the checks compile away under NDEBUG
      REJECTO_DCHECK(!s.in_use.load(std::memory_order_acquire),
                     "RcuPtr destroyed with a live reader slot");
      REJECTO_DCHECK(s.hazard.load(std::memory_order_acquire) == nullptr,
                     "RcuPtr destroyed with a live Pin");
    }
  }

  RcuPtr(const RcuPtr&) = delete;
  RcuPtr& operator=(const RcuPtr&) = delete;

  ReclaimMode Mode() const noexcept { return mode_; }

  // Writer: swaps the published value and reclaims retired values no slot
  // still references. `next` must be non-null.
  void Publish(std::shared_ptr<const T> next) {
    if (next == nullptr) {
      throw std::invalid_argument("RcuPtr::Publish: null value");
    }
    if (mode_ == ReclaimMode::kSharedPtr) {
      std::shared_ptr<const T> old;
      SpLock();
      old = std::exchange(current_sp_, std::move(next));
      SpUnlock();
      return;  // `old` may run the last release outside the lock
    }
    const T* raw = next.get();
    if (current_ != nullptr) retired_.push_back(std::move(current_));
    current_ = std::move(next);
    // seq_cst store so a reader's (hazard store; re-check load) pair and
    // this (swap; scan) pair cannot both miss each other.
    current_raw_.store(raw, std::memory_order_seq_cst);
    Reclaim();
  }

  // Reader: pins the current value through the caller's slot (unused in
  // shared_ptr mode). Returns an empty Pin only before the first Publish.
  Pin Acquire(Slot* slot) {
    Pin pin;
    if (mode_ == ReclaimMode::kSharedPtr) {
      SpLock();
      pin.keep_ = current_sp_;
      SpUnlock();
      pin.raw_ = pin.keep_.get();
      return pin;
    }
    REJECTO_DCHECK(slot != nullptr, "RcuPtr::Acquire: null slot");
    const T* p = current_raw_.load(std::memory_order_acquire);
    while (p != nullptr) {
      // Classic hazard handshake: announce p, then confirm it is still
      // current. The seq_cst store/load pair orders this against the
      // writer's swap+scan, so either the writer sees our announcement or
      // we see its new pointer and retry.
      slot->hazard.store(p, std::memory_order_seq_cst);
      const T* check = current_raw_.load(std::memory_order_seq_cst);
      if (check == p) break;
      p = check;
    }
    if (p == nullptr) {
      slot->hazard.store(nullptr, std::memory_order_release);
      return pin;
    }
    pin.raw_ = p;
    pin.slot_ = slot;
    return pin;
  }

  // Claims a free slot for a reader thread; null when all are taken.
  Slot* AcquireSlot() {
    for (Slot& s : slots_) {
      bool expected = false;
      if (s.in_use.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
        return &s;
      }
    }
    return nullptr;
  }

  void ReleaseSlot(Slot* slot) noexcept {
    if (slot == nullptr) return;
    REJECTO_DCHECK(slot->hazard.load(std::memory_order_acquire) == nullptr,
                   "RcuPtr::ReleaseSlot: slot still holds a Pin");
    slot->in_use.store(false, std::memory_order_release);
  }

  // Writer-side view of the current value (for stats / tests).
  std::shared_ptr<const T> Current() const {
    if (mode_ == ReclaimMode::kSharedPtr) {
      SpLock();
      std::shared_ptr<const T> cur = current_sp_;
      SpUnlock();
      return cur;
    }
    return current_;
  }

  // Retired-but-unreclaimed values (hazard mode); 0 in shared_ptr mode.
  std::size_t RetiredCount() const noexcept { return retired_.size(); }

 private:
  // Drops every retired value no hazard slot references. Writer-only.
  void Reclaim() {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      const T* raw = retired_[i].get();
      bool pinned = false;
      for (const Slot& s : slots_) {
        if (s.hazard.load(std::memory_order_seq_cst) == raw) {
          pinned = true;
          break;
        }
      }
      if (pinned) {
        retired_[kept++] = std::move(retired_[i]);
      } else {
        retired_[i].reset();
      }
    }
    retired_.resize(kept);
  }

  const ReclaimMode mode_;
  std::vector<Slot> slots_;

  // hazard mode: the lock-free cell + writer-side keepalives.
  std::atomic<const T*> current_raw_{nullptr};
  std::shared_ptr<const T> current_;              // writer-owned
  std::vector<std::shared_ptr<const T>> retired_;  // writer-owned

  // shared_ptr mode: a one-word spinlock guarding the refcount bump. Held
  // only for the pointer copy, never across user code or destructors.
  void SpLock() const noexcept {
    while (sp_lock_.test_and_set(std::memory_order_acquire)) {
      while (sp_lock_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void SpUnlock() const noexcept {
    sp_lock_.clear(std::memory_order_release);
  }

  mutable std::atomic_flag sp_lock_ = ATOMIC_FLAG_INIT;
  std::shared_ptr<const T> current_sp_;
};

}  // namespace rejecto::serve
