// Bounded lock-free MPMC ring buffer (Dmitry Vyukov's sequence-stamped
// design), used as the admission service's ingest queue: any number of
// producer threads enqueue mutation events, the single writer thread drains
// them in FIFO order per producer.
//
// Each cell carries a sequence stamp: `seq == index` means free for the
// producer that claims ticket `index`; `seq == index + 1` means occupied and
// ready for the consumer holding that ticket. Claiming a ticket is one
// fetch-less CAS on the head/tail counter; publication is a release store of
// the stamp, so the consumer's acquire load of the stamp is the only
// synchronization on the hot path — no mutex, no condition variable, no
// allocation after construction. Full/empty are reported, not blocked on;
// callers decide whether to spin, yield, or drop (the admission service
// spins with a yield and meters the stall).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

namespace rejecto::serve {

template <typename T>
class MpscQueue {
 public:
  // Capacity is rounded up to a power of two; must be >= 2.
  explicit MpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  std::size_t Capacity() const noexcept { return mask_ + 1; }

  // Multi-producer enqueue; returns false when the ring is full.
  bool TryPush(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry against the new ticket.
      } else if (dif < 0) {
        return false;  // cell still occupied by a lap-old element: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Consumer dequeue; returns false when the ring is empty. Safe for
  // multiple consumers, though the admission service uses exactly one.
  bool TryPop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // producer has not published this cell yet: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  // Racy size estimate for stats/backpressure heuristics only.
  std::size_t ApproxSize() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  // Head and tail on separate cache lines so producers and the consumer do
  // not false-share.
  alignas(64) std::atomic<std::size_t> head_;
  alignas(64) std::atomic<std::size_t> tail_;
  alignas(64) std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace rejecto::serve
