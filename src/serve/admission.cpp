#include "serve/admission.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "detect/iterative.h"
#include "util/dcheck.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rejecto::serve {

AdmissionConfig ApplyEnvOverrides(AdmissionConfig config) {
  config.max_readers = static_cast<std::size_t>(util::GetEnvInt(
      "REJECTO_SERVE_READERS",
      static_cast<std::int64_t>(config.max_readers)));
  config.epoch.events_per_epoch = static_cast<std::uint64_t>(util::GetEnvInt(
      "REJECTO_SERVE_EPOCH_EVENTS",
      static_cast<std::int64_t>(config.epoch.events_per_epoch)));
  if (const auto mode = util::GetEnvString("REJECTO_SERVE_RECLAIM")) {
    if (*mode == "hazard") {
      config.reclaim = ReclaimMode::kHazard;
    } else if (*mode == "shared_ptr") {
      config.reclaim = ReclaimMode::kSharedPtr;
    } else {
      throw std::invalid_argument(
          "REJECTO_SERVE_RECLAIM must be 'hazard' or 'shared_ptr', got '" +
          *mode + "'");
    }
  }
  return config;
}

AdmissionService::AdmissionService(graph::AugmentedGraph base,
                                   detect::Seeds seeds,
                                   AdmissionConfig config)
    : config_(std::move(config)),
      seeds_(std::move(seeds)),
      queue_(config_.queue_capacity),
      rcu_(config_.reclaim, config_.max_readers),
      delta_(std::move(base), config_.epoch.delta) {
  seeds_.Validate(delta_.NumNodes());
  if (config_.max_pending_epochs == 0) {
    throw std::invalid_argument(
        "AdmissionService: max_pending_epochs must be >= 1");
  }
  // The pool serves the detection thread ONLY. The writer compacts
  // single-threaded: sharing one pool between a writer-thread Compact and a
  // concurrent detection sweep would run two ParallelFor drivers at once.
  const int threads =
      detect::EffectiveThreads(config_.epoch.detect.maar.num_threads);
  if (threads > 1) {
    pool_ =
        std::make_shared<util::ThreadPool>(static_cast<std::size_t>(threads));
  }
  if (!config_.wal_path.empty()) {
    wal_ = std::make_unique<stream::WalWriter>(config_.wal_path, config_.wal);
  }
  PublishBootstrap(delta_.Graph());
  writer_ = std::thread(&AdmissionService::WriterLoop, this);
  detector_ = std::thread(&AdmissionService::DetectLoop, this);
}

AdmissionService::~AdmissionService() { Stop(); }

void AdmissionService::PublishBootstrap(const graph::AugmentedGraph& base) {
  auto pe = std::make_shared<PublishedEpoch>();
  pe->epoch_id = 0;
  pe->events_ingested = 0;
  pe->graph = std::make_shared<const graph::AugmentedGraph>(base);
  // has_baseline stays false: no detection has run, every sender admits.
  {
    std::lock_guard<std::mutex> lock(latest_mu_);
    latest_ = pe;
  }
  rcu_.Publish(std::move(pe));
}

void AdmissionService::AddPolicy(std::unique_ptr<AdmissionPolicy> policy) {
  if (policy == nullptr) {
    throw std::invalid_argument("AdmissionService::AddPolicy: null policy");
  }
  if (chain_frozen_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "AdmissionService::AddPolicy: chain is frozen once a reader exists");
  }
  policies_.push_back(std::move(policy));
}

bool AdmissionService::TrySubmit(const stream::Event& e) {
  if (e.type != stream::EventType::kRemoveNode && e.u == e.v) {
    throw std::invalid_argument("AdmissionService: self-edge event");
  }
  if (stopped_.load(std::memory_order_acquire)) return false;
  Command cmd;
  cmd.kind = Command::Kind::kEvent;
  cmd.event = e;
  if (!queue_.TryPush(cmd)) return false;
  events_submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AdmissionService::Submit(const stream::Event& e) {
  while (!TrySubmit(e)) {
    if (stopped_.load(std::memory_order_acquire)) {
      throw std::logic_error("AdmissionService::Submit: service stopped");
    }
    std::this_thread::yield();
  }
}

void AdmissionService::Drain() {
  if (stopped_.load(std::memory_order_acquire)) return;
  std::atomic<std::uint64_t> ack{0};
  Command cmd;
  cmd.kind = Command::Kind::kBarrier;
  cmd.ack = &ack;
  while (!queue_.TryPush(cmd)) std::this_thread::yield();
  while (ack.load(std::memory_order_acquire) == 0) std::this_thread::yield();
}

std::uint64_t AdmissionService::ForceEpoch() {
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::logic_error("AdmissionService::ForceEpoch: service stopped");
  }
  std::atomic<std::uint64_t> ack{0};
  Command cmd;
  cmd.kind = Command::Kind::kEpoch;
  cmd.ack = &ack;
  while (!queue_.TryPush(cmd)) std::this_thread::yield();
  std::uint64_t id = 0;
  while ((id = ack.load(std::memory_order_acquire)) == 0) {
    std::this_thread::yield();
  }
  while (PublishedEpochId() < id) std::this_thread::yield();
  return id;
}

void AdmissionService::WriterLoop() {
  for (;;) {
    Command cmd;
    if (!queue_.TryPop(cmd)) {
      std::this_thread::yield();
      continue;
    }
    switch (cmd.kind) {
      case Command::Kind::kEvent: {
        if (wal_ != nullptr) wal_->Append(cmd.event);
        const bool changed = delta_.Apply(cmd.event);
        (changed ? events_applied_ : events_noop_)
            .fetch_add(1, std::memory_order_relaxed);
        events_ingested_.fetch_add(1, std::memory_order_release);
        ++events_since_snapshot_;
        if (config_.epoch.events_per_epoch > 0 &&
            events_since_snapshot_ >= config_.epoch.events_per_epoch) {
          CutSnapshot();
        }
        break;
      }
      case Command::Kind::kBarrier:
        cmd.ack->store(1, std::memory_order_release);
        break;
      case Command::Kind::kEpoch:
        cmd.ack->store(CutSnapshot(), std::memory_order_release);
        break;
      case Command::Kind::kStop:
        if (wal_ != nullptr) wal_->Close();
        return;
    }
  }
}

std::uint64_t AdmissionService::CutSnapshot() {
  // Backpressure: an overloaded detector throttles ingest instead of
  // growing the job queue without bound.
  while (jobs_pending_.load(std::memory_order_acquire) >=
         config_.max_pending_epochs) {
    backpressure_yields_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  util::WallTimer timer;
  delta_.Compact();
  DetectJob job;
  job.epoch_id = next_epoch_id_++;
  job.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  job.graph = std::make_shared<const graph::AugmentedGraph>(delta_.Graph());
  const double secs = timer.Seconds();
  snapshot_seconds_total_ += secs;
  last_snapshot_seconds_.store(secs, std::memory_order_relaxed);
  snapshot_seconds_published_.store(snapshot_seconds_total_,
                                    std::memory_order_relaxed);
  const std::uint64_t id = job.epoch_id;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_pending_.fetch_add(1, std::memory_order_release);
  jobs_cv_.notify_one();
  events_since_snapshot_ = 0;
  return id;
}

void AdmissionService::DetectLoop() {
  // The warm baton chains job-to-job exactly like EpochDetector chains
  // prev_mask_/prev_k_: jobs are consumed strictly in publication order, so
  // epoch contents are bit-identical to a serial replay.
  engine::EpochWarmState warm;
  for (;;) {
    DetectJob job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock,
                    [&] { return jobs_shutdown_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // shutdown and fully drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    util::WallTimer timer;
    engine::EpochDetectionOutput out = engine::RunEpochDetection(
        *job.graph, seeds_, config_.epoch, warm, pool_.get());
    // An epoch with no rounds keeps the previous baseline, like
    // EpochDetector keeps its prev state.
    if (out.next_warm.valid) warm = std::move(out.next_warm);

    auto pe = std::make_shared<PublishedEpoch>();
    pe->epoch_id = job.epoch_id;
    pe->events_ingested = job.events_ingested;
    pe->graph = job.graph;
    pe->has_baseline = warm.valid && warm.k > 0.0;
    if (pe->has_baseline) {
      pe->mask = warm.mask;
      // Nodes created after the baseline's epoch score as outside the cut —
      // the same extension the warm mask applies.
      pe->mask.resize(job.graph->NumNodes(), 0);
      pe->k = warm.k;
    }
    pe->detected = std::move(out.result.detected);
    pe->detect_seconds = timer.Seconds();
    last_detect_seconds_.store(pe->detect_seconds,
                               std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lock(latest_mu_);
      latest_ = pe;
    }
    rcu_.Publish(std::move(pe));
    retired_epochs_.store(rcu_.RetiredCount(), std::memory_order_relaxed);
    epochs_published_.fetch_add(1, std::memory_order_relaxed);
    published_id_.store(job.epoch_id, std::memory_order_release);
    jobs_pending_.fetch_sub(1, std::memory_order_release);
  }
}

AdmissionService::Reader AdmissionService::CreateReader() {
  chain_frozen_.store(true, std::memory_order_release);
  Reader r;
  r.service_ = this;
  if (config_.reclaim == ReclaimMode::kHazard) {
    r.slot_ = rcu_.AcquireSlot();
    if (r.slot_ == nullptr) {
      throw std::runtime_error(
          "AdmissionService::CreateReader: reader slots exhausted (raise "
          "AdmissionConfig::max_readers / REJECTO_SERVE_READERS)");
    }
  }
  return r;
}

AdmissionService::Reader::Reader(Reader&& o) noexcept
    : service_(o.service_),
      slot_(o.slot_),
      hist_(o.hist_),
      decisions_(o.decisions_),
      escalated_(o.escalated_) {
  verdicts_[0] = o.verdicts_[0];
  verdicts_[1] = o.verdicts_[1];
  verdicts_[2] = o.verdicts_[2];
  o.service_ = nullptr;
  o.slot_ = nullptr;
}

AdmissionService::Reader& AdmissionService::Reader::operator=(
    Reader&& o) noexcept {
  if (this != &o) {
    if (service_ != nullptr && slot_ != nullptr) {
      service_->rcu_.ReleaseSlot(slot_);
    }
    service_ = o.service_;
    slot_ = o.slot_;
    hist_ = o.hist_;
    decisions_ = o.decisions_;
    verdicts_[0] = o.verdicts_[0];
    verdicts_[1] = o.verdicts_[1];
    verdicts_[2] = o.verdicts_[2];
    escalated_ = o.escalated_;
    o.service_ = nullptr;
    o.slot_ = nullptr;
  }
  return *this;
}

AdmissionService::Reader::~Reader() {
  if (service_ != nullptr && slot_ != nullptr) {
    service_->rcu_.ReleaseSlot(slot_);
  }
}

Decision AdmissionService::Reader::Decide(graph::NodeId sender,
                                          std::uint64_t logical_time) {
  REJECTO_DCHECK(service_ != nullptr,
                 "Reader::Decide on a moved-from Reader");
  const auto t0 = std::chrono::steady_clock::now();
  const RcuPtr<PublishedEpoch>::Pin pin = service_->rcu_.Acquire(slot_);
  // The bootstrap epoch publishes before any reader can exist.
  REJECTO_DCHECK(pin, "no published epoch");
  Decision d = DecideAgainst(*pin, sender, service_->config_.grey_margin);
  Verdict v = d.verdict;
  for (const auto& policy : service_->policies_) {
    v = policy->Evaluate(PolicyInput{sender, logical_time, *pin, d}, v);
  }
  d.escalated = v != d.verdict;
  d.verdict = v;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  hist_.Record(static_cast<std::uint64_t>(ns));
  ++decisions_;
  ++verdicts_[static_cast<int>(d.verdict)];
  escalated_ += d.escalated ? 1 : 0;
  return d;
}

std::shared_ptr<const PublishedEpoch> AdmissionService::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(latest_mu_);
  return latest_;
}

AdmissionStats AdmissionService::Stats() const {
  AdmissionStats s;
  s.events_submitted = events_submitted_.load(std::memory_order_relaxed);
  s.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  s.events_applied = events_applied_.load(std::memory_order_relaxed);
  s.events_noop = events_noop_.load(std::memory_order_relaxed);
  s.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  s.snapshot_seconds_total =
      snapshot_seconds_published_.load(std::memory_order_relaxed);
  s.last_snapshot_seconds =
      last_snapshot_seconds_.load(std::memory_order_relaxed);
  s.last_detect_seconds =
      last_detect_seconds_.load(std::memory_order_relaxed);
  s.backpressure_yields =
      backpressure_yields_.load(std::memory_order_relaxed);
  s.published_epoch_id = published_id_.load(std::memory_order_relaxed);
  s.retired_epochs = retired_epochs_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.ApproxSize();
  if (const auto epoch = CurrentEpoch()) {
    s.published_events = epoch->events_ingested;
  }
  return s;
}

void AdmissionService::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  Command cmd;
  cmd.kind = Command::Kind::kStop;
  while (!queue_.TryPush(cmd)) std::this_thread::yield();
  writer_.join();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_shutdown_ = true;
  }
  jobs_cv_.notify_all();
  detector_.join();
}

}  // namespace rejecto::serve
