// Concurrent online admission service: the paper's continuously-running
// deployment (§V, §VII) as a QPS-scale ingest+query engine.
//
// EpochDetector is single-threaded by construction: Ingest() and
// ScoreSenderIncremental() share the DeltaGraph, so a deployment serving
// admission decisions while absorbing the event firehose would serialize
// every query behind every mutation. AdmissionService splits the two paths
// across threads with RCU-style snapshot publication:
//
//   producers --TryPush--> [MpscQueue] --drain--> writer thread
//                                                   | owns DeltaGraph + WAL
//                                                   | every N events: compact,
//                                                   | copy CSR, hand job to
//                                                   v
//                                             detection thread
//                                                   | RunEpochDetection
//                                                   | (warm-chained, in order)
//                                                   v
//                              RcuPtr<PublishedEpoch>::Publish  (atomic swap)
//                                                   ^
//   readers ----Acquire(slot)---- pin epoch, DecideAgainst + policy chain
//
// * The WRITER thread is the only mutator: it drains the bounded MPSC ring,
//   appends to the WAL (write-ahead, before apply) and the DeltaGraph, and
//   cuts a snapshot at exact multiples of events_per_epoch — compaction and
//   the CSR copy are the only work on the ingest path that stalls it (the
//   metered "publish stall"). Detection itself runs OFF the hot path.
// * The DETECTION thread consumes snapshot jobs strictly in order, chaining
//   EpochWarmState exactly like EpochDetector::RunEpoch chains prev_mask_/
//   prev_k_ — so epoch contents are bit-identical to a serial EpochDetector
//   replay of the same event sequence, which is what the differential test
//   pins. Each result is frozen into an immutable refcounted PublishedEpoch
//   and swapped in through RcuPtr (hazard-pointer or atomic<shared_ptr>
//   reclamation — see serve/rcu.h; the bench measures both).
// * READERS never lock: one acquire-load (plus the hazard handshake) pins
//   the current epoch, the O(deg) incremental score runs against its
//   immutable mask, and the pluggable policy chain (serve/policy.h) may
//   escalate. A Decision is a pure function of (published epoch, sender) —
//   given the same epoch id, concurrent and serial runs decide identically.
//
// Backpressure: at most max_pending_epochs snapshot jobs may be in flight;
// past that the writer stalls (metered) rather than queueing unboundedly —
// an overloaded detector slows ingest instead of exploding memory.
//
// Env knobs (applied by ApplyEnvOverrides, used by bench/examples):
//   REJECTO_SERVE_READERS       -> AdmissionConfig::max_readers
//   REJECTO_SERVE_EPOCH_EVENTS  -> AdmissionConfig::epoch.events_per_epoch
//   REJECTO_SERVE_RECLAIM       -> "hazard" | "shared_ptr"
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "detect/seeds.h"
#include "engine/epoch_detector.h"
#include "graph/augmented_graph.h"
#include "graph/types.h"
#include "serve/mpsc_queue.h"
#include "serve/policy.h"
#include "serve/published_epoch.h"
#include "serve/rcu.h"
#include "stream/delta_graph.h"
#include "stream/mutation_log.h"
#include "stream/wal.h"
#include "util/latency.h"

namespace rejecto::serve {

struct AdmissionConfig {
  // Epoch cadence + detection pipeline (engine/epoch_detector.h); the
  // service snapshots at exact multiples of epoch.events_per_epoch (0
  // disables auto-epochs; ForceEpoch() still works).
  engine::EpochConfig epoch;

  // Snapshot reclamation scheme (serve/rcu.h) and the reader-slot pool
  // size (hazard mode caps concurrent readers at this).
  ReclaimMode reclaim = ReclaimMode::kHazard;
  std::size_t max_readers = 64;

  // Ingest ring capacity (rounded up to a power of two) and the cap on
  // snapshot jobs in flight before ingest stalls.
  std::size_t queue_capacity = 1 << 14;
  std::size_t max_pending_epochs = 2;

  // Scores in [0, grey_margin) grey instead of admitting (negative scores
  // always reject). 0 disables the grey band.
  double grey_margin = 0.0;

  // Non-empty: write-ahead log every event before applying it (stream/wal.h
  // segment base path). Empty: no durability.
  std::string wal_path;
  stream::WalOptions wal;
};

// Overrides config fields from REJECTO_SERVE_* (see header comment).
AdmissionConfig ApplyEnvOverrides(AdmissionConfig config);

// Racy point-in-time counters (every field monotone except gauges).
struct AdmissionStats {
  std::uint64_t events_submitted = 0;   // acked TryPush/Submit calls
  std::uint64_t events_ingested = 0;    // drained by the writer
  std::uint64_t events_applied = 0;     // changed the graph
  std::uint64_t events_noop = 0;
  std::uint64_t epochs_published = 0;   // detection epochs (excludes bootstrap)
  double snapshot_seconds_total = 0.0;  // compact + CSR copy (ingest stalled)
  double last_snapshot_seconds = 0.0;
  double last_detect_seconds = 0.0;
  std::uint64_t backpressure_yields = 0;  // writer waits on a detect slot
  std::uint64_t published_epoch_id = 0;   // gauge
  std::uint64_t published_events = 0;     // gauge: events in current epoch
  std::size_t retired_epochs = 0;         // gauge: hazard keepalives
  std::size_t queue_depth = 0;            // gauge
};

class AdmissionService {
 public:
  // Starts the writer and detection threads and publishes the bootstrap
  // epoch 0 (no baseline: every sender admits) so readers never observe an
  // unpublished state. Seeds are graph ids and never remap.
  AdmissionService(graph::AugmentedGraph base, detect::Seeds seeds,
                   AdmissionConfig config);
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  // Appends a policy to the escalation chain. Must be called before any
  // reader exists or event is submitted (the chain is immutable once
  // serving starts; policies themselves must be thread-safe).
  void AddPolicy(std::unique_ptr<AdmissionPolicy> policy);

  // --- ingest (any thread) ---

  // Enqueues one event; false when the ring is full (caller decides to
  // retry, shed, or block).
  bool TrySubmit(const stream::Event& e);
  // Blocking submit: spins with yield until the ring accepts.
  void Submit(const stream::Event& e);

  // Blocks until every event submitted before this call has been applied
  // by the writer thread.
  void Drain();

  // Forces a snapshot+detection now (even mid-interval) and blocks until
  // that epoch is published. Returns its epoch id. Events submitted before
  // this call are folded in (the barrier orders through the same ring).
  std::uint64_t ForceEpoch();

  // --- query (reader threads) ---

  // A reader thread's handle: its RCU slot, latency histogram, and verdict
  // counters. Movable; must be destroyed before the service. One Reader
  // per thread — Decide is not reentrant on the same Reader.
  class Reader {
   public:
    Reader() = default;
    Reader(Reader&& o) noexcept;
    Reader& operator=(Reader&& o) noexcept;
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    ~Reader();

    // The lock-free decision path: pin the current epoch, score, run the
    // policy chain, record latency. logical_time is the caller's clock for
    // rate-limiting policies (event index / request counter).
    Decision Decide(graph::NodeId sender, std::uint64_t logical_time);

    const util::LatencyHistogram& Latency() const noexcept { return hist_; }
    std::uint64_t Decisions() const noexcept { return decisions_; }
    std::uint64_t Admitted() const noexcept { return verdicts_[0]; }
    std::uint64_t Greyed() const noexcept { return verdicts_[1]; }
    std::uint64_t Rejected() const noexcept { return verdicts_[2]; }
    std::uint64_t Escalated() const noexcept { return escalated_; }

   private:
    friend class AdmissionService;
    AdmissionService* service_ = nullptr;
    RcuPtr<PublishedEpoch>::Slot* slot_ = nullptr;
    util::LatencyHistogram hist_;
    std::uint64_t decisions_ = 0;
    std::uint64_t verdicts_[3] = {0, 0, 0};
    std::uint64_t escalated_ = 0;
  };

  // Claims a reader handle. Throws std::runtime_error when the slot pool
  // (config.max_readers) is exhausted in hazard mode.
  Reader CreateReader();

  // Writer-side view of the current epoch (tests/operators; readers use
  // Reader::Decide). Safe from any thread.
  std::shared_ptr<const PublishedEpoch> CurrentEpoch() const;
  std::uint64_t PublishedEpochId() const noexcept {
    return published_id_.load(std::memory_order_acquire);
  }

  AdmissionStats Stats() const;
  const AdmissionConfig& Config() const noexcept { return config_; }

  // Stops both threads after draining the ring (idempotent; the destructor
  // calls it). Pending snapshot jobs finish and publish first.
  void Stop();

 private:
  struct Command {
    enum class Kind : std::uint8_t { kEvent, kBarrier, kEpoch, kStop };
    Kind kind = Kind::kEvent;
    stream::Event event;
    // kBarrier: writer stores 1. kEpoch: writer stores the assigned epoch
    // id. Must outlive the command (caller stack + spin-wait).
    std::atomic<std::uint64_t>* ack = nullptr;
  };

  struct DetectJob {
    std::uint64_t epoch_id = 0;
    std::uint64_t events_ingested = 0;
    std::shared_ptr<const graph::AugmentedGraph> graph;
  };

  void WriterLoop();
  void DetectLoop();
  // Writer-side: compact, copy the CSR, enqueue the detection job
  // (stalling first if max_pending_epochs are already in flight).
  std::uint64_t CutSnapshot();
  void PublishBootstrap(const graph::AugmentedGraph& base);

  AdmissionConfig config_;
  detect::Seeds seeds_;

  MpscQueue<Command> queue_;
  RcuPtr<PublishedEpoch> rcu_;
  std::vector<std::unique_ptr<AdmissionPolicy>> policies_;

  // Writer-thread-owned (no locking; counters mirrored into atomics).
  stream::DeltaGraph delta_;
  std::unique_ptr<stream::WalWriter> wal_;
  std::shared_ptr<util::ThreadPool> pool_;
  std::uint64_t events_since_snapshot_ = 0;
  std::uint64_t next_epoch_id_ = 1;
  double snapshot_seconds_total_ = 0.0;

  // Writer -> detection handoff.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<DetectJob> jobs_;
  bool jobs_shutdown_ = false;
  std::atomic<std::size_t> jobs_pending_{0};

  // Writer-side mirror of the latest published epoch for CurrentEpoch()
  // (RcuPtr::Current is writer-thread-only in hazard mode).
  mutable std::mutex latest_mu_;
  std::shared_ptr<const PublishedEpoch> latest_;

  // Cross-thread counters/gauges (relaxed; Stats() is advisory).
  std::atomic<std::uint64_t> events_submitted_{0};
  std::atomic<std::uint64_t> events_ingested_{0};
  std::atomic<std::uint64_t> events_applied_{0};
  std::atomic<std::uint64_t> events_noop_{0};
  std::atomic<std::uint64_t> backpressure_yields_{0};
  std::atomic<std::uint64_t> epochs_published_{0};
  std::atomic<std::uint64_t> published_id_{0};
  std::atomic<std::size_t> retired_epochs_{0};
  std::atomic<double> last_snapshot_seconds_{0.0};
  std::atomic<double> snapshot_seconds_published_{0.0};
  std::atomic<double> last_detect_seconds_{0.0};

  std::thread writer_;
  std::thread detector_;
  std::atomic<bool> stopped_{false};
  // AddPolicy guard: set on the first CreateReader (the chain must freeze
  // before any reader can race a mutation of policies_).
  std::atomic<bool> chain_frozen_{false};
};

}  // namespace rejecto::serve
