// Pluggable admission-policy chain: the paper's §VI-D defense-in-depth
// pipeline as code.
//
// The paper argues Rejecto should not be the only line of defense: it sits
// in a layered pipeline next to rate limiting and feedback-based scoring
// (SocialFilter's collaborative reports, SybilFence's negative feedback —
// PAPERS.md). The admission service models the pipeline as an ordered chain
// of AdmissionPolicy objects evaluated after the incremental-score verdict;
// each policy may only ESCALATE the verdict (admit -> grey -> reject, the
// chain max-combines), so layering policies never masks evidence an earlier
// layer found — exactly the fail-closed composition a defense-in-depth
// stack wants.
//
// Policies run on the lock-free reader path, so implementations must be
// thread-safe without blocking, and — for the differential harness —
// deterministic per sender given that sender's query order (per-sender
// atomic state satisfies both; global mutable state would not).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "serve/published_epoch.h"

namespace rejecto::serve {

struct PolicyInput {
  graph::NodeId sender = graph::kInvalidNode;
  // Caller-supplied logical timestamp (event index, request counter, or
  // coarse wall ticks); the unit the token bucket refills in. The serving
  // layer never reads wall clocks on the decision path, so replays are
  // deterministic.
  std::uint64_t logical_time = 0;
  const PublishedEpoch& epoch;
  // The score half of the decision, before the chain ran.
  const Decision& base;
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual const char* Name() const noexcept = 0;
  // Returns the policy's verdict for this request; the chain combines via
  // max(incoming, returned). Must be thread-safe and lock-free.
  virtual Verdict Evaluate(const PolicyInput& in, Verdict incoming) = 0;
};

// Per-sender token bucket on logical time: each sender holds `capacity`
// tokens, refilled at `refill_per_tick` per logical tick; a request costs
// one token, and an empty bucket escalates the verdict to `on_limit`. This
// is the classic request-rate limiter in front of the scorer — a flooding
// spammer exhausts its bucket long before an epoch confirms it.
struct TokenBucketConfig {
  double capacity = 20.0;        // burst budget, tokens (max 65535)
  double refill_per_tick = 1.0;  // tokens per logical-time tick
  Verdict on_limit = Verdict::kGrey;
  // Size of the per-sender state table; senders with ids past it pass
  // through unlimited (size it to the id space, which never remaps).
  graph::NodeId num_senders = 0;
};

class TokenBucketPolicy final : public AdmissionPolicy {
 public:
  explicit TokenBucketPolicy(const TokenBucketConfig& config);

  const char* Name() const noexcept override { return "token_bucket"; }
  Verdict Evaluate(const PolicyInput& in, Verdict incoming) override;

  // Tokens currently held by `sender` (stats/tests; racy under load).
  double Tokens(graph::NodeId sender) const;

 private:
  TokenBucketConfig config_;
  // Packed per-sender state: (last_tick:u32 << 32) | tokens in 16.16 fixed
  // point — one CAS word, so concurrent readers serving DIFFERENT senders
  // never touch the same cache line's worth of mutex, and queries for the
  // same sender linearize through the CAS. Logical time is truncated to
  // u32; refill deltas use wrapping u32 arithmetic, so runs shorter than
  // 2^31 ticks between a sender's consecutive requests are exact.
  std::vector<std::atomic<std::uint64_t>> state_;
};

// Escalates to `verdict` every sender whose id tests true in `flagged` —
// the "operator blocklist" layer (e.g. the previous epoch's confirmed
// spammers, or an external abuse feed). Immutable after construction.
class StaticListPolicy final : public AdmissionPolicy {
 public:
  StaticListPolicy(std::vector<char> flagged, Verdict verdict);

  const char* Name() const noexcept override { return "static_list"; }
  Verdict Evaluate(const PolicyInput& in, Verdict incoming) override;

 private:
  std::vector<char> flagged_;
  Verdict verdict_;
};

}  // namespace rejecto::serve
