// Attack scenario assembly (paper §VI-A).
//
// A Scenario overlays a friend-spam attack on a legitimate social graph:
//   * legitimate users occupy ids [0, num_legit); their organic friendships
//     are randomly-oriented accepted requests, and each user receives
//     rejections from random non-friend legitimate users so that their
//     per-sender rejection rate matches `legit_rejection_rate`;
//   * fake accounts occupy [num_legit, num_legit + num_fakes); each arrival
//     befriends `intra_fake_links_per_account` existing fakes (collusion,
//     Fig 13, is this knob turned up);
//   * a `spamming_fraction` of the fakes each send `requests_per_spammer`
//     spam requests to distinct random legitimate users, a
//     `spam_rejection_rate` fraction of which are rejected (Figs 9–12);
//   * a small `careless_fraction` of legitimate users each send one
//     accepted request into the fake region (stress test, §VI-A);
//   * optional self-rejection whitewashing (Fig 14) and mass rejection of
//     legitimate requests by fakes (Fig 15).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/seeds.h"
#include "graph/augmented_graph.h"
#include "graph/social_graph.h"
#include "sim/request_log.h"
#include "util/rng.h"

namespace rejecto::sim {

struct ScenarioConfig {
  std::uint64_t seed = 42;

  // --- fake region ---
  graph::NodeId num_fakes = 10'000;
  std::uint32_t intra_fake_links_per_account = 6;  // Fig 13 varies 4..40

  // --- spam campaign ---
  double spamming_fraction = 1.0;       // Fig 10 uses 0.5
  std::uint32_t requests_per_spammer = 20;  // Figs 9/10 vary 5..50
  double spam_rejection_rate = 0.7;     // Fig 11 varies 0.5..0.95

  // --- legitimate behaviour ---
  double legit_rejection_rate = 0.2;    // Fig 12 varies 0.05..0.95
  double careless_fraction = 0.15;      // legit users befriending a fake

  // --- self-rejection strategy (Fig 14) ---
  // The last `whitewashed_fakes` fake ids receive requests from the other
  // fakes and reject a `self_rejection_rate` share of them, mimicking
  // rejection-casting legitimate users. (They still participate in the spam
  // campaign like any other fake.)
  graph::NodeId whitewashed_fakes = 0;
  std::uint32_t self_rejection_requests_per_sender = 20;
  double self_rejection_rate = 0.0;

  // --- spammers rejecting legitimate requests (Fig 15) ---
  std::uint64_t legit_requests_rejected_by_fakes = 0;
};

struct Scenario {
  graph::AugmentedGraph graph;  // legit + fakes, all links and rejections
  RequestLog log;               // full request history (VoteTrust input)
  graph::NodeId num_legit = 0;
  graph::NodeId num_fakes = 0;
  std::vector<char> is_fake;    // ground truth per node

  graph::NodeId NumNodes() const noexcept { return num_legit + num_fakes; }
  bool IsFake(graph::NodeId v) const { return is_fake[v] != 0; }

  // Samples known-label seeds (paper §III-B): uniformly random legitimate
  // users and uniformly random *spam-sending* fakes.
  detect::Seeds SampleSeeds(graph::NodeId num_legit_seeds,
                            graph::NodeId num_spammer_seeds,
                            util::Rng& rng) const;

  // Ids of the fakes that sent spam (useful for per-figure accounting).
  std::vector<graph::NodeId> spamming_fakes;
};

// Overlays the configured attack on `legit_graph` (whose nodes become the
// legitimate users). Deterministic given config.seed.
Scenario BuildScenario(const graph::SocialGraph& legit_graph,
                       const ScenarioConfig& config);

}  // namespace rejecto::sim
