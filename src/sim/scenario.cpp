#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/spam_simulator.h"

namespace rejecto::sim {

detect::Seeds Scenario::SampleSeeds(graph::NodeId num_legit_seeds,
                                    graph::NodeId num_spammer_seeds,
                                    util::Rng& rng) const {
  detect::Seeds seeds;
  if (num_legit_seeds > num_legit) {
    throw std::invalid_argument("SampleSeeds: too many legit seeds");
  }
  const auto& spam_pool =
      spamming_fakes.empty()
          ? std::vector<graph::NodeId>{}  // no spammers: no spammer seeds
          : spamming_fakes;
  if (num_spammer_seeds > spam_pool.size()) {
    throw std::invalid_argument("SampleSeeds: too many spammer seeds");
  }
  for (std::uint64_t u :
       rng.SampleWithoutReplacement(num_legit, num_legit_seeds)) {
    seeds.legit.push_back(static_cast<graph::NodeId>(u));
  }
  for (std::uint64_t i :
       rng.SampleWithoutReplacement(spam_pool.size(), num_spammer_seeds)) {
    seeds.spammer.push_back(spam_pool[static_cast<std::size_t>(i)]);
  }
  return seeds;
}

Scenario BuildScenario(const graph::SocialGraph& legit_graph,
                       const ScenarioConfig& config) {
  const graph::NodeId num_legit = legit_graph.NumNodes();
  const graph::NodeId num_fakes = config.num_fakes;
  if (num_legit == 0) {
    throw std::invalid_argument("BuildScenario: empty legitimate graph");
  }
  if (config.whitewashed_fakes > num_fakes) {
    throw std::invalid_argument(
        "BuildScenario: whitewashed_fakes exceeds num_fakes");
  }
  if (config.spamming_fraction < 0.0 || config.spamming_fraction > 1.0) {
    throw std::invalid_argument("BuildScenario: spamming_fraction in [0, 1]");
  }

  util::Rng rng(config.seed);
  Scenario s;
  s.num_legit = num_legit;
  s.num_fakes = num_fakes;
  s.is_fake.assign(static_cast<std::size_t>(num_legit) + num_fakes, 0);
  for (graph::NodeId v = num_legit; v < num_legit + num_fakes; ++v) {
    s.is_fake[v] = 1;
  }
  s.log = RequestLog(num_legit + num_fakes);

  OrientOrganicFriendships(s.log, legit_graph, rng);
  AddLegitimateRejections(s.log, legit_graph, config.legit_rejection_rate,
                          rng);
  AddFakeArrivals(s.log, num_legit, num_fakes,
                  config.intra_fake_links_per_account, rng);

  // Spam senders are sampled from all fakes; in the Fig 14 whitewash
  // scenario the to-be-whitewashed accounts (the last `whitewashed_fakes`
  // ids) keep spamming legitimate users too — the whitewash is the *extra*
  // intra-fake rejections meant to make them look like rejection-casting
  // legitimate users.
  auto num_spammers = static_cast<graph::NodeId>(std::llround(
      config.spamming_fraction * static_cast<double>(num_fakes)));
  num_spammers = std::min(num_spammers, num_fakes);
  s.spamming_fakes.reserve(num_spammers);
  for (std::uint64_t i :
       rng.SampleWithoutReplacement(num_fakes, num_spammers)) {
    s.spamming_fakes.push_back(num_legit + static_cast<graph::NodeId>(i));
  }
  std::sort(s.spamming_fakes.begin(), s.spamming_fakes.end());

  AddSpamCampaign(s.log, s.spamming_fakes, num_legit,
                  config.requests_per_spammer, config.spam_rejection_rate,
                  rng);
  AddCarelessAccepts(s.log, num_legit, num_legit, num_fakes,
                     config.careless_fraction, rng);

  if (config.whitewashed_fakes > 0) {
    // All non-whitewashed fakes direct the whitewash campaign's requests at
    // the whitewashed suffix.
    const graph::NodeId non_whitewashed =
        num_fakes - config.whitewashed_fakes;
    std::vector<graph::NodeId> senders;
    senders.reserve(non_whitewashed);
    for (graph::NodeId i = 0; i < non_whitewashed; ++i) {
      senders.push_back(num_legit + i);
    }
    AddSelfRejectionCampaign(
        s.log, senders, num_legit + non_whitewashed, config.whitewashed_fakes,
        config.self_rejection_requests_per_sender, config.self_rejection_rate,
        rng);
  }

  if (config.legit_requests_rejected_by_fakes > 0) {
    AddLegitRequestsRejectedByFakes(s.log, num_legit, num_legit, num_fakes,
                                    config.legit_requests_rejected_by_fakes,
                                    rng);
  }

  s.graph = s.log.BuildAugmentedGraph();
  return s;
}

}  // namespace rejecto::sim
