#include "sim/temporal_eval.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/spam_simulator.h"

namespace rejecto::sim {

namespace {
// Rejection-sampling budget for "a random victim not yet tried". Exhausting
// it means the target space is essentially saturated for this sender, at
// which point emitting fewer requests is the honest behaviour.
constexpr int kVictimAttempts = 64;
constexpr int kPoolAttempts = 16;
}  // namespace

std::string_view AdversaryName(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kStaticCampaign:
      return "static_campaign";
    case AdversaryKind::kProbeThenFlood:
      return "probe_then_flood";
    case AdversaryKind::kRejectionRetarget:
      return "rejection_retarget";
    case AdversaryKind::kSlowDripCollusion:
      return "slow_drip_collusion";
  }
  throw std::invalid_argument("AdversaryName: unknown AdversaryKind");
}

std::vector<double> DrawPropensities(const graph::SocialGraph& legit_graph,
                                     const PropensityConfig& config,
                                     util::Rng& rng) {
  const graph::NodeId n = legit_graph.NumNodes();
  if (config.careless_fraction < 0.0 || config.careless_fraction > 1.0) {
    throw std::invalid_argument(
        "DrawPropensities: careless_fraction in [0, 1]");
  }
  if (config.min_propensity > config.max_propensity) {
    throw std::invalid_argument(
        "DrawPropensities: min_propensity > max_propensity");
  }
  const auto clamp = [&](double p) {
    return std::clamp(p, config.min_propensity, config.max_propensity);
  };

  // Careless patches: a random center plus its whole neighborhood, repeated
  // until the target head-count is covered. Carelessness clusters socially,
  // so accepters' neighborhoods really are richer in accepters — the signal
  // probe-then-flood and retargeting exploit.
  std::vector<char> careless(n, 0);
  const auto target = static_cast<graph::NodeId>(
      std::llround(config.careless_fraction * static_cast<double>(n)));
  graph::NodeId marked = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 16ULL * (static_cast<std::uint64_t>(n) + 1);
  while (marked < target && attempts++ < max_attempts) {
    const auto c = static_cast<graph::NodeId>(rng.NextUInt(n));
    if (!careless[c]) {
      careless[c] = 1;
      ++marked;
    }
    for (graph::NodeId nb : legit_graph.Neighbors(c)) {
      if (marked >= target) break;
      if (!careless[nb]) {
        careless[nb] = 1;
        ++marked;
      }
    }
  }

  std::vector<double> propensity(n, 0.0);
  const double lo = config.mean - config.spread;
  const double hi = config.mean + config.spread;
  for (graph::NodeId u = 0; u < n; ++u) {
    propensity[u] = careless[u] != 0
                        ? clamp(config.careless_propensity)
                        : clamp(rng.NextDouble(lo, hi));
  }
  return propensity;
}

TemporalWorld::TemporalWorld(const graph::SocialGraph& legit_graph,
                             const TemporalEvalConfig& config)
    : legit_(&legit_graph),
      config_(config),
      num_legit_(legit_graph.NumNodes()),
      rng_(config.seed) {
  if (num_legit_ == 0) {
    throw std::invalid_argument("TemporalWorld: empty legitimate graph");
  }
  if (config_.num_fakes == 0) {
    throw std::invalid_argument("TemporalWorld: num_fakes must be > 0");
  }
  if (config_.spamming_fraction < 0.0 || config_.spamming_fraction > 1.0) {
    throw std::invalid_argument("TemporalWorld: spamming_fraction in [0, 1]");
  }
  if (config_.organic_request_fraction < 0.0) {
    throw std::invalid_argument(
        "TemporalWorld: organic_request_fraction must be >= 0");
  }

  const graph::NodeId total = NumNodes();
  log_ = RequestLog(total);
  is_fake_.assign(total, 0);
  for (graph::NodeId v = num_legit_; v < total; ++v) is_fake_[v] = 1;

  propensity_.assign(total, 0.0);
  {
    std::vector<double> legit_prop =
        DrawPropensities(legit_graph, config_.propensity, rng_);
    std::copy(legit_prop.begin(), legit_prop.end(), propensity_.begin());
  }

  // --- organic prelude ---
  OrientOrganicFriendships(log_, legit_graph, rng_);

  // Unsolicited organic requests, answered per receiver propensity — the
  // heterogeneous analogue of AddLegitimateRejections: u sends
  // round(deg(u) · fraction) requests to random non-friends.
  tried_.resize(total);
  for (graph::NodeId u = 0; u < num_legit_; ++u) {
    const auto count = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(legit_graph.Degree(u)) *
                     config_.organic_request_fraction));
    for (std::uint64_t i = 0; i < count; ++i) {
      graph::NodeId v = graph::kInvalidNode;
      for (int a = 0; a < kVictimAttempts; ++a) {
        const auto cand = static_cast<graph::NodeId>(rng_.NextUInt(num_legit_));
        if (cand == u || legit_graph.HasEdge(u, cand) || Tried(u, cand)) {
          continue;
        }
        v = cand;
        break;
      }
      if (v == graph::kInvalidNode) break;
      const bool rejected = rng_.NextBool(propensity_[v]);
      log_.Add(u, v, rejected ? Response::kRejected : Response::kAccepted);
      MarkTried(u, v);
    }
  }

  AddFakeArrivals(log_, num_legit_, config_.num_fakes,
                  config_.intra_fake_links_per_account, rng_);

  // Register every prelude pair (orientation + arrivals went through the
  // primitives directly) so future emissions never duplicate one.
  for (const FriendRequest& r : log_.Requests()) {
    MarkTried(r.sender, r.receiver);
  }

  auto num_spammers = static_cast<graph::NodeId>(std::llround(
      config_.spamming_fraction * static_cast<double>(config_.num_fakes)));
  num_spammers = std::min(num_spammers, config_.num_fakes);
  spammers_.reserve(num_spammers);
  for (std::uint64_t i :
       rng_.SampleWithoutReplacement(config_.num_fakes, num_spammers)) {
    spammers_.push_back(num_legit_ + static_cast<graph::NodeId>(i));
  }
  std::sort(spammers_.begin(), spammers_.end());

  spam_sent_.assign(total, 0);
  spam_accepted_.assign(total, 0);
}

detect::Seeds TemporalWorld::SampleSeeds(graph::NodeId num_legit_seeds,
                                         graph::NodeId num_spammer_seeds,
                                         util::Rng& rng) {
  detect::Seeds seeds;
  if (num_legit_seeds > num_legit_) {
    throw std::invalid_argument("SampleSeeds: too many legit seeds");
  }
  if (num_spammer_seeds > spammers_.size()) {
    throw std::invalid_argument("SampleSeeds: too many spammer seeds");
  }
  for (std::uint64_t u :
       rng.SampleWithoutReplacement(num_legit_, num_legit_seeds)) {
    seeds.legit.push_back(static_cast<graph::NodeId>(u));
  }
  for (std::uint64_t i :
       rng.SampleWithoutReplacement(spammers_.size(), num_spammer_seeds)) {
    seeds.spammer.push_back(spammers_[static_cast<std::size_t>(i)]);
  }
  return seeds;
}

bool TemporalWorld::Tried(graph::NodeId sender, graph::NodeId receiver) const {
  return sender < tried_.size() &&
         tried_[sender].find(receiver) != tried_[sender].end();
}

void TemporalWorld::MarkTried(graph::NodeId sender, graph::NodeId receiver) {
  tried_[sender].insert(receiver);
}

bool TemporalWorld::SendSpamRequest(graph::NodeId f, graph::NodeId victim) {
  if (f < num_legit_ || f >= NumNodes()) {
    throw std::invalid_argument("SendSpamRequest: sender must be a fake");
  }
  if (victim >= num_legit_) {
    throw std::invalid_argument("SendSpamRequest: victim must be legitimate");
  }
  if (Tried(f, victim)) {
    throw std::logic_error("SendSpamRequest: pair already tried");
  }
  const bool rejected = rng_.NextBool(propensity_[victim]);
  log_.Add(f, victim, rejected ? Response::kRejected : Response::kAccepted);
  MarkTried(f, victim);
  ++spam_sent_[f];
  if (!rejected) ++spam_accepted_[f];
  return !rejected;
}

void TemporalWorld::AddCollusionLink(graph::NodeId f, graph::NodeId g) {
  if (f < num_legit_ || f >= NumNodes() || g < num_legit_ || g >= NumNodes()) {
    throw std::invalid_argument("AddCollusionLink: both ends must be fakes");
  }
  if (f == g || Tried(f, g) || Tried(g, f)) return;
  log_.Add(f, g, Response::kAccepted);
  MarkTried(f, g);
}

std::uint64_t TemporalWorld::SpamRequestsSent(graph::NodeId f) const {
  return spam_sent_.at(f);
}

std::uint64_t TemporalWorld::SpamAccepted(graph::NodeId f) const {
  return spam_accepted_.at(f);
}

AdaptiveAdversary::AdaptiveAdversary(TemporalWorld& world)
    : world_(world),
      state_(world.Spammers().size()),
      is_known_accepter_(world.NumLegit(), 0) {}

graph::NodeId AdaptiveAdversary::RandomUntriedVictim(graph::NodeId f) {
  for (int a = 0; a < kVictimAttempts; ++a) {
    const auto v =
        static_cast<graph::NodeId>(world_.Rng().NextUInt(world_.NumLegit()));
    if (!world_.Tried(f, v)) return v;
  }
  return graph::kInvalidNode;
}

bool AdaptiveAdversary::SendAndObserve(graph::NodeId f, graph::NodeId victim,
                                       SpammerState& state) {
  const bool accepted = world_.SendSpamRequest(f, victim);
  if (accepted) {
    if (!is_known_accepter_[victim]) {
      is_known_accepter_[victim] = 1;
      known_accepters_.push_back(victim);
    }
    if (world_.Config().adversary == AdversaryKind::kRejectionRetarget) {
      const auto& legit = world_.LegitGraph();
      for (graph::NodeId nb : legit.Neighbors(victim)) {
        state.frontier.push_back(nb);
      }
    }
  } else {
    ++state.recent_rejections;
  }
  return accepted;
}

std::uint64_t AdaptiveAdversary::EmitStatic(const std::vector<char>& flagged) {
  std::uint64_t sent = 0;
  const std::uint32_t budget =
      world_.Config().requests_per_spammer_per_interval;
  const auto& spammers = world_.Spammers();
  for (std::size_t i = 0; i < spammers.size(); ++i) {
    const graph::NodeId f = spammers[i];
    if (Flagged(flagged, f)) continue;
    for (std::uint32_t b = 0; b < budget; ++b) {
      const graph::NodeId v = RandomUntriedVictim(f);
      if (v == graph::kInvalidNode) break;
      SendAndObserve(f, v, state_[i]);
      ++sent;
    }
  }
  return sent;
}

std::uint64_t AdaptiveAdversary::EmitProbeThenFlood(
    int interval, const std::vector<char>& flagged) {
  const TemporalEvalConfig& cfg = world_.Config();
  const auto& spammers = world_.Spammers();
  std::uint64_t sent = 0;

  if (interval < cfg.probe_intervals) {
    // Probe phase: a trickle of random requests, pooling every accepter the
    // collusion discovers.
    for (std::size_t i = 0; i < spammers.size(); ++i) {
      const graph::NodeId f = spammers[i];
      if (Flagged(flagged, f)) continue;
      for (std::uint32_t b = 0; b < cfg.probe_requests_per_interval; ++b) {
        const graph::NodeId v = RandomUntriedVictim(f);
        if (v == graph::kInvalidNode) break;
        SendAndObserve(f, v, state_[i]);
        ++sent;
      }
    }
    return sent;
  }

  // Flood phase: the full budget, aimed at known accepters and their graph
  // neighborhoods (the careless patches), falling back to random victims
  // only when the pool is exhausted for a sender.
  std::vector<graph::NodeId> pool;
  {
    std::vector<char> in_pool(world_.NumLegit(), 0);
    const auto& legit = world_.LegitGraph();
    for (graph::NodeId a : known_accepters_) {
      if (!in_pool[a]) {
        in_pool[a] = 1;
        pool.push_back(a);
      }
      for (graph::NodeId nb : legit.Neighbors(a)) {
        if (!in_pool[nb]) {
          in_pool[nb] = 1;
          pool.push_back(nb);
        }
      }
    }
  }

  const std::uint32_t budget = cfg.requests_per_spammer_per_interval;
  for (std::size_t i = 0; i < spammers.size(); ++i) {
    const graph::NodeId f = spammers[i];
    if (Flagged(flagged, f)) continue;
    for (std::uint32_t b = 0; b < budget; ++b) {
      graph::NodeId v = graph::kInvalidNode;
      if (!pool.empty()) {
        for (int a = 0; a < kPoolAttempts; ++a) {
          const graph::NodeId cand =
              pool[world_.Rng().NextUInt(pool.size())];
          if (!world_.Tried(f, cand)) {
            v = cand;
            break;
          }
        }
      }
      if (v == graph::kInvalidNode) v = RandomUntriedVictim(f);
      if (v == graph::kInvalidNode) break;
      SendAndObserve(f, v, state_[i]);
      ++sent;
    }
  }
  return sent;
}

std::uint64_t AdaptiveAdversary::EmitRetarget(
    const std::vector<char>& flagged) {
  const std::uint32_t budget =
      world_.Config().requests_per_spammer_per_interval;
  const auto& spammers = world_.Spammers();
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < spammers.size(); ++i) {
    const graph::NodeId f = spammers[i];
    if (Flagged(flagged, f)) continue;
    SpammerState& st = state_[i];
    for (std::uint32_t b = 0; b < budget; ++b) {
      // Prefer the frontier (neighbors of victims that accepted); rejecting
      // victims were never expanded, so their neighborhoods are abandoned.
      graph::NodeId v = graph::kInvalidNode;
      while (st.frontier_pos < st.frontier.size()) {
        const graph::NodeId cand = st.frontier[st.frontier_pos++];
        if (!world_.Tried(f, cand)) {
          v = cand;
          break;
        }
      }
      if (v == graph::kInvalidNode) v = RandomUntriedVictim(f);
      if (v == graph::kInvalidNode) break;
      SendAndObserve(f, v, st);
      ++sent;
    }
  }
  return sent;
}

std::uint64_t AdaptiveAdversary::EmitSlowDrip(
    const std::vector<char>& flagged) {
  const TemporalEvalConfig& cfg = world_.Config();
  const auto& spammers = world_.Spammers();
  const graph::NodeId num_fakes = world_.NumFakes();
  const graph::NodeId first_fake = world_.NumLegit();
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < spammers.size(); ++i) {
    const graph::NodeId f = spammers[i];
    if (Flagged(flagged, f)) continue;
    SpammerState& st = state_[i];

    // Collusion drip runs even through a cool-down: intra-fake links are
    // "safe" and keep the region embedded while evidence accrues slowly.
    for (std::uint32_t j = 0; j < cfg.drip_collusion_links_per_interval; ++j) {
      for (int a = 0; a < kPoolAttempts; ++a) {
        const graph::NodeId g =
            first_fake +
            static_cast<graph::NodeId>(world_.Rng().NextUInt(num_fakes));
        if (g == f || Flagged(flagged, g)) continue;
        world_.AddCollusionLink(f, g);
        break;
      }
    }

    // Any rejection last interval → sit this one out entirely.
    if (st.recent_rejections > 0) {
      st.recent_rejections = 0;
      continue;
    }
    for (std::uint32_t b = 0; b < cfg.drip_max_requests_per_interval; ++b) {
      const graph::NodeId v = RandomUntriedVictim(f);
      if (v == graph::kInvalidNode) break;
      SendAndObserve(f, v, st);
      ++sent;
    }
  }
  return sent;
}

std::uint64_t AdaptiveAdversary::EmitInterval(int interval,
                                              const std::vector<char>& flagged) {
  switch (world_.Config().adversary) {
    case AdversaryKind::kStaticCampaign:
      return EmitStatic(flagged);
    case AdversaryKind::kProbeThenFlood:
      return EmitProbeThenFlood(interval, flagged);
    case AdversaryKind::kRejectionRetarget:
      return EmitRetarget(flagged);
    case AdversaryKind::kSlowDripCollusion:
      return EmitSlowDrip(flagged);
  }
  throw std::invalid_argument("EmitInterval: unknown AdversaryKind");
}

}  // namespace rejecto::sim
